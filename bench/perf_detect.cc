// Change-detection benchmarks (google-benchmark).
//
// Workflow (tracked in CI as BENCH_detect.json):
//   ./build/perf_detect --benchmark_format=json > BENCH_detect.json
// Headline metrics and gates:
//   BM_ChangeMonitorObserve items_per_second — windows/s through the full detector bank
//                                              (arrival CUSUM + BOCPD, per-queue service
//                                              and wait CUSUMs, bottleneck tracker,
//                                              degraded edge). allocs_per_window MUST be
//                                              exactly 0 (CI gates it): the tap adds no
//                                              heap traffic to the streaming loop.
//   BM_Campaign/<i> (labelled by name)       — each catalog campaign end to end
//                                              (LiveSimStream -> estimator -> monitor ->
//                                              scoring). CI gates, fail closed, per
//                                              campaign: false_alarms == 0 (detectors
//                                              stay silent on every stationary prefix),
//                                              detected == 1 (every ground-truth event
//                                              raises its labelled alert kind), and
//                                              max_latency_windows <= 6 (the detection-
//                                              latency budget, in windows).
//
// The campaigns are seeded, so these numbers are deterministic: a gate failure is a
// detector or estimator regression, never benchmark noise.

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include <string>
#include <vector>

#include "qnet/detect/change_monitor.h"
#include "qnet/scenario/campaign.h"
#include "qnet/stream/streaming_estimator.h"

namespace {

using qnet_testing::AllocationCount;

// The detector-bank hot path on a synthetic stationary estimate sequence: one reused
// WindowEstimate mutated in place, so the loop measures Observe() and nothing else.
void BM_ChangeMonitorObserve(benchmark::State& state) {
  qnet::ChangeMonitorOptions options;
  // The per-window mask log is append-only; reserve past any plausible iteration count
  // so the gate measures the detectors' steady state, not amortized log doubling.
  options.reserve_windows = std::size_t{1} << 21;
  qnet::ChangeMonitor monitor(3, options);
  qnet::WindowEstimate e;
  e.tasks = 120;
  e.window_local_arrival_rate = true;
  e.rates = {4.0, 10.0, 8.0};
  e.mean_wait = {0.0, 0.1, 0.25};
  std::size_t w = 0;
  for (; w < 16; ++w) {  // warm-up: arms every detector (8-window warm-ups)
    e.t0 = 30.0 * static_cast<double>(w);
    e.t1 = e.t0 + 30.0;
    monitor.Observe(e);
  }

  std::size_t windows = 0;
  const std::size_t before = AllocationCount();
  for (auto _ : state) {
    e.t0 = 30.0 * static_cast<double>(w);
    e.t1 = e.t0 + 30.0;
    const double tick = (w % 2 == 0) ? 1.01 : 0.99;
    e.rates[0] = 4.0 * tick;
    e.rates[1] = 10.0 / tick;
    e.mean_wait[2] = 0.25 * tick;
    monitor.Observe(e);
    benchmark::DoNotOptimize(monitor.WindowsObserved());
    ++w;
    ++windows;
  }
  const std::size_t allocations = AllocationCount() - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_window"] =
      static_cast<double>(allocations) / static_cast<double>(windows);
  state.counters["alerts_raised"] = static_cast<double>(monitor.Alerts().size());
}
BENCHMARK(BM_ChangeMonitorObserve)->Unit(benchmark::kMicrosecond);

// One catalog campaign end to end per iteration. The counters are the CI gates.
void BM_Campaign(benchmark::State& state) {
  const std::vector<std::string> names = qnet::CampaignNames();
  const std::string& name = names[static_cast<std::size_t>(state.range(0))];
  const qnet::Campaign campaign = qnet::MakeCampaign(name);
  state.SetLabel(name);

  qnet::CampaignResult result;
  for (auto _ : state) {
    result = qnet::RunCampaign(campaign, qnet::CampaignRunOptions());
    benchmark::DoNotOptimize(result.alerts.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(result.estimates.size()));
  state.counters["windows"] = static_cast<double>(result.estimates.size());
  state.counters["events"] = static_cast<double>(result.outcomes.size());
  state.counters["alerts"] = static_cast<double>(result.alerts.size());
  state.counters["false_alarms"] = static_cast<double>(result.false_alarms);
  state.counters["detected"] = result.AllDetected() ? 1.0 : 0.0;
  state.counters["max_latency_windows"] =
      static_cast<double>(result.MaxLatencyWindows());
}
BENCHMARK(BM_Campaign)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace
