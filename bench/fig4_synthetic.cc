// Figure 4 reproduction (paper Section 5.1).
//
// Five three-tier structures (tier sizes permutations of {1,2,4}), lambda = 10, mu = 5,
// 1000 tasks each; all arrivals (and exits) of a task-level random sample observed; StEM +
// Gibbs recover per-queue mean service and waiting times. For each observation fraction the
// harness prints the distribution of absolute errors across (structure x repetition x
// queue) — the quantities Figure 4 plots as boxplots — plus the in-text medians the paper
// reports at 5% (service 0.033, waiting 1.35).
//
// Usage: fig4_synthetic [--tasks 1000] [--reps 5] [--iters 300] [--burn 150]
//                       [--fractions 0.01,0.05,0.1,0.25] [--seed 1] [--no-exits]
//
// --no-exits switches to strict arrival-only observation (no task exit times even for
// sampled tasks). Route-final queues are then unidentifiable and waiting errors grow —
// see DESIGN.md decision 4 and bench/ablation_moves.

#include <iostream>
#include <sstream>
#include <vector>

#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/support/math.h"
#include "qnet/support/stopwatch.h"
#include "qnet/trace/csv.h"
#include "qnet/trace/table.h"

namespace {

std::vector<double> ParseFractions(const std::string& text) {
  std::vector<double> fractions;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    fractions.push_back(std::stod(token));
  }
  return fractions;
}

}  // namespace

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const auto iters = static_cast<std::size_t>(flags.GetInt("iters", 300));
  const auto burn = static_cast<std::size_t>(flags.GetInt("burn", 150));
  const std::vector<double> fractions =
      ParseFractions(flags.GetString("fractions", "0.01,0.05,0.1,0.25"));
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 1)));

  std::cout << "== Figure 4: StEM/Gibbs accuracy on synthetic three-tier networks ==\n"
            << "structures: 5 permutations of tier sizes {1,2,4}; lambda=10, mu=5; "
            << tasks << " tasks; " << reps << " repetitions per structure\n\n";

  const auto structures = qnet::SyntheticStructures();
  qnet::TablePrinter table({"% observed", "svc err p25", "svc err median", "svc err p75",
                            "wait err p25", "wait err median", "wait err p75", "runs"});
  std::vector<std::vector<double>> csv_rows;  // fraction, svc_err, wait_err per queue-run
  qnet::Stopwatch watch;
  for (double fraction : fractions) {
    std::vector<double> service_errors;
    std::vector<double> wait_errors;
    for (std::size_t s = 0; s < structures.size(); ++s) {
      const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(structures[s]);
      const auto num_queues = static_cast<std::size_t>(net.NumQueues());
      for (int rep = 0; rep < reps; ++rep) {
        qnet::Rng run_rng = rng.Fork();
        const qnet::EventLog truth = qnet::SimulateWorkload(
            net, qnet::PoissonArrivals(structures[s].arrival_rate, tasks), run_rng);
        qnet::TaskSamplingScheme scheme;
        scheme.fraction = fraction;
        scheme.observe_final_departure = !flags.GetBool("no-exits", false);
        const qnet::Observation obs = scheme.Apply(truth, run_rng);

        qnet::StemOptions options;
        options.iterations = iters;
        options.burn_in = burn;
        options.wait_sweeps = 50;
        const qnet::StemResult result =
            qnet::StemEstimator(options).Run(truth, obs, {}, run_rng);

        const auto realized_service = truth.PerQueueMeanService();
        const auto realized_wait = truth.PerQueueMeanWait();
        for (std::size_t q = 1; q < num_queues; ++q) {
          service_errors.push_back(std::abs(result.mean_service[q] - realized_service[q]));
          wait_errors.push_back(std::abs(result.mean_wait[q] - realized_wait[q]));
          csv_rows.push_back({fraction, static_cast<double>(s), static_cast<double>(rep),
                              static_cast<double>(q), service_errors.back(),
                              wait_errors.back()});
        }
      }
    }
    table.AddRow({qnet::FormatDouble(fraction, 2),
                  qnet::FormatDouble(qnet::Quantile(service_errors, 0.25), 4),
                  qnet::FormatDouble(qnet::Median(service_errors), 4),
                  qnet::FormatDouble(qnet::Quantile(service_errors, 0.75), 4),
                  qnet::FormatDouble(qnet::Quantile(wait_errors, 0.25), 3),
                  qnet::FormatDouble(qnet::Median(wait_errors), 3),
                  qnet::FormatDouble(qnet::Quantile(wait_errors, 0.75), 3),
                  std::to_string(service_errors.size())});
  }
  table.Print(std::cout);
  std::cout << "\npaper reference (Fig. 4 / in-text): at 5% observed, median abs error ~0.033"
            << " (service), ~1.35 (waiting);\nerrors shrink as the observed fraction grows;"
            << " waiting errors are an order of magnitude larger than service errors\n"
            << "elapsed: " << qnet::FormatDouble(watch.ElapsedSeconds(), 1) << " s\n";
  if (flags.Has("csv")) {
    qnet::WriteSeriesFile(flags.GetString("csv", "fig4.csv"),
                          {"fraction", "structure", "rep", "queue", "svc_abs_err",
                           "wait_abs_err"},
                          csv_rows);
  }
  return 0;
}
