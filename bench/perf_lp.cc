// Microbenchmarks: simplex solve time on initializer-shaped LPs of growing size.

#include <benchmark/benchmark.h>

#include "qnet/infer/initializer.h"
#include "qnet/lp/problem.h"
#include "qnet/lp/simplex.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"

namespace {

void BM_SimplexRandomDifferenceSystem(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qnet::Rng rng(37);
  qnet::LpProblem lp;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(lp.AddVariable("v" + std::to_string(i)));
    lp.SetObjective(vars.back(), 1.0);
  }
  for (int i = 0; i + 1 < n; ++i) {
    lp.AddConstraint({{vars[static_cast<std::size_t>(i)], 1.0},
                      {vars[static_cast<std::size_t>(i + 1)], -1.0}},
                     qnet::LpRelation::kLessEqual, -rng.Uniform());
  }
  for (int k = 0; k < 2 * n; ++k) {
    const int a = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(n - 1)));
    const int b =
        a + 1 + static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(n - a - 1)));
    lp.AddConstraint({{vars[static_cast<std::size_t>(a)], 1.0},
                      {vars[static_cast<std::size_t>(b)], -1.0}},
                     qnet::LpRelation::kLessEqual, -rng.Uniform());
  }
  const qnet::SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(lp).status);
  }
}
BENCHMARK(BM_SimplexRandomDifferenceSystem)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_LpInitializerEndToEnd(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0});
  qnet::Rng rng(41);
  const qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(2.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = 0.2;
  const qnet::Observation obs = scheme.Apply(truth, rng);
  const auto rates = net.ExponentialRates();
  qnet::InitializerOptions options;
  options.method = qnet::InitMethod::kLp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qnet::InitializeFeasible(truth, obs, rates, rng, options).NumEvents());
  }
}
BENCHMARK(BM_LpInitializerEndToEnd)->Arg(15)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace
