// Ablation: greedy vs LP initialization (DESIGN.md decision 3).
//
// The paper prescribes an LP (minimize sum |s_e - mu_qe|) to initialize the Gibbs sampler.
// The library defaults to an O(n log n) greedy feasible initializer. This bench compares:
//   * initialization cost (wall time),
//   * initial deviation of service times from their targets (the LP's objective),
//   * StEM estimate quality after a fixed budget, from either start.
//
// Usage: ablation_init [--tasks 60] [--reps 5] [--fraction 0.2] [--seed 4]

#include <cmath>
#include <iostream>

#include "qnet/infer/initializer.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/support/math.h"
#include "qnet/support/stopwatch.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 60));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const double fraction = flags.GetDouble("fraction", 0.2);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 4)));

  std::cout << "== Ablation: greedy vs LP (paper Section 3) initialization ==\n"
            << "tandem 3-queue network, " << tasks << " tasks, " << 100 * fraction
            << "% observed, " << reps << " repetitions\n\n";

  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0, 6.0});
  const auto rates = net.ExponentialRates();

  qnet::RunningStat greedy_time;
  qnet::RunningStat lp_time;
  qnet::RunningStat greedy_objective;
  qnet::RunningStat lp_objective;
  qnet::RunningStat greedy_error;
  qnet::RunningStat lp_error;

  for (int rep = 0; rep < reps; ++rep) {
    qnet::Rng run_rng = rng.Fork();
    const qnet::EventLog truth =
        qnet::SimulateWorkload(net, qnet::PoissonArrivals(2.0, tasks), run_rng);
    qnet::TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    const qnet::Observation obs = scheme.Apply(truth, run_rng);
    const auto realized = truth.PerQueueMeanService();

    for (const qnet::InitMethod method : {qnet::InitMethod::kGreedy, qnet::InitMethod::kLp}) {
      const bool is_lp = method == qnet::InitMethod::kLp;
      qnet::InitializerOptions init_options;
      init_options.method = method;
      qnet::Stopwatch watch;
      const qnet::EventLog state =
          qnet::InitializeFeasible(truth, obs, rates, run_rng, init_options);
      (is_lp ? lp_time : greedy_time).Add(watch.ElapsedMillis());
      // Paper objective: sum over events of |s_e - 1/mu|.
      double objective = 0.0;
      for (qnet::EventId e = 0; static_cast<std::size_t>(e) < state.NumEvents(); ++e) {
        objective +=
            std::abs(state.ServiceTime(e) -
                     1.0 / rates[static_cast<std::size_t>(state.At(e).queue)]);
      }
      (is_lp ? lp_objective : greedy_objective).Add(objective);

      qnet::StemOptions stem_options;
      stem_options.iterations = 60;
      stem_options.burn_in = 20;
      stem_options.wait_sweeps = 0;
      stem_options.init = init_options;
      const qnet::StemResult result =
          qnet::StemEstimator(stem_options).Run(truth, obs, {}, run_rng);
      double err = 0.0;
      for (std::size_t q = 1; q < rates.size(); ++q) {
        err += std::abs(result.mean_service[q] - realized[q]);
      }
      (is_lp ? lp_error : greedy_error).Add(err);
    }
  }

  qnet::TablePrinter table({"initializer", "init time (ms)", "sum |s - 1/mu| (paper obj.)",
                            "StEM total abs err (60 iters)"});
  table.AddRow({"greedy (default)", qnet::FormatDouble(greedy_time.Mean(), 2),
                qnet::FormatDouble(greedy_objective.Mean(), 2),
                qnet::FormatDouble(greedy_error.Mean(), 4)});
  table.AddRow({"LP (paper Section 3)", qnet::FormatDouble(lp_time.Mean(), 2),
                qnet::FormatDouble(lp_objective.Mean(), 2),
                qnet::FormatDouble(lp_error.Mean(), 4)});
  table.Print(std::cout);
  std::cout << "\ntakeaway: the LP start matches the paper's objective more tightly, but"
            << " after a modest\nStEM budget both initializations converge to equivalent"
            << " estimates — the greedy start\nis orders of magnitude cheaper and scales"
            << " to the full experiments.\n";
  return 0;
}
