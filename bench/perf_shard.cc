// Sharded streaming front-end benchmarks: lane-ingest throughput, fleet end-to-end
// estimation throughput vs the plain StreamingEstimator, and the per-task allocation
// footprint across lane counts (google-benchmark).
//
// Workflow (tracked in CI as BENCH_shard.json):
//   ./build/perf_shard --benchmark_format=json > BENCH_shard.json
// Headline metrics:
//   BM_LaneIngest/K items_per_second      — tasks/s through router -> K lane queues ->
//                                           per-lane window assembly with a minimal StEM
//                                           (2 iterations), isolating the partition/queue/
//                                           assembly cost;
//   BM_FleetEstimate/K items_per_second   — end-to-end tasks/s including realistic
//                                           per-window warm-started StEM fits per lane
//                                           (shows lane scaling on multi-core hardware;
//                                           flat on the 1-core CI box);
//   BM_PlainStreamEstimate items_per_second — the StreamingEstimator baseline with the
//                                           SAME options; CI gates BM_FleetEstimate/1
//                                           within 10% of it (the fleet's fixed overhead
//                                           — queue hop, merger, one worker thread —
//                                           must stay in the noise);
//   BM_FleetAllocations/K allocs_per_task — global operator-new calls per ingested task;
//                                           CI gates a bound AND flatness across K (the
//                                           queue ring reuses slot capacity, so lane
//                                           count must not buy per-task allocations).

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/shard/sharded_streaming.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/support/rng.h"

namespace {

using qnet_testing::AllocationCount;

struct Fixture {
  qnet::EventLog truth;
  qnet::Observation obs;
};

Fixture MakeFixture(std::size_t tasks) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  qnet::Rng rng(12345);
  qnet::EventLog truth = qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  qnet::Observation obs = scheme.Apply(truth, rng);
  return Fixture{std::move(truth), std::move(obs)};
}

qnet::ShardedStreamingOptions FleetOptions(std::size_t lanes, std::size_t stem_iterations,
                                           std::size_t stem_burn_in) {
  qnet::ShardedStreamingOptions options;
  options.lanes = lanes;
  options.lane_queue_capacity = 256;
  options.stream.window.window_duration = 5.0;  // ~50 tasks per window at rate 10
  options.stream.window.min_tasks_per_window = 8;
  options.stream.stem.iterations = stem_iterations;
  options.stream.stem.burn_in = stem_burn_in;
  options.stream.stem.wait_sweeps = 0;
  return options;
}

std::vector<double> InitRates(const Fixture& fixture) {
  return std::vector<double>(static_cast<std::size_t>(fixture.truth.NumQueues()), 1.0);
}

// Router -> lane queues -> per-lane assembly with a minimal fit: the ingest path cost.
void BM_LaneIngest(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(2000);
  const qnet::ShardedStreamingOptions options = FleetOptions(lanes, 2, 1);
  const std::vector<double> init = InitRates(fixture);
  double blocked = 0.0;
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::ShardedStreamingEstimator fleet(init, 17, options);
    const auto estimates = fleet.Run(stream);
    benchmark::DoNotOptimize(estimates.size());
    blocked = fleet.Stats().router_blocked_seconds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
  state.counters["lanes"] = static_cast<double>(lanes);
  state.counters["router_blocked_ms_last_pass"] = blocked * 1e3;
}
BENCHMARK(BM_LaneIngest)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// End-to-end fleet estimation with realistic per-window fits.
void BM_FleetEstimate(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(2000);
  const qnet::ShardedStreamingOptions options = FleetOptions(lanes, 12, 4);
  const std::vector<double> init = InitRates(fixture);
  double merge_lag = 0.0;
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::ShardedStreamingEstimator fleet(init, 17, options);
    const auto estimates = fleet.Run(stream);
    benchmark::DoNotOptimize(estimates.size());
    merge_lag = fleet.Stats().max_merge_lag_seconds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
  state.counters["lanes"] = static_cast<double>(lanes);
  state.counters["max_merge_lag_ms"] = merge_lag * 1e3;
}
BENCHMARK(BM_FleetEstimate)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// The plain-estimator baseline for the K=1 overhead gate (same fixture, same options).
void BM_PlainStreamEstimate(benchmark::State& state) {
  const Fixture fixture = MakeFixture(2000);
  const qnet::ShardedStreamingOptions reference = FleetOptions(1, 12, 4);
  const std::vector<double> init = InitRates(fixture);
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::StreamingEstimator estimator(init, 17, reference.stream);
    const auto estimates = estimator.Run(stream);
    benchmark::DoNotOptimize(estimates.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_PlainStreamEstimate)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// Allocation counter: operator-new calls per ingested task, per lane count. The fits
// allocate by design (per-window logs, samplers); what the gate protects is that lane
// count does not multiply the per-task cost — queue slots and pop targets recycle their
// record capacity.
void BM_FleetAllocations(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(2000);
  const qnet::ShardedStreamingOptions options = FleetOptions(lanes, 2, 1);
  const std::vector<double> init = InitRates(fixture);
  // Warm-up pass outside the counted region.
  {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::ShardedStreamingEstimator fleet(init, 17, options);
    benchmark::DoNotOptimize(fleet.Run(stream).size());
  }
  std::size_t tasks = 0;
  const std::size_t before = AllocationCount();
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::ShardedStreamingEstimator fleet(init, 17, options);
    benchmark::DoNotOptimize(fleet.Run(stream).size());
    tasks += 2000;
  }
  const std::size_t after = AllocationCount();
  state.counters["lanes"] = static_cast<double>(lanes);
  state.counters["allocs_per_task"] =
      tasks > 0 ? static_cast<double>(after - before) / static_cast<double>(tasks) : 0.0;
}
BENCHMARK(BM_FleetAllocations)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
