// Figure 5 reproduction (paper Section 5.2): per-queue estimated mean service (left panel)
// and waiting (right panel) times on the movie-voting web application as a function of the
// percentage of observed request traces.
//
// The thick lines of the paper's figure are the network queue (black) and database (gray);
// the thin lines are the 10 web servers, one of which was starved by the load balancer
// (~19 requests) and therefore estimates poorly at every fraction.
//
// Usage: fig5_webapp [--fractions 0.01,0.02,0.05,0.1,0.2,0.3,0.5] [--iters 300]
//                    [--burn 120] [--seed 3] [--csv fig5.csv]

#include <iostream>
#include <sstream>
#include <vector>

#include "qnet/infer/estimators.h"
#include "qnet/infer/stem.h"
#include "qnet/obs/observation.h"
#include "qnet/support/flags.h"
#include "qnet/support/stopwatch.h"
#include "qnet/trace/csv.h"
#include "qnet/trace/table.h"
#include "qnet/webapp/movievote.h"

namespace {

std::vector<double> ParseFractions(const std::string& text) {
  std::vector<double> fractions;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    fractions.push_back(std::stod(token));
  }
  return fractions;
}

}  // namespace

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const std::vector<double> fractions =
      ParseFractions(flags.GetString("fractions", "0.01,0.02,0.05,0.1,0.2,0.3,0.5"));
  const auto iters = static_cast<std::size_t>(flags.GetInt("iters", 300));
  const auto burn = static_cast<std::size_t>(flags.GetInt("burn", 120));
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 3)));

  const qnet::webapp::MovieVoteConfig config;
  const qnet::webapp::MovieVoteTestbed testbed = qnet::webapp::MakeTestbed(config);
  const qnet::QueueingNetwork& net = testbed.network;
  const qnet::EventLog trace = qnet::webapp::GenerateTrace(testbed, config, rng);
  const auto counts = trace.PerQueueCount();
  const auto realized_service = trace.PerQueueMeanService();
  const auto realized_wait = trace.PerQueueMeanWait();

  std::cout << "== Figure 5: movie-voting web application (simulated testbed) ==\n"
            << trace.NumTasks() << " requests, "
            << trace.NumEvents() - static_cast<std::size_t>(trace.NumTasks())
            << " arrival events, 30-min linear ramp; starved web server saw "
            << counts[static_cast<std::size_t>(testbed.web_queues.front())] / 2
            << " requests\n\n";

  qnet::Stopwatch watch;
  std::vector<std::vector<double>> csv_rows;
  qnet::TablePrinter service_table({"% observed", "network", "database", "web (min..max)",
                                    "starved web"});
  qnet::TablePrinter wait_table({"% observed", "network", "database", "web (min..max)",
                                 "starved web"});
  for (double fraction : fractions) {
    qnet::Rng run_rng = rng.Fork();
    qnet::TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    const qnet::Observation obs = scheme.Apply(trace, run_rng);
    qnet::StemOptions options;
    options.iterations = iters;
    options.burn_in = burn;
    options.wait_sweeps = 30;
    const qnet::StemResult result = qnet::StemEstimator(options).Run(
        trace, obs, qnet::WarmStartRates(trace, obs), run_rng);

    const auto starved = static_cast<std::size_t>(testbed.web_queues.front());
    double web_min_svc = 1e9;
    double web_max_svc = -1e9;
    double web_min_wait = 1e9;
    double web_max_wait = -1e9;
    for (std::size_t i = 1; i < testbed.web_queues.size(); ++i) {
      const auto q = static_cast<std::size_t>(testbed.web_queues[i]);
      web_min_svc = std::min(web_min_svc, result.mean_service[q]);
      web_max_svc = std::max(web_max_svc, result.mean_service[q]);
      web_min_wait = std::min(web_min_wait, result.mean_wait[q]);
      web_max_wait = std::max(web_max_wait, result.mean_wait[q]);
    }
    const auto net_q = static_cast<std::size_t>(testbed.network_queue);
    const auto db_q = static_cast<std::size_t>(testbed.db_queue);
    service_table.AddRow(
        {qnet::FormatDouble(fraction, 2), qnet::FormatDouble(result.mean_service[net_q], 3),
         qnet::FormatDouble(result.mean_service[db_q], 3),
         qnet::FormatDouble(web_min_svc, 3) + ".." + qnet::FormatDouble(web_max_svc, 3),
         qnet::FormatDouble(result.mean_service[starved], 3)});
    wait_table.AddRow(
        {qnet::FormatDouble(fraction, 2), qnet::FormatDouble(result.mean_wait[net_q], 3),
         qnet::FormatDouble(result.mean_wait[db_q], 3),
         qnet::FormatDouble(web_min_wait, 3) + ".." + qnet::FormatDouble(web_max_wait, 3),
         qnet::FormatDouble(result.mean_wait[starved], 3)});
    for (int q = 1; q < net.NumQueues(); ++q) {
      const auto qi = static_cast<std::size_t>(q);
      csv_rows.push_back({fraction, static_cast<double>(q), result.mean_service[qi],
                          result.mean_wait[qi], realized_service[qi], realized_wait[qi]});
    }
  }

  std::cout << "-- left panel: estimated mean service time --\n";
  service_table.Print(std::cout);
  const auto net_q = static_cast<std::size_t>(testbed.network_queue);
  const auto db_q = static_cast<std::size_t>(testbed.db_queue);
  std::cout << "ground truth: network " << qnet::FormatDouble(realized_service[net_q], 3)
            << ", database " << qnet::FormatDouble(realized_service[db_q], 3)
            << ", web mean "
            << qnet::FormatDouble(
                   realized_service[static_cast<std::size_t>(testbed.web_queues[1])], 3)
            << "\n\n-- right panel: estimated mean waiting time --\n";
  wait_table.Print(std::cout);
  std::cout << "ground truth: network " << qnet::FormatDouble(realized_wait[net_q], 3)
            << ", database " << qnet::FormatDouble(realized_wait[db_q], 3) << "\n";

  std::cout << "\npaper reference: estimates essentially unchanged from 50% down to ~10%,"
            << "\nunstable below; the starved server is the visible outlier at every"
            << " fraction\nelapsed: " << qnet::FormatDouble(watch.ElapsedSeconds(), 1)
            << " s\n";
  if (flags.Has("csv")) {
    qnet::WriteSeriesFile(flags.GetString("csv", "fig5.csv"),
                          {"fraction", "queue", "est_service", "est_wait", "true_service",
                           "true_wait"},
                          csv_rows);
  }
  return 0;
}
