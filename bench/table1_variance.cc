// "Table 1" — the paper's in-text Section 5.1 estimator comparison:
//
//   "As a baseline, we use the sample mean of the service time for the tasks that are
//    observed. This comparison is unfair to StEM, because the baseline uses the true
//    service times from the observed tasks, information that is not available to StEM.
//    Comparing these estimators, although the mean error is almost identical, StEM has only
//    two-thirds of the variance (StEM variance: 9.09e-4, Mean-observed-service variance:
//    1.37e-3)."
//
// This harness repeats the synthetic experiment many times at a fixed observation fraction
// and reports mean absolute error and across-run variance for both estimators.
//
// Usage: table1_variance [--tasks 1000] [--reps 20] [--fraction 0.05] [--iters 300]
//                        [--burn 150] [--seed 2]

#include <cmath>
#include <iostream>

#include "qnet/infer/estimators.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/support/math.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));
  const int reps = static_cast<int>(flags.GetInt("reps", 20));
  const double fraction = flags.GetDouble("fraction", 0.05);
  const auto iters = static_cast<std::size_t>(flags.GetInt("iters", 300));
  const auto burn = static_cast<std::size_t>(flags.GetInt("burn", 150));
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 2)));

  std::cout << "== Table 1 (in-text 5.1): StEM vs observed-mean baseline at "
            << 100.0 * fraction << "% observed ==\n\n";

  // Per-queue estimates pooled across runs and structures; we track per-queue deviations
  // from the parameter truth 1/mu = 0.2 and the across-run estimator variance.
  qnet::RunningStat stem_error;
  qnet::RunningStat baseline_error;
  std::vector<double> stem_estimates;
  std::vector<double> baseline_estimates;

  const auto structures = qnet::SyntheticStructures();
  for (int rep = 0; rep < reps; ++rep) {
    const auto& structure = structures[static_cast<std::size_t>(rep) % structures.size()];
    const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(structure);
    const auto num_queues = static_cast<std::size_t>(net.NumQueues());
    qnet::Rng run_rng = rng.Fork();
    const qnet::EventLog truth = qnet::SimulateWorkload(
        net, qnet::PoissonArrivals(structure.arrival_rate, tasks), run_rng);
    qnet::TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    const qnet::Observation obs = scheme.Apply(truth, run_rng);

    qnet::StemOptions options;
    options.iterations = iters;
    options.burn_in = burn;
    options.wait_sweeps = 0;
    const qnet::StemResult stem = qnet::StemEstimator(options).Run(truth, obs, {}, run_rng);
    const qnet::BaselineEstimate baseline =
        qnet::ObservedMeanService(truth, obs.observed_tasks);

    for (std::size_t q = 1; q < num_queues; ++q) {
      stem_estimates.push_back(stem.mean_service[q]);
      stem_error.Add(std::abs(stem.mean_service[q] - 0.2));
      if (!std::isnan(baseline.mean_service[q])) {
        baseline_estimates.push_back(baseline.mean_service[q]);
        baseline_error.Add(std::abs(baseline.mean_service[q] - 0.2));
      }
    }
  }

  qnet::TablePrinter table({"estimator", "mean abs error", "estimator variance", "samples"});
  table.AddRow({"StEM (incomplete data)", qnet::FormatDouble(stem_error.Mean(), 4),
                qnet::FormatDouble(qnet::Variance(stem_estimates), 6),
                std::to_string(stem_estimates.size())});
  table.AddRow({"Mean observed service (oracle)", qnet::FormatDouble(baseline_error.Mean(), 4),
                qnet::FormatDouble(qnet::Variance(baseline_estimates), 6),
                std::to_string(baseline_estimates.size())});
  table.Print(std::cout);
  std::cout << "\npaper reference: mean error almost identical; StEM variance 9.09e-4 vs"
            << " baseline 1.37e-3 (~2/3)\nvariance ratio here: "
            << qnet::FormatDouble(
                   qnet::Variance(stem_estimates) / qnet::Variance(baseline_estimates), 3)
            << "\n";
  return 0;
}
