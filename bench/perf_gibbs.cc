// Microbenchmarks: Gibbs sweep, single-move, parallel-chains and allocation-count
// throughput (google-benchmark).
//
// Workflow (tracked in CI as BENCH_gibbs.json; compare runs with benchmark's
// tools/compare.py):
//   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
//   ./build/perf_gibbs --benchmark_format=json > BENCH_gibbs.json
//   ./build/perf_gibbs --benchmark_filter='BM_GibbsSweep/500'   # the headline number
// Headline metrics:
//   BM_GibbsSweep/N items_per_second   — latent arrival moves per second (N tasks,
//                                        three-tier {1,2,4} fixture, 10% tasks observed;
//                                        batched SoA kernel — the default sweep path);
//   BM_GibbsSweepScalar/N              — same fixture on the scalar move-at-a-time kernel
//                                        (batched = false), the historical sweep path;
//   BM_GibbsSweepReference/N           — the batched schedule driven through the
//                                        move-at-a-time reference kernel
//                                        (batched_reference = true): identical buckets,
//                                        identical lane streams, bit-identical states.
//                                        CI gates the batched kernel's items_per_second
//                                        against both scalar rows on the in-run A/B
//                                        pairs (see .github/workflows/ci.yml);
//   BM_ParallelChains/T draws_per_sec  — pooled post-burn-in draws per wall second with
//                                        4 chains on T threads (scaling curve);
//   BM_ShardedSweep/T items_per_second — one chain's colored sharded sweep on T worker
//                                        threads (intra-chain scaling; bit-identical
//                                        results across T by construction);
//   BM_GibbsSweepAllocations allocs_per_sweep — global operator-new calls per sweep;
//                                        must stay exactly 0 (see tests/test_alloc_free.cc
//                                        for the hard assertion).

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary): lets the
// allocation benchmarks report exact counts alongside timings.
#include "../tests/support/counting_allocator.h"

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/infer/parallel_chains.h"
#include "qnet/infer/route_mh.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"

namespace {

using qnet_testing::AllocationCount;

struct Fixture {
  qnet::EventLog truth;
  qnet::Observation obs;
  std::vector<double> rates;
  qnet::EventLog init;
};

Fixture MakeFixture(std::size_t tasks, double fraction) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  qnet::Rng rng(12345);
  qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  qnet::Observation obs = scheme.Apply(truth, rng);
  std::vector<double> rates = net.ExponentialRates();
  qnet::EventLog init = qnet::InitializeFeasible(truth, obs, rates, rng);
  return Fixture{std::move(truth), std::move(obs), std::move(rates), std::move(init)};
}

void BM_GibbsSweep(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::Rng rng(7);
  for (auto _ : state) {
    sampler.Sweep(rng);
    benchmark::DoNotOptimize(sampler.State().Arrival(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sampler.NumLatentArrivals()));
  state.counters["latent_arrivals"] =
      static_cast<double>(sampler.NumLatentArrivals());
}
BENCHMARK(BM_GibbsSweep)->Arg(100)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

// Scalar kernel (batched = false): the historical move-at-a-time sequential sweep. Runs
// in the same process as BM_GibbsSweep so the pair is an in-run A/B, immune to the
// machine-level drift that makes cross-run absolute numbers unusable; CI gates the
// batched kernel's items_per_second against this row (see .github/workflows/ci.yml).
void BM_GibbsSweepScalar(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks, 0.1);
  qnet::GibbsOptions options;
  options.batched = false;
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates, options);
  qnet::Rng rng(7);
  for (auto _ : state) {
    sampler.Sweep(rng);
    benchmark::DoNotOptimize(sampler.State().Arrival(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sampler.NumLatentArrivals()));
  state.counters["latent_arrivals"] =
      static_cast<double>(sampler.NumLatentArrivals());
}
BENCHMARK(BM_GibbsSweepScalar)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

// The batched kernel's protocol-matched A/B partner: the SAME colored schedule and the
// SAME per-lane streams as BM_GibbsSweep, executed move-at-a-time through the reference
// kernel (batched_reference = true), so the two rows produce bit-identical states (the
// equality the tests in tests/test_move_batch.cc pin down) and their throughput ratio
// isolates exactly what batch-at-a-time execution buys: SoA finalize/sample vmath sweeps
// versus per-move scalar transcendentals over an identical gather/scatter stream.
void BM_GibbsSweepReference(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks, 0.1);
  qnet::GibbsOptions options;
  options.batched_reference = true;
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates, options);
  qnet::Rng rng(7);
  for (auto _ : state) {
    sampler.Sweep(rng);
    benchmark::DoNotOptimize(sampler.State().Arrival(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sampler.NumLatentArrivals()));
  state.counters["latent_arrivals"] =
      static_cast<double>(sampler.NumLatentArrivals());
}
BENCHMARK(BM_GibbsSweepReference)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_SingleArrivalMove(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::Rng rng(11);
  // Pick a representative mid-log latent event.
  qnet::EventId target = qnet::kNoEvent;
  for (qnet::EventId e = static_cast<qnet::EventId>(fixture.truth.NumEvents() / 2);
       static_cast<std::size_t>(e) < fixture.truth.NumEvents(); ++e) {
    if (!fixture.truth.At(e).initial) {
      target = e;
      break;
    }
  }
  qnet::EventLog log = fixture.init;
  for (auto _ : state) {
    const qnet::ArrivalMove move = qnet::GatherArrivalMove(log, target, fixture.rates);
    benchmark::DoNotOptimize(qnet::SampleArrival(move, rng));
  }
}
BENCHMARK(BM_SingleArrivalMove);

void BM_RouteMhSweep(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::Rng rng(15);
  // Route-resample every event of every task (worst case).
  std::vector<int> all_tasks;
  for (int k = 0; k < fixture.truth.NumTasks(); ++k) {
    all_tasks.push_back(k);
  }
  qnet::EventLog log = fixture.init;
  const std::vector<qnet::EventId> latents = qnet::RouteLatentEvents(log, all_tasks);
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  std::size_t accepted = 0;
  for (auto _ : state) {
    accepted +=
        qnet::RouteMhSweep(log, latents, net.GetFsm(), fixture.rates, rng).accepted;
  }
  benchmark::DoNotOptimize(accepted);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(latents.size()));
}
BENCHMARK(BM_RouteMhSweep)->Unit(benchmark::kMillisecond);

// Intra-chain scaling: one chain's sweep on the colored sharded scheduler with
// T = state.range(0) worker threads (4 logical shards, so results are bit-identical across
// the T values — only wall-clock changes). Compare against BM_GibbsSweep for the sharding
// overhead at T=1 and against the core count for parallel efficiency.
void BM_ShardedSweep(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::ShardedSweepOptions options;
  options.shards = 4;
  options.threads = threads;
  sampler.EnableShardedSweeps(options);
  qnet::Rng rng(7);
  for (auto _ : state) {
    sampler.Sweep(rng);
    benchmark::DoNotOptimize(sampler.State().Arrival(1));
  }
  // Items = latent arrivals, matching BM_GibbsSweep's definition so the T=1 overhead
  // comparison and the 8.1M moves/s baseline stay apples-to-apples (the sharded sweep
  // additionally executes the final-departure moves, reported via total_moves).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sampler.NumLatentArrivals()));
  state.counters["total_moves"] = static_cast<double>(sampler.Scheduler()->NumMoves());
  state.counters["threads"] = static_cast<double>(sampler.Scheduler()->NumThreads());
  state.counters["colors"] = static_cast<double>(sampler.Scheduler()->NumColors());
}
BENCHMARK(BM_ShardedSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// Allocation gate for the colored sweep path (threads = 1 keeps the counter exact: with
// workers the count is still 0 after warm-up — see tests/test_alloc_free.cc — but worker
// wake-ups could jitter the timing columns). Expected value: 0, enforced by CI alongside
// the sequential-sweep counter.
void BM_ShardedSweepAllocations(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::ShardedSweepOptions options;
  options.shards = 4;
  options.threads = 1;
  sampler.EnableShardedSweeps(options);
  qnet::Rng rng(7);
  sampler.Sweep(rng);  // warm-up outside the counted region
  const std::size_t before = AllocationCount();
  std::size_t sweeps = 0;
  for (auto _ : state) {
    sampler.Sweep(rng);
    ++sweeps;
  }
  const std::size_t after = AllocationCount();
  state.counters["allocs_per_sweep"] =
      sweeps > 0 ? static_cast<double>(after - before) / static_cast<double>(sweeps) : 0.0;
}
BENCHMARK(BM_ShardedSweepAllocations)->Unit(benchmark::kMillisecond);

// Allocation count per sweep on the fast path. The counter is exact (every operator new in
// the process), so the benchmark pauses timing around the measured region is unnecessary —
// we simply diff the counter across the iteration. Expected value: 0.
void BM_GibbsSweepAllocations(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::Rng rng(7);
  sampler.Sweep(rng);  // warm-up outside the counted region
  const std::size_t before = AllocationCount();
  std::size_t sweeps = 0;
  for (auto _ : state) {
    sampler.Sweep(rng);
    ++sweeps;
  }
  const std::size_t after = AllocationCount();
  state.counters["allocs_per_sweep"] =
      sweeps > 0 ? static_cast<double>(after - before) / static_cast<double>(sweeps) : 0.0;
}
BENCHMARK(BM_GibbsSweepAllocations)->Unit(benchmark::kMillisecond);

void BM_SingleArrivalMoveAllocations(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::Rng rng(11);
  qnet::EventId target = qnet::kNoEvent;
  for (qnet::EventId e = static_cast<qnet::EventId>(fixture.truth.NumEvents() / 2);
       static_cast<std::size_t>(e) < fixture.truth.NumEvents(); ++e) {
    if (!fixture.truth.At(e).initial) {
      target = e;
      break;
    }
  }
  qnet::EventLog log = fixture.init;
  const std::size_t before = AllocationCount();
  std::size_t moves = 0;
  for (auto _ : state) {
    const qnet::ArrivalMove move = qnet::GatherArrivalMove(log, target, fixture.rates);
    benchmark::DoNotOptimize(qnet::SampleArrival(move, rng));
    ++moves;
  }
  const std::size_t after = AllocationCount();
  state.counters["allocs_per_move"] =
      moves > 0 ? static_cast<double>(after - before) / static_cast<double>(moves) : 0.0;
}
BENCHMARK(BM_SingleArrivalMoveAllocations);

// Multi-chain scaling: 4 chains of the three-tier fixture on T = state.range(0) threads.
// draws_per_sec is the pooled post-burn-in draw throughput; on a multi-core host it should
// scale near-linearly in T up to the core count (chains are embarrassingly parallel and
// share no mutable state).
void BM_ParallelChains(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(200, 0.1);
  qnet::ParallelChainsOptions options;
  options.chains = 4;
  options.threads = threads;
  options.sweeps = 40;
  options.burn_in = 10;
  std::uint64_t seed = 1;
  std::size_t draws = 0;
  for (auto _ : state) {
    const qnet::ParallelChainsResult result = qnet::RunParallelChains(
        fixture.truth, fixture.obs, fixture.rates, seed++, options);
    draws += result.total_draws;
    benchmark::DoNotOptimize(result.pooled.NumSamples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(draws));
  state.counters["draws_per_sec"] = benchmark::Counter(
      static_cast<double>(draws), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelChains)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_Initializer(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks, 0.1);
  qnet::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qnet::InitializeFeasible(fixture.truth, fixture.obs, fixture.rates, rng));
  }
}
BENCHMARK(BM_Initializer)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
