// Microbenchmarks: Gibbs sweep and StEM iteration throughput (google-benchmark).

#include <benchmark/benchmark.h>

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/infer/route_mh.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"

namespace {

struct Fixture {
  qnet::EventLog truth;
  qnet::Observation obs;
  std::vector<double> rates;
  qnet::EventLog init;
};

Fixture MakeFixture(std::size_t tasks, double fraction) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  qnet::Rng rng(12345);
  qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  qnet::Observation obs = scheme.Apply(truth, rng);
  std::vector<double> rates = net.ExponentialRates();
  qnet::EventLog init = qnet::InitializeFeasible(truth, obs, rates, rng);
  return Fixture{std::move(truth), std::move(obs), std::move(rates), std::move(init)};
}

void BM_GibbsSweep(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::Rng rng(7);
  for (auto _ : state) {
    sampler.Sweep(rng);
    benchmark::DoNotOptimize(sampler.State().Arrival(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sampler.NumLatentArrivals()));
  state.counters["latent_arrivals"] =
      static_cast<double>(sampler.NumLatentArrivals());
}
BENCHMARK(BM_GibbsSweep)->Arg(100)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_SingleArrivalMove(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::Rng rng(11);
  // Pick a representative mid-log latent event.
  qnet::EventId target = qnet::kNoEvent;
  for (qnet::EventId e = static_cast<qnet::EventId>(fixture.truth.NumEvents() / 2);
       static_cast<std::size_t>(e) < fixture.truth.NumEvents(); ++e) {
    if (!fixture.truth.At(e).initial) {
      target = e;
      break;
    }
  }
  qnet::EventLog log = fixture.init;
  for (auto _ : state) {
    const qnet::ArrivalMove move = qnet::GatherArrivalMove(log, target, fixture.rates);
    benchmark::DoNotOptimize(qnet::SampleArrival(move, rng));
  }
}
BENCHMARK(BM_SingleArrivalMove);

void BM_RouteMhSweep(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::Rng rng(15);
  // Route-resample every event of every task (worst case).
  std::vector<int> all_tasks;
  for (int k = 0; k < fixture.truth.NumTasks(); ++k) {
    all_tasks.push_back(k);
  }
  qnet::EventLog log = fixture.init;
  const std::vector<qnet::EventId> latents = qnet::RouteLatentEvents(log, all_tasks);
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  std::size_t accepted = 0;
  for (auto _ : state) {
    accepted +=
        qnet::RouteMhSweep(log, latents, net.GetFsm(), fixture.rates, rng).accepted;
  }
  benchmark::DoNotOptimize(accepted);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(latents.size()));
}
BENCHMARK(BM_RouteMhSweep)->Unit(benchmark::kMillisecond);

void BM_Initializer(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks, 0.1);
  qnet::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qnet::InitializeFeasible(fixture.truth, fixture.obs, fixture.rates, rng));
  }
}
BENCHMARK(BM_Initializer)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
