// Ablation: Gibbs move set and exit-time observability (DESIGN.md decisions 2 and 4).
//
// (a) Dropping the final-departure move (the paper's Figure 3 covers only arrival moves)
//     freezes every task's exit time at its initialized value — quantify the service-time
//     bias this induces at the route-final queues.
// (b) Observing arrivals only (no exits even for sampled tasks): the service rate of the
//     final queue becomes unidentifiable; StEM then returns whatever the initial rate
//     implied. This motivates the library's default of recording exit times.
//
// Usage: ablation_moves [--tasks 600] [--fraction 0.25] [--seed 6]

#include <cmath>
#include <iostream>

#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 600));
  const double fraction = flags.GetDouble("fraction", 0.25);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 6)));

  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0});
  const qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(2.0, tasks), rng);
  const auto realized = truth.PerQueueMeanService();

  std::cout << "== Ablation: move set and exit observability ==\n"
            << "tandem {mu=5, mu=4}, " << tasks << " tasks, " << 100 * fraction
            << "% of tasks traced; true mean services: "
            << qnet::FormatDouble(realized[1]) << ", " << qnet::FormatDouble(realized[2])
            << "\n\n";

  struct Config {
    std::string name;
    bool observe_exits;
    bool final_departure_moves;
  };
  const std::vector<Config> configs = {
      {"full (exits observed + both moves)", true, true},
      {"no final-departure move", true, false},
      {"arrivals only (no exits observed)", false, true},
  };

  qnet::TablePrinter table({"configuration", "est svc q1", "est svc q2",
                            "abs err q1", "abs err q2"});
  for (const Config& config : configs) {
    qnet::Rng run_rng(91);
    qnet::TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    scheme.observe_final_departure = config.observe_exits;
    const qnet::Observation obs = scheme.Apply(truth, run_rng);
    qnet::StemOptions options;
    options.iterations = 200;
    options.burn_in = 80;
    options.wait_sweeps = 0;
    options.gibbs.resample_final_departures = config.final_departure_moves;
    const qnet::StemResult result = qnet::StemEstimator(options).Run(
        truth, obs, {1.0, 1.0, 1.0}, run_rng);
    table.AddRow({config.name, qnet::FormatDouble(result.mean_service[1]),
                  qnet::FormatDouble(result.mean_service[2]),
                  qnet::FormatDouble(std::abs(result.mean_service[1] - realized[1])),
                  qnet::FormatDouble(std::abs(result.mean_service[2] - realized[2]))});
  }
  table.Print(std::cout);
  std::cout << "\ntakeaway: queue 1 (whose departures are queue 2's arrivals) is identified"
            << " in every\nconfiguration; queue 2 — the route-final queue — needs exit"
            << " times and the\nfinal-departure move to be estimated without bias.\n";
  return 0;
}
