// In-text Section 5.2 scaling claim:
//   "the sampler scales primarily in the number of unobserved arrival events, not in the
//    number of servers."
//
// Two sweeps: (a) fixed event count, growing server count — sweep time should stay flat;
// (b) fixed server count, growing event count — sweep time should grow ~linearly.

#include <benchmark/benchmark.h>

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"

namespace {

qnet::GibbsSampler MakeSampler(int servers_per_tier, std::size_t tasks, qnet::Rng& rng) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {servers_per_tier, servers_per_tier, servers_per_tier};
  // Scale service rate so per-server load is constant as servers grow.
  config.arrival_rate = 10.0;
  config.service_rate = 5.0 * 2.0 / servers_per_tier;
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  const qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = 0.1;
  const qnet::Observation obs = scheme.Apply(truth, rng);
  const auto rates = net.ExponentialRates();
  return qnet::GibbsSampler(qnet::InitializeFeasible(truth, obs, rates, rng), obs, rates);
}

// (a) Fixed ~6000 latent events; server count grows 3 -> 48.
void BM_SweepVsServers(benchmark::State& state) {
  qnet::Rng rng(17);
  qnet::GibbsSampler sampler =
      MakeSampler(static_cast<int>(state.range(0)), 2000, rng);
  for (auto _ : state) {
    sampler.Sweep(rng);
  }
  state.counters["servers"] = static_cast<double>(3 * state.range(0));
  state.counters["latent"] = static_cast<double>(sampler.NumLatentArrivals());
}
BENCHMARK(BM_SweepVsServers)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// (b) Fixed 3 servers; task count grows.
void BM_SweepVsEvents(benchmark::State& state) {
  qnet::Rng rng(19);
  qnet::GibbsSampler sampler =
      MakeSampler(1, static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    sampler.Sweep(rng);
  }
  state.counters["latent"] = static_cast<double>(sampler.NumLatentArrivals());
}
BENCHMARK(BM_SweepVsEvents)->Arg(250)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace
