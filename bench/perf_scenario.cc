// Scenario-engine benchmarks: grid throughput (cells/s) across thread counts and the
// per-cell allocation footprint (google-benchmark).
//
// Workflow (tracked in CI as BENCH_scenario.json):
//   ./build/perf_scenario --benchmark_format=json > BENCH_scenario.json
// Headline metrics:
//   BM_ScenarioCells/T items_per_second   — cells/s through the full posterior-predictive
//                                           evaluation (realize -> DES -> reduce) at T
//                                           worker threads;
//   BM_ScenarioCells/T cells_per_ms_per_thread — the CI-gated floor: must stay > 48 on
//                                           the bench fixture at every thread count (3x
//                                           the ~16 cells/ms the clone-based engine
//                                           managed; the 1-core CI box cannot show
//                                           T-scaling, so the gate divides by T);
//   BM_ScenarioAllocations allocs_per_cell — operator-new calls per evaluated cell on
//                                           warm workspaces. CI-gated < 32 (from ~970
//                                           pre-overlay): the overlay/arena engine only
//                                           allocates the report's own result vectors.

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include "qnet/model/builders.h"
#include "qnet/scenario/parameter_posterior.h"
#include "qnet/scenario/scenario_engine.h"
#include "qnet/scenario/scenario_spec.h"

namespace {

using qnet_testing::AllocationCount;

// 64-cell what-if lattice over a 2-queue tandem: 8 load multipliers x 8 service scales,
// 2 posterior draws x 64 tasks per cell — a realistic interactive-planning workload.
qnet::ScenarioGrid MakeGrid() {
  qnet::ScenarioAxis load;
  load.kind = qnet::AxisKind::kArrivalScale;
  load.name = "load";
  load.values = {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
  qnet::ScenarioAxis svc;
  svc.kind = qnet::AxisKind::kServiceScale;
  svc.name = "svc";
  svc.queue = 2;
  svc.values = {0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5};
  return qnet::ScenarioGrid({load, svc});
}

qnet::ScenarioEngineOptions EngineOptions(std::size_t threads) {
  qnet::ScenarioEngineOptions options;
  options.max_draws = 2;
  options.tasks_per_draw = 64;
  options.threads = threads;
  return options;
}

qnet::ParameterPosterior MakePosterior() {
  qnet::StemResult stem;
  stem.rate_trace = {{1.5, 6.0, 4.0}, {1.45, 6.2, 4.1}, {1.55, 5.9, 3.95}};
  return qnet::ParameterPosterior::FromStem(stem, 0);
}

void BM_ScenarioCells(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const qnet::QueueingNetwork base = qnet::MakeTandemNetwork(1.5, {6.0, 4.0});
  const qnet::ScenarioGrid grid = MakeGrid();
  const qnet::ParameterPosterior posterior = MakePosterior();
  qnet::ScenarioEngine engine(EngineOptions(threads));
  std::size_t cells = 0;
  for (auto _ : state) {
    const qnet::ScenarioReport report = engine.Evaluate(base, posterior, grid, 42);
    benchmark::DoNotOptimize(report.cells.data());
    cells += report.cells.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["cells_per_ms_per_thread"] = benchmark::Counter(
      static_cast<double>(cells) / (1000.0 * static_cast<double>(threads)),
      benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ScenarioCells)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_ScenarioAllocations(benchmark::State& state) {
  const qnet::QueueingNetwork base = qnet::MakeTandemNetwork(1.5, {6.0, 4.0});
  const qnet::ScenarioGrid grid = MakeGrid();
  const qnet::ParameterPosterior posterior = MakePosterior();
  qnet::ScenarioEngine engine(EngineOptions(1));
  // Warm-up pass outside the counted region.
  benchmark::DoNotOptimize(engine.Evaluate(base, posterior, grid, 42).cells.size());
  std::size_t cells = 0;
  const std::size_t before = AllocationCount();
  for (auto _ : state) {
    const qnet::ScenarioReport report = engine.Evaluate(base, posterior, grid, 42);
    benchmark::DoNotOptimize(report.cells.data());
    cells += report.cells.size();
  }
  const std::size_t after = AllocationCount();
  state.counters["allocs_per_cell"] =
      cells > 0 ? static_cast<double>(after - before) / static_cast<double>(cells) : 0.0;
}
BENCHMARK(BM_ScenarioAllocations)->Unit(benchmark::kMillisecond);

}  // namespace
