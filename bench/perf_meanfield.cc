// Mean-field fast-path benchmarks (google-benchmark).
//
// Workflow (tracked in CI as BENCH_meanfield.json):
//   ./build/perf_meanfield --benchmark_format=json > BENCH_meanfield.json
// Headline metrics and gates:
//   BM_MeanFieldFit items_per_second     — tasks/s through the O(events) variational fit
//                                          on a 500-task window; allocs_per_fit MUST be
//                                          exactly 0 (CI gates it), and items_per_second
//                                          must be >= 50x BM_WindowedStemFit's (the
//                                          sampler-free speedup the degraded mode and
//                                          warm starts are built on).
//   BM_WindowedStemFit items_per_second  — the same window through a bench-sized StEM
//                                          run (the denominator of the 50x gate).
//   BM_WarmStartedStemWindow/{0,1}       — end-to-end streaming A/B: replay -> assembler
//                                          -> per-window StEM, cold-started full-length
//                                          (Arg 0) vs mean-field warm starts + early
//                                          stop (Arg 1). CI gates Arg 1 >= 1.5x Arg 0
//                                          items_per_second within the same run;
//                                          fit_iterations_total witnesses the savings.

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include "qnet/infer/meanfield.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/support/rng.h"

namespace {

using qnet_testing::AllocationCount;

constexpr std::size_t kWindowTasks = 500;

struct Fixture {
  qnet::EventLog truth;
  qnet::Observation obs;
};

// One 500-task window of the tandem fixture used across the streaming tests.
Fixture MakeWindowFixture() {
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(4.0, {8.0, 9.0});
  qnet::Rng rng(12345);
  qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(4.0, kWindowTasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  qnet::Observation obs = scheme.Apply(truth, rng);
  return Fixture{std::move(truth), std::move(obs)};
}

// The sampler-free fit: one pass, zero allocations once the scratch is warm.
void BM_MeanFieldFit(benchmark::State& state) {
  const Fixture fixture = MakeWindowFixture();
  qnet::MeanFieldEstimator estimator;
  qnet::MeanFieldFit fit;
  estimator.Fit(fixture.truth, fixture.obs, 0.0, fit);  // warm-up sizes the vectors

  std::size_t fits = 0;
  const std::size_t before = AllocationCount();
  for (auto _ : state) {
    estimator.Fit(fixture.truth, fixture.obs, 0.0, fit);
    benchmark::DoNotOptimize(fit.rates.data());
    ++fits;
  }
  const std::size_t allocations = AllocationCount() - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindowTasks));
  state.counters["allocs_per_fit"] =
      static_cast<double>(allocations) / static_cast<double>(fits);
  state.counters["observed_responses"] = static_cast<double>(fit.observed_responses);
}
BENCHMARK(BM_MeanFieldFit)->Unit(benchmark::kMicrosecond);

// The sampler it replaces on the same window: bench-sized StEM (the BM_StreamEstimate
// per-window configuration). Denominator of the 50x CI gate.
void BM_WindowedStemFit(benchmark::State& state) {
  const Fixture fixture = MakeWindowFixture();
  qnet::StemOptions options;
  options.iterations = 12;
  options.burn_in = 4;
  options.wait_sweeps = 0;
  const qnet::StemEstimator estimator(options);
  const std::vector<double> init(
      static_cast<std::size_t>(fixture.truth.NumQueues()), 1.0);
  for (auto _ : state) {
    qnet::Rng rng(17);
    const qnet::StemResult result =
        estimator.Run(fixture.truth, fixture.obs, init, rng);
    benchmark::DoNotOptimize(result.rates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindowTasks));
}
BENCHMARK(BM_WindowedStemFit)->Unit(benchmark::kMillisecond);

// End-to-end A/B: the warm-start + early-stop fast path against the cold-started
// full-length baseline on the identical 2000-task replay. Arg 0 = off, Arg 1 = warm.
void BM_WarmStartedStemWindow(benchmark::State& state) {
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(4.0, {8.0, 9.0});
  qnet::Rng rng(777);
  const qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(4.0, 2000), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  const qnet::Observation obs = scheme.Apply(truth, rng);

  qnet::StreamingEstimatorOptions options;
  options.window.window_duration = 12.5;  // ~50 tasks per window at rate 4
  options.window.min_tasks_per_window = 8;
  options.stem.iterations = 20;
  options.stem.burn_in = 4;
  options.stem.wait_sweeps = 0;
  if (state.range(0) != 0) {
    options.fast_path = qnet::FastPathMode::kWarmStart;
    options.stem.convergence_tol = 0.05;
    options.stem.convergence_patience = 2;
  }
  const std::vector<double> init(static_cast<std::size_t>(truth.NumQueues()), 1.0);

  std::size_t windows = 0;
  std::size_t fit_iterations = 0;
  for (auto _ : state) {
    qnet::LogReplayStream stream(truth, obs);
    qnet::StreamingEstimator estimator(init, 17, options);
    const auto estimates = estimator.Run(stream);
    benchmark::DoNotOptimize(estimates.size());
    windows = estimates.size();
    fit_iterations = estimator.Stats().fit_iterations_total;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
  state.counters["warm"] = static_cast<double>(state.range(0));
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["fit_iterations_total"] = static_cast<double>(fit_iterations);
}
BENCHMARK(BM_WarmStartedStemWindow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
