// Telemetry overhead microbenchmarks (google-benchmark).
//
// Workflow (tracked in CI as BENCH_telemetry.json):
//   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
//   ./build/perf_telemetry --benchmark_format=json > BENCH_telemetry.json
//
// The observability contract this file gates: instrumentation must be free where it is
// off and near-free where it is on.
//   BM_InstrumentedSweep/L items_per_second — the SAME Gibbs sweep fixture as
//       perf_gibbs's headline BM_GibbsSweep/500, run at Timeline level L. L=0 is
//       telemetry-off (every span gate answers with one relaxed load); L=1 is the
//       default production level (no sweep-interior stages armed); L=2 adds per-color/
//       per-bucket spans; L=3 adds per-tile spans — the worst case. CI gates L=1
//       against L=0 in the SAME run (>= 0.95x, the <= 5% overhead acceptance bound);
//       the L=2/L=3 rows ride along for visibility and are deliberately ungated.
//   BM_InstrumentedSweepAllocations allocs_per_sweep — operator-new calls per sweep
//       with EVERY stage armed (level 3). Must stay exactly 0: metric updates are
//       relaxed atomics into pre-registered storage and spans land in fixed rings, so
//       instrumentation that allocates is a regression, not a cost model change
//       (tests/test_alloc_free.cc holds the hard assertion; this row keeps the number
//       visible in the perf trajectory).
//   BM_CounterIncrement / BM_HistogramRecord / BM_ScopedSpan/L — the primitive costs
//       (ns/op) behind every wired-in call site.

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace {

using qnet_testing::AllocationCount;

struct Fixture {
  qnet::EventLog truth;
  qnet::Observation obs;
  std::vector<double> rates;
  qnet::EventLog init;
};

// Mirrors perf_gibbs's fixture so the L=0 row is comparable to BM_GibbsSweep/500.
Fixture MakeFixture(std::size_t tasks, double fraction) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  qnet::Rng rng(12345);
  qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  qnet::Observation obs = scheme.Apply(truth, rng);
  std::vector<double> rates = net.ExponentialRates();
  qnet::EventLog init = qnet::InitializeFeasible(truth, obs, rates, rng);
  return Fixture{std::move(truth), std::move(obs), std::move(rates), std::move(init)};
}

void BM_InstrumentedSweep(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::Rng rng(7);
  qnet::Timeline::SetLevel(static_cast<int>(state.range(0)));
  sampler.Sweep(rng);  // warm-up: batch schedule, thread ring, stage histograms
  for (auto _ : state) {
    sampler.Sweep(rng);
    benchmark::DoNotOptimize(sampler.State().Arrival(1));
  }
  qnet::Timeline::SetLevel(1);
  qnet::Timeline::ClearSpans();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sampler.NumLatentArrivals()));
  state.counters["trace_level"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_InstrumentedSweep)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_InstrumentedSweepAllocations(benchmark::State& state) {
  const Fixture fixture = MakeFixture(500, 0.1);
  qnet::GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  qnet::Rng rng(7);
  qnet::Timeline::SetLevel(3);  // every stage armed — the worst case must still be 0
  sampler.Sweep(rng);  // warm-up
  std::size_t allocs = 0;
  for (auto _ : state) {
    const std::size_t before = AllocationCount();
    sampler.Sweep(rng);
    allocs += AllocationCount() - before;
  }
  qnet::Timeline::SetLevel(1);
  qnet::Timeline::ClearSpans();
  state.counters["allocs_per_sweep"] =
      benchmark::Counter(static_cast<double>(allocs) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_InstrumentedSweepAllocations)->Unit(benchmark::kMillisecond);

void BM_CounterIncrement(benchmark::State& state) {
  qnet::Counter* counter =
      qnet::MetricRegistry::Global().AddCounter("qnet_bench_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  qnet::Histogram* histogram =
      qnet::MetricRegistry::Global().AddHistogram("qnet_bench_latency_ns");
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram->Record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG: vary the bucket
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

// Arg 0: the stage's gate is closed (one relaxed load, no clock read) — the cost every
// disabled call site pays. Arg 1: armed — two clock reads plus a ring write.
void BM_ScopedSpan(benchmark::State& state) {
  qnet::Timeline::SetLevel(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    qnet::ScopedSpan span(qnet::SpanStage::kEmit);
    benchmark::DoNotOptimize(&span);
  }
  qnet::Timeline::SetLevel(1);
  qnet::Timeline::ClearSpans();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedSpan)->Arg(0)->Arg(1);

}  // namespace
