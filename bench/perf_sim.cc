// Microbenchmarks: discrete-event simulator and workload-generation throughput.
//
// Workflow (tracked in CI as BENCH_sim.json):
//   ./build/perf_sim --benchmark_format=json > BENCH_sim.json
// Headline metrics:
//   BM_SimulateThreeTier/N items_per_second — simulated visits/s through the batch
//                                             entry points (EventLog materialized);
//   BM_SimulateWarmArena/N  allocs_per_task — operator-new calls per simulated task on a
//                                             warm SimScratch. The CI-gated floor: must
//                                             stay exactly 0 (the arena contract).

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include "qnet/model/builders.h"
#include "qnet/sim/sim_scratch.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"
#include "qnet/webapp/movievote.h"

namespace {

using qnet_testing::AllocationCount;

void BM_SimulateThreeTier(benchmark::State& state) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  const auto tasks = static_cast<std::size_t>(state.range(0));
  qnet::Rng rng(21);
  for (auto _ : state) {
    const qnet::EventLog log =
        qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
    benchmark::DoNotOptimize(log.NumEvents());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks * 4));
}
BENCHMARK(BM_SimulateThreeTier)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SimulateWarmArena(benchmark::State& state) {
  // The allocation-free fast path: same tandem DES, but into a reused SimScratch with no
  // EventLog export. After the warm-up run every iteration is heap-silent, which the
  // allocs_per_task counter pins in CI.
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0});
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const qnet::PoissonArrivals workload(2.0, tasks);
  qnet::SimScratch scratch;
  qnet::Rng rng(37);
  qnet::SimulateWorkloadIntoScratch(net, workload, scratch, rng);  // warm-up
  std::size_t simulated = 0;
  const std::size_t before = AllocationCount();
  for (auto _ : state) {
    qnet::SimulateWorkloadIntoScratch(net, workload, scratch, rng);
    benchmark::DoNotOptimize(scratch.step_departure.data());
    simulated += tasks;
  }
  const std::size_t after = AllocationCount();
  state.SetItemsProcessed(static_cast<std::int64_t>(simulated));
  state.counters["allocs_per_task"] =
      simulated > 0 ? static_cast<double>(after - before) / static_cast<double>(simulated)
                    : 0.0;
}
BENCHMARK(BM_SimulateWarmArena)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SimulateMovieVote(benchmark::State& state) {
  const qnet::webapp::MovieVoteConfig config;
  const qnet::webapp::MovieVoteTestbed testbed = qnet::webapp::MakeTestbed(config);
  qnet::Rng rng(23);
  for (auto _ : state) {
    const qnet::EventLog log = qnet::webapp::GenerateTrace(testbed, config, rng);
    benchmark::DoNotOptimize(log.NumEvents());
  }
}
BENCHMARK(BM_SimulateMovieVote)->Unit(benchmark::kMillisecond);

void BM_NhppRampGeneration(benchmark::State& state) {
  const qnet::LinearRampArrivals workload(1.0, 5.4, 1800.0);
  qnet::Rng rng(29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Generate(rng).size());
  }
}
BENCHMARK(BM_NhppRampGeneration)->Unit(benchmark::kMillisecond);

void BM_FeasibilityCheck(benchmark::State& state) {
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0});
  qnet::Rng rng(31);
  const qnet::EventLog log =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(2.0, 5000), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.IsFeasible());
  }
}
BENCHMARK(BM_FeasibilityCheck)->Unit(benchmark::kMillisecond);

}  // namespace
