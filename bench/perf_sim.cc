// Microbenchmarks: discrete-event simulator and workload-generation throughput.

#include <benchmark/benchmark.h>

#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"
#include "qnet/webapp/movievote.h"

namespace {

void BM_SimulateThreeTier(benchmark::State& state) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  const auto tasks = static_cast<std::size_t>(state.range(0));
  qnet::Rng rng(21);
  for (auto _ : state) {
    const qnet::EventLog log =
        qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
    benchmark::DoNotOptimize(log.NumEvents());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks * 4));
}
BENCHMARK(BM_SimulateThreeTier)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SimulateMovieVote(benchmark::State& state) {
  const qnet::webapp::MovieVoteConfig config;
  const qnet::webapp::MovieVoteTestbed testbed = qnet::webapp::MakeTestbed(config);
  qnet::Rng rng(23);
  for (auto _ : state) {
    const qnet::EventLog log = qnet::webapp::GenerateTrace(testbed, config, rng);
    benchmark::DoNotOptimize(log.NumEvents());
  }
}
BENCHMARK(BM_SimulateMovieVote)->Unit(benchmark::kMillisecond);

void BM_NhppRampGeneration(benchmark::State& state) {
  const qnet::LinearRampArrivals workload(1.0, 5.4, 1800.0);
  qnet::Rng rng(29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Generate(rng).size());
  }
}
BENCHMARK(BM_NhppRampGeneration)->Unit(benchmark::kMillisecond);

void BM_FeasibilityCheck(benchmark::State& state) {
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0});
  qnet::Rng rng(31);
  const qnet::EventLog log =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(2.0, 5000), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.IsFeasible());
  }
}
BENCHMARK(BM_FeasibilityCheck)->Unit(benchmark::kMillisecond);

}  // namespace
