// Streaming-engine benchmarks: sustained ingest throughput and bounded-memory /
// steady-state allocation contracts (google-benchmark).
//
// Workflow (tracked in CI as BENCH_stream.json):
//   ./build/perf_stream --benchmark_format=json > BENCH_stream.json
// Headline metrics:
//   BM_StreamAssemble/N items_per_second — tasks/s through replay -> WindowAssembler ->
//                                          per-window EventLog+Observation build (no StEM);
//   BM_StreamEstimate/P items_per_second — end-to-end tasks/s including the per-window
//                                          warm-started StEM runs (P=1 pipelines window
//                                          N's sweeps with window N+1's ingestion);
//   BM_StreamBoundedMemory/N peak_buffered_tasks — assembler high-water mark on a
//                                          uniformly spaced synthetic stream; MUST be
//                                          identical across N (CI gates equality: memory
//                                          is bounded by the window, not the trace);
//   BM_StreamSteadyStateAllocations allocs_per_task — global operator-new calls per
//                                          ingested task in steady state; CI gates an
//                                          upper bound (per-window log building is
//                                          allowed to allocate, but the cost per task
//                                          must stay small and constant).

#include <benchmark/benchmark.h>

// Counting allocator (defines global operator new/delete; one TU per binary).
#include "../tests/support/counting_allocator.h"

#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/live_stream.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/rng.h"

namespace {

using qnet_testing::AllocationCount;

struct Fixture {
  qnet::EventLog truth;
  qnet::Observation obs;
};

Fixture MakeFixture(std::size_t tasks) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  qnet::Rng rng(12345);
  qnet::EventLog truth = qnet::SimulateWorkload(net, qnet::PoissonArrivals(10.0, tasks), rng);
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  qnet::Observation obs = scheme.Apply(truth, rng);
  return Fixture{std::move(truth), std::move(obs)};
}

qnet::WindowAssemblerOptions AssemblerOptions() {
  qnet::WindowAssemblerOptions options;
  options.window_duration = 5.0;  // ~50 tasks per window at rate 10
  options.min_tasks_per_window = 8;
  return options;
}

// Replay -> assembler -> per-window log build, windows discarded (isolates ingest cost).
void BM_StreamAssemble(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const Fixture fixture = MakeFixture(tasks);
  std::size_t windows = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::WindowAssembler assembler(stream.NumQueues(), AssemblerOptions());
    qnet::TaskRecord record;
    while (stream.Next(record)) {
      assembler.Push(record);
      while (assembler.HasClosed()) {
        const qnet::ClosedWindow window = assembler.PopClosed();
        benchmark::DoNotOptimize(window.log.NumEvents());
        ++windows;
      }
    }
    assembler.FinishStream();
    while (assembler.HasClosed()) {
      assembler.PopClosed();
      ++windows;
    }
    peak = assembler.Stats().peak_buffered_tasks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
  state.counters["windows_per_pass"] =
      static_cast<double>(windows) / static_cast<double>(state.iterations());
  state.counters["peak_buffered_tasks"] = static_cast<double>(peak);
}
BENCHMARK(BM_StreamAssemble)->Arg(2000)->Arg(16000)->Unit(benchmark::kMillisecond);

// End-to-end: replay -> assembler -> warm-started windowed StEM. range(0) toggles
// pipelining (results are bit-identical either way; only wall-clock changes).
void BM_StreamEstimate(benchmark::State& state) {
  const Fixture fixture = MakeFixture(2000);
  qnet::StreamingEstimatorOptions options;
  options.window = AssemblerOptions();
  options.stem.iterations = 12;
  options.stem.burn_in = 4;
  options.stem.wait_sweeps = 0;
  options.pipeline = state.range(0) != 0;
  const std::vector<double> init(
      static_cast<std::size_t>(fixture.truth.NumQueues()), 1.0);
  double tasks_per_second = 0.0;
  double max_lag = 0.0;
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::StreamingEstimator estimator(init, 17, options);
    const auto estimates = estimator.Run(stream);
    benchmark::DoNotOptimize(estimates.size());
    tasks_per_second = estimator.Stats().tasks_per_second;
    max_lag = estimator.Stats().max_sweep_lag_seconds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
  state.counters["tasks_per_sec_last_pass"] = tasks_per_second;
  state.counters["max_sweep_lag_ms"] = max_lag * 1e3;
  state.counters["pipeline"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_StreamEstimate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// Live incremental simulation feeding the assembler: the sim-layer backend's throughput.
void BM_StreamLiveSim(benchmark::State& state) {
  qnet::ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const qnet::QueueingNetwork net = qnet::MakeThreeTierNetwork(config);
  qnet::LiveSimOptions options;
  options.max_tasks = 2000;
  options.arrival_rate = 10.0;
  options.observed_fraction = 0.25;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    qnet::LiveSimStream stream(net, options, seed++);
    qnet::WindowAssembler assembler(stream.NumQueues(), AssemblerOptions());
    qnet::TaskRecord record;
    while (stream.Next(record)) {
      assembler.Push(record);
      while (assembler.HasClosed()) {
        benchmark::DoNotOptimize(assembler.PopClosed().log.NumEvents());
      }
    }
    assembler.FinishStream();
    while (assembler.HasClosed()) {
      assembler.PopClosed();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.max_tasks));
}
BENCHMARK(BM_StreamLiveSim)->Unit(benchmark::kMillisecond);

// Bounded-memory witness: uniformly spaced entries, one task per second, 5 s windows.
// peak_buffered_tasks must be IDENTICAL for every N — the assembler retains one open
// window plus the last closed window (trailing-merge copy), never the trace. CI gates
// the equality across the two Args.
void BM_StreamBoundedMemory(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  qnet::TaskRecord record;
  qnet::TaskVisit visit;
  visit.state = 0;
  visit.queue = 1;
  record.visits.push_back(visit);
  std::size_t peak = 0;
  for (auto _ : state) {
    qnet::WindowAssembler assembler(2, AssemblerOptions());
    for (std::size_t k = 0; k < tasks; ++k) {
      const double entry = 0.5 + static_cast<double>(k);
      record.entry_time = entry;
      record.visits[0].arrival = entry;
      record.visits[0].departure = entry + 0.01;
      assembler.Push(record);
      while (assembler.HasClosed()) {
        benchmark::DoNotOptimize(assembler.PopClosed().num_tasks);
      }
    }
    assembler.FinishStream();
    while (assembler.HasClosed()) {
      assembler.PopClosed();
    }
    peak = assembler.Stats().peak_buffered_tasks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
  state.counters["peak_buffered_tasks"] = static_cast<double>(peak);
}
BENCHMARK(BM_StreamBoundedMemory)->Arg(4000)->Arg(32000)->Unit(benchmark::kMillisecond);

// Steady-state allocation counter: operator-new calls per ingested task once the replay
// loop is warm (TaskRecord reuse means the per-task cost is the per-window log build
// amortized over its tasks). Gated in CI.
void BM_StreamSteadyStateAllocations(benchmark::State& state) {
  const Fixture fixture = MakeFixture(4000);
  // Warm-up pass outside the counted region.
  {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::WindowAssembler assembler(stream.NumQueues(), AssemblerOptions());
    qnet::TaskRecord record;
    while (stream.Next(record)) {
      assembler.Push(record);
      while (assembler.HasClosed()) {
        assembler.PopClosed();
      }
    }
  }
  std::size_t tasks = 0;
  const std::size_t before = AllocationCount();
  for (auto _ : state) {
    qnet::LogReplayStream stream(fixture.truth, fixture.obs);
    qnet::WindowAssembler assembler(stream.NumQueues(), AssemblerOptions());
    qnet::TaskRecord record;
    while (stream.Next(record)) {
      assembler.Push(record);
      ++tasks;
      while (assembler.HasClosed()) {
        assembler.PopClosed();
      }
    }
    assembler.FinishStream();
    while (assembler.HasClosed()) {
      assembler.PopClosed();
    }
  }
  const std::size_t after = AllocationCount();
  state.counters["allocs_per_task"] =
      tasks > 0 ? static_cast<double>(after - before) / static_cast<double>(tasks) : 0.0;
}
BENCHMARK(BM_StreamSteadyStateAllocations)->Unit(benchmark::kMillisecond);

}  // namespace
