#include "qnet/model/builders.h"

#include <sstream>

#include "qnet/dist/exponential.h"
#include "qnet/support/check.h"

namespace qnet {

QueueingNetwork MakeThreeTierNetwork(const ThreeTierConfig& config) {
  QNET_CHECK(!config.tier_sizes.empty(), "at least one tier required");
  QNET_CHECK(config.arrival_rate > 0.0 && config.service_rate > 0.0, "rates must be positive");
  QueueingNetwork net(std::make_unique<Exponential>(config.arrival_rate));

  std::vector<std::vector<int>> tier_queues;
  for (std::size_t tier = 0; tier < config.tier_sizes.size(); ++tier) {
    QNET_CHECK(config.tier_sizes[tier] > 0, "tier ", tier, " has no servers");
    std::vector<int> queues;
    for (int i = 0; i < config.tier_sizes[tier]; ++i) {
      std::ostringstream name;
      name << "tier" << tier << "_srv" << i;
      queues.push_back(net.AddQueue(name.str(),
                                    std::make_unique<Exponential>(config.service_rate)));
    }
    tier_queues.push_back(std::move(queues));
  }
  std::vector<int> net_queues;
  if (config.network_queues) {
    for (std::size_t tier = 0; tier + 1 < config.tier_sizes.size(); ++tier) {
      std::ostringstream name;
      name << "net" << tier << "_" << tier + 1;
      net_queues.push_back(net.AddQueue(name.str(),
                                        std::make_unique<Exponential>(config.network_rate)));
    }
  }

  Fsm& fsm = net.MutableFsm();
  std::vector<int> tier_states;
  for (std::size_t tier = 0; tier < tier_queues.size(); ++tier) {
    std::ostringstream name;
    name << "tier" << tier;
    const int state = fsm.AddState(name.str());
    fsm.SetUniformEmission(state, tier_queues[tier]);
    tier_states.push_back(state);
  }
  std::vector<int> net_states;
  if (config.network_queues) {
    for (std::size_t i = 0; i < net_queues.size(); ++i) {
      std::ostringstream name;
      name << "net" << i;
      const int state = fsm.AddState(name.str());
      fsm.SetDeterministicEmission(state, net_queues[i]);
      net_states.push_back(state);
    }
  }
  fsm.SetInitialState(tier_states.front());
  for (std::size_t tier = 0; tier < tier_states.size(); ++tier) {
    const bool last = tier + 1 == tier_states.size();
    if (last) {
      fsm.SetTransition(tier_states[tier], Fsm::kFinalState, 1.0);
    } else if (config.network_queues) {
      fsm.SetTransition(tier_states[tier], net_states[tier], 1.0);
      fsm.SetTransition(net_states[tier], tier_states[tier + 1], 1.0);
    } else {
      fsm.SetTransition(tier_states[tier], tier_states[tier + 1], 1.0);
    }
  }
  net.Validate();
  return net;
}

QueueingNetwork MakeTandemNetwork(double arrival_rate,
                                  const std::vector<double>& service_rates) {
  QNET_CHECK(!service_rates.empty(), "tandem needs at least one queue");
  QueueingNetwork net(std::make_unique<Exponential>(arrival_rate));
  std::vector<int> queues;
  for (std::size_t i = 0; i < service_rates.size(); ++i) {
    std::ostringstream name;
    name << "queue" << i;
    queues.push_back(net.AddQueue(name.str(), std::make_unique<Exponential>(service_rates[i])));
  }
  Fsm& fsm = net.MutableFsm();
  std::vector<int> states;
  for (std::size_t i = 0; i < queues.size(); ++i) {
    std::ostringstream name;
    name << "stage" << i;
    const int state = fsm.AddState(name.str());
    fsm.SetDeterministicEmission(state, queues[i]);
    states.push_back(state);
  }
  fsm.SetInitialState(states.front());
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (i + 1 == states.size()) {
      fsm.SetTransition(states[i], Fsm::kFinalState, 1.0);
    } else {
      fsm.SetTransition(states[i], states[i + 1], 1.0);
    }
  }
  net.Validate();
  return net;
}

QueueingNetwork MakeSingleQueueNetwork(double arrival_rate, double service_rate) {
  return MakeTandemNetwork(arrival_rate, {service_rate});
}

QueueingNetwork MakeFeedbackNetwork(double arrival_rate, double service_rate,
                                    double retry_prob) {
  QNET_CHECK(retry_prob >= 0.0 && retry_prob < 1.0, "retry probability must be in [0, 1)");
  QueueingNetwork net(std::make_unique<Exponential>(arrival_rate));
  const int queue = net.AddQueue("server", std::make_unique<Exponential>(service_rate));
  Fsm& fsm = net.MutableFsm();
  const int state = fsm.AddState("serve");
  fsm.SetDeterministicEmission(state, queue);
  fsm.SetInitialState(state);
  fsm.SetTransition(state, state, retry_prob);
  fsm.SetTransition(state, Fsm::kFinalState, 1.0 - retry_prob);
  net.Validate();
  return net;
}

std::vector<ThreeTierConfig> SyntheticStructures(double arrival_rate, double service_rate) {
  // Permutations of {1, 2, 4} across the three tiers; five structures as in Section 5.1,
  // moving the heavily-overloaded single-server tier across positions.
  const std::vector<std::vector<int>> sizes = {
      {1, 2, 4}, {2, 1, 4}, {4, 2, 1}, {2, 4, 1}, {4, 1, 2},
  };
  std::vector<ThreeTierConfig> configs;
  for (const auto& s : sizes) {
    ThreeTierConfig config;
    config.tier_sizes = s;
    config.arrival_rate = arrival_rate;
    config.service_rate = service_rate;
    configs.push_back(config);
  }
  return configs;
}

}  // namespace qnet
