// Canonical network constructors used throughout the paper: multi-tier web services
// (Figure 1), tandem lines, single queues, and a feedback (retry) network that exercises
// repeated visits of one task to the same queue.

#ifndef QNET_MODEL_BUILDERS_H_
#define QNET_MODEL_BUILDERS_H_

#include <vector>

#include "qnet/model/network.h"

namespace qnet {

struct ThreeTierConfig {
  // Number of replicated servers in each tier, front to back (e.g. {1, 2, 4}).
  std::vector<int> tier_sizes;
  // System arrival rate lambda (exponential interarrivals).
  double arrival_rate = 10.0;
  // Per-server exponential service rate mu (same for every server, per Section 5.1).
  double service_rate = 5.0;
  // When true, inserts one shared network queue between consecutive tiers (Figure 1 shows
  // these; the Section 5.1 experiments drop them).
  bool network_queues = false;
  double network_rate = 100.0;
};

// Multi-tier network: a task visits one uniformly-chosen server per tier, front to back.
QueueingNetwork MakeThreeTierNetwork(const ThreeTierConfig& config);

// M/M/1 tandem line: every task visits queues 1..n in order.
QueueingNetwork MakeTandemNetwork(double arrival_rate, const std::vector<double>& service_rates);

// Single M/M/1 queue.
QueueingNetwork MakeSingleQueueNetwork(double arrival_rate, double service_rate);

// Single queue with geometric retries: after service the task rejoins the queue with
// probability retry_prob. Exercises multiple same-queue visits per task.
QueueingNetwork MakeFeedbackNetwork(double arrival_rate, double service_rate,
                                    double retry_prob);

// The five Section 5.1 synthetic structures: tier-size permutations of {1, 2, 4} chosen so
// the bottleneck moves across tiers.
std::vector<ThreeTierConfig> SyntheticStructures(double arrival_rate = 10.0,
                                                 double service_rate = 5.0);

}  // namespace qnet

#endif  // QNET_MODEL_BUILDERS_H_
