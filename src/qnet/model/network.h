// A queueing network: a set of single-server FIFO queues with service distributions, plus
// the routing FSM. Queue 0 is always the *virtual arrival queue* q0 of the paper's Section 2
// convention — its "service" distribution is the system interarrival distribution, so the
// arrival rate is lambda = mu_q0.

#ifndef QNET_MODEL_NETWORK_H_
#define QNET_MODEL_NETWORK_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qnet/dist/distribution.h"
#include "qnet/model/fsm.h"

namespace qnet {

class QueueingNetwork {
 public:
  static constexpr int kArrivalQueue = 0;

  // Creates the network with queue 0 bound to the interarrival distribution.
  explicit QueueingNetwork(std::unique_ptr<ServiceDistribution> interarrival);

  QueueingNetwork(QueueingNetwork&&) = default;
  QueueingNetwork& operator=(QueueingNetwork&&) = default;
  QueueingNetwork(const QueueingNetwork&) = delete;
  QueueingNetwork& operator=(const QueueingNetwork&) = delete;

  // Adds a real queue; returns its id (>= 1).
  int AddQueue(std::string name, std::unique_ptr<ServiceDistribution> service);

  int NumQueues() const { return static_cast<int>(queues_.size()); }
  const std::string& QueueName(int q) const;
  int QueueIdByName(const std::string& name) const;  // -1 when absent
  const ServiceDistribution& Service(int q) const;
  void SetService(int q, std::unique_ptr<ServiceDistribution> service);

  // The FSM must be created after all queues exist; created lazily on first access.
  Fsm& MutableFsm();
  const Fsm& GetFsm() const;

  // Rate vector (mu_q for every queue, index 0 = lambda). CHECK-fails unless every service
  // distribution is Exponential — this is the M/M/1 fast path the paper's sampler needs.
  std::vector<double> ExponentialRates() const;
  double ArrivalRate() const;
  // True when every queue (including the arrival queue) has an Exponential service
  // distribution, i.e. ExponentialRates() would succeed. Lets rate-based fast paths
  // (traffic analysis, the analytic scenario cross-checks) degrade gracefully instead of
  // CHECK-failing on general-service networks.
  bool AllServicesExponential() const;

  // Full validation: at least one real queue, FSM valid, service means positive.
  void Validate() const;

  // Deep copy (service distributions cloned).
  QueueingNetwork Clone() const;

 private:
  struct QueueSpec {
    std::string name;
    std::unique_ptr<ServiceDistribution> service;
  };

  std::vector<QueueSpec> queues_;
  std::optional<Fsm> fsm_;
};

}  // namespace qnet

#endif  // QNET_MODEL_NETWORK_H_
