#include "qnet/model/network.h"

#include "qnet/dist/exponential.h"
#include "qnet/support/check.h"

namespace qnet {

QueueingNetwork::QueueingNetwork(std::unique_ptr<ServiceDistribution> interarrival) {
  QNET_CHECK(interarrival != nullptr, "interarrival distribution is null");
  queues_.push_back(QueueSpec{"__arrivals__", std::move(interarrival)});
}

int QueueingNetwork::AddQueue(std::string name, std::unique_ptr<ServiceDistribution> service) {
  QNET_CHECK(service != nullptr, "service distribution is null");
  QNET_CHECK(!fsm_.has_value(), "queues must be added before the FSM is created");
  QNET_CHECK(QueueIdByName(name) < 0, "duplicate queue name: ", name);
  queues_.push_back(QueueSpec{std::move(name), std::move(service)});
  return NumQueues() - 1;
}

const std::string& QueueingNetwork::QueueName(int q) const {
  QNET_CHECK(q >= 0 && q < NumQueues(), "bad queue id ", q);
  return queues_[static_cast<std::size_t>(q)].name;
}

int QueueingNetwork::QueueIdByName(const std::string& name) const {
  for (int q = 0; q < NumQueues(); ++q) {
    if (queues_[static_cast<std::size_t>(q)].name == name) {
      return q;
    }
  }
  return -1;
}

const ServiceDistribution& QueueingNetwork::Service(int q) const {
  QNET_CHECK(q >= 0 && q < NumQueues(), "bad queue id ", q);
  return *queues_[static_cast<std::size_t>(q)].service;
}

void QueueingNetwork::SetService(int q, std::unique_ptr<ServiceDistribution> service) {
  QNET_CHECK(q >= 0 && q < NumQueues(), "bad queue id ", q);
  QNET_CHECK(service != nullptr, "service distribution is null");
  queues_[static_cast<std::size_t>(q)].service = std::move(service);
}

Fsm& QueueingNetwork::MutableFsm() {
  if (!fsm_.has_value()) {
    fsm_.emplace(NumQueues());
  }
  return *fsm_;
}

const Fsm& QueueingNetwork::GetFsm() const {
  QNET_CHECK(fsm_.has_value(), "FSM not created yet");
  return *fsm_;
}

std::vector<double> QueueingNetwork::ExponentialRates() const {
  std::vector<double> rates;
  rates.reserve(queues_.size());
  for (int q = 0; q < NumQueues(); ++q) {
    const auto* exp_dist = dynamic_cast<const Exponential*>(&Service(q));
    QNET_CHECK(exp_dist != nullptr, "queue ", QueueName(q),
               " is not exponential; the M/M/1 sampler requires exponential service");
    rates.push_back(exp_dist->rate());
  }
  return rates;
}

bool QueueingNetwork::AllServicesExponential() const {
  for (int q = 0; q < NumQueues(); ++q) {
    if (dynamic_cast<const Exponential*>(&Service(q)) == nullptr) {
      return false;
    }
  }
  return true;
}

double QueueingNetwork::ArrivalRate() const {
  const auto* exp_dist = dynamic_cast<const Exponential*>(&Service(kArrivalQueue));
  QNET_CHECK(exp_dist != nullptr, "interarrival distribution is not exponential");
  return exp_dist->rate();
}

void QueueingNetwork::Validate() const {
  QNET_CHECK(NumQueues() >= 2, "network needs at least one real queue");
  for (int q = 0; q < NumQueues(); ++q) {
    QNET_CHECK(Service(q).Mean() > 0.0, "queue ", QueueName(q), " has nonpositive mean");
  }
  GetFsm().Validate();
}

QueueingNetwork QueueingNetwork::Clone() const {
  QueueingNetwork copy(queues_[0].service->Clone());
  for (int q = 1; q < NumQueues(); ++q) {
    copy.AddQueue(queues_[static_cast<std::size_t>(q)].name,
                  queues_[static_cast<std::size_t>(q)].service->Clone());
  }
  if (fsm_.has_value()) {
    copy.fsm_ = fsm_;  // Fsm is plain data; copyable.
  }
  return copy;
}

}  // namespace qnet
