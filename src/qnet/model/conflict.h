// Conflict graph and greedy coloring over a sweep's Gibbs moves.
//
// Two moves conflict when their footprints (EventLog::ComputeMoveFootprint) share an
// event: one may then read a time the other writes, so they must not run concurrently.
// Moves with disjoint footprints commute — this is the locality the paper's single-site
// conditionals provide (each move touches only the departure being moved, its queue
// predecessors/successors, and the downstream arrival), and it is what makes an
// intra-chain parallel sweep possible.
//
// ColorSweepMoves partitions a move list into conflict-free color classes with a greedy
// first-fit pass in move order. The result is a pure function of the link structure and
// the move order (times are never read), so a coloring computed once per trace stays
// valid for every subsequent sweep, and identical inputs color identically on every
// machine — the determinism the sharded sweep scheduler builds on.

#ifndef QNET_MODEL_CONFLICT_H_
#define QNET_MODEL_CONFLICT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "qnet/model/event.h"

namespace qnet {

struct MoveColoring {
  // color[i] is the color class of moves[i]; classes are conflict-free by construction.
  std::vector<int> color;
  int num_colors = 0;
};

// Reusable buffers for ColorSweepMovesInto. Holding one of these across recolorings (the
// sharded sweep scheduler keeps one per instance) makes a same-shaped recoloring
// allocation-free: every vector is assign()ed, so capacity persists.
struct ColoringScratch {
  std::vector<MoveFootprint> footprints;
  // CSR incidence event -> move indices: the moves touching event e are
  // touch_moves[touch_offsets[e] .. touch_offsets[e + 1]).
  std::vector<std::int32_t> touch_offsets;
  std::vector<std::int32_t> touch_cursor;
  std::vector<std::int32_t> touch_moves;
  std::vector<std::size_t> blocked;
};

// Greedy first-fit coloring of the footprint-conflict graph. Deterministic; O(moves ×
// footprint × incidence) with all bounds constant, so effectively linear in the move
// count. The chromatic count is small in practice (the conflict graph has bounded degree:
// an event appears in only a handful of footprints).
MoveColoring ColorSweepMoves(const EventLog& log, std::span<const SweepMove> moves);

// In-place variant: identical colors (the CSR incidence preserves the per-event move
// order of the list-of-lists build, so the first-fit pass sees the same neighbor
// sequence), with all working memory drawn from `scratch` and the result written into
// `out` — no allocations once the buffers are warm.
void ColorSweepMovesInto(const EventLog& log, std::span<const SweepMove> moves,
                         ColoringScratch& scratch, MoveColoring& out);

}  // namespace qnet

#endif  // QNET_MODEL_CONFLICT_H_
