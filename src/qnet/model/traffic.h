// Operational (traffic-equation) analysis of a queueing network.
//
// The routing FSM is an absorbing Markov chain; solving (I - P^T) n = e_init gives the
// expected number of visits n_sigma to each state per task, and the per-queue arrival rate
// follows as lambda_q = lambda * sum_sigma n_sigma p(q|sigma). Combined with the service
// rates this yields utilizations and the predicted bottleneck — the classical first-order
// sanity check that the paper's Section 5.1 setup quotes ("a tier with a single server is
// heavily overloaded, one with two servers barely overloaded, and one with four servers
// moderately loaded").

#ifndef QNET_MODEL_TRAFFIC_H_
#define QNET_MODEL_TRAFFIC_H_

#include <vector>

#include "qnet/model/network.h"

namespace qnet {

struct TrafficAnalysis {
  // Expected visits per task to each FSM state.
  std::vector<double> state_visits;
  // Expected visits per task to each queue (index 0 is always 1: the virtual arrival).
  std::vector<double> queue_visits;
  // Per-queue arrival rate lambda_q = lambda * queue_visits[q].
  std::vector<double> arrival_rates;
  // Per-queue utilization rho_q = lambda_q / mu_q for exponential services, and
  // rho_q = lambda_q E[S_q] for general service distributions (same quantity; the
  // exponential case keeps the historical rate-based arithmetic bit-identical).
  std::vector<double> utilization;
  // Queue with the highest utilization (>= 1 means predicted unstable).
  int bottleneck_queue = -1;
  bool stable = false;
};

// Solves the traffic equations for the network (FSM must be valid; any service family).
TrafficAnalysis AnalyzeTraffic(const QueueingNetwork& net);

// Dense Gaussian elimination with partial pivoting: solves A x = b. Exposed because the
// traffic equations are the library's only dense linear solve and tests pin it directly.
std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b);

}  // namespace qnet

#endif  // QNET_MODEL_TRAFFIC_H_
