// Probabilistic finite-state machine describing how tasks move through the network
// (paper Section 2): transition distribution p(sigma'|sigma) over states plus a designated
// final state, and emission distribution p(q|sigma) over queues.
//
// A task starts in the initial state, emits the queue it visits, then transitions; it
// completes when it transitions to the final state.

#ifndef QNET_MODEL_FSM_H_
#define QNET_MODEL_FSM_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "qnet/support/rng.h"

namespace qnet {

// One (state, queue) step of a task's route.
struct RouteStep {
  int state = -1;
  int queue = -1;

  friend bool operator==(const RouteStep&, const RouteStep&) = default;
};

class Fsm {
 public:
  // Sentinel passed to SetTransition as the destination meaning "task completes".
  static constexpr int kFinalState = -1;

  // num_queues is the total queue count of the owning network (queue 0 is the virtual
  // arrival queue and must never be emitted).
  explicit Fsm(int num_queues);

  int AddState(std::string name);
  int NumStates() const { return static_cast<int>(names_.size()); }
  int NumQueues() const { return num_queues_; }
  const std::string& StateName(int state) const;

  void SetInitialState(int state);
  int InitialState() const { return initial_state_; }

  // Probability of moving from `from` to `to` (kFinalState allowed as `to`).
  void SetTransition(int from, int to, double prob);
  double Transition(int from, int to) const;

  // Probability that `state` emits queue `queue` (queue >= 1).
  void SetEmission(int state, int queue, double prob);
  double Emission(int state, int queue) const;

  // Convenience: emit `queue` with probability 1.
  void SetDeterministicEmission(int state, int queue);
  // Convenience: uniform emission over the given queues.
  void SetUniformEmission(int state, const std::vector<int>& queues);
  // Convenience: weighted emission (weights normalized internally).
  void SetWeightedEmission(int state, const std::vector<int>& queues,
                           const std::vector<double>& weights);

  // Raw probability rows, for overlay-style consumers that sample routes with edited
  // emission rows while keeping the transition structure (see scenario/CellOverlay).
  // The transition row has NumStates()+1 columns with the final state last; the emission
  // row has NumQueues() columns (column 0 is always zero). Inline (debug-checked bounds):
  // route sampling reads one of each per step.
  std::span<const double> TransitionRow(int state) const {
    QNET_DCHECK(state >= 0 && state < NumStates(), "bad state id ", state);
    return transitions_[static_cast<std::size_t>(state)];
  }
  std::span<const double> EmissionRow(int state) const {
    QNET_DCHECK(state >= 0 && state < NumStates(), "bad state id ", state);
    return emissions_[static_cast<std::size_t>(state)];
  }

  // Samples a route (sequence of (state, queue) steps) from the FSM. CHECK-fails if the
  // route exceeds max_steps, which indicates an FSM that cannot reach the final state.
  std::vector<RouteStep> SampleRoute(Rng& rng, std::size_t max_steps = 1u << 20) const;

  // Allocation-reusing core of SampleRoute: appends the sampled steps to `out` (which
  // keeps its existing contents and capacity) and returns the number of steps appended.
  // Consumes the RNG draw-for-draw identically to SampleRoute.
  std::size_t AppendSampledRoute(Rng& rng, std::vector<RouteStep>& out,
                                 std::size_t max_steps = 1u << 20) const;

  // Log probability of a complete route, including the final transition to kFinalState.
  double LogProbRoute(const std::vector<RouteStep>& route) const;

  // Verifies rows are normalized, the initial state is set, the final state is reachable
  // from every state with positive probability mass, and no state emits queue 0.
  void Validate() const;

 private:
  int FinalColumn() const { return NumStates(); }

  int num_queues_;
  int initial_state_ = -1;
  std::vector<std::string> names_;
  // transitions_[s] has NumStates()+1 columns; the last column is the final state.
  std::vector<std::vector<double>> transitions_;
  // emissions_[s] has num_queues_ columns (column 0 must stay zero).
  std::vector<std::vector<double>> emissions_;
};

}  // namespace qnet

#endif  // QNET_MODEL_FSM_H_
