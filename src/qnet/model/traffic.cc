#include "qnet/model/traffic.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b) {
  const std::size_t n = b.size();
  QNET_CHECK(a.size() == n, "matrix/vector size mismatch");
  for (const auto& row : a) {
    QNET_CHECK(row.size() == n, "matrix is not square");
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) {
        pivot = row;
      }
    }
    QNET_CHECK(std::abs(a[pivot][col]) > 1e-12, "singular traffic system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (std::size_t k = row + 1; k < n; ++k) {
      sum -= a[row][k] * x[k];
    }
    x[row] = sum / a[row][row];
  }
  return x;
}

TrafficAnalysis AnalyzeTraffic(const QueueingNetwork& net) {
  const Fsm& fsm = net.GetFsm();
  fsm.Validate();
  const auto num_states = static_cast<std::size_t>(fsm.NumStates());
  const auto num_queues = static_cast<std::size_t>(net.NumQueues());

  // Expected state visits: n = e_init + P^T n  =>  (I - P^T) n = e_init.
  std::vector<std::vector<double>> system(num_states, std::vector<double>(num_states, 0.0));
  std::vector<double> rhs(num_states, 0.0);
  rhs[static_cast<std::size_t>(fsm.InitialState())] = 1.0;
  for (std::size_t i = 0; i < num_states; ++i) {
    for (std::size_t j = 0; j < num_states; ++j) {
      const double p_ji = fsm.Transition(static_cast<int>(j), static_cast<int>(i));
      system[i][j] = (i == j ? 1.0 : 0.0) - p_ji;
    }
  }
  TrafficAnalysis analysis;
  analysis.state_visits = SolveLinearSystem(std::move(system), std::move(rhs));

  analysis.queue_visits.assign(num_queues, 0.0);
  analysis.queue_visits[0] = 1.0;  // every task visits the virtual arrival queue once
  for (std::size_t s = 0; s < num_states; ++s) {
    for (std::size_t q = 1; q < num_queues; ++q) {
      analysis.queue_visits[q] +=
          analysis.state_visits[s] * fsm.Emission(static_cast<int>(s), static_cast<int>(q));
    }
  }

  // Arrival rates and utilizations only need mean service times, so general-service
  // networks are handled via rho_q = lambda_q E[S_q]. The all-exponential case keeps the
  // historical rate-based arithmetic so existing pinned results stay bit-identical.
  const bool exponential = net.AllServicesExponential();
  const std::vector<double> rates = exponential ? net.ExponentialRates() : std::vector<double>{};
  const double lambda = exponential ? rates[0] : 1.0 / net.Service(0).Mean();
  analysis.arrival_rates.assign(num_queues, 0.0);
  analysis.utilization.assign(num_queues, 0.0);
  double worst = -1.0;
  for (std::size_t q = 1; q < num_queues; ++q) {
    analysis.arrival_rates[q] = lambda * analysis.queue_visits[q];
    analysis.utilization[q] =
        exponential ? analysis.arrival_rates[q] / rates[q]
                    : analysis.arrival_rates[q] * net.Service(static_cast<int>(q)).Mean();
    if (analysis.utilization[q] > worst) {
      worst = analysis.utilization[q];
      analysis.bottleneck_queue = static_cast<int>(q);
    }
  }
  analysis.stable = worst < 1.0;
  return analysis;
}

}  // namespace qnet
