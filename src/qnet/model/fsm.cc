#include "qnet/model/fsm.h"

#include <cmath>
#include <deque>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

Fsm::Fsm(int num_queues) : num_queues_(num_queues) {
  QNET_CHECK(num_queues >= 2, "network needs the arrival queue plus at least one real queue");
}

int Fsm::AddState(std::string name) {
  const int id = NumStates();
  names_.push_back(std::move(name));
  for (auto& row : transitions_) {
    row.insert(row.end() - 1, 0.0);  // Keep the final column last.
  }
  transitions_.emplace_back(static_cast<std::size_t>(NumStates()) + 1, 0.0);
  emissions_.emplace_back(static_cast<std::size_t>(num_queues_), 0.0);
  return id;
}

const std::string& Fsm::StateName(int state) const {
  QNET_CHECK(state >= 0 && state < NumStates(), "bad state id ", state);
  return names_[static_cast<std::size_t>(state)];
}

void Fsm::SetInitialState(int state) {
  QNET_CHECK(state >= 0 && state < NumStates(), "bad initial state ", state);
  initial_state_ = state;
}

void Fsm::SetTransition(int from, int to, double prob) {
  QNET_CHECK(from >= 0 && from < NumStates(), "bad source state ", from);
  QNET_CHECK(to == kFinalState || (to >= 0 && to < NumStates()), "bad target state ", to);
  QNET_CHECK(prob >= 0.0 && prob <= 1.0, "bad probability ", prob);
  const int column = (to == kFinalState) ? FinalColumn() : to;
  transitions_[static_cast<std::size_t>(from)][static_cast<std::size_t>(column)] = prob;
}

double Fsm::Transition(int from, int to) const {
  QNET_CHECK(from >= 0 && from < NumStates(), "bad source state ", from);
  const int column = (to == kFinalState) ? FinalColumn() : to;
  QNET_CHECK(column >= 0 && column <= FinalColumn(), "bad target state ", to);
  return transitions_[static_cast<std::size_t>(from)][static_cast<std::size_t>(column)];
}

void Fsm::SetEmission(int state, int queue, double prob) {
  QNET_CHECK(state >= 0 && state < NumStates(), "bad state id ", state);
  QNET_CHECK(queue >= 1 && queue < num_queues_, "state may not emit queue ", queue);
  QNET_CHECK(prob >= 0.0 && prob <= 1.0, "bad probability ", prob);
  emissions_[static_cast<std::size_t>(state)][static_cast<std::size_t>(queue)] = prob;
}

double Fsm::Emission(int state, int queue) const {
  QNET_CHECK(state >= 0 && state < NumStates(), "bad state id ", state);
  QNET_CHECK(queue >= 0 && queue < num_queues_, "bad queue id ", queue);
  return emissions_[static_cast<std::size_t>(state)][static_cast<std::size_t>(queue)];
}

void Fsm::SetDeterministicEmission(int state, int queue) { SetEmission(state, queue, 1.0); }

void Fsm::SetUniformEmission(int state, const std::vector<int>& queues) {
  QNET_CHECK(!queues.empty(), "uniform emission over empty queue set");
  const double p = 1.0 / static_cast<double>(queues.size());
  for (int q : queues) {
    SetEmission(state, q, p);
  }
}

void Fsm::SetWeightedEmission(int state, const std::vector<int>& queues,
                              const std::vector<double>& weights) {
  QNET_CHECK(queues.size() == weights.size(), "queues/weights size mismatch");
  QNET_CHECK(!queues.empty(), "weighted emission over empty queue set");
  double total = 0.0;
  for (double w : weights) {
    QNET_CHECK(w >= 0.0, "negative emission weight");
    total += w;
  }
  QNET_CHECK(total > 0.0, "emission weights sum to zero");
  for (std::size_t i = 0; i < queues.size(); ++i) {
    SetEmission(state, queues[i], weights[i] / total);
  }
}

std::vector<RouteStep> Fsm::SampleRoute(Rng& rng, std::size_t max_steps) const {
  std::vector<RouteStep> route;
  AppendSampledRoute(rng, route, max_steps);
  return route;
}

std::size_t Fsm::AppendSampledRoute(Rng& rng, std::vector<RouteStep>& out,
                                    std::size_t max_steps) const {
  QNET_CHECK(initial_state_ >= 0, "initial state not set");
  const std::size_t base = out.size();
  int state = initial_state_;
  while (out.size() - base < max_steps) {
    const auto& emission = emissions_[static_cast<std::size_t>(state)];
    const int queue = static_cast<int>(rng.Categorical(emission));
    out.push_back(RouteStep{state, queue});
    const auto& row = transitions_[static_cast<std::size_t>(state)];
    const int next = static_cast<int>(rng.Categorical(row));
    if (next == FinalColumn()) {
      return out.size() - base;
    }
    state = next;
  }
  QNET_CHECK(false, "FSM route exceeded ", max_steps, " steps; final state unreachable?");
  return 0;
}

double Fsm::LogProbRoute(const std::vector<RouteStep>& route) const {
  QNET_CHECK(initial_state_ >= 0, "initial state not set");
  QNET_CHECK(!route.empty(), "empty route");
  QNET_CHECK(route.front().state == initial_state_, "route must start in the initial state");
  double log_prob = 0.0;
  for (std::size_t i = 0; i < route.size(); ++i) {
    const auto& step = route[i];
    const double emit = Emission(step.state, step.queue);
    if (emit <= 0.0) {
      return kNegInf;
    }
    log_prob += std::log(emit);
    const int next = (i + 1 < route.size()) ? route[i + 1].state : kFinalState;
    const double trans = Transition(step.state, next);
    if (trans <= 0.0) {
      return kNegInf;
    }
    log_prob += std::log(trans);
  }
  return log_prob;
}

void Fsm::Validate() const {
  QNET_CHECK(NumStates() > 0, "FSM has no states");
  QNET_CHECK(initial_state_ >= 0, "initial state not set");
  for (int s = 0; s < NumStates(); ++s) {
    double trans_total = 0.0;
    for (double p : transitions_[static_cast<std::size_t>(s)]) {
      trans_total += p;
    }
    QNET_CHECK(std::abs(trans_total - 1.0) < 1e-9, "state ", StateName(s),
               " transition row sums to ", trans_total);
    double emit_total = 0.0;
    for (double p : emissions_[static_cast<std::size_t>(s)]) {
      emit_total += p;
    }
    QNET_CHECK(std::abs(emit_total - 1.0) < 1e-9, "state ", StateName(s),
               " emission row sums to ", emit_total);
    QNET_CHECK(emissions_[static_cast<std::size_t>(s)][0] == 0.0,
               "state ", StateName(s), " emits the virtual arrival queue");
  }
  // Final state must be reachable from every state reachable from the initial state.
  std::vector<bool> can_finish(static_cast<std::size_t>(NumStates()), false);
  // Backward closure: states with direct mass on final, then predecessors.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < NumStates(); ++s) {
      if (can_finish[static_cast<std::size_t>(s)]) {
        continue;
      }
      const auto& row = transitions_[static_cast<std::size_t>(s)];
      bool ok = row[static_cast<std::size_t>(FinalColumn())] > 0.0;
      for (int t = 0; !ok && t < NumStates(); ++t) {
        ok = row[static_cast<std::size_t>(t)] > 0.0 && can_finish[static_cast<std::size_t>(t)];
      }
      if (ok) {
        can_finish[static_cast<std::size_t>(s)] = true;
        changed = true;
      }
    }
  }
  // Forward reachability from the initial state.
  std::vector<bool> reached(static_cast<std::size_t>(NumStates()), false);
  std::deque<int> frontier{initial_state_};
  reached[static_cast<std::size_t>(initial_state_)] = true;
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop_front();
    QNET_CHECK(can_finish[static_cast<std::size_t>(s)], "state ", StateName(s),
               " cannot reach the final state");
    for (int t = 0; t < NumStates(); ++t) {
      if (transitions_[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] > 0.0 &&
          !reached[static_cast<std::size_t>(t)]) {
        reached[static_cast<std::size_t>(t)] = true;
        frontier.push_back(t);
      }
    }
  }
}

}  // namespace qnet
