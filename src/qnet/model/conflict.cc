#include "qnet/model/conflict.h"

#include <algorithm>
#include <cstdint>

#include "qnet/support/check.h"

namespace qnet {

MoveColoring ColorSweepMoves(const EventLog& log, std::span<const SweepMove> moves) {
  MoveColoring out;
  const std::size_t n = moves.size();
  out.color.assign(n, -1);
  if (n == 0) {
    return out;
  }

  // Incidence lists: event -> indices of moves whose footprint touches it. Every conflict
  // edge appears as two moves sharing one list, so neighbor enumeration during coloring is
  // a walk over the footprint's lists instead of a quadratic pairwise scan. Footprints are
  // cached so the coloring pass below reuses them instead of re-walking neighborhoods.
  std::vector<MoveFootprint> footprints(n);
  std::vector<std::vector<std::int32_t>> touching(log.NumEvents());
  for (std::size_t i = 0; i < n; ++i) {
    footprints[i] = log.ComputeMoveFootprint(moves[i]);
    for (EventId e : footprints[i].Events()) {
      touching[static_cast<std::size_t>(e)].push_back(static_cast<std::int32_t>(i));
    }
  }

  // First-fit in move order: blocked[c] == i+1 marks color c used by a neighbor of i.
  std::vector<std::size_t> blocked;
  for (std::size_t i = 0; i < n; ++i) {
    for (EventId e : footprints[i].Events()) {
      for (std::int32_t j : touching[static_cast<std::size_t>(e)]) {
        const int c = out.color[static_cast<std::size_t>(j)];
        if (c < 0) {
          continue;  // j not colored yet (j >= i in move order)
        }
        if (static_cast<std::size_t>(c) >= blocked.size()) {
          blocked.resize(static_cast<std::size_t>(c) + 1, 0);
        }
        blocked[static_cast<std::size_t>(c)] = i + 1;
      }
    }
    int c = 0;
    while (static_cast<std::size_t>(c) < blocked.size() &&
           blocked[static_cast<std::size_t>(c)] == i + 1) {
      ++c;
    }
    out.color[i] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

}  // namespace qnet
