#include "qnet/model/conflict.h"

#include <algorithm>
#include <cstdint>

#include "qnet/support/check.h"

namespace qnet {

void ColorSweepMovesInto(const EventLog& log, std::span<const SweepMove> moves,
                         ColoringScratch& scratch, MoveColoring& out) {
  const std::size_t n = moves.size();
  out.color.assign(n, -1);
  out.num_colors = 0;
  if (n == 0) {
    return;
  }

  // Incidence as CSR: event -> indices of moves whose footprint touches it. Every conflict
  // edge appears as two moves sharing one per-event slice, so neighbor enumeration during
  // coloring is a walk over the footprint's slices instead of a quadratic pairwise scan.
  // Two passes (count, then fill in move order) keep each slice in ascending move order —
  // exactly the order the list-of-lists build produced — so first-fit colors identically.
  const std::size_t num_events = log.NumEvents();
  scratch.footprints.resize(n);
  scratch.touch_offsets.assign(num_events + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.footprints[i] = log.ComputeMoveFootprint(moves[i]);
    for (EventId e : scratch.footprints[i].Events()) {
      ++scratch.touch_offsets[static_cast<std::size_t>(e) + 1];
    }
  }
  for (std::size_t e = 0; e < num_events; ++e) {
    scratch.touch_offsets[e + 1] += scratch.touch_offsets[e];
  }
  scratch.touch_cursor.assign(scratch.touch_offsets.begin(), scratch.touch_offsets.end() - 1);
  scratch.touch_moves.resize(static_cast<std::size_t>(scratch.touch_offsets[num_events]));
  for (std::size_t i = 0; i < n; ++i) {
    for (EventId e : scratch.footprints[i].Events()) {
      scratch.touch_moves[static_cast<std::size_t>(
          scratch.touch_cursor[static_cast<std::size_t>(e)]++)] = static_cast<std::int32_t>(i);
    }
  }

  // First-fit in move order: blocked[c] == i+1 marks color c used by a neighbor of i.
  scratch.blocked.clear();
  for (std::size_t i = 0; i < n; ++i) {
    for (EventId e : scratch.footprints[i].Events()) {
      const std::size_t begin = static_cast<std::size_t>(
          scratch.touch_offsets[static_cast<std::size_t>(e)]);
      const std::size_t end = static_cast<std::size_t>(
          scratch.touch_offsets[static_cast<std::size_t>(e) + 1]);
      for (std::size_t k = begin; k < end; ++k) {
        const int c = out.color[static_cast<std::size_t>(scratch.touch_moves[k])];
        if (c < 0) {
          continue;  // neighbor not colored yet (its index >= i in move order)
        }
        if (static_cast<std::size_t>(c) >= scratch.blocked.size()) {
          scratch.blocked.resize(static_cast<std::size_t>(c) + 1, 0);
        }
        scratch.blocked[static_cast<std::size_t>(c)] = i + 1;
      }
    }
    int c = 0;
    while (static_cast<std::size_t>(c) < scratch.blocked.size() &&
           scratch.blocked[static_cast<std::size_t>(c)] == i + 1) {
      ++c;
    }
    out.color[i] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
}

MoveColoring ColorSweepMoves(const EventLog& log, std::span<const SweepMove> moves) {
  ColoringScratch scratch;
  MoveColoring out;
  ColorSweepMovesInto(log, moves, scratch, out);
  return out;
}

}  // namespace qnet
