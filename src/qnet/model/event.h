// Event-graph representation of a set of tasks processed by a queueing network
// (paper Section 2).
//
// Every (task, queue-visit) pair is one event e = (k_e, sigma_e, q_e, a_e, d_e). Each task
// additionally owns an *initial event* at the virtual arrival queue 0 that arrives at t = 0
// and departs at the task's system entry time, so the system interarrival process is the
// "service" process of queue 0.
//
// Link structure:
//   pi(e)  — within-task predecessor (previous visit of the same task; the initial event for
//            the first real visit),
//   tau(e) — within-task successor,
//   rho(e) — within-queue predecessor in *arrival order*,
//   nu(e)  — within-queue successor in arrival order.
//
// The deterministic dependencies a_e = d_pi(e) and d_e = s_e + max(a_e, d_rho(e)) mean the
// service times s_e are *derived* quantities: ServiceTime(e) computes them from the stored
// arrival/departure times and the links. The inference code mutates times while holding the
// link structure (i.e. the known per-queue arrival order) fixed.

#ifndef QNET_MODEL_EVENT_H_
#define QNET_MODEL_EVENT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qnet/model/network.h"
#include "qnet/support/check.h"

namespace qnet {

using EventId = std::int32_t;
inline constexpr EventId kNoEvent = -1;

struct Event {
  std::int32_t task = -1;
  std::int32_t state = -1;  // FSM state; -1 for initial events.
  std::int32_t queue = -1;
  double arrival = 0.0;
  double departure = 0.0;
  EventId pi = kNoEvent;
  EventId tau = kNoEvent;
  EventId rho = kNoEvent;
  EventId nu = kNoEvent;
  bool initial = false;
};

// --- Sweep moves & footprints ----------------------------------------------------------
//
// A Gibbs sweep is a sequence of single-site moves; each move resamples one latent time
// while reading only a bounded neighborhood of the event graph. The model layer owns the
// move/footprint vocabulary because the footprint is a pure function of the link structure
// (which the inference code holds fixed), so conflict analysis never depends on sampler
// internals.

enum class MoveKind : std::uint8_t {
  kArrival,         // resample a_e jointly with d_pi(e)
  kFinalDeparture,  // resample the system exit time d_e of a task's last event
};

struct SweepMove {
  MoveKind kind = MoveKind::kArrival;
  EventId event = kNoEvent;

  friend bool operator==(const SweepMove&, const SweepMove&) = default;
};

// The set of events whose stored times a move reads or writes. Bounded by construction:
// an arrival move touches {e, pi(e), rho(pi), rho(e), nu(e), nu(pi)} and a final-departure
// move {e, rho(e), nu(e)} — deduplicated, with missing neighbors dropped. Two moves with
// disjoint footprints commute: their writes are disjoint and neither reads a time the
// other writes, so they may run concurrently (or in either order) with identical results.
struct MoveFootprint {
  static constexpr std::size_t kMaxEvents = 6;

  std::array<EventId, kMaxEvents> events{};
  std::size_t count = 0;

  std::span<const EventId> Events() const { return {events.data(), count}; }

  bool Contains(EventId e) const {
    for (std::size_t i = 0; i < count; ++i) {
      if (events[i] == e) {
        return true;
      }
    }
    return false;
  }

  bool Intersects(const MoveFootprint& other) const {
    for (std::size_t i = 0; i < count; ++i) {
      if (other.Contains(events[i])) {
        return true;
      }
    }
    return false;
  }
};

class EventLog {
 public:
  explicit EventLog(int num_queues);

  // --- Construction ------------------------------------------------------------------

  // Returns the log to its freshly-constructed state while keeping every backing buffer's
  // capacity (events, per-task chains, per-queue orders), so rebuilding a same-shaped log
  // allocates nothing once warm. The DES scratch path (sim/sim_scratch.h) relies on this.
  void Reset(int num_queues);

  // Creates the next task together with its initial event departing at entry_time; returns
  // the task id. Tasks must be added in nondecreasing entry-time order (this pins the
  // arrival order at queue 0, where all initial events arrive at t = 0).
  int AddTask(double entry_time);

  // Appends the next queue visit of `task` in route order. The first visit's arrival must
  // equal the task's entry time; later arrivals must equal the previous departure.
  EventId AddVisit(int task, int state, int queue, double arrival, double departure);

  // Establishes rho/nu links from the arrival order (ties broken by event id, which keeps
  // queue-0 initial events in task order). Must be called once after construction; the
  // inference code then treats the order as known and immutable.
  void BuildQueueLinks();
  bool QueueLinksBuilt() const { return links_built_; }

  // Reassigns event e to `new_queue`, splicing it out of its current queue's arrival order
  // and into the new queue's order at the position given by its (unchanged) arrival time.
  // Used by the Metropolis-Hastings route-resampling move (paper Section 3: resampling
  // unknown FSM paths); the caller is responsible for accept/reject — this method only
  // requires the new position to respect arrival order, not FIFO feasibility.
  void MoveEventToQueue(EventId e, int new_queue);

  // --- Shape -------------------------------------------------------------------------

  std::size_t NumEvents() const { return events_.size(); }
  int NumTasks() const { return num_tasks_; }
  int NumQueues() const { return num_queues_; }
  const Event& At(EventId e) const;
  const std::vector<EventId>& TaskEvents(int task) const;     // initial event first
  const std::vector<EventId>& QueueOrder(int queue) const;    // arrival order

  // --- Times (mutable for samplers) ---------------------------------------------------

  double Arrival(EventId e) const { return events_[Check(e)].arrival; }
  double Departure(EventId e) const { return events_[Check(e)].departure; }
  void SetArrival(EventId e, double t) { events_[Check(e)].arrival = t; }
  void SetDeparture(EventId e, double t) { events_[Check(e)].departure = t; }

  // --- Unchecked hot-path accessors ----------------------------------------------------
  // Inline, QNET_DCHECK-guarded variants of At/Arrival/Departure/BeginService for the
  // Gibbs inner loop: bounds checks compile out under NDEBUG and no out-of-line call is
  // made per access. The checked accessors below stay the default everywhere else.

  const Event& AtUnchecked(EventId e) const {
    QNET_DCHECK(e >= 0 && static_cast<std::size_t>(e) < events_.size(), "bad event id ", e);
    return events_[static_cast<std::size_t>(e)];
  }
  double ArrivalUnchecked(EventId e) const { return AtUnchecked(e).arrival; }
  double DepartureUnchecked(EventId e) const { return AtUnchecked(e).departure; }
  void SetArrivalUnchecked(EventId e, double t) { MutableAtUnchecked(e).arrival = t; }
  void SetDepartureUnchecked(EventId e, double t) { MutableAtUnchecked(e).departure = t; }
  // max(a_e, d_rho(e)) without an out-of-line call; BeginService delegates here.
  double BeginServiceUnchecked(EventId e) const {
    QNET_DCHECK(links_built_, "queue links not built");
    const Event& ev = AtUnchecked(e);
    if (ev.rho == kNoEvent) {
      return ev.arrival;
    }
    return std::max(ev.arrival, AtUnchecked(ev.rho).departure);
  }

  // --- Move dependency API --------------------------------------------------------------

  // The bounded neighborhood of events whose times the given Gibbs move reads or writes
  // (see MoveFootprint). Depends only on the link structure, never on the stored times, so
  // footprints computed once stay valid while a sampler mutates times in place. Requires
  // built queue links; CHECK-fails on moves the samplers would reject (arrival move on an
  // initial event, final-departure move on an event with a within-task successor).
  MoveFootprint ComputeMoveFootprint(const SweepMove& move) const;

  // Time at which e begins service: max(a_e, d_rho(e)).
  double BeginService(EventId e) const;
  // Derived service time s_e = d_e - BeginService(e).
  double ServiceTime(EventId e) const;
  // Derived waiting time w_e = BeginService(e) - a_e.
  double WaitTime(EventId e) const;
  // Response time r_e = w_e + s_e = d_e - a_e.
  double ResponseTime(EventId e) const;

  // --- Invariants & density ------------------------------------------------------------

  // True when every deterministic constraint holds within tol: nonnegative service times,
  // task continuity (a_e == d_pi(e)), per-queue arrival AND departure order consistent with
  // the links, and initial events anchored at arrival 0. On failure *why (if non-null)
  // receives a human-readable reason.
  bool IsFeasible(double tol = 1e-9, std::string* why = nullptr) const;

  // Log joint density of all service times under the network's service distributions:
  // sum_e log p(s_e | q_e). This is the continuous part of eq. (1); the indicator terms are
  // presumed satisfied (IsFeasible) and the FSM terms are LogJointRouting.
  double LogJointTimes(const QueueingNetwork& net) const;
  // Log probability of all task routes under the FSM: sum_e log p(q_e|sigma_e) p(sigma_e|.).
  double LogJointRouting(const QueueingNetwork& net) const;

  // --- Summaries ------------------------------------------------------------------------

  // Per-queue mean of derived service times (index 0 = interarrival gaps).
  std::vector<double> PerQueueMeanService() const;
  // Per-queue mean waiting time.
  std::vector<double> PerQueueMeanWait() const;
  // Per-queue event counts.
  std::vector<std::size_t> PerQueueCount() const;
  // Sum of service times per queue (the M-step sufficient statistic).
  std::vector<double> PerQueueServiceSum() const;
  // Per-queue quantile of response times (e.g. 0.95 for tail latency); NaN for queues with
  // no events.
  std::vector<double> PerQueueResponseQuantile(double quantile) const;

  // Route of a task as (state, queue) steps, excluding the initial event.
  std::vector<RouteStep> TaskRoute(int task) const;

  // Final (exit) time of a task = departure of its last event.
  double TaskExitTime(int task) const;
  double TaskEntryTime(int task) const;

 private:
  std::size_t Check(EventId e) const;

  Event& MutableAtUnchecked(EventId e) {
    QNET_DCHECK(e >= 0 && static_cast<std::size_t>(e) < events_.size(), "bad event id ", e);
    return events_[static_cast<std::size_t>(e)];
  }

  int num_queues_;
  bool links_built_ = false;
  // Number of live tasks; task_events_ may hold more (capacity-preserving) slots after a
  // Reset, so NumTasks() never reads task_events_.size().
  int num_tasks_ = 0;
  std::vector<Event> events_;
  std::vector<std::vector<EventId>> task_events_;
  std::vector<std::vector<EventId>> queue_order_;
};

}  // namespace qnet

#endif  // QNET_MODEL_EVENT_H_
