#include "qnet/model/event.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"

namespace qnet {

EventLog::EventLog(int num_queues) : num_queues_(num_queues) {
  QNET_CHECK(num_queues >= 2, "need the arrival queue plus at least one real queue");
  queue_order_.resize(static_cast<std::size_t>(num_queues));
}

std::size_t EventLog::Check(EventId e) const {
  QNET_DCHECK(e >= 0 && static_cast<std::size_t>(e) < events_.size(), "bad event id ", e);
  return static_cast<std::size_t>(e);
}

void EventLog::Reset(int num_queues) {
  QNET_CHECK(num_queues >= 2, "need the arrival queue plus at least one real queue");
  if (num_queues != num_queues_) {
    num_queues_ = num_queues;
    queue_order_.resize(static_cast<std::size_t>(num_queues));
  }
  events_.clear();
  for (auto& order : queue_order_) {
    order.clear();
  }
  // Per-task chains are recycled lazily: AddTask clears a retained slot when it reuses it.
  num_tasks_ = 0;
  links_built_ = false;
}

int EventLog::AddTask(double entry_time) {
  QNET_CHECK(!links_built_, "log is frozen after BuildQueueLinks");
  QNET_CHECK(entry_time >= 0.0, "entry time must be nonnegative: ", entry_time);
  const int task = NumTasks();
  if (task > 0) {
    const auto& prev_initial =
        events_[static_cast<std::size_t>(task_events_[static_cast<std::size_t>(task) - 1].front())];
    QNET_CHECK(entry_time >= prev_initial.departure,
               "tasks must be added in entry-time order; entry=", entry_time,
               " previous=", prev_initial.departure);
  }
  Event ev;
  ev.task = task;
  ev.queue = QueueingNetwork::kArrivalQueue;
  ev.arrival = 0.0;
  ev.departure = entry_time;
  ev.initial = true;
  const EventId id = static_cast<EventId>(events_.size());
  events_.push_back(ev);
  if (static_cast<std::size_t>(task) < task_events_.size()) {
    auto& chain = task_events_[static_cast<std::size_t>(task)];
    chain.clear();
    chain.push_back(id);
  } else {
    task_events_.push_back({id});
  }
  num_tasks_ = task + 1;
  return task;
}

EventId EventLog::AddVisit(int task, int state, int queue, double arrival, double departure) {
  QNET_CHECK(!links_built_, "log is frozen after BuildQueueLinks");
  QNET_CHECK(task >= 0 && task < NumTasks(), "bad task id ", task);
  QNET_CHECK(queue >= 1 && queue < num_queues_, "bad queue id ", queue);
  QNET_CHECK(departure >= arrival, "departure before arrival");
  auto& chain = task_events_[static_cast<std::size_t>(task)];
  const EventId prev = chain.back();
  QNET_CHECK(std::abs(arrival - events_[Check(prev)].departure) < 1e-9,
             "task continuity violated: arrival=", arrival,
             " but previous departure=", events_[Check(prev)].departure);
  Event ev;
  ev.task = task;
  ev.state = state;
  ev.queue = queue;
  ev.arrival = arrival;
  ev.departure = departure;
  ev.pi = prev;
  const EventId id = static_cast<EventId>(events_.size());
  events_.push_back(ev);
  events_[Check(prev)].tau = id;
  chain.push_back(id);
  return id;
}

void EventLog::BuildQueueLinks() {
  QNET_CHECK(!links_built_, "BuildQueueLinks called twice");
  for (auto& order : queue_order_) {
    order.clear();
  }
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    queue_order_[static_cast<std::size_t>(events_[Check(e)].queue)].push_back(e);
  }
  for (auto& order : queue_order_) {
    // (arrival, id) ordering on id-ordered input == stable sort by arrival, and std::sort
    // (unlike std::stable_sort) allocates no temporary buffer — required for the warm
    // zero-allocation EventLog rebuild path.
    std::sort(order.begin(), order.end(), [this](EventId a, EventId b) {
      const double aa = events_[Check(a)].arrival;
      const double ab = events_[Check(b)].arrival;
      if (aa != ab) {
        return aa < ab;
      }
      return a < b;
    });
    EventId prev = kNoEvent;
    for (EventId e : order) {
      events_[Check(e)].rho = prev;
      if (prev != kNoEvent) {
        events_[Check(prev)].nu = e;
      }
      prev = e;
    }
    if (prev != kNoEvent) {
      events_[Check(prev)].nu = kNoEvent;
    }
  }
  links_built_ = true;
}

void EventLog::MoveEventToQueue(EventId e, int new_queue) {
  QNET_CHECK(links_built_, "queue links not built");
  QNET_CHECK(new_queue >= 1 && new_queue < num_queues_, "bad queue id ", new_queue);
  Event& ev = events_[Check(e)];
  QNET_CHECK(!ev.initial, "initial events live on the virtual arrival queue");
  if (ev.queue == new_queue) {
    return;
  }
  // Unlink from the old queue's order.
  auto& old_order = queue_order_[static_cast<std::size_t>(ev.queue)];
  const auto it = std::find(old_order.begin(), old_order.end(), e);
  QNET_CHECK(it != old_order.end(), "event missing from its queue order");
  old_order.erase(it);
  if (ev.rho != kNoEvent) {
    events_[Check(ev.rho)].nu = ev.nu;
  }
  if (ev.nu != kNoEvent) {
    events_[Check(ev.nu)].rho = ev.rho;
  }
  // Insert into the new queue's order by arrival time (ties by event id, matching
  // BuildQueueLinks).
  auto& new_order = queue_order_[static_cast<std::size_t>(new_queue)];
  const auto pos = std::upper_bound(
      new_order.begin(), new_order.end(), e, [this](EventId a, EventId b) {
        const Event& ea = events_[Check(a)];
        const Event& eb = events_[Check(b)];
        if (ea.arrival != eb.arrival) {
          return ea.arrival < eb.arrival;
        }
        return a < b;
      });
  const EventId next = (pos == new_order.end()) ? kNoEvent : *pos;
  const EventId prev = (pos == new_order.begin()) ? kNoEvent : *(pos - 1);
  new_order.insert(pos, e);
  ev.queue = new_queue;
  ev.rho = prev;
  ev.nu = next;
  if (prev != kNoEvent) {
    events_[Check(prev)].nu = e;
  }
  if (next != kNoEvent) {
    events_[Check(next)].rho = e;
  }
}

const Event& EventLog::At(EventId e) const { return events_[Check(e)]; }

const std::vector<EventId>& EventLog::TaskEvents(int task) const {
  QNET_CHECK(task >= 0 && task < NumTasks(), "bad task id ", task);
  return task_events_[static_cast<std::size_t>(task)];
}

const std::vector<EventId>& EventLog::QueueOrder(int queue) const {
  QNET_CHECK(queue >= 0 && queue < num_queues_, "bad queue id ", queue);
  QNET_CHECK(links_built_, "queue links not built");
  return queue_order_[static_cast<std::size_t>(queue)];
}

MoveFootprint EventLog::ComputeMoveFootprint(const SweepMove& move) const {
  QNET_CHECK(links_built_, "queue links not built");
  MoveFootprint fp;
  const auto add = [&fp](EventId e) {
    if (e == kNoEvent || fp.Contains(e)) {
      return;
    }
    fp.events[fp.count++] = e;
  };
  const Event& ev = At(move.event);
  add(move.event);
  if (move.kind == MoveKind::kArrival) {
    QNET_CHECK(!ev.initial, "arrival moves target non-initial events; got ", move.event);
    const Event& pi = events_[static_cast<std::size_t>(ev.pi)];
    add(ev.pi);   // d_pi is written (d_pi = a_e); a_pi is read via BeginService(pi)
    add(pi.rho);  // BeginService(pi) reads d_rho(pi)
    add(ev.rho);  // t1 = d_rho(e); L reads a_rho(e)
    add(ev.nu);   // U reads a_nu(e)
    add(pi.nu);   // s_nu(pi) reads a_nu(pi), d_nu(pi) (== e dedups on revisits)
  } else {
    QNET_CHECK(ev.tau == kNoEvent,
               "final-departure moves target a task's last event; got ", move.event);
    add(ev.rho);  // BeginService(e) reads d_rho(e)
    add(ev.nu);   // the two-piece tail reads a_nu(e), d_nu(e)
  }
  return fp;
}

double EventLog::BeginService(EventId e) const {
  Check(e);
  return BeginServiceUnchecked(e);
}

double EventLog::ServiceTime(EventId e) const {
  return events_[Check(e)].departure - BeginService(e);
}

double EventLog::WaitTime(EventId e) const { return BeginService(e) - events_[Check(e)].arrival; }

double EventLog::ResponseTime(EventId e) const {
  const Event& ev = events_[Check(e)];
  return ev.departure - ev.arrival;
}

bool EventLog::IsFeasible(double tol, std::string* why) const {
  QNET_CHECK(links_built_, "queue links not built");
  const auto fail = [why](const std::string& reason) {
    if (why != nullptr) {
      *why = reason;
    }
    return false;
  };
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    const Event& ev = events_[Check(e)];
    if (ev.initial) {
      if (ev.arrival != 0.0) {
        return fail("initial event with nonzero arrival");
      }
    } else {
      const double prev_dep = events_[Check(ev.pi)].departure;
      if (std::abs(ev.arrival - prev_dep) > tol) {
        std::ostringstream os;
        os << "task continuity broken at event " << e << ": arrival " << ev.arrival
           << " vs pi departure " << prev_dep;
        return fail(os.str());
      }
    }
    if (ServiceTime(e) < -tol) {
      std::ostringstream os;
      os << "negative service time at event " << e << ": " << ServiceTime(e);
      return fail(os.str());
    }
    if (ev.rho != kNoEvent) {
      const Event& prev = events_[Check(ev.rho)];
      if (prev.arrival > ev.arrival + tol) {
        std::ostringstream os;
        os << "arrival order broken at event " << e;
        return fail(os.str());
      }
      if (prev.departure > ev.departure + tol) {
        std::ostringstream os;
        os << "departure (FIFO) order broken at event " << e << ": rho departs "
           << prev.departure << " after " << ev.departure;
        return fail(os.str());
      }
    }
  }
  return true;
}

double EventLog::LogJointTimes(const QueueingNetwork& net) const {
  QNET_CHECK(links_built_, "queue links not built");
  double total = 0.0;
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    const double s = std::max(ServiceTime(e), 0.0);
    total += net.Service(events_[Check(e)].queue).LogPdf(s);
    if (total == kNegInf) {
      return kNegInf;
    }
  }
  return total;
}

double EventLog::LogJointRouting(const QueueingNetwork& net) const {
  double total = 0.0;
  for (int k = 0; k < NumTasks(); ++k) {
    total += net.GetFsm().LogProbRoute(TaskRoute(k));
    if (total == kNegInf) {
      return kNegInf;
    }
  }
  return total;
}

std::vector<double> EventLog::PerQueueMeanService() const {
  std::vector<double> sums(static_cast<std::size_t>(num_queues_), 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_queues_), 0);
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    const auto q = static_cast<std::size_t>(events_[Check(e)].queue);
    sums[q] += ServiceTime(e);
    ++counts[q];
  }
  for (std::size_t q = 0; q < sums.size(); ++q) {
    if (counts[q] > 0) {
      sums[q] /= static_cast<double>(counts[q]);
    }
  }
  return sums;
}

std::vector<double> EventLog::PerQueueMeanWait() const {
  std::vector<double> sums(static_cast<std::size_t>(num_queues_), 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_queues_), 0);
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    const auto q = static_cast<std::size_t>(events_[Check(e)].queue);
    sums[q] += WaitTime(e);
    ++counts[q];
  }
  for (std::size_t q = 0; q < sums.size(); ++q) {
    if (counts[q] > 0) {
      sums[q] /= static_cast<double>(counts[q]);
    }
  }
  return sums;
}

std::vector<std::size_t> EventLog::PerQueueCount() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_queues_), 0);
  for (const Event& ev : events_) {
    ++counts[static_cast<std::size_t>(ev.queue)];
  }
  return counts;
}

std::vector<double> EventLog::PerQueueServiceSum() const {
  std::vector<double> sums(static_cast<std::size_t>(num_queues_), 0.0);
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    sums[static_cast<std::size_t>(events_[Check(e)].queue)] += ServiceTime(e);
  }
  return sums;
}

std::vector<double> EventLog::PerQueueResponseQuantile(double quantile) const {
  QNET_CHECK(quantile >= 0.0 && quantile <= 1.0, "bad quantile ", quantile);
  std::vector<std::vector<double>> responses(static_cast<std::size_t>(num_queues_));
  for (EventId e = 0; static_cast<std::size_t>(e) < events_.size(); ++e) {
    responses[static_cast<std::size_t>(events_[Check(e)].queue)].push_back(ResponseTime(e));
  }
  std::vector<double> out(static_cast<std::size_t>(num_queues_),
                          std::numeric_limits<double>::quiet_NaN());
  for (std::size_t q = 0; q < out.size(); ++q) {
    if (!responses[q].empty()) {
      out[q] = Quantile(responses[q], quantile);
    }
  }
  return out;
}

std::vector<RouteStep> EventLog::TaskRoute(int task) const {
  const auto& chain = TaskEvents(task);
  std::vector<RouteStep> route;
  route.reserve(chain.size() - 1);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Event& ev = events_[Check(chain[i])];
    route.push_back(RouteStep{ev.state, ev.queue});
  }
  return route;
}

double EventLog::TaskExitTime(int task) const {
  const auto& chain = TaskEvents(task);
  return events_[Check(chain.back())].departure;
}

double EventLog::TaskEntryTime(int task) const {
  const auto& chain = TaskEvents(task);
  return events_[Check(chain.front())].departure;
}

}  // namespace qnet
