#include "qnet/trace/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "qnet/support/check.h"

namespace qnet {

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  QNET_CHECK(!header_.empty(), "empty table header");
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  QNET_CHECK(row.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double value : row) {
    cells.push_back(FormatDouble(value, precision));
  }
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace qnet
