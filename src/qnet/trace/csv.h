// CSV serialization for event logs, observations, and result series, so experiments can be
// archived and re-plotted outside the binaries.
//
// Event-log format: a `# queues=N` header line recording the network size, a column
// header, then one row per event in (task, route-order):
//     # queues=N
//     task,state,queue,arrival,departure,initial
// Observation format, one row per event id:
//     event,arrival_observed,departure_observed

#ifndef QNET_TRACE_CSV_H_
#define QNET_TRACE_CSV_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"

namespace qnet {

void WriteEventLog(std::ostream& os, const EventLog& log);
void WriteEventLogFile(const std::string& path, const EventLog& log);

// Reads a log written by WriteEventLog, taking the network size from the `# queues=N`
// header (CHECK-fails on headerless legacy files).
EventLog ReadEventLog(std::istream& is);
EventLog ReadEventLogFile(const std::string& path);
// Back-compat overloads for headerless files: num_queues supplies the network size (and
// is checked against the header when one is present).
EventLog ReadEventLog(std::istream& is, int num_queues);
EventLog ReadEventLogFile(const std::string& path, int num_queues);

// Splits one CSV line into `fields` (reused across calls — no per-call vector). The one
// splitter shared by the batch readers here and the incremental CsvReplayStream, so the
// two cannot diverge on format details.
void SplitCsvLine(const std::string& line, std::vector<std::string>& fields);

// Checked numeric field parsers: corrupt values raise Error (like every other corrupt-
// input path) instead of leaking std::invalid_argument/std::out_of_range from stoi/stod.
// `line` is quoted in the diagnostic. Shared by the batch readers and CsvReplayStream.
int ParseCsvInt(const std::string& field, const std::string& line);
long ParseCsvLong(const std::string& field, const std::string& line);
double ParseCsvDouble(const std::string& field, const std::string& line);
// Unsigned 64-bit (e.g. RNG seeds). Rejects negative input explicitly — std::stoull
// would silently wrap it.
std::uint64_t ParseCsvU64(const std::string& field, const std::string& line);

// Consumes one '# key=value' metadata header line and returns the text after '='.
// `what` names the file kind in diagnostics (e.g. "scenario report"). The one header
// parser shared by every '#'-headed CSV in trace/, so the format cannot drift.
std::string ReadCsvMetaLine(std::istream& is, const std::string& key,
                            const std::string& what);

// Shared header step for event-log readers (ReadEventLog, CsvReplayStream): consumes the
// optional '# queues=N' line plus the column-header line from `is`, reconciles N with the
// caller-supplied num_queues (-1 = must come from the header, nonnegative = required to
// match any header present), and returns the resolved queue count. Throws Error on
// malformed headers.
int ReadEventLogHeader(std::istream& is, int num_queues);

void WriteObservation(std::ostream& os, const Observation& obs);
Observation ReadObservation(std::istream& is, const EventLog& log);

// Generic numeric series: a header row then one row per record.
void WriteSeries(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<double>>& rows);
void WriteSeriesFile(const std::string& path, const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows);

}  // namespace qnet

#endif  // QNET_TRACE_CSV_H_
