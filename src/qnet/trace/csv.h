// CSV serialization for event logs, observations, and result series, so experiments can be
// archived and re-plotted outside the binaries.
//
// Event-log format, one row per event in (task, route-order):
//     task,state,queue,arrival,departure,initial
// Observation format, one row per event id:
//     event,arrival_observed,departure_observed

#ifndef QNET_TRACE_CSV_H_
#define QNET_TRACE_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"

namespace qnet {

void WriteEventLog(std::ostream& os, const EventLog& log);
void WriteEventLogFile(const std::string& path, const EventLog& log);

// Reads a log written by WriteEventLog; num_queues must match the writer's network.
EventLog ReadEventLog(std::istream& is, int num_queues);
EventLog ReadEventLogFile(const std::string& path, int num_queues);

void WriteObservation(std::ostream& os, const Observation& obs);
Observation ReadObservation(std::istream& is, const EventLog& log);

// Generic numeric series: a header row then one row per record.
void WriteSeries(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<double>>& rows);
void WriteSeriesFile(const std::string& path, const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows);

}  // namespace qnet

#endif  // QNET_TRACE_CSV_H_
