// CSV serialization for scenario-grid reports, so capacity-planning sweeps can be
// archived, diffed across fits, and re-plotted outside the binaries.
//
// Format (matching the event-log `#`-header convention): `#`-prefixed metadata lines
// pinning the report shape, a column header, then one row per cell in cell-index order:
//     # queues=N
//     # axes=<name>,<name>,...          (empty after '=' for an axis-free baseline grid)
//     # cells=M
//     # draws=D
//     # tasks_per_draw=T
//     # seed=S
//     cell,<axes...>,mean_resp,mean_resp_lo,mean_resp_hi,tail_resp,tail_resp_lo,
//     tail_resp_hi,bottleneck,ranking,analytic_valid,analytic_stable,analytic_mean_resp,
//     util_q1,util_q1_lo,util_q1_hi,qlen_q1,qlen_q1_lo,qlen_q1_hi,util_q2,...
// `ranking` is the bottleneck ranking as ';'-joined queue ids. Doubles are written with
// 17 significant digits, so write -> read round-trips bit-exactly.

#ifndef QNET_TRACE_SCENARIO_REPORT_H_
#define QNET_TRACE_SCENARIO_REPORT_H_

#include <iosfwd>
#include <string>

#include "qnet/scenario/scenario_engine.h"

namespace qnet {

void WriteScenarioReport(std::ostream& os, const ScenarioReport& report);
void WriteScenarioReportFile(const std::string& path, const ScenarioReport& report);

// Reads a report written by WriteScenarioReport; throws Error on malformed input.
ScenarioReport ReadScenarioReport(std::istream& is);
ScenarioReport ReadScenarioReportFile(const std::string& path);

}  // namespace qnet

#endif  // QNET_TRACE_SCENARIO_REPORT_H_
