// Fixed-width table formatting for the bench harnesses' paper-style output.

#ifndef QNET_TRACE_TABLE_H_
#define QNET_TRACE_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace qnet {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  void AddRow(const std::vector<double>& row, int precision = 4);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Helper: fixed-precision double to string.
std::string FormatDouble(double value, int precision = 4);

}  // namespace qnet

#endif  // QNET_TRACE_TABLE_H_
