#include "qnet/trace/scenario_report.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "qnet/support/check.h"
#include "qnet/trace/csv.h"

namespace qnet {

namespace {

void WriteBand(std::ostream& os, const MetricBand& band) {
  os << ',' << band.mean << ',' << band.lo << ',' << band.hi;
}

MetricBand ReadBand(const std::vector<std::string>& fields, std::size_t& at,
                    const std::string& line) {
  MetricBand band;
  band.mean = ParseCsvDouble(fields[at++], line);
  band.lo = ParseCsvDouble(fields[at++], line);
  band.hi = ParseCsvDouble(fields[at++], line);
  return band;
}

}  // namespace

void WriteScenarioReport(std::ostream& os, const ScenarioReport& report) {
  QNET_CHECK(report.num_queues >= 2, "report has no real queues");
  os << "# queues=" << report.num_queues << '\n';
  os << "# axes=";
  for (std::size_t a = 0; a < report.axis_names.size(); ++a) {
    os << (a > 0 ? "," : "") << report.axis_names[a];
  }
  os << '\n';
  os << "# cells=" << report.cells.size() << '\n';
  os << "# draws=" << report.draws << '\n';
  os << "# tasks_per_draw=" << report.tasks_per_draw << '\n';
  os << "# seed=" << report.seed << '\n';

  os << "cell";
  for (const std::string& name : report.axis_names) {
    os << ',' << name;
  }
  os << ",mean_resp,mean_resp_lo,mean_resp_hi,tail_resp,tail_resp_lo,tail_resp_hi"
     << ",bottleneck,ranking,analytic_valid,analytic_stable,analytic_mean_resp";
  for (int q = 1; q < report.num_queues; ++q) {
    os << ",util_q" << q << ",util_q" << q << "_lo,util_q" << q << "_hi"
       << ",qlen_q" << q << ",qlen_q" << q << "_lo,qlen_q" << q << "_hi";
  }
  os << '\n';
  // 17 significant digits round-trip doubles bit-exactly; restore the caller's
  // precision afterwards so writing a report has no side effect on their stream.
  const std::streamsize caller_precision = os.precision(17);

  for (const CellResult& cell : report.cells) {
    QNET_CHECK(cell.axis_values.size() == report.axis_names.size(),
               "cell axis values do not match the axis names");
    os << cell.cell;
    for (const double v : cell.axis_values) {
      os << ',' << v;
    }
    WriteBand(os, cell.mean_response);
    WriteBand(os, cell.tail_response);
    os << ',' << cell.bottleneck_queue << ',';
    for (std::size_t r = 0; r < cell.bottleneck_ranking.size(); ++r) {
      os << (r > 0 ? ";" : "") << cell.bottleneck_ranking[r];
    }
    os << ',' << (cell.analytic_valid ? 1 : 0) << ',' << (cell.analytic_stable ? 1 : 0)
       << ',' << cell.analytic_mean_response;
    for (int q = 1; q < report.num_queues; ++q) {
      WriteBand(os, cell.utilization[static_cast<std::size_t>(q)]);
      WriteBand(os, cell.queue_length[static_cast<std::size_t>(q)]);
    }
    os << '\n';
  }
  os.precision(caller_precision);
}

void WriteScenarioReportFile(const std::string& path, const ScenarioReport& report) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteScenarioReport(os, report);
  QNET_CHECK(os.good(), "write failed for ", path);
}

ScenarioReport ReadScenarioReport(std::istream& is) {
  ScenarioReport report;
  report.num_queues = ParseCsvInt(ReadCsvMetaLine(is, "queues", "scenario report"), "# queues");
  QNET_CHECK(report.num_queues >= 2, "bad queue count in scenario report");
  const std::string axes = ReadCsvMetaLine(is, "axes", "scenario report");
  if (!axes.empty()) {
    SplitCsvLine(axes, report.axis_names);
  }
  const std::size_t num_cells =
      static_cast<std::size_t>(ParseCsvLong(ReadCsvMetaLine(is, "cells", "scenario report"), "# cells"));
  report.draws =
      static_cast<std::size_t>(ParseCsvLong(ReadCsvMetaLine(is, "draws", "scenario report"), "# draws"));
  report.tasks_per_draw = static_cast<std::size_t>(
      ParseCsvLong(ReadCsvMetaLine(is, "tasks_per_draw", "scenario report"), "# tasks_per_draw"));
  report.seed = ParseCsvU64(ReadCsvMetaLine(is, "seed", "scenario report"), "# seed");

  std::string line;
  QNET_CHECK(static_cast<bool>(std::getline(is, line)), "missing scenario-report header");
  QNET_CHECK(line.rfind("cell,", 0) == 0 || line == "cell",
             "missing scenario-report column header, got: ", line);

  const std::size_t num_axes = report.axis_names.size();
  const auto real_queues = static_cast<std::size_t>(report.num_queues - 1);
  const std::size_t expected_fields = 1 + num_axes + 6 + 5 + 6 * real_queues;
  std::vector<std::string> fields;
  std::vector<std::string> ranking_fields;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    SplitCsvLine(line, fields);
    QNET_CHECK(fields.size() == expected_fields, "bad scenario-report row (want ",
               expected_fields, " fields, got ", fields.size(), "): ", line);
    CellResult cell;
    std::size_t at = 0;
    cell.cell = static_cast<std::size_t>(ParseCsvLong(fields[at++], line));
    QNET_CHECK(cell.cell == report.cells.size(), "cells out of order at row: ", line);
    cell.axis_values.reserve(num_axes);
    for (std::size_t a = 0; a < num_axes; ++a) {
      cell.axis_values.push_back(ParseCsvDouble(fields[at++], line));
    }
    cell.mean_response = ReadBand(fields, at, line);
    cell.tail_response = ReadBand(fields, at, line);
    cell.bottleneck_queue = ParseCsvInt(fields[at++], line);
    const std::string ranking = fields[at++];
    QNET_CHECK(!ranking.empty(), "empty bottleneck ranking in row: ", line);
    std::string semicolons = ranking;
    for (char& c : semicolons) {
      if (c == ';') {
        c = ',';
      }
    }
    SplitCsvLine(semicolons, ranking_fields);
    QNET_CHECK(ranking_fields.size() == real_queues, "ranking length mismatch in row: ",
               line);
    for (const std::string& r : ranking_fields) {
      cell.bottleneck_ranking.push_back(ParseCsvInt(r, line));
    }
    QNET_CHECK(fields[at] == "0" || fields[at] == "1", "bad analytic_valid flag: ", line);
    cell.analytic_valid = fields[at++] == "1";
    QNET_CHECK(fields[at] == "0" || fields[at] == "1", "bad analytic_stable flag: ", line);
    cell.analytic_stable = fields[at++] == "1";
    cell.analytic_mean_response = ParseCsvDouble(fields[at++], line);
    cell.utilization.resize(static_cast<std::size_t>(report.num_queues));
    cell.queue_length.resize(static_cast<std::size_t>(report.num_queues));
    for (int q = 1; q < report.num_queues; ++q) {
      cell.utilization[static_cast<std::size_t>(q)] = ReadBand(fields, at, line);
      cell.queue_length[static_cast<std::size_t>(q)] = ReadBand(fields, at, line);
    }
    report.cells.push_back(std::move(cell));
  }
  QNET_CHECK(report.cells.size() == num_cells, "scenario report declares ", num_cells,
             " cells but has ", report.cells.size());
  return report;
}

ScenarioReport ReadScenarioReportFile(const std::string& path) {
  std::ifstream is(path);
  QNET_CHECK(is.good(), "cannot open ", path);
  return ReadScenarioReport(is);
}

}  // namespace qnet
