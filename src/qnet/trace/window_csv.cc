#include "qnet/trace/window_csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "qnet/support/check.h"
#include "qnet/trace/csv.h"

namespace qnet {

void WriteWindowEstimates(std::ostream& os, const std::vector<WindowEstimate>& estimates,
                          int num_queues) {
  QNET_CHECK(num_queues >= 2, "window-estimate CSV needs at least 2 queues");
  os << "# queues=" << num_queues << '\n';
  os << "# windows=" << estimates.size() << '\n';
  // 17 significant digits round-trip doubles bit-exactly; restore the caller's
  // precision afterwards.
  const std::streamsize caller_precision = os.precision(17);
  for (const WindowEstimate& estimate : estimates) {
    QNET_CHECK(estimate.rates.size() == static_cast<std::size_t>(num_queues),
               "estimate rate vector does not match num_queues");
    QNET_CHECK(estimate.mean_wait.empty() ||
                   estimate.mean_wait.size() == static_cast<std::size_t>(num_queues),
               "estimate mean_wait vector does not match num_queues");
    os << estimate.t0 << ',' << estimate.t1 << ',' << estimate.tasks << ','
       << estimate.merged_tail_tasks << ','
       << (estimate.window_local_arrival_rate ? 1 : 0) << ','
       << (estimate.degraded ? 1 : 0) << ',' << estimate.fit_iterations << ','
       << estimate.alerts;
    for (const double rate : estimate.rates) {
      os << ',' << rate;
    }
    for (const double wait : estimate.mean_wait) {
      os << ',' << wait;
    }
    os << '\n';
  }
  os.precision(caller_precision);
}

void WriteWindowEstimatesFile(const std::string& path,
                              const std::vector<WindowEstimate>& estimates,
                              int num_queues) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteWindowEstimates(os, estimates, num_queues);
}

std::vector<WindowEstimate> ReadWindowEstimates(std::istream& is) {
  const int num_queues =
      ParseCsvInt(ReadCsvMetaLine(is, "queues", "window-estimate CSV"), "queues header");
  QNET_CHECK(num_queues >= 2, "window-estimate CSV has ", num_queues, " queues");
  const long windows = ParseCsvLong(
      ReadCsvMetaLine(is, "windows", "window-estimate CSV"), "windows header");
  QNET_CHECK(windows >= 0, "negative window count");

  std::vector<WindowEstimate> estimates;
  estimates.reserve(static_cast<std::size_t>(windows));
  const std::size_t queues = static_cast<std::size_t>(num_queues);
  std::string line;
  std::vector<std::string> fields;
  while (static_cast<long>(estimates.size()) < windows) {
    QNET_CHECK(static_cast<bool>(std::getline(is, line)),
               "truncated window-estimate CSV: expected ", windows, " rows, got ",
               estimates.size());
    if (line.empty()) {
      continue;
    }
    SplitCsvLine(line, fields);
    // Rows carry 7 (legacy, pre-alerts) or 8 leading metadata fields, then Q rates and
    // optionally Q waits. For Q >= 2 the four counts are pairwise distinct, so the
    // column count identifies both the format generation and the wait presence.
    const bool has_alerts =
        fields.size() == 8 + queues || fields.size() == 8 + 2 * queues;
    QNET_CHECK(has_alerts || fields.size() == 7 + queues ||
                   fields.size() == 7 + 2 * queues,
               "bad window-estimate row (", fields.size(), " fields): ", line);
    const std::size_t meta_fields = has_alerts ? 8 : 7;
    WindowEstimate estimate;
    estimate.t0 = ParseCsvDouble(fields[0], line);
    estimate.t1 = ParseCsvDouble(fields[1], line);
    estimate.tasks = static_cast<std::size_t>(ParseCsvLong(fields[2], line));
    estimate.merged_tail_tasks = static_cast<std::size_t>(ParseCsvLong(fields[3], line));
    estimate.window_local_arrival_rate = ParseCsvInt(fields[4], line) != 0;
    estimate.degraded = ParseCsvInt(fields[5], line) != 0;
    const long fit_iterations = ParseCsvLong(fields[6], line);
    QNET_CHECK(fit_iterations >= 0, "negative fit_iterations: ", line);
    estimate.fit_iterations = static_cast<std::size_t>(fit_iterations);
    if (has_alerts) {
      const long alerts = ParseCsvLong(fields[7], line);
      QNET_CHECK(alerts >= 0 && alerts <= 0xffffffffL, "bad alerts mask: ", line);
      estimate.alerts = static_cast<std::uint32_t>(alerts);
    }
    estimate.rates.resize(queues);
    for (std::size_t q = 0; q < queues; ++q) {
      estimate.rates[q] = ParseCsvDouble(fields[meta_fields + q], line);
    }
    if (fields.size() == meta_fields + 2 * queues) {
      estimate.mean_wait.resize(queues);
      for (std::size_t q = 0; q < queues; ++q) {
        estimate.mean_wait[q] = ParseCsvDouble(fields[meta_fields + queues + q], line);
      }
    }
    estimates.push_back(std::move(estimate));
  }
  return estimates;
}

}  // namespace qnet
