#include "qnet/trace/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "qnet/support/check.h"

namespace qnet {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) {
    fields.push_back(field);
  }
  return fields;
}

}  // namespace

void WriteEventLog(std::ostream& os, const EventLog& log) {
  os << "task,state,queue,arrival,departure,initial\n";
  os << std::setprecision(17);
  for (int task = 0; task < log.NumTasks(); ++task) {
    for (EventId e : log.TaskEvents(task)) {
      const Event& ev = log.At(e);
      os << ev.task << ',' << ev.state << ',' << ev.queue << ',' << ev.arrival << ','
         << ev.departure << ',' << (ev.initial ? 1 : 0) << '\n';
    }
  }
}

void WriteEventLogFile(const std::string& path, const EventLog& log) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteEventLog(os, log);
  QNET_CHECK(os.good(), "write failed for ", path);
}

EventLog ReadEventLog(std::istream& is, int num_queues) {
  std::string line;
  QNET_CHECK(static_cast<bool>(std::getline(is, line)), "empty event-log stream");
  QNET_CHECK(line.rfind("task,", 0) == 0, "missing event-log header");
  EventLog log(num_queues);
  int current_task = -1;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitCsvLine(line);
    QNET_CHECK(fields.size() == 6, "bad event-log row: ", line);
    const int task = std::stoi(fields[0]);
    const int state = std::stoi(fields[1]);
    const int queue = std::stoi(fields[2]);
    const double arrival = std::stod(fields[3]);
    const double departure = std::stod(fields[4]);
    const bool initial = fields[5] == "1";
    if (initial) {
      QNET_CHECK(task == current_task + 1, "tasks out of order at row: ", line);
      current_task = log.AddTask(departure);
      QNET_CHECK(current_task == task, "task renumbering mismatch");
    } else {
      log.AddVisit(task, state, queue, arrival, departure);
    }
  }
  log.BuildQueueLinks();
  return log;
}

EventLog ReadEventLogFile(const std::string& path, int num_queues) {
  std::ifstream is(path);
  QNET_CHECK(is.good(), "cannot open ", path);
  return ReadEventLog(is, num_queues);
}

void WriteObservation(std::ostream& os, const Observation& obs) {
  os << "event,arrival_observed,departure_observed\n";
  for (std::size_t e = 0; e < obs.arrival_observed.size(); ++e) {
    os << e << ',' << static_cast<int>(obs.arrival_observed[e]) << ','
       << static_cast<int>(obs.departure_observed[e]) << '\n';
  }
}

Observation ReadObservation(std::istream& is, const EventLog& log) {
  std::string line;
  QNET_CHECK(static_cast<bool>(std::getline(is, line)), "empty observation stream");
  QNET_CHECK(line.rfind("event,", 0) == 0, "missing observation header");
  Observation obs;
  obs.arrival_observed.assign(log.NumEvents(), 0);
  obs.departure_observed.assign(log.NumEvents(), 0);
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitCsvLine(line);
    QNET_CHECK(fields.size() == 3, "bad observation row: ", line);
    const auto e = static_cast<std::size_t>(std::stoul(fields[0]));
    QNET_CHECK(e < log.NumEvents(), "event id out of range: ", line);
    obs.arrival_observed[e] = fields[1] == "1" ? 1 : 0;
    obs.departure_observed[e] = fields[2] == "1" ? 1 : 0;
  }
  obs.Validate(log);
  return obs;
}

void WriteSeries(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<double>>& rows) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    os << header[i] << (i + 1 < header.size() ? "," : "");
  }
  os << '\n' << std::setprecision(12);
  for (const auto& row : rows) {
    QNET_CHECK(row.size() == header.size(), "row width != header width");
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "");
    }
    os << '\n';
  }
}

void WriteSeriesFile(const std::string& path, const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteSeries(os, header, rows);
  QNET_CHECK(os.good(), "write failed for ", path);
}

}  // namespace qnet
