#include "qnet/trace/csv.h"

#include <fstream>
#include <iomanip>
#include <istream>

#include "qnet/support/check.h"

namespace qnet {

void SplitCsvLine(const std::string& line, std::vector<std::string>& fields) {
  fields.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

namespace {

template <typename Parse>
auto ParseCsvNumber(const std::string& field, const std::string& line, Parse parse) {
  try {
    std::size_t pos = 0;
    const auto value = parse(field, &pos);
    QNET_CHECK(pos == field.size(), "bad numeric field '", field, "' in row: ", line);
    return value;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    internal::CheckFail("numeric CSV field", __FILE__, __LINE__,
                        internal::BuildMessage("bad numeric field '", field,
                                               "' in row: ", line));
  }
}

}  // namespace

int ParseCsvInt(const std::string& field, const std::string& line) {
  return ParseCsvNumber(field, line,
                        [](const std::string& s, std::size_t* pos) { return std::stoi(s, pos); });
}

long ParseCsvLong(const std::string& field, const std::string& line) {
  return ParseCsvNumber(field, line,
                        [](const std::string& s, std::size_t* pos) { return std::stol(s, pos); });
}

double ParseCsvDouble(const std::string& field, const std::string& line) {
  return ParseCsvNumber(field, line,
                        [](const std::string& s, std::size_t* pos) { return std::stod(s, pos); });
}

std::uint64_t ParseCsvU64(const std::string& field, const std::string& line) {
  QNET_CHECK(field.empty() || field[0] != '-', "bad numeric field '", field,
             "' in row: ", line);
  return ParseCsvNumber(field, line, [](const std::string& s, std::size_t* pos) {
    return std::stoull(s, pos);
  });
}

std::string ReadCsvMetaLine(std::istream& is, const std::string& key,
                            const std::string& what) {
  std::string line;
  QNET_CHECK(static_cast<bool>(std::getline(is, line)), "truncated ", what, ": missing ",
             key, " header");
  const std::string prefix = "# " + key + "=";
  QNET_CHECK(line.rfind(prefix, 0) == 0, "bad ", what, " header line: ", line,
             " (expected ", prefix, "...)");
  return line.substr(prefix.size());
}

void WriteEventLog(std::ostream& os, const EventLog& log) {
  os << "# queues=" << log.NumQueues() << '\n';
  os << "task,state,queue,arrival,departure,initial\n";
  os << std::setprecision(17);
  for (int task = 0; task < log.NumTasks(); ++task) {
    for (EventId e : log.TaskEvents(task)) {
      const Event& ev = log.At(e);
      os << ev.task << ',' << ev.state << ',' << ev.queue << ',' << ev.arrival << ','
         << ev.departure << ',' << (ev.initial ? 1 : 0) << '\n';
    }
  }
}

void WriteEventLogFile(const std::string& path, const EventLog& log) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteEventLog(os, log);
  QNET_CHECK(os.good(), "write failed for ", path);
}

int ReadEventLogHeader(std::istream& is, int num_queues) {
  std::string line;
  QNET_CHECK(static_cast<bool>(std::getline(is, line)), "empty event-log stream");
  static constexpr char kQueuesPrefix[] = "# queues=";
  if (line.rfind(kQueuesPrefix, 0) == 0) {
    const std::string value = line.substr(sizeof(kQueuesPrefix) - 1);
    bool digits = !value.empty() && value.size() <= 9;
    for (const char c : value) {
      digits = digits && c >= '0' && c <= '9';
    }
    QNET_CHECK(digits, "bad queues header: ", line);
    const int header_queues = std::stoi(value);
    QNET_CHECK(header_queues > 0, "bad queues header: ", line);
    QNET_CHECK(num_queues < 0 || num_queues == header_queues,
               "num_queues mismatch: caller says ", num_queues, ", header says ",
               header_queues);
    num_queues = header_queues;
    QNET_CHECK(static_cast<bool>(std::getline(is, line)), "truncated event-log stream");
  }
  QNET_CHECK(num_queues > 0,
             "event-log stream has no '# queues=N' header; pass num_queues explicitly");
  QNET_CHECK(line.rfind("task,", 0) == 0, "missing event-log header");
  return num_queues;
}

EventLog ReadEventLog(std::istream& is, int num_queues) {
  num_queues = ReadEventLogHeader(is, num_queues);
  std::string line;
  std::vector<std::string> fields;
  EventLog log(num_queues);
  int current_task = -1;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    SplitCsvLine(line, fields);
    QNET_CHECK(fields.size() == 6, "bad event-log row: ", line);
    QNET_CHECK(fields[5] == "0" || fields[5] == "1", "bad initial flag in row: ", line);
    const int task = ParseCsvInt(fields[0], line);
    const int state = ParseCsvInt(fields[1], line);
    const int queue = ParseCsvInt(fields[2], line);
    const double arrival = ParseCsvDouble(fields[3], line);
    const double departure = ParseCsvDouble(fields[4], line);
    const bool initial = fields[5] == "1";
    if (initial) {
      QNET_CHECK(task == current_task + 1, "tasks out of order at row: ", line);
      current_task = log.AddTask(departure);
      QNET_CHECK(current_task == task, "task renumbering mismatch");
    } else {
      log.AddVisit(task, state, queue, arrival, departure);
    }
  }
  log.BuildQueueLinks();
  return log;
}

EventLog ReadEventLogFile(const std::string& path, int num_queues) {
  std::ifstream is(path);
  QNET_CHECK(is.good(), "cannot open ", path);
  return ReadEventLog(is, num_queues);
}

EventLog ReadEventLog(std::istream& is) { return ReadEventLog(is, -1); }

EventLog ReadEventLogFile(const std::string& path) { return ReadEventLogFile(path, -1); }

void WriteObservation(std::ostream& os, const Observation& obs) {
  os << "event,arrival_observed,departure_observed\n";
  for (std::size_t e = 0; e < obs.arrival_observed.size(); ++e) {
    os << e << ',' << static_cast<int>(obs.arrival_observed[e]) << ','
       << static_cast<int>(obs.departure_observed[e]) << '\n';
  }
}

Observation ReadObservation(std::istream& is, const EventLog& log) {
  std::string line;
  QNET_CHECK(static_cast<bool>(std::getline(is, line)), "empty observation stream");
  QNET_CHECK(line.rfind("event,", 0) == 0, "missing observation header");
  Observation obs;
  obs.arrival_observed.assign(log.NumEvents(), 0);
  obs.departure_observed.assign(log.NumEvents(), 0);
  std::vector<std::string> fields;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    SplitCsvLine(line, fields);
    QNET_CHECK(fields.size() == 3, "bad observation row: ", line);
    QNET_CHECK((fields[1] == "0" || fields[1] == "1") &&
                   (fields[2] == "0" || fields[2] == "1"),
               "bad observation flags in row: ", line);
    const long event = ParseCsvLong(fields[0], line);
    const auto e = static_cast<std::size_t>(event);
    QNET_CHECK(event >= 0 && e < log.NumEvents(), "event id out of range: ", line);
    obs.arrival_observed[e] = fields[1] == "1" ? 1 : 0;
    obs.departure_observed[e] = fields[2] == "1" ? 1 : 0;
  }
  obs.Validate(log);
  return obs;
}

void WriteSeries(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<double>>& rows) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    os << header[i] << (i + 1 < header.size() ? "," : "");
  }
  os << '\n' << std::setprecision(12);
  for (const auto& row : rows) {
    QNET_CHECK(row.size() == header.size(), "row width != header width");
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "");
    }
    os << '\n';
  }
}

void WriteSeriesFile(const std::string& path, const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteSeries(os, header, rows);
  QNET_CHECK(os.good(), "write failed for ", path);
}

}  // namespace qnet
