// CSV round-tripping of per-window estimate sequences (WindowEstimate) — the merged
// output stream of StreamingEstimator and the sharded streaming fleet. Lets a monitor
// persist its rate trajectory (and a downstream process replay it) bit-exactly: doubles
// are written with 17 significant digits and parsed back to the same bits.
//
// Format:
//   # queues=Q
//   # windows=N
//   t0,t1,tasks,merged_tail_tasks,window_local_lambda,degraded,fit_iterations,alerts,
//       rate_q0..rate_q{Q-1}[,wait_q0..]
// The mean-wait columns are present only for estimates that carry them (wait_sweeps > 0
// or a mean-field fit); presence is per row, signaled by the column count. `alerts` is
// the change monitor's AlertKind bitmask (WindowEstimate::alerts; 0 when no monitor
// annotated the sequence). Rows written before the alerts column existed (7 + Q or
// 7 + 2Q fields instead of 8 + Q / 8 + 2Q) still parse, with alerts = 0 — the counts
// are unambiguous for the Q >= 2 the format requires.

#ifndef QNET_TRACE_WINDOW_CSV_H_
#define QNET_TRACE_WINDOW_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "qnet/stream/streaming_estimator.h"

namespace qnet {

void WriteWindowEstimates(std::ostream& os, const std::vector<WindowEstimate>& estimates,
                          int num_queues);
void WriteWindowEstimatesFile(const std::string& path,
                              const std::vector<WindowEstimate>& estimates, int num_queues);

// Inverse of WriteWindowEstimates; throws qnet::Error on malformed input.
std::vector<WindowEstimate> ReadWindowEstimates(std::istream& is);

}  // namespace qnet

#endif  // QNET_TRACE_WINDOW_CSV_H_
