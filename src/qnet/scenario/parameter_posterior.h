// A bag of posterior parameter draws (per-queue rate vectors, index 0 = lambda) that the
// scenario engine pushes through what-if cells, so every predicted metric carries
// posterior uncertainty instead of a point estimate.
//
// Sources:
//  * FromSummary — one draw per accumulated Gibbs sweep via PosteriorSummary::RateDraw
//    (the fitted-rates path of RunParallelChains / RunMultiChainGibbs);
//  * FromStem — the post-burn-in StEM iterates theta_t of StemResult::rate_trace, which
//    are the sampler's stationary parameter draws (approximate posterior samples up to
//    the StEM perturbation);
//  * FromPoint — a single rate vector, for point-estimate forecasting (e.g. the
//    per-window streaming estimates, which carry no within-window uncertainty).
//
// Draws keep their source order and autocorrelation; the engine thins deterministically
// when it uses fewer draws than are stored.

#ifndef QNET_SCENARIO_PARAMETER_POSTERIOR_H_
#define QNET_SCENARIO_PARAMETER_POSTERIOR_H_

#include <cstddef>
#include <vector>

#include "qnet/infer/posterior.h"
#include "qnet/infer/stem.h"

namespace qnet {

class ParameterPosterior {
 public:
  static ParameterPosterior FromSummary(const PosteriorSummary& summary);
  // Uses rate_trace[burn_in..]; CHECK-fails unless at least one iterate survives.
  static ParameterPosterior FromStem(const StemResult& stem, std::size_t burn_in);
  static ParameterPosterior FromPoint(std::vector<double> rates);

  std::size_t NumDraws() const { return draws_.size(); }
  int NumQueues() const;
  const std::vector<double>& Draw(std::size_t i) const;

  // Posterior mean rates across draws.
  std::vector<double> MeanRates() const;
  // Per-queue rate quantile across draws (q in [0, 1]).
  std::vector<double> RateQuantile(double q) const;

 private:
  explicit ParameterPosterior(std::vector<std::vector<double>> draws);

  std::vector<std::vector<double>> draws_;  // [draw][queue]
};

}  // namespace qnet

#endif  // QNET_SCENARIO_PARAMETER_POSTERIOR_H_
