#include "qnet/scenario/scenario_spec.h"

#include <cmath>
#include <memory>
#include <utility>

#include "qnet/dist/exponential.h"
#include "qnet/support/check.h"

namespace qnet {

ScenarioGrid::ScenarioGrid(std::vector<ScenarioAxis> axes) : axes_(std::move(axes)) {
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const ScenarioAxis& axis = axes_[a];
    QNET_CHECK(!axis.name.empty(), "axis ", a, " has no name");
    QNET_CHECK(axis.name.find(',') == std::string::npos, "axis name '", axis.name,
               "' contains a comma (reserved for report columns)");
    QNET_CHECK(!axis.values.empty(), "axis '", axis.name, "' has no values");
    for (std::size_t b = 0; b < a; ++b) {
      QNET_CHECK(axes_[b].name != axis.name, "duplicate axis name '", axis.name, "'");
    }
    for (const double v : axis.values) {
      QNET_CHECK(v > 0.0, "axis '", axis.name, "' has nonpositive value ", v);
      if (axis.kind == AxisKind::kServerCount) {
        QNET_CHECK(v == std::floor(v), "axis '", axis.name,
                   "' is a server-count axis but has non-integral value ", v);
      }
    }
    if (axis.kind == AxisKind::kServerCount || axis.kind == AxisKind::kRoutingScale) {
      QNET_CHECK(axis.queue >= 1, "axis '", axis.name, "' needs a real target queue");
    }
    if (axis.kind == AxisKind::kRoutingScale) {
      QNET_CHECK(axis.state >= 0, "axis '", axis.name, "' needs a target FSM state");
    }
    num_cells_ *= axis.values.size();
  }
}

std::vector<std::string> ScenarioGrid::AxisNames() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const ScenarioAxis& axis : axes_) {
    names.push_back(axis.name);
  }
  return names;
}

ScenarioCell ScenarioGrid::Cell(std::size_t index) const {
  ScenarioCell cell;
  Cell(index, cell);
  return cell;
}

void ScenarioGrid::Cell(std::size_t index, ScenarioCell& cell) const {
  QNET_CHECK(index < num_cells_, "cell index ", index, " out of range (", num_cells_,
             " cells)");
  cell.index = index;
  cell.coords.resize(axes_.size());
  cell.values.resize(axes_.size());
  std::size_t rest = index;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const std::size_t size = axes_[a].values.size();
    cell.coords[a] = rest % size;
    cell.values[a] = axes_[a].values[cell.coords[a]];
    rest /= size;
  }
}

CellRealization ScenarioGrid::Realize(const QueueingNetwork& base, const ScenarioCell& cell,
                                      std::span<const double> draw) const {
  const auto num_queues = static_cast<std::size_t>(base.NumQueues());
  QNET_CHECK(draw.size() == num_queues, "draw has ", draw.size(), " rates but network has ",
             num_queues, " queues");
  QNET_CHECK(cell.values.size() == axes_.size(), "cell/axes shape mismatch");

  CellRealization real{std::vector<double>(draw.begin(), draw.end()),
                       std::vector<int>(num_queues, 1), base.Clone()};
  for (std::size_t q = 0; q < num_queues; ++q) {
    QNET_CHECK(real.rates[q] > 0.0, "draw rate for queue ", q, " is not positive");
  }

  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const ScenarioAxis& axis = axes_[a];
    const double value = cell.values[a];
    switch (axis.kind) {
      case AxisKind::kArrivalScale:
        real.rates[0] *= value;
        break;
      case AxisKind::kServiceScale:
        QNET_CHECK(axis.queue == -1 ||
                       (axis.queue >= 1 && axis.queue < base.NumQueues()),
                   "axis '", axis.name, "' targets queue ", axis.queue,
                   " outside the network");
        if (axis.queue == -1) {
          for (std::size_t q = 1; q < num_queues; ++q) {
            real.rates[q] *= value;
          }
        } else {
          real.rates[static_cast<std::size_t>(axis.queue)] *= value;
        }
        break;
      case AxisKind::kServerCount:
        QNET_CHECK(axis.queue >= 1 && axis.queue < base.NumQueues(), "axis '", axis.name,
                   "' targets queue ", axis.queue, " outside the network");
        real.servers[static_cast<std::size_t>(axis.queue)] = static_cast<int>(value);
        break;
      case AxisKind::kRoutingScale: {
        QNET_CHECK(axis.queue >= 1 && axis.queue < base.NumQueues(), "axis '", axis.name,
                   "' targets queue ", axis.queue, " outside the network");
        Fsm& fsm = real.net.MutableFsm();
        QNET_CHECK(axis.state >= 0 && axis.state < fsm.NumStates(), "axis '", axis.name,
                   "' targets state ", axis.state, " outside the FSM");
        std::vector<int> queues;
        std::vector<double> weights;
        for (int q = 1; q < base.NumQueues(); ++q) {
          double w = fsm.Emission(axis.state, q);
          if (q == axis.queue) {
            QNET_CHECK(w > 0.0, "axis '", axis.name, "' scales emission (state ",
                       axis.state, " -> queue ", q, ") which is zero");
            w *= value;
          }
          if (w > 0.0) {
            queues.push_back(q);
            weights.push_back(w);
          }
        }
        fsm.SetWeightedEmission(axis.state, queues, weights);
        break;
      }
    }
  }

  // Materialize services at the pooled per-queue rates (arrival queue always 1 server).
  real.net.SetService(0, std::make_unique<Exponential>(real.rates[0]));
  for (std::size_t q = 1; q < num_queues; ++q) {
    real.net.SetService(static_cast<int>(q),
                        std::make_unique<Exponential>(
                            static_cast<double>(real.servers[q]) * real.rates[q]));
  }
  return real;
}

void ScenarioGrid::RealizeOverlay(const QueueingNetwork& base, const ScenarioCell& cell,
                                  std::span<const double> draw, CellOverlay& overlay) const {
  // Mirrors Realize() transform-for-transform (same multiplication order, same
  // normalization arithmetic) so overlay-driven cells stay bit-identical to clone-driven
  // ones. Any change here must be made in Realize too.
  const auto num_queues = static_cast<std::size_t>(base.NumQueues());
  QNET_CHECK(draw.size() == num_queues, "draw has ", draw.size(), " rates but network has ",
             num_queues, " queues");
  QNET_CHECK(cell.values.size() == axes_.size(), "cell/axes shape mismatch");

  overlay.num_queues_ = base.NumQueues();
  overlay.rates_.assign(draw.begin(), draw.end());
  overlay.servers_.assign(num_queues, 1);
  overlay.edited_index_.clear();
  overlay.edited_rows_.clear();
  for (std::size_t q = 0; q < num_queues; ++q) {
    QNET_CHECK(overlay.rates_[q] > 0.0, "draw rate for queue ", q, " is not positive");
  }

  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const ScenarioAxis& axis = axes_[a];
    const double value = cell.values[a];
    switch (axis.kind) {
      case AxisKind::kArrivalScale:
        overlay.rates_[0] *= value;
        break;
      case AxisKind::kServiceScale:
        QNET_CHECK(axis.queue == -1 ||
                       (axis.queue >= 1 && axis.queue < base.NumQueues()),
                   "axis '", axis.name, "' targets queue ", axis.queue,
                   " outside the network");
        if (axis.queue == -1) {
          for (std::size_t q = 1; q < num_queues; ++q) {
            overlay.rates_[q] *= value;
          }
        } else {
          overlay.rates_[static_cast<std::size_t>(axis.queue)] *= value;
        }
        break;
      case AxisKind::kServerCount:
        QNET_CHECK(axis.queue >= 1 && axis.queue < base.NumQueues(), "axis '", axis.name,
                   "' targets queue ", axis.queue, " outside the network");
        overlay.servers_[static_cast<std::size_t>(axis.queue)] = static_cast<int>(value);
        break;
      case AxisKind::kRoutingScale: {
        QNET_CHECK(axis.queue >= 1 && axis.queue < base.NumQueues(), "axis '", axis.name,
                   "' targets queue ", axis.queue, " outside the network");
        const Fsm& fsm = base.GetFsm();
        QNET_CHECK(axis.state >= 0 && axis.state < fsm.NumStates(), "axis '", axis.name,
                   "' targets state ", axis.state, " outside the FSM");
        if (overlay.edited_index_.empty()) {
          overlay.edited_index_.assign(static_cast<std::size_t>(fsm.NumStates()), -1);
        }
        // Read the current effective row (a second routing axis on the same state must
        // see the first edit's normalized weights, exactly like sequential
        // SetWeightedEmission calls on the clone).
        const std::span<const double> row = overlay.EmissionRow(fsm, axis.state);
        // Scale the target, then normalize over the positive entries. The total is
        // accumulated in ascending-queue order — the same float-addition sequence as
        // SetWeightedEmission summing the weights vector Realize builds in q order.
        overlay.scratch_row_.assign(num_queues, 0.0);
        double total = 0.0;
        for (int q = 1; q < base.NumQueues(); ++q) {
          double w = row[static_cast<std::size_t>(q)];
          if (q == axis.queue) {
            QNET_CHECK(w > 0.0, "axis '", axis.name, "' scales emission (state ",
                       axis.state, " -> queue ", q, ") which is zero");
            w *= value;
          }
          if (w > 0.0) {
            overlay.scratch_row_[static_cast<std::size_t>(q)] = w;
            total += w;
          }
        }
        auto& slot = overlay.edited_index_[static_cast<std::size_t>(axis.state)];
        if (slot < 0) {
          slot = static_cast<int>(overlay.edited_rows_.size() / num_queues);
          overlay.edited_rows_.resize(overlay.edited_rows_.size() + num_queues, 0.0);
        }
        double* out =
            overlay.edited_rows_.data() + static_cast<std::size_t>(slot) * num_queues;
        for (std::size_t q = 0; q < num_queues; ++q) {
          const double w = overlay.scratch_row_[q];
          out[q] = w > 0.0 ? w / total : 0.0;
        }
        break;
      }
    }
  }

  overlay.pooled_.resize(num_queues);
  overlay.pooled_[0] = overlay.rates_[0];
  for (std::size_t q = 1; q < num_queues; ++q) {
    overlay.pooled_[q] = static_cast<double>(overlay.servers_[q]) * overlay.rates_[q];
  }
}

}  // namespace qnet
