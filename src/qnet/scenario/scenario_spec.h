// Scenario specification: parameterized what-if transformations of a fitted network.
//
// The point of inferring service demands from incomplete traces is to answer capacity
// questions: what happens to latency if traffic doubles, if a tier gets two more servers,
// if routing shifts load between replicas? A ScenarioAxis names ONE such knob together
// with the grid of values it sweeps; a ScenarioGrid expands the axes' Cartesian product
// into a cell lattice and materializes any cell as a concrete simulatable network given a
// parameter draw (per-queue exponential rates, index 0 = lambda) from the fitted
// posterior. The grid is pure data — evaluation lives in scenario_engine.h.

#ifndef QNET_SCENARIO_SCENARIO_SPEC_H_
#define QNET_SCENARIO_SCENARIO_SPEC_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "qnet/model/network.h"

namespace qnet {

enum class AxisKind {
  // Multiply the arrival rate lambda by the axis value.
  kArrivalScale,
  // Multiply queue `queue`'s service rate by the axis value (queue == -1: every real
  // queue — a uniform hardware speedup).
  kServiceScale,
  // Set queue `queue`'s server count to the axis value (a positive integer). The DES
  // models c servers as one pooled server of rate c * mu — exact in heavy traffic,
  // optimistic at low load — while the analytic cross-check uses the exact Erlang-C
  // M/M/c formulas, so the report surfaces the approximation error.
  kServerCount,
  // Multiply the FSM emission weight of (state, queue) by the axis value and renormalize
  // that state's emission row — shifts traffic toward (value > 1) or away from
  // (value < 1) one replica.
  kRoutingScale,
};

struct ScenarioAxis {
  AxisKind kind = AxisKind::kArrivalScale;
  // Column label in reports (must be unique within a grid, no commas).
  std::string name;
  // Target queue (kServiceScale: -1 allowed for "all real queues"; kServerCount and
  // kRoutingScale require a real queue id).
  int queue = -1;
  // Target FSM state (kRoutingScale only).
  int state = -1;
  // Grid points, all positive; kServerCount values must be integral.
  std::vector<double> values;
};

// One lattice point: the per-axis value indices and values for a flat cell index.
struct ScenarioCell {
  std::size_t index = 0;
  std::vector<std::size_t> coords;  // coords[a] indexes axes[a].values
  std::vector<double> values;       // values[a] == axes[a].values[coords[a]]
};

// A materialized cell: the transformed per-server rates, the per-queue server counts,
// and the DES-ready network (exponential services at the pooled rates, edited FSM).
struct CellRealization {
  std::vector<double> rates;  // per-SERVER rates post-transform; index 0 = lambda
  std::vector<int> servers;   // per-queue server count (index 0 is always 1)
  QueueingNetwork net;
};

// The clone-free counterpart of CellRealization: the same transformed rates and server
// counts plus the cell's edited FSM emission rows, held as a lightweight overlay over one
// shared immutable base network instead of a per-cell deep clone. ScenarioGrid::
// RealizeOverlay mirrors Realize()'s arithmetic operation-for-operation, so a DES (or
// analytic cross-check) driven off the overlay is bit-identical to one driven off the
// realized clone. Reusable: every buffer keeps its capacity across RealizeOverlay calls.
class CellOverlay {
 public:
  // Per-server rates post-transform; index 0 = lambda (== CellRealization::rates).
  std::span<const double> Rates() const { return rates_; }
  // Per-queue server counts (== CellRealization::servers).
  std::span<const int> Servers() const { return servers_; }
  // Pooled DES service rates: [0] = lambda, [q] = servers[q] * rates[q] — exactly the
  // Exponential rates Realize() installs on the cloned network.
  std::span<const double> PooledRates() const { return pooled_; }
  double ArrivalRate() const { return rates_[0]; }

  // Effective emission row of `state` under this cell's routing edits: the edited,
  // renormalized row when the cell touched it, `fsm`'s own row otherwise. `fsm` must be
  // the base network's FSM the overlay was realized against.
  std::span<const double> EmissionRow(const Fsm& fsm, int state) const {
    const auto s = static_cast<std::size_t>(state);
    if (s < edited_index_.size() && edited_index_[s] >= 0) {
      return {edited_rows_.data() +
                  static_cast<std::size_t>(edited_index_[s]) * static_cast<std::size_t>(num_queues_),
              static_cast<std::size_t>(num_queues_)};
    }
    return fsm.EmissionRow(state);
  }

 private:
  friend class ScenarioGrid;

  std::vector<double> rates_;
  std::vector<int> servers_;
  std::vector<double> pooled_;
  int num_queues_ = 0;
  // Per-state index into edited_rows_ (-1: base row). Sized lazily on the first routing
  // edit, so routing-free grids never touch the FSM.
  std::vector<int> edited_index_;
  std::vector<double> edited_rows_;  // flat, num_queues_ columns per edited state
  std::vector<double> scratch_row_;  // RealizeOverlay workspace
};

class ScenarioGrid {
 public:
  // Validates the axes: nonempty values, positive, unique nonempty names, integral
  // server counts. An empty axis list is allowed and yields one cell (the baseline).
  explicit ScenarioGrid(std::vector<ScenarioAxis> axes);

  std::size_t NumAxes() const { return axes_.size(); }
  std::size_t NumCells() const { return num_cells_; }
  const std::vector<ScenarioAxis>& Axes() const { return axes_; }
  std::vector<std::string> AxisNames() const;

  // Decodes a flat index into lattice coordinates; axis 0 varies fastest.
  ScenarioCell Cell(std::size_t index) const;
  // Allocation-reusing overload: refills `cell` in place (capacity kept).
  void Cell(std::size_t index, ScenarioCell& cell) const;

  // Applies the cell's transforms to a posterior rate draw (index 0 = lambda) against
  // `base`'s topology: returns per-server rates, server counts, and a clone of `base`
  // with Exponential(servers * rate) services and the cell's routing edits applied.
  // CHECK-fails when an axis targets a queue/state outside the base network.
  CellRealization Realize(const QueueingNetwork& base, const ScenarioCell& cell,
                          std::span<const double> draw) const;

  // Clone-free equivalent of Realize: fills `overlay` (buffers reused) with rates,
  // server counts, pooled DES rates, and edited emission rows that are bit-identical to
  // what Realize would have produced/installed — without copying the network.
  void RealizeOverlay(const QueueingNetwork& base, const ScenarioCell& cell,
                      std::span<const double> draw, CellOverlay& overlay) const;

 private:
  std::vector<ScenarioAxis> axes_;
  std::size_t num_cells_ = 1;
};

}  // namespace qnet

#endif  // QNET_SCENARIO_SCENARIO_SPEC_H_
