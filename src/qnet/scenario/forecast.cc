#include "qnet/scenario/forecast.h"

#include <utility>

#include "qnet/scenario/parameter_posterior.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {

WindowForecaster::WindowForecaster(const QueueingNetwork& base, ScenarioGrid grid,
                                   const ScenarioEngineOptions& options, std::uint64_t seed)
    : base_(base.Clone()), grid_(std::move(grid)), engine_(options), seed_(seed) {}

const ScenarioReport& WindowForecaster::Forecast(const WindowEstimate& estimate) {
  const bool replaces = estimate.merged_tail_tasks > 0;
  std::uint64_t window = 0;
  if (replaces) {
    QNET_CHECK(windows_ > 0, "merged-tail forecast with no previous window");
    window = windows_ - 1;
  } else {
    window = windows_++;
  }
  if (estimate.degraded) {
    ++degraded_forecasts_;
  }
  std::vector<double> rates = estimate.rates;
  if (!estimate.window_local_arrival_rate) {
    // Legacy absolute-time lambda iterate: queue-0 "services" telescope to the window's
    // end time, so rates[0] decays as the stream ages. Fall back to the window's
    // empirical arrival rate. Estimators run with
    // StreamingEstimatorOptions::window_local_arrival_rate deliver a window-anchored
    // fitted lambda, which is used as-is (it also reflects latent arrivals the empirical
    // count misses).
    QNET_CHECK(estimate.t1 > estimate.t0 && estimate.tasks > 0,
               "window estimate has no span/tasks to derive an arrival rate from");
    rates[0] = static_cast<double>(estimate.tasks) / (estimate.t1 - estimate.t0);
  }
  ScenarioReport report = engine_.Evaluate(
      base_, ParameterPosterior::FromPoint(std::move(rates)), grid_, MixSeed(seed_, window));
  if (replaces) {
    reports_.back() = std::move(report);
  } else {
    reports_.push_back(std::move(report));
  }
  return reports_.back();
}

std::function<void(const WindowEstimate&)> WindowForecaster::Hook() {
  return [this](const WindowEstimate& estimate) { Forecast(estimate); };
}

}  // namespace qnet
