#include "qnet/scenario/scenario_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "qnet/dist/exponential.h"
#include "qnet/infer/mg1.h"
#include "qnet/infer/mm1.h"
#include "qnet/infer/thread_pool.h"
#include "qnet/model/event.h"
#include "qnet/model/traffic.h"
#include "qnet/sim/simulator.h"
#include "qnet/sim/workload.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"
#include "qnet/support/stopwatch.h"

namespace qnet {

namespace {

// Per-(cell, draw) DES metrics before the across-draw reduction.
struct DrawMetrics {
  double mean_response = 0.0;
  double tail_response = 0.0;
  std::vector<double> utilization;
  std::vector<double> queue_length;
};

DrawMetrics MeasureSimulation(const EventLog& log, const ScenarioEngineOptions& options) {
  const int num_tasks = log.NumTasks();
  const auto num_queues = static_cast<std::size_t>(log.NumQueues());
  DrawMetrics metrics;

  const int warm = static_cast<int>(static_cast<double>(num_tasks) * options.warmup_fraction);
  QNET_CHECK(warm < num_tasks, "warmup fraction leaves no measured tasks");
  std::vector<double> responses;
  responses.reserve(static_cast<std::size_t>(num_tasks - warm));
  double horizon = 0.0;
  for (int k = 0; k < num_tasks; ++k) {
    const double exit = log.TaskExitTime(k);
    horizon = std::max(horizon, exit);
    if (k >= warm) {
      responses.push_back(exit - log.TaskEntryTime(k));
    }
  }
  metrics.mean_response = Mean(responses);
  metrics.tail_response = Quantile(responses, options.tail_quantile);

  QNET_CHECK(horizon > 0.0, "degenerate simulation horizon");
  const std::vector<double> busy = log.PerQueueServiceSum();
  metrics.utilization.assign(num_queues, 0.0);
  metrics.queue_length.assign(num_queues, 0.0);
  for (std::size_t q = 1; q < num_queues; ++q) {
    metrics.utilization[q] = busy[q] / horizon;
    // Time-average number waiting: the integral of N_q(t) dt equals the sum of
    // individual waiting durations (Little's law area argument).
    double wait_sum = 0.0;
    for (const EventId e : log.QueueOrder(static_cast<int>(q))) {
      wait_sum += log.WaitTime(e);
    }
    metrics.queue_length[q] = wait_sum / horizon;
  }
  return metrics;
}

MetricBand ReduceBand(std::vector<double>& values, const ScenarioEngineOptions& options) {
  MetricBand band;
  band.mean = Mean(values);
  band.lo = Quantile(values, options.band_lo);
  band.hi = Quantile(values, options.band_hi);
  return band;
}

CellResult EvaluateCell(const QueueingNetwork& base, const ParameterPosterior& posterior,
                        const ScenarioGrid& grid, std::size_t cell_index,
                        std::uint64_t seed, std::size_t draws,
                        const ScenarioEngineOptions& options) {
  const ScenarioCell cell = grid.Cell(cell_index);
  const auto num_queues = static_cast<std::size_t>(base.NumQueues());

  CellResult result;
  result.cell = cell_index;
  result.axis_values = cell.values;

  std::vector<DrawMetrics> per_draw(draws);
  for (std::size_t d = 0; d < draws; ++d) {
    // Deterministic thinning spreads the used draws across the stored chain.
    const std::size_t source = d * posterior.NumDraws() / draws;
    const CellRealization real = grid.Realize(base, cell, posterior.Draw(source));
    // The (cell, draw) stream is a pure function of lattice position — never of
    // scheduling. CRN drops the cell salt so load sweeps share arrival/service draws.
    const std::uint64_t salt_base =
        options.common_random_numbers ? seed : MixSeed(seed, cell_index);
    Rng rng(MixSeed(salt_base, d));
    const EventLog log = SimulateWorkload(
        real.net, PoissonArrivals(real.rates[0], options.tasks_per_draw), rng);
    per_draw[d] = MeasureSimulation(log, options);
  }

  std::vector<double> column(draws, 0.0);
  const auto reduce = [&](const auto& get) {
    for (std::size_t d = 0; d < draws; ++d) {
      column[d] = get(per_draw[d]);
    }
    return ReduceBand(column, options);
  };
  result.mean_response = reduce([](const DrawMetrics& m) { return m.mean_response; });
  result.tail_response = reduce([](const DrawMetrics& m) { return m.tail_response; });
  result.utilization.resize(num_queues);
  result.queue_length.resize(num_queues);
  for (std::size_t q = 1; q < num_queues; ++q) {
    result.utilization[q] = reduce([q](const DrawMetrics& m) { return m.utilization[q]; });
    result.queue_length[q] = reduce([q](const DrawMetrics& m) { return m.queue_length[q]; });
  }

  result.bottleneck_ranking.resize(num_queues - 1);
  std::iota(result.bottleneck_ranking.begin(), result.bottleneck_ranking.end(), 1);
  std::sort(result.bottleneck_ranking.begin(), result.bottleneck_ranking.end(),
            [&](int a, int b) {
              const double ua = result.utilization[static_cast<std::size_t>(a)].mean;
              const double ub = result.utilization[static_cast<std::size_t>(b)].mean;
              return ua != ub ? ua > ub : a < b;
            });
  result.bottleneck_queue = result.bottleneck_ranking.front();

  if (options.analytic) {
    const CellRealization mean_cell = grid.Realize(base, cell, posterior.MeanRates());
    const AnalyticPrediction analytic =
        AnalyzeCellAnalytic(mean_cell.net, mean_cell.servers, mean_cell.rates);
    result.analytic_valid = true;
    result.analytic_stable = analytic.stable;
    result.analytic_mean_response = analytic.mean_response;
  }
  return result;
}

}  // namespace

AnalyticPrediction AnalyzeCellAnalytic(const QueueingNetwork& net,
                                       std::span<const int> servers,
                                       std::span<const double> per_server_rates) {
  const auto num_queues = static_cast<std::size_t>(net.NumQueues());
  QNET_CHECK(servers.empty() || servers.size() == num_queues,
             "servers span size mismatch");
  QNET_CHECK(per_server_rates.empty() || per_server_rates.size() == num_queues,
             "per-server rates span size mismatch");

  const TrafficAnalysis traffic = AnalyzeTraffic(net);
  AnalyticPrediction prediction;
  prediction.stable = true;
  prediction.utilization.assign(num_queues, 0.0);
  double total = 0.0;
  for (std::size_t q = 1; q < num_queues; ++q) {
    const double lambda_q = traffic.arrival_rates[q];
    const int c = servers.empty() ? 1 : servers[q];
    QNET_CHECK(c >= 1, "queue ", q, " has server count ", c);
    double mean_response = 0.0;
    bool stable = false;
    if (c > 1) {
      QNET_CHECK(!per_server_rates.empty(),
                 "multi-server analytic path needs per-server rates");
      const MmcMetrics m = AnalyzeMmc(lambda_q, per_server_rates[q], c);
      stable = m.stable;
      mean_response = m.mean_response;
      prediction.utilization[q] = m.utilization;
    } else if (const auto* exp_dist =
                   dynamic_cast<const Exponential*>(&net.Service(static_cast<int>(q)))) {
      const Mm1Metrics m = AnalyzeMm1(lambda_q, exp_dist->rate());
      stable = m.stable;
      mean_response = m.mean_response;
      prediction.utilization[q] = m.utilization;
    } else {
      const Mg1Metrics m = AnalyzeMg1(lambda_q, net.Service(static_cast<int>(q)));
      stable = m.stable;
      mean_response = m.mean_response;
      prediction.utilization[q] = m.utilization;
    }
    if (!stable) {
      prediction.stable = false;
      continue;
    }
    total += traffic.queue_visits[q] * mean_response;
  }
  if (prediction.stable) {
    prediction.mean_response = total;
  }
  return prediction;
}

ScenarioEngine::ScenarioEngine(ScenarioEngineOptions options) : options_(options) {
  QNET_CHECK(options_.max_draws >= 1, "max_draws must be positive");
  QNET_CHECK(options_.tasks_per_draw >= 2, "tasks_per_draw must be at least 2");
  QNET_CHECK(options_.warmup_fraction >= 0.0 && options_.warmup_fraction < 1.0,
             "warmup_fraction must be in [0, 1)");
  QNET_CHECK(options_.band_lo >= 0.0 && options_.band_hi <= 1.0 &&
                 options_.band_lo <= options_.band_hi,
             "band quantiles must satisfy 0 <= lo <= hi <= 1");
  QNET_CHECK(options_.tail_quantile > 0.0 && options_.tail_quantile < 1.0,
             "tail_quantile must be in (0, 1)");
}

ScenarioReport ScenarioEngine::Evaluate(const QueueingNetwork& base,
                                        const ParameterPosterior& posterior,
                                        const ScenarioGrid& grid, std::uint64_t seed) {
  QNET_CHECK(posterior.NumQueues() == base.NumQueues(),
             "posterior has ", posterior.NumQueues(), " rates but the network has ",
             base.NumQueues(), " queues");
  Stopwatch watch;

  ScenarioReport report;
  report.num_queues = base.NumQueues();
  report.draws = std::min(options_.max_draws, posterior.NumDraws());
  report.tasks_per_draw = options_.tasks_per_draw;
  report.seed = seed;
  report.axis_names = grid.AxisNames();
  report.cells.resize(grid.NumCells());

  // Static cell -> thread sharding; each cell writes only its own slot, so the report is
  // bit-identical for any thread count.
  RunOnThreadPool(grid.NumCells(), options_.threads, [&](std::size_t i) {
    report.cells[i] =
        EvaluateCell(base, posterior, grid, i, seed, report.draws, options_);
  });

  stats_.wall_seconds = watch.ElapsedSeconds();
  stats_.cells_per_second =
      stats_.wall_seconds > 0.0
          ? static_cast<double>(grid.NumCells()) / stats_.wall_seconds
          : 0.0;
  return report;
}

}  // namespace qnet
