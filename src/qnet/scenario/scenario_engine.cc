#include "qnet/scenario/scenario_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "qnet/dist/exponential.h"
#include "qnet/infer/mg1.h"
#include "qnet/infer/mm1.h"
#include "qnet/infer/thread_pool.h"
#include "qnet/model/event.h"
#include "qnet/model/traffic.h"
#include "qnet/sim/sim_scratch.h"
#include "qnet/sim/simulator.h"
#include "qnet/sim/workload.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"
#include "qnet/support/stopwatch.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

// Everything one worker needs to evaluate cells without allocating: the DES arena, the
// cell overlay, and flat draw-metric matrices for the across-draw reduction. Owned by the
// engine (one per worker thread) and persistent across Evaluate calls.
struct ScenarioCellWorkspace {
  SimScratch scratch;
  CellOverlay overlay;
  ScenarioCell cell;
  // Per-draw metrics: scalars indexed [draw], per-queue matrices [draw * num_queues + q].
  std::vector<double> draw_mean;
  std::vector<double> draw_tail;
  std::vector<double> draw_util;
  std::vector<double> draw_qlen;
  std::vector<double> column;     // across-draw reduction buffer
  std::vector<double> responses;  // post-warmup per-task latencies of one draw
  std::vector<double> queue_visits;  // analytic-path workspace
};

namespace {

// Analytic-path inputs that are identical for every cell: no axis edits the FSM's
// transition structure, so the expected state visits solve once per Evaluate, and the
// posterior mean rates are a pure function of the posterior.
struct AnalyticContext {
  std::vector<double> state_visits;
  std::vector<double> mean_rates;
};

// Samples one route per staged entry time, drawing queues from the overlay's effective
// emission rows and successors from the base FSM's transition rows — the exact
// Categorical sequence Fsm::SampleRoute consumes on the realized clone.
void SampleOverlayRoutes(const Fsm& fsm, const CellOverlay& overlay, SimScratch& scratch,
                         Rng& rng) {
  constexpr std::size_t kMaxSteps = 1u << 20;
  scratch.route_steps.clear();
  scratch.route_offsets.clear();
  scratch.route_offsets.push_back(0);
  const int initial = fsm.InitialState();
  QNET_CHECK(initial >= 0, "initial state not set");
  const int final_column = fsm.NumStates();
  const std::size_t num_tasks = scratch.entry_times.size();
  for (std::size_t k = 0; k < num_tasks; ++k) {
    int state = initial;
    for (std::size_t steps = 0;; ++steps) {
      QNET_CHECK(steps < kMaxSteps, "FSM route exceeded ", kMaxSteps,
                 " steps; final state unreachable?");
      const int queue = static_cast<int>(rng.Categorical(overlay.EmissionRow(fsm, state)));
      scratch.route_steps.push_back(RouteStep{state, queue});
      const int next = static_cast<int>(rng.Categorical(fsm.TransitionRow(state)));
      if (next == final_column) {
        break;
      }
      state = next;
    }
    scratch.route_offsets.push_back(scratch.route_steps.size());
  }
}

// Reduces one completed scratch run into workspace draw slot d. Float-order-identical to
// the historical EventLog-based MeasureSimulation: responses accumulate in task order
// (mean before sort), busy/wait sums come from the arena's order-preserving reducers.
void MeasureScratch(ScenarioCellWorkspace& ws, std::size_t d, std::size_t num_queues,
                    const ScenarioEngineOptions& options) {
  const int num_tasks = ws.scratch.NumTasks();
  const int warm = static_cast<int>(static_cast<double>(num_tasks) * options.warmup_fraction);
  QNET_CHECK(warm < num_tasks, "warmup fraction leaves no measured tasks");
  ws.responses.clear();
  double horizon = 0.0;
  for (int k = 0; k < num_tasks; ++k) {
    const double exit = ws.scratch.ExitTime(k);
    horizon = std::max(horizon, exit);
    if (k >= warm) {
      ws.responses.push_back(exit - ws.scratch.entry_times[static_cast<std::size_t>(k)]);
    }
  }
  ws.draw_mean[d] = Mean(ws.responses);
  std::sort(ws.responses.begin(), ws.responses.end());
  ws.draw_tail[d] = QuantileSorted(ws.responses, options.tail_quantile);

  QNET_CHECK(horizon > 0.0, "degenerate simulation horizon");
  for (std::size_t q = 1; q < num_queues; ++q) {
    ws.draw_util[d * num_queues + q] = ws.scratch.queue_busy_sum[q] / horizon;
    // Time-average number waiting: the integral of N_q(t) dt equals the sum of
    // individual waiting durations (Little's law area argument).
    ws.draw_qlen[d * num_queues + q] = ws.scratch.queue_wait_sum[q] / horizon;
  }
}

MetricBand ReduceBandInPlace(std::vector<double>& values, const ScenarioEngineOptions& options) {
  MetricBand band;
  band.mean = Mean(values);
  std::sort(values.begin(), values.end());
  band.lo = QuantileSorted(values, options.band_lo);
  band.hi = QuantileSorted(values, options.band_hi);
  return band;
}

void EvaluateCellInto(const QueueingNetwork& base, const ParameterPosterior& posterior,
                      const ScenarioGrid& grid, std::size_t cell_index,
                      std::uint64_t seed, std::size_t draws,
                      const ScenarioEngineOptions& options,
                      const AnalyticContext* analytic_ctx, ScenarioCellWorkspace& ws,
                      CellResult& result) {
  ScopedSpan span(SpanStage::kScenarioCell);
  ScenarioCounters::Get().cells->Increment();
  ScenarioCounters::Get().draws->Add(draws);
  grid.Cell(cell_index, ws.cell);
  const Fsm& fsm = base.GetFsm();
  const auto num_queues = static_cast<std::size_t>(base.NumQueues());

  result.cell = cell_index;
  result.axis_values = ws.cell.values;

  ws.draw_mean.resize(draws);
  ws.draw_tail.resize(draws);
  ws.draw_util.assign(draws * num_queues, 0.0);
  ws.draw_qlen.assign(draws * num_queues, 0.0);

  for (std::size_t d = 0; d < draws; ++d) {
    // Deterministic thinning spreads the used draws across the stored chain.
    const std::size_t source = d * posterior.NumDraws() / draws;
    grid.RealizeOverlay(base, ws.cell, posterior.Draw(source), ws.overlay);
    // The (cell, draw) stream is a pure function of lattice position — never of
    // scheduling. CRN drops the cell salt so load sweeps share arrival/service draws.
    const std::uint64_t salt_base =
        options.common_random_numbers ? seed : MixSeed(seed, cell_index);
    Rng rng(MixSeed(salt_base, d));
    // Draw order matches the clone path exactly: all arrivals, then all routes
    // task-by-task, then services in heap-pop order.
    PoissonArrivals(ws.overlay.ArrivalRate(), options.tasks_per_draw)
        .GenerateInto(ws.scratch.entry_times, rng);
    SampleOverlayRoutes(fsm, ws.overlay, ws.scratch, rng);
    RunStagedDesExponential(ws.overlay.PooledRates(), ws.scratch, rng);
    MeasureScratch(ws, d, num_queues, options);
  }

  ws.column.resize(draws);
  const auto reduce = [&](const auto& get) {
    for (std::size_t d = 0; d < draws; ++d) {
      ws.column[d] = get(d);
    }
    return ReduceBandInPlace(ws.column, options);
  };
  result.mean_response = reduce([&](std::size_t d) { return ws.draw_mean[d]; });
  result.tail_response = reduce([&](std::size_t d) { return ws.draw_tail[d]; });
  result.utilization.assign(num_queues, MetricBand{});
  result.queue_length.assign(num_queues, MetricBand{});
  for (std::size_t q = 1; q < num_queues; ++q) {
    result.utilization[q] = reduce([&](std::size_t d) { return ws.draw_util[d * num_queues + q]; });
    result.queue_length[q] = reduce([&](std::size_t d) { return ws.draw_qlen[d * num_queues + q]; });
  }

  result.bottleneck_ranking.resize(num_queues - 1);
  std::iota(result.bottleneck_ranking.begin(), result.bottleneck_ranking.end(), 1);
  std::sort(result.bottleneck_ranking.begin(), result.bottleneck_ranking.end(),
            [&](int a, int b) {
              const double ua = result.utilization[static_cast<std::size_t>(a)].mean;
              const double ub = result.utilization[static_cast<std::size_t>(b)].mean;
              return ua != ub ? ua > ub : a < b;
            });
  result.bottleneck_queue = result.bottleneck_ranking.front();

  if (analytic_ctx != nullptr) {
    // Overlay equivalent of Realize + AnalyzeCellAnalytic at the posterior-mean rates:
    // queue visits from the overlay's emission rows against the hoisted state visits,
    // then per-queue M/M/1 / Erlang-C — the M/G/1 branch can never fire on a realized
    // cell (services are Exponential by construction).
    grid.RealizeOverlay(base, ws.cell, analytic_ctx->mean_rates, ws.overlay);
    ws.queue_visits.assign(num_queues, 0.0);
    ws.queue_visits[0] = 1.0;  // every task visits the virtual arrival queue once
    const auto num_states = static_cast<std::size_t>(fsm.NumStates());
    for (std::size_t s = 0; s < num_states; ++s) {
      const std::span<const double> emission =
          ws.overlay.EmissionRow(fsm, static_cast<int>(s));
      for (std::size_t q = 1; q < num_queues; ++q) {
        ws.queue_visits[q] += analytic_ctx->state_visits[s] * emission[q];
      }
    }
    const double lambda = ws.overlay.ArrivalRate();
    bool stable = true;
    double total = 0.0;
    for (std::size_t q = 1; q < num_queues; ++q) {
      const double lambda_q = lambda * ws.queue_visits[q];
      const int c = ws.overlay.Servers()[q];
      QNET_CHECK(c >= 1, "queue ", q, " has server count ", c);
      double mean_response = 0.0;
      bool queue_stable = false;
      if (c > 1) {
        const MmcMetrics m = AnalyzeMmc(lambda_q, ws.overlay.Rates()[q], c);
        queue_stable = m.stable;
        mean_response = m.mean_response;
      } else {
        // The realized single-server service is Exponential(1 * rate) == rate bitwise.
        const Mm1Metrics m = AnalyzeMm1(lambda_q, ws.overlay.Rates()[q]);
        queue_stable = m.stable;
        mean_response = m.mean_response;
      }
      if (!queue_stable) {
        stable = false;
        continue;
      }
      total += ws.queue_visits[q] * mean_response;
    }
    result.analytic_valid = true;
    result.analytic_stable = stable;
    result.analytic_mean_response =
        stable ? total : std::numeric_limits<double>::quiet_NaN();
  } else {
    result.analytic_valid = false;
    result.analytic_stable = false;
    result.analytic_mean_response = std::numeric_limits<double>::quiet_NaN();
  }
}

}  // namespace

AnalyticPrediction AnalyzeCellAnalytic(const QueueingNetwork& net,
                                       std::span<const int> servers,
                                       std::span<const double> per_server_rates) {
  const auto num_queues = static_cast<std::size_t>(net.NumQueues());
  QNET_CHECK(servers.empty() || servers.size() == num_queues,
             "servers span size mismatch");
  QNET_CHECK(per_server_rates.empty() || per_server_rates.size() == num_queues,
             "per-server rates span size mismatch");

  const TrafficAnalysis traffic = AnalyzeTraffic(net);
  AnalyticPrediction prediction;
  prediction.stable = true;
  prediction.utilization.assign(num_queues, 0.0);
  double total = 0.0;
  for (std::size_t q = 1; q < num_queues; ++q) {
    const double lambda_q = traffic.arrival_rates[q];
    const int c = servers.empty() ? 1 : servers[q];
    QNET_CHECK(c >= 1, "queue ", q, " has server count ", c);
    double mean_response = 0.0;
    bool stable = false;
    if (c > 1) {
      QNET_CHECK(!per_server_rates.empty(),
                 "multi-server analytic path needs per-server rates");
      const MmcMetrics m = AnalyzeMmc(lambda_q, per_server_rates[q], c);
      stable = m.stable;
      mean_response = m.mean_response;
      prediction.utilization[q] = m.utilization;
    } else if (const auto* exp_dist =
                   dynamic_cast<const Exponential*>(&net.Service(static_cast<int>(q)))) {
      const Mm1Metrics m = AnalyzeMm1(lambda_q, exp_dist->rate());
      stable = m.stable;
      mean_response = m.mean_response;
      prediction.utilization[q] = m.utilization;
    } else {
      const Mg1Metrics m = AnalyzeMg1(lambda_q, net.Service(static_cast<int>(q)));
      stable = m.stable;
      mean_response = m.mean_response;
      prediction.utilization[q] = m.utilization;
    }
    if (!stable) {
      prediction.stable = false;
      continue;
    }
    total += traffic.queue_visits[q] * mean_response;
  }
  if (prediction.stable) {
    prediction.mean_response = total;
  }
  return prediction;
}

ScenarioEngine::ScenarioEngine(ScenarioEngineOptions options) : options_(options) {
  QNET_CHECK(options_.max_draws >= 1, "max_draws must be positive");
  QNET_CHECK(options_.tasks_per_draw >= 2, "tasks_per_draw must be at least 2");
  QNET_CHECK(options_.warmup_fraction >= 0.0 && options_.warmup_fraction < 1.0,
             "warmup_fraction must be in [0, 1)");
  QNET_CHECK(options_.band_lo >= 0.0 && options_.band_hi <= 1.0 &&
                 options_.band_lo <= options_.band_hi,
             "band quantiles must satisfy 0 <= lo <= hi <= 1");
  QNET_CHECK(options_.tail_quantile > 0.0 && options_.tail_quantile < 1.0,
             "tail_quantile must be in (0, 1)");
}

// Out-of-line so the unique_ptr<ScenarioCellWorkspace> members destroy against the
// complete type defined above.
ScenarioEngine::~ScenarioEngine() = default;

ScenarioReport ScenarioEngine::Evaluate(const QueueingNetwork& base,
                                        const ParameterPosterior& posterior,
                                        const ScenarioGrid& grid, std::uint64_t seed) {
  QNET_CHECK(posterior.NumQueues() == base.NumQueues(),
             "posterior has ", posterior.NumQueues(), " rates but the network has ",
             base.NumQueues(), " queues");
  Stopwatch watch;

  ScenarioReport report;
  report.num_queues = base.NumQueues();
  report.draws = std::min(options_.max_draws, posterior.NumDraws());
  report.tasks_per_draw = options_.tasks_per_draw;
  report.seed = seed;
  report.axis_names = grid.AxisNames();
  report.cells.resize(grid.NumCells());

  // Cell-invariant analytic inputs, hoisted: the state-visit solve only sees FSM
  // transitions (routing axes edit emissions, never transitions), so one solve — the
  // exact AnalyzeTraffic construction — serves every cell bit-identically.
  AnalyticContext analytic_ctx;
  if (options_.analytic) {
    const Fsm& fsm = base.GetFsm();
    fsm.Validate();
    const auto num_states = static_cast<std::size_t>(fsm.NumStates());
    std::vector<std::vector<double>> system(num_states,
                                            std::vector<double>(num_states, 0.0));
    std::vector<double> rhs(num_states, 0.0);
    rhs[static_cast<std::size_t>(fsm.InitialState())] = 1.0;
    for (std::size_t i = 0; i < num_states; ++i) {
      for (std::size_t j = 0; j < num_states; ++j) {
        const double p_ji = fsm.Transition(static_cast<int>(j), static_cast<int>(i));
        system[i][j] = (i == j ? 1.0 : 0.0) - p_ji;
      }
    }
    analytic_ctx.state_visits = SolveLinearSystem(std::move(system), std::move(rhs));
    analytic_ctx.mean_rates = posterior.MeanRates();
  }

  // One persistent workspace per worker; the static RunOnThreadPool partition maps
  // cell i to worker i % threads, so each workspace is touched by exactly one thread.
  const std::size_t num_workers = std::max<std::size_t>(1, options_.threads);
  while (workspaces_.size() < num_workers) {
    workspaces_.push_back(std::make_unique<ScenarioCellWorkspace>());
  }

  // Static cell -> thread sharding; each cell writes only its own slot, so the report is
  // bit-identical for any thread count.
  RunOnThreadPool(grid.NumCells(), options_.threads, [&](std::size_t i) {
    EvaluateCellInto(base, posterior, grid, i, seed, report.draws, options_,
                     options_.analytic ? &analytic_ctx : nullptr,
                     *workspaces_[i % num_workers], report.cells[i]);
  });

  stats_.wall_seconds = watch.ElapsedSeconds();
  stats_.cells_per_second =
      stats_.wall_seconds > 0.0
          ? static_cast<double>(grid.NumCells()) / stats_.wall_seconds
          : 0.0;
  return report;
}

}  // namespace qnet
