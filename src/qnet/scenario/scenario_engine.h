// Posterior-predictive scenario-grid engine: evaluates every cell of a ScenarioGrid by
// pushing posterior parameter draws through the DES and reducing to per-cell SLA metrics
// with uncertainty bands — the layer that turns the sampler into a capacity-planning
// tool ("what happens to latency if traffic doubles and the DB tier gets two more
// servers?").
//
// Per cell, per draw: the grid realizes the (cell, draw) network, a fresh DES run
// (shared DesArrival/QueueFrontier kernels via SimulateWorkload) generates
// tasks_per_draw tasks, and the run reduces to mean/tail end-to-end latency, per-queue
// utilization, and time-average queue lengths. Across draws the engine reports
// mean + [band_lo, band_hi] posterior-predictive bands, a bottleneck ranking by mean
// utilization, and — where the cell is an exponential-service network — the analytic
// steady-state prediction (per-queue M/M/1, Erlang-C M/M/c for multi-server cells,
// Pollaczek-Khinchine M/G/1 for general single-server services) as a cross-check.
//
// Determinism contract (matches the PR 1-3 discipline): the (cell, draw) run consumes an
// Rng seeded MixSeed(MixSeed(seed, cell_index), draw) — a pure function of the base seed
// and lattice position, never of scheduling. Cells are sharded across threads with each
// cell writing only its own report slot, so reports are bit-identical for any
// options.threads. With common_random_numbers the cell salt is dropped
// (MixSeed(seed, draw) for every cell): all cells under draw d see the same arrival
// uniforms and service streams, which makes pure load sweeps exactly monotone (classical
// CRN variance reduction for what-if comparisons) — still bit-identical across thread
// counts.

#ifndef QNET_SCENARIO_SCENARIO_ENGINE_H_
#define QNET_SCENARIO_SCENARIO_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qnet/model/network.h"
#include "qnet/scenario/parameter_posterior.h"
#include "qnet/scenario/scenario_spec.h"

namespace qnet {

// Per-worker reusable buffers (SimScratch arena, cell overlay, draw-metric matrices);
// defined in scenario_engine.cc.
struct ScenarioCellWorkspace;

// Posterior-predictive band over draws: mean plus [lo, hi] draw quantiles.
struct MetricBand {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  friend bool operator==(const MetricBand&, const MetricBand&) = default;
};

struct CellResult {
  std::size_t cell = 0;
  std::vector<double> axis_values;  // one per grid axis, cell's lattice point
  MetricBand mean_response;         // end-to-end latency mean (post-warmup tasks)
  MetricBand tail_response;         // end-to-end latency tail quantile per draw
  std::vector<MetricBand> utilization;   // per queue; index 0 held at zero
  std::vector<MetricBand> queue_length;  // time-average tasks waiting, per queue
  // Real queues ranked by descending mean utilization (ties by queue id).
  std::vector<int> bottleneck_ranking;
  int bottleneck_queue = -1;
  bool analytic_valid = false;   // analytic path ran for this cell
  bool analytic_stable = false;  // every queue stable at the posterior-mean rates
  // Sum over queues of visits * steady-state response at the posterior-mean rates
  // (NaN when invalid or unstable).
  double analytic_mean_response = std::numeric_limits<double>::quiet_NaN();

  // Hand-written because analytic_mean_response is NaN by design for saturated cells:
  // equality here means "same report", so two NaNs compare equal (unlike IEEE ==, which
  // would make bit-identical reports with any unstable cell compare unequal).
  friend bool operator==(const CellResult& a, const CellResult& b) {
    const bool analytic_equal =
        a.analytic_mean_response == b.analytic_mean_response ||
        (a.analytic_mean_response != a.analytic_mean_response &&
         b.analytic_mean_response != b.analytic_mean_response);
    return analytic_equal && a.cell == b.cell && a.axis_values == b.axis_values &&
           a.mean_response == b.mean_response && a.tail_response == b.tail_response &&
           a.utilization == b.utilization && a.queue_length == b.queue_length &&
           a.bottleneck_ranking == b.bottleneck_ranking &&
           a.bottleneck_queue == b.bottleneck_queue &&
           a.analytic_valid == b.analytic_valid && a.analytic_stable == b.analytic_stable;
  }
};

struct ScenarioReport {
  int num_queues = 0;
  std::size_t draws = 0;           // draws evaluated per cell (post-thinning)
  std::size_t tasks_per_draw = 0;
  std::uint64_t seed = 0;
  std::vector<std::string> axis_names;
  std::vector<CellResult> cells;   // cell-index order

  friend bool operator==(const ScenarioReport&, const ScenarioReport&) = default;
};

struct ScenarioEngineOptions {
  // Posterior draws pushed through each cell; when the posterior holds more, the engine
  // thins deterministically: with D = min(max_draws, NumDraws()) draws evaluated, draw j
  // uses source index j * NumDraws() / D.
  std::size_t max_draws = 8;
  std::size_t tasks_per_draw = 512;
  // Leading fraction of tasks excluded from the latency metrics (DES warmup transient).
  double warmup_fraction = 0.2;
  // Band quantiles over draws (e.g. 0.05/0.95 for a 90% posterior-predictive band).
  double band_lo = 0.05;
  double band_hi = 0.95;
  // Per-draw end-to-end latency tail quantile reported as tail_response.
  double tail_quantile = 0.95;
  // Worker threads sharding cells; results are bit-identical for every value.
  std::size_t threads = 1;
  // Attach the analytic steady-state cross-check to each cell.
  bool analytic = true;
  // Share RNG streams across cells (seed salt = draw only) — see header comment.
  bool common_random_numbers = false;
};

// Analytic steady-state prediction for one realized cell (free-standing so tests can
// drive the M/G/1 branch with hand-built general-service networks).
struct AnalyticPrediction {
  bool stable = false;
  // Sum over queues of expected visits * mean steady-state response (NaN if unstable).
  double mean_response = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> utilization;  // offered rho per queue; index 0 held at zero
};

// `net` supplies topology + service distributions; `servers`/`per_server_rates` (empty:
// all single-server) select Erlang-C M/M/c for multi-server queues. Single-server queues
// use M/M/1 when the service is exponential and Pollaczek-Khinchine M/G/1 otherwise.
AnalyticPrediction AnalyzeCellAnalytic(const QueueingNetwork& net,
                                       std::span<const int> servers = {},
                                       std::span<const double> per_server_rates = {});

class ScenarioEngine {
 public:
  struct Stats {
    double wall_seconds = 0.0;
    double cells_per_second = 0.0;
  };

  explicit ScenarioEngine(ScenarioEngineOptions options = {});
  ~ScenarioEngine();

  // Evaluates every grid cell against `base`'s topology and the posterior draws.
  // `base` supplies queue names and the routing FSM; service rates come from the draws.
  //
  // Clone-free fast path: each (cell, draw) is realized as a CellOverlay over the shared
  // immutable base (no network clones), simulated through a per-worker SimScratch arena,
  // and reduced with single-pass post-warmup reducers — bit-identical to the historical
  // clone-per-cell evaluation for every seed/thread-count/CRN combination (pinned by the
  // golden-report tests). Workspaces persist across Evaluate calls, so repeated
  // same-shaped evaluations allocate only the report itself.
  ScenarioReport Evaluate(const QueueingNetwork& base, const ParameterPosterior& posterior,
                          const ScenarioGrid& grid, std::uint64_t seed);

  const Stats& LastStats() const { return stats_; }
  const ScenarioEngineOptions& Options() const { return options_; }

 private:
  ScenarioEngineOptions options_;
  Stats stats_;
  // One workspace per worker thread, indexed by (cell index % threads) — the static
  // RunOnThreadPool partition guarantees exclusive ownership per worker.
  std::vector<std::unique_ptr<ScenarioCellWorkspace>> workspaces_;
};

}  // namespace qnet

#endif  // QNET_SCENARIO_SCENARIO_ENGINE_H_
