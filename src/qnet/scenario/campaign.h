// Scenario campaigns: named, scripted workloads with ground-truth change labels.
//
// A Campaign is a declarative description of one monitored-stream experiment: a tandem
// network, an arrival rate, a FaultSchedule compiled from the script (arrival-scale
// segments for workload-side changes, service slowdowns for resource-side ones), and
// the ground-truth CampaignEvents — the exact sim times the scripted changes take
// effect, labelled with the AlertKind a detector should raise. Because every campaign
// is a seeded LiveSimStream, the resulting estimate and alert sequences are
// deterministic, which is what lets detection latency and false-positive counts be
// *gated* (bench/perf_detect.cc) instead of merely reported.
//
// The catalog (MakeCampaign / CampaignNames):
//   stationary            — no script; the false-positive control
//   flash-crowd           — 2.5x arrival burst, onset + recovery labelled
//   diurnal-ramp          — staircase arrival curve up and back down
//   partial-failure       — periodic 3x slowdown bursts on one service queue
//   slow-start-recovery   — deep slowdown healing in steps back to nominal
//   bottleneck-migration  — persistent slowdown moving the utilization argmax
//
// Every script starts after a stationary prefix (`quiet_until`) long enough for the
// detectors to warm up and arm — alerts inside the prefix are, by construction, false
// positives. RunCampaign wires the whole loop: LiveSimStream -> StreamingEstimator ->
// ChangeMonitor, then scores alerts against the events (detection latency in windows,
// false-alarm count on the quiet prefix) and records latencies into the
// qnet_detect_latency_windows histogram — the only place ground truth exists.

#ifndef QNET_SCENARIO_CAMPAIGN_H_
#define QNET_SCENARIO_CAMPAIGN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qnet/detect/change_monitor.h"
#include "qnet/model/network.h"
#include "qnet/sim/fault.h"
#include "qnet/stream/live_stream.h"
#include "qnet/stream/streaming_estimator.h"

namespace qnet {

// One scripted ground-truth change point.
struct CampaignEvent {
  AlertKind kind = AlertKind::kRateShift;
  double time = 0.0;  // sim time the change takes effect
  // Affected service queue (0 for arrival-side events, matched against any queue).
  int queue = 0;
  std::string label;
};

struct Campaign {
  std::string name;
  std::string description;
  // Tandem topology: arrival rate + per-service-queue rates (MakeTandemNetwork).
  double arrival_rate = 4.0;
  std::vector<double> service_rates;
  double horizon = 600.0;
  FaultSchedule faults;
  std::vector<CampaignEvent> events;  // in time order
  // No scripted change happens before this time; alerts on windows entirely inside
  // [0, quiet_until) are false positives.
  double quiet_until = 0.0;

  // Number of queues a WindowEstimate carries (lambda slot + service queues).
  int NumQueues() const { return static_cast<int>(service_rates.size()) + 1; }
  QueueingNetwork MakeNetwork() const;
  // LiveSimOptions with `faults` pointing at this campaign's schedule — the campaign
  // must outlive the stream (the usual FaultSchedule lifetime rule).
  LiveSimOptions SimOptions() const;
};

// The catalog. MakeCampaign aborts (QNET_CHECK) on an unknown name.
std::vector<std::string> CampaignNames();
Campaign MakeCampaign(const std::string& name);

struct CampaignRunOptions {
  // 30 s at the catalog's arrival rate 4.0 is ~120 tasks per window — enough data per
  // decision point that ordinary fit wobble stays inside the detectors' sigma floors
  // (the 8-window warm-up then spans 240 s, inside every campaign's 300 s quiet
  // prefix).
  double window_duration = 30.0;
  std::size_t min_tasks_per_window = 8;
  // Campaign scoring only needs per-window point rates, so the sampler-free path is
  // the default; kOff/kWarmStart run the full StEM fit per window.
  FastPathMode fast_path = FastPathMode::kMeanFieldOnly;
  ChangeMonitorOptions monitor;
  std::uint64_t sim_seed = 1234;
  std::uint64_t fit_seed = 99;
  bool pipeline = false;
};

// How one ground-truth event was (or was not) detected.
struct CampaignEventOutcome {
  CampaignEvent event;
  // First window whose span ends after the event time (where detection could start).
  std::size_t event_window = 0;
  bool detected = false;
  std::size_t detection_window = 0;      // window of the first matching alert
  std::size_t latency_windows = 0;       // detection_window - event_window
};

struct CampaignResult {
  // The estimate sequence with per-window alert masks applied (window_csv-ready).
  std::vector<WindowEstimate> estimates;
  std::vector<Alert> alerts;
  std::vector<CampaignEventOutcome> outcomes;
  // Alerts (other than kDegradedRun, which flags the estimator not the workload) on
  // windows entirely inside the quiet prefix.
  std::size_t false_alarms = 0;

  bool AllDetected() const;
  // Max latency over detected events; undetected events count as `undetected_penalty`.
  std::size_t MaxLatencyWindows(std::size_t undetected_penalty = 1000) const;
};

// Scores an already-produced estimate/alert sequence against the campaign's events
// (takes both by value — they become the result's). Detection latencies are recorded
// into the qnet_detect_latency_windows histogram — the campaign is the only place
// ground truth exists, so this is where that metric is fed.
CampaignResult ScoreCampaign(const Campaign& campaign,
                             std::vector<WindowEstimate> estimates,
                             std::vector<Alert> alerts);

// Runs the campaign end to end (stream -> estimator -> monitor) and scores the alert
// log against the ground-truth events via ScoreCampaign.
CampaignResult RunCampaign(const Campaign& campaign, const CampaignRunOptions& options);

}  // namespace qnet

#endif  // QNET_SCENARIO_CAMPAIGN_H_
