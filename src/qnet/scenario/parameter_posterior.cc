#include "qnet/scenario/parameter_posterior.h"

#include <utility>

#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {

ParameterPosterior::ParameterPosterior(std::vector<std::vector<double>> draws)
    : draws_(std::move(draws)) {
  QNET_CHECK(!draws_.empty(), "parameter posterior needs at least one draw");
  for (const auto& draw : draws_) {
    QNET_CHECK(draw.size() == draws_[0].size(), "ragged draw matrix");
    QNET_CHECK(draw.size() >= 2, "draws need lambda plus at least one queue rate");
    for (const double rate : draw) {
      QNET_CHECK(rate > 0.0, "nonpositive rate in posterior draw");
    }
  }
}

ParameterPosterior ParameterPosterior::FromSummary(const PosteriorSummary& summary) {
  QNET_CHECK(summary.NumSamples() > 0, "posterior summary holds no draws");
  std::vector<std::vector<double>> draws;
  draws.reserve(summary.NumSamples());
  for (std::size_t i = 0; i < summary.NumSamples(); ++i) {
    draws.push_back(summary.RateDraw(i));
  }
  return ParameterPosterior(std::move(draws));
}

ParameterPosterior ParameterPosterior::FromStem(const StemResult& stem,
                                                std::size_t burn_in) {
  QNET_CHECK(burn_in < stem.rate_trace.size(), "burn-in ", burn_in,
             " consumes the whole rate trace (", stem.rate_trace.size(), " iterates)");
  std::vector<std::vector<double>> draws(stem.rate_trace.begin() +
                                             static_cast<std::ptrdiff_t>(burn_in),
                                         stem.rate_trace.end());
  return ParameterPosterior(std::move(draws));
}

ParameterPosterior ParameterPosterior::FromPoint(std::vector<double> rates) {
  std::vector<std::vector<double>> draws;
  draws.push_back(std::move(rates));
  return ParameterPosterior(std::move(draws));
}

int ParameterPosterior::NumQueues() const { return static_cast<int>(draws_[0].size()); }

const std::vector<double>& ParameterPosterior::Draw(std::size_t i) const {
  QNET_CHECK(i < draws_.size(), "draw index ", i, " out of range (", draws_.size(), ")");
  return draws_[i];
}

std::vector<double> ParameterPosterior::MeanRates() const {
  std::vector<double> means(draws_[0].size(), 0.0);
  for (const auto& draw : draws_) {
    for (std::size_t q = 0; q < draw.size(); ++q) {
      means[q] += draw[q];
    }
  }
  for (double& m : means) {
    m /= static_cast<double>(draws_.size());
  }
  return means;
}

std::vector<double> ParameterPosterior::RateQuantile(double q) const {
  std::vector<double> out(draws_[0].size(), 0.0);
  std::vector<double> column(draws_.size(), 0.0);
  for (std::size_t queue = 0; queue < out.size(); ++queue) {
    for (std::size_t d = 0; d < draws_.size(); ++d) {
      column[d] = draws_[d][queue];
    }
    out[queue] = Quantile(column, q);
  }
  return out;
}

}  // namespace qnet
