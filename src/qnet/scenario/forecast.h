// Continuous capacity forecasting: re-evaluate a scenario grid on every closed window of
// the streaming estimator, turning the per-window rate estimates into a rolling what-if
// forecast ("if load doubled right now, where would latency land?").
//
// WindowForecaster adapts ScenarioEngine to StreamingEstimatorOptions::on_window. Window
// w's grid evaluation is seeded MixSeed(seed, w) — forecasts inherit the streaming
// engine's determinism contract (bit-identical for any pipeline setting, any sharded
// thread count, and any forecaster thread count). A merged-tail re-fit (see
// WindowEstimate::merged_tail_tasks) REPLACES the last forecast with a re-evaluation at
// the same window seed, mirroring how the estimator replaces the estimate itself.

#ifndef QNET_SCENARIO_FORECAST_H_
#define QNET_SCENARIO_FORECAST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "qnet/model/network.h"
#include "qnet/scenario/scenario_engine.h"
#include "qnet/scenario/scenario_spec.h"
#include "qnet/stream/streaming_estimator.h"

namespace qnet {

class WindowForecaster {
 public:
  // `base` supplies topology (cloned; rates come from each window's estimate).
  WindowForecaster(const QueueingNetwork& base, ScenarioGrid grid,
                   const ScenarioEngineOptions& options, std::uint64_t seed);

  // Evaluates the grid at the window's point rates and appends (or, for a merged-tail
  // re-fit, replaces) the report. Returns the report just produced. Estimates fitted
  // with window-local lambda anchoring (WindowEstimate::window_local_arrival_rate) are
  // used verbatim; legacy absolute-anchored estimates substitute the window's empirical
  // tasks / (t1 - t0) for the decayed lambda iterate.
  const ScenarioReport& Forecast(const WindowEstimate& estimate);

  // Adapter for StreamingEstimatorOptions::on_window (captures `this`; the forecaster
  // must outlive the estimator's Run call).
  std::function<void(const WindowEstimate&)> Hook();

  // One report per estimated window, in window order.
  const std::vector<ScenarioReport>& Reports() const { return reports_; }

  // Forecasts evaluated from a degraded (mean-field-only) estimate — see
  // WindowEstimate::degraded. Degraded estimates are consumed like any other (the grid
  // only needs point rates, which the mean-field fit supplies), but an operator reading
  // a forecast stream under overload should know how many of its points came from the
  // sampler-free path; a merged-tail replacement re-counts its emission.
  std::size_t DegradedForecasts() const { return degraded_forecasts_; }

 private:
  QueueingNetwork base_;
  ScenarioGrid grid_;
  ScenarioEngine engine_;
  std::uint64_t seed_;
  std::size_t windows_ = 0;
  std::size_t degraded_forecasts_ = 0;
  std::vector<ScenarioReport> reports_;
};

}  // namespace qnet

#endif  // QNET_SCENARIO_FORECAST_H_
