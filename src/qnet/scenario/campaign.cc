#include "qnet/scenario/campaign.h"

#include "qnet/model/builders.h"
#include "qnet/support/check.h"
#include "qnet/telemetry/metrics.h"

namespace qnet {

QueueingNetwork Campaign::MakeNetwork() const {
  return MakeTandemNetwork(arrival_rate, service_rates);
}

LiveSimOptions Campaign::SimOptions() const {
  LiveSimOptions options;
  options.horizon = horizon;
  options.arrival_rate = arrival_rate;
  options.faults = faults.Empty() ? nullptr : &faults;
  return options;
}

namespace {

// Shared scaffold: arrival 4.0 into a 10.0 -> 8.0 tandem (utilizations 0.4 / 0.5,
// bottleneck at queue 2), a 300 s stationary prefix — 10 windows at the default 30 s
// duration, past the detectors' 8-window warm-up — then the script.
Campaign BaseCampaign(const std::string& name) {
  Campaign c;
  c.name = name;
  c.arrival_rate = 4.0;
  c.service_rates = {10.0, 8.0};
  c.quiet_until = 300.0;
  return c;
}

Campaign MakeStationary() {
  Campaign c = BaseCampaign("stationary");
  c.description = "no scripted change; every non-degraded alert is a false positive";
  c.horizon = 600.0;
  c.quiet_until = 600.0;
  return c;
}

Campaign MakeFlashCrowd() {
  Campaign c = BaseCampaign("flash-crowd");
  c.description = "2.5x arrival burst over [300, 600); onset and recovery labelled";
  c.horizon = 900.0;
  c.faults.AddArrivalScale(300.0, 600.0, 2.5);
  c.events.push_back({AlertKind::kRateShift, 300.0, 0, "flash crowd onset"});
  c.events.push_back({AlertKind::kRateShift, 600.0, 0, "flash crowd recovery"});
  return c;
}

Campaign MakeDiurnalRamp() {
  Campaign c = BaseCampaign("diurnal-ramp");
  c.description = "staircase arrival curve 1.0 -> 1.6 -> 2.4 -> 1.6 -> 1.0";
  c.horizon = 780.0;
  c.faults.AddArrivalScale(300.0, 420.0, 1.6);
  c.faults.AddArrivalScale(420.0, 540.0, 2.4);
  c.faults.AddArrivalScale(540.0, 660.0, 1.6);
  c.events.push_back({AlertKind::kRateShift, 300.0, 0, "ramp onset"});
  return c;
}

Campaign MakePartialFailure() {
  Campaign c = BaseCampaign("partial-failure");
  c.description = "periodic 3x slowdown bursts on queue 2 (60 s on, 60 s off)";
  c.horizon = 660.0;
  c.faults.AddSlowdown(2, 300.0, 360.0, 3.0);
  c.faults.AddSlowdown(2, 420.0, 480.0, 3.0);
  c.faults.AddSlowdown(2, 540.0, 600.0, 3.0);
  c.events.push_back({AlertKind::kServiceDrift, 300.0, 2, "first failure burst"});
  return c;
}

Campaign MakeSlowStartRecovery() {
  Campaign c = BaseCampaign("slow-start-recovery");
  c.description = "queue 1 slows 3x, heals to 1.8x, then back to nominal";
  c.horizon = 720.0;
  c.faults.AddSlowdown(1, 300.0, 480.0, 3.0);
  c.faults.AddSlowdown(1, 480.0, 600.0, 1.8);
  c.events.push_back({AlertKind::kServiceDrift, 300.0, 1, "slowdown onset"});
  return c;
}

Campaign MakeBottleneckMigration() {
  Campaign c = BaseCampaign("bottleneck-migration");
  c.description = "persistent 2x slowdown on queue 1 moves the utilization argmax";
  c.horizon = 600.0;
  // rho_1: 0.4 -> 0.8 while rho_2 stays 0.5 — the argmax migrates from queue 2 to 1
  // and the system stays stable (no unbounded backlog to drain).
  c.faults.AddSlowdown(1, 300.0, 600.0, 2.0);
  c.events.push_back({AlertKind::kServiceDrift, 300.0, 1, "slowdown onset"});
  c.events.push_back(
      {AlertKind::kBottleneckMigration, 300.0, 1, "bottleneck moves to queue 1"});
  return c;
}

}  // namespace

std::vector<std::string> CampaignNames() {
  return {"stationary",      "flash-crowd",         "diurnal-ramp",
          "partial-failure", "slow-start-recovery", "bottleneck-migration"};
}

Campaign MakeCampaign(const std::string& name) {
  if (name == "stationary") return MakeStationary();
  if (name == "flash-crowd") return MakeFlashCrowd();
  if (name == "diurnal-ramp") return MakeDiurnalRamp();
  if (name == "partial-failure") return MakePartialFailure();
  if (name == "slow-start-recovery") return MakeSlowStartRecovery();
  if (name == "bottleneck-migration") return MakeBottleneckMigration();
  QNET_CHECK(false, "unknown campaign: ", name,
             " (see CampaignNames for the catalog)");
  return Campaign{};
}

bool CampaignResult::AllDetected() const {
  for (const CampaignEventOutcome& o : outcomes) {
    if (!o.detected) {
      return false;
    }
  }
  return true;
}

std::size_t CampaignResult::MaxLatencyWindows(std::size_t undetected_penalty) const {
  std::size_t worst = 0;
  for (const CampaignEventOutcome& o : outcomes) {
    const std::size_t latency = o.detected ? o.latency_windows : undetected_penalty;
    if (latency > worst) {
      worst = latency;
    }
  }
  return worst;
}

CampaignResult ScoreCampaign(const Campaign& campaign,
                             std::vector<WindowEstimate> estimates,
                             std::vector<Alert> alerts) {
  CampaignResult result;
  result.estimates = std::move(estimates);
  result.alerts = std::move(alerts);

  // False positives: non-degraded alerts whose window closed inside the quiet prefix.
  for (const Alert& alert : result.alerts) {
    if (alert.kind != AlertKind::kDegradedRun && alert.t1 <= campaign.quiet_until) {
      ++result.false_alarms;
    }
  }

  // Score each ground-truth event: find the first window that could see it, then the
  // first matching alert at or after that window.
  const DetectCounters& counters = DetectCounters::Get();
  for (const CampaignEvent& event : campaign.events) {
    CampaignEventOutcome outcome;
    outcome.event = event;
    std::size_t event_window = result.estimates.size();
    for (std::size_t w = 0; w < result.estimates.size(); ++w) {
      if (result.estimates[w].t1 > event.time) {
        event_window = w;
        break;
      }
    }
    outcome.event_window = event_window;
    if (event_window < result.estimates.size()) {
      for (const Alert& alert : result.alerts) {
        if (alert.kind != event.kind || alert.window < event_window) {
          continue;
        }
        if (event.queue != 0 && alert.queue != event.queue) {
          continue;
        }
        outcome.detected = true;
        outcome.detection_window = alert.window;
        outcome.latency_windows = alert.window - event_window;
        counters.detection_latency_windows->Record(outcome.latency_windows);
        break;
      }
    }
    result.outcomes.push_back(outcome);
  }
  return result;
}

CampaignResult RunCampaign(const Campaign& campaign,
                           const CampaignRunOptions& options) {
  const QueueingNetwork net = campaign.MakeNetwork();
  LiveSimStream stream(net, campaign.SimOptions(), options.sim_seed);

  ChangeMonitor monitor(campaign.NumQueues(), options.monitor);

  StreamingEstimatorOptions est_options;
  est_options.window.window_duration = options.window_duration;
  est_options.window.min_tasks_per_window = options.min_tasks_per_window;
  est_options.pipeline = options.pipeline;
  est_options.window_local_arrival_rate = true;
  est_options.fast_path = options.fast_path;
  est_options.on_window = monitor.Hook();

  std::vector<double> init_rates(static_cast<std::size_t>(campaign.NumQueues()), 1.0);
  StreamingEstimator estimator(std::move(init_rates), options.fit_seed, est_options);

  std::vector<WindowEstimate> estimates = estimator.Run(stream);
  monitor.ApplyAlertFlags(estimates);
  return ScoreCampaign(campaign, std::move(estimates), monitor.Alerts());
}

}  // namespace qnet
