// Snapshot exporters: Prometheus text exposition, stable-ordered JSON, Chrome
// trace-event JSON (chrome://tracing / Perfetto), and a plain-text per-stage latency
// summary. All exporters consume immutable snapshots (MetricsSnapshot, collected span
// rings) — they run off the hot path, after the producing threads have quiesced, and
// are the only place telemetry is serialized.

#ifndef QNET_TELEMETRY_EXPORT_H_
#define QNET_TELEMETRY_EXPORT_H_

#include <string>
#include <vector>

#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

// Prometheus text exposition format (version 0.0.4). Counters as "<name>" with
// # TYPE counter, gauges as gauge, histograms as the cumulative _bucket{le=}/_sum/
// _count triple with le in nanoseconds. Output order follows the snapshot (name-sorted).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// Stable-ordered JSON object: {"counters": {...}, "gauges": {...}, "histograms":
// {name: {count, sum, max, p50, p95, p99, buckets: [[lower, width, count], ...]}}}.
// Keys appear in snapshot (name-sorted) order; byte-identical across runs with equal
// counter values and histogram contents.
std::string ToJson(const MetricsSnapshot& snapshot);

// Chrome trace-event JSON: one complete event (ph "X") per span, ts/dur in
// microseconds relative to the earliest span, pid 1, tid = telemetry thread index.
// Loads directly in Perfetto / chrome://tracing.
std::string ToChromeTrace(const std::vector<Timeline::ThreadSpans>& spans);

// One row per pipeline stage with recorded spans: count, p50, p95, max (the
// streaming_monitor end-of-run table). Reads "qnet_stage_*_ns" histograms.
std::string StageSummaryTable(const MetricsSnapshot& snapshot);

// Writes `contents` to `path` (truncating). Returns false (and leaves a best-effort
// partial file) on I/O failure — exporters never throw at shutdown.
bool WriteFileOrWarn(const std::string& path, const std::string& contents);

}  // namespace qnet

#endif  // QNET_TELEMETRY_EXPORT_H_
