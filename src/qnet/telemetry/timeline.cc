#include "qnet/telemetry/timeline.h"

#include <memory>
#include <mutex>

#include "qnet/support/check.h"

namespace qnet {

namespace {

struct StageInfo {
  const char* name;
  int level;
};

constexpr StageInfo kStageInfo[kNumSpanStages] = {
    {"window_assemble", 1}, {"queue_wait", 1},  {"stem_fit", 1},
    {"meanfield_fit", 1},   {"lane_merge", 1},  {"emit", 1},
    {"lane_blocked", 1},    {"scenario_cell", 1}, {"des_run", 1},
    {"detect_observe", 1},  {"lane_push", 2},   {"lane_pop", 2},
    {"sweep_color", 2},     {"sweep_bucket", 2}, {"sweep_tile", 3},
};

// One ring per registered thread. Rings are heap blocks owned by a process-wide table
// so CollectSpans can walk them after worker threads exit; a thread registers once
// (its only telemetry allocation) and keeps a raw pointer in a thread_local.
struct SpanRing {
  int tid = 0;
  std::atomic<std::uint64_t> head{0};  // monotonically increasing write index
  SpanRecord records[Timeline::kRingCapacity];
};

struct RingTable {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanRing>> rings;
};

RingTable& Rings() {
  static RingTable* table = new RingTable();  // leaked: outlives exiting threads
  return *table;
}

SpanRing* RegisterThreadRing() {
  RingTable& table = Rings();
  std::lock_guard<std::mutex> lock(table.mu);
  auto ring = std::make_unique<SpanRing>();
  ring->tid = static_cast<int>(table.rings.size());
  SpanRing* raw = ring.get();
  table.rings.push_back(std::move(ring));
  return raw;
}

SpanRing* ThreadRing() {
  thread_local SpanRing* ring = RegisterThreadRing();
  return ring;
}

}  // namespace

const char* SpanStageName(SpanStage stage) {
  const auto i = static_cast<std::size_t>(stage);
  QNET_DCHECK(i < kNumSpanStages);
  return kStageInfo[i].name;
}

int SpanStageLevel(SpanStage stage) {
  const auto i = static_cast<std::size_t>(stage);
  QNET_DCHECK(i < kNumSpanStages);
  return kStageInfo[i].level;
}

std::atomic<int> Timeline::level_{1};

void Timeline::SetLevel(int level) { level_.store(level, std::memory_order_relaxed); }

int Timeline::Level() { return level_.load(std::memory_order_relaxed); }

Histogram* StageHistogram(SpanStage stage) {
  struct Table {
    Histogram* h[kNumSpanStages];
  };
  static const Table table = [] {
    Table t;
    MetricRegistry& r = MetricRegistry::Global();
    for (std::size_t i = 0; i < kNumSpanStages; ++i) {
      t.h[i] = r.AddHistogram(std::string("qnet_stage_") + kStageInfo[i].name + "_ns");
    }
    return t;
  }();
  return table.h[static_cast<std::size_t>(stage)];
}

void Timeline::RecordSpan(SpanStage stage, std::uint64_t start_nanos,
                          std::uint64_t end_nanos) {
#if QNET_TELEMETRY
  SpanRing* ring = ThreadRing();
  const std::uint64_t slot = ring->head.load(std::memory_order_relaxed);
  SpanRecord& rec = ring->records[slot & (kRingCapacity - 1)];
  rec.start_nanos = start_nanos;
  rec.end_nanos = end_nanos;
  rec.stage = stage;
  // Release so CollectSpans (acquire on head) sees fully-written records.
  ring->head.store(slot + 1, std::memory_order_release);
  StageHistogram(stage)->Record(end_nanos - start_nanos);
#else
  (void)stage;
  (void)start_nanos;
  (void)end_nanos;
#endif
}

std::vector<Timeline::ThreadSpans> Timeline::CollectSpans() {
  RingTable& table = Rings();
  std::lock_guard<std::mutex> lock(table.mu);
  std::vector<ThreadSpans> out;
  out.reserve(table.rings.size());
  for (const auto& ring : table.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head == 0) {
      continue;
    }
    ThreadSpans ts;
    ts.tid = ring->tid;
    const std::uint64_t count = head < kRingCapacity ? head : kRingCapacity;
    ts.spans.reserve(count);
    for (std::uint64_t i = head - count; i < head; ++i) {
      ts.spans.push_back(ring->records[i & (kRingCapacity - 1)]);
    }
    out.push_back(std::move(ts));
  }
  return out;
}

void Timeline::ClearSpans() {
  RingTable& table = Rings();
  std::lock_guard<std::mutex> lock(table.mu);
  for (const auto& ring : table.rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

}  // namespace qnet
