#include "qnet/telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace qnet {

namespace {

// Doubles are formatted with %.17g (shortest round-trippable is overkill here;
// 17 significant digits round-trips and is byte-stable for a given value).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatFixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << " " << FormatDouble(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    // Prometheus wants the base name without a unit-suffix collision; our histogram
    // names already end in _ns, which doubles as the unit documentation.
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& b : h.buckets) {
      cumulative += b.count;
      os << h.name << "_bucket{le=\"" << (b.lower + b.width - 1) << "\"} "
         << cumulative << "\n";
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << h.name << "_sum " << h.sum << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\"" << snapshot.counters[i].name
       << "\": " << snapshot.counters[i].value;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\"" << snapshot.gauges[i].name
       << "\": " << FormatDouble(snapshot.gauges[i].value);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i ? ",\n    " : "\n    ") << "\"" << h.name << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"max\": " << h.max
       << ", \"p50\": " << FormatFixed(h.Quantile(0.50))
       << ", \"p95\": " << FormatFixed(h.Quantile(0.95))
       << ", \"p99\": " << FormatFixed(h.Quantile(0.99)) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "[" << h.buckets[b].lower << ", " << h.buckets[b].width
         << ", " << h.buckets[b].count << "]";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string ToChromeTrace(const std::vector<Timeline::ThreadSpans>& spans) {
  // ts is relative to the earliest span so traces open centered on the run instead of
  // at steady_clock's process-epoch offset.
  std::uint64_t origin = std::numeric_limits<std::uint64_t>::max();
  for (const auto& ts : spans) {
    for (const auto& s : ts.spans) {
      origin = std::min(origin, s.start_nanos);
    }
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ts : spans) {
    for (const auto& s : ts.spans) {
      if (!first) {
        os << ",";
      }
      first = false;
      // Microsecond floats keep sub-µs spans visible in Perfetto.
      const double us = static_cast<double>(s.start_nanos - origin) / 1000.0;
      const double dur = static_cast<double>(s.end_nanos - s.start_nanos) / 1000.0;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"%s\",\"cat\":\"qnet\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                    SpanStageName(s.stage), us, dur, ts.tid);
      os << buf;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string StageSummaryTable(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-18s %10s %12s %12s %12s\n", "stage", "count",
                "p50_us", "p95_us", "max_us");
  os << buf;
  for (std::size_t i = 0; i < kNumSpanStages; ++i) {
    const auto stage = static_cast<SpanStage>(i);
    const std::string name = std::string("qnet_stage_") + SpanStageName(stage) + "_ns";
    const HistogramSample* h = snapshot.FindHistogram(name);
    if (h == nullptr || h->count == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%-18s %10" PRIu64 " %12.1f %12.1f %12.1f\n",
                  SpanStageName(stage), h->count, h->Quantile(0.50) / 1000.0,
                  h->Quantile(0.95) / 1000.0, static_cast<double>(h->max) / 1000.0);
    os << buf;
  }
  return os.str();
}

bool WriteFileOrWarn(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "qnet telemetry: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "qnet telemetry: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace qnet
