#include "qnet/telemetry/metrics.h"

#include <algorithm>

#include "qnet/support/check.h"

namespace qnet {

double HistogramSample::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the cumulative counts.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (const auto& b : buckets) {
    seen += b.count;
    if (seen >= rank) {
      // The top bucket answers with the exact observed max (the only per-observation
      // value the histogram retains); lower buckets answer with their midpoint,
      // clamped to max so tail quantiles never overshoot reality.
      if (&b == &buckets.back()) {
        return static_cast<double>(max);
      }
      const double mid = static_cast<double>(b.lower) + 0.5 * static_cast<double>(b.width - 1);
      return std::min(mid, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

const CounterSample* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricRegistry::MetricRegistry(const MetricRegistryCapacity& capacity)
    : capacity_(capacity),
      counters_(new Counter[capacity.counters]),
      gauges_(new Gauge[capacity.gauges]),
      histograms_(new Histogram[capacity.histograms]) {
  counter_names_.reserve(capacity.counters);
  gauge_names_.reserve(capacity.gauges);
  histogram_names_.reserve(capacity.histograms);
}

namespace {

// Shared lookup-or-claim over one metric block. Names vector is pre-reserved at
// construction, so push_back never reallocates and existing name storage is stable.
template <typename T>
T* AddMetric(std::vector<std::string>& names, T* block, std::size_t capacity,
             std::string_view name, const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return &block[i];
    }
  }
  QNET_CHECK(names.size() < capacity, "MetricRegistry ", kind,
             " capacity exhausted (", capacity,
             "); raise MetricRegistryCapacity at setup time");
  names.emplace_back(name);
  return &block[names.size() - 1];
}

}  // namespace

Counter* MetricRegistry::AddCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddMetric(counter_names_, counters_.get(), capacity_.counters, name, "counter");
}

Gauge* MetricRegistry::AddGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddMetric(gauge_names_, gauges_.get(), capacity_.gauges, name, "gauge");
}

Histogram* MetricRegistry::AddHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddMetric(histogram_names_, histograms_.get(), capacity_.histograms, name,
                   "histogram");
}

std::size_t MetricRegistry::NumCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_names_.size();
}

std::size_t MetricRegistry::NumGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauge_names_.size();
}

std::size_t MetricRegistry::NumHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_names_.size();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.push_back({counter_names_[i], counters_[i].Value()});
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.push_back({gauge_names_[i], gauges_[i].Value()});
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSample h;
    h.name = histogram_names_[i];
    h.sum = histograms_[i].Sum();
    h.max = histograms_[i].Max();
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t c = histograms_[i].BucketCount(b);
      if (c != 0) {
        h.buckets.push_back(
            {Histogram::BucketLowerBound(b), Histogram::BucketWidth(b), c});
        h.count += c;
      }
    }
    snap.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) counters_[i].Reset();
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) gauges_[i].Reset();
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) histograms_[i].Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

const StreamCounters& StreamCounters::Get() {
  static const StreamCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    StreamCounters b;
    b.tasks_ingested = r.AddCounter("qnet_stream_tasks_ingested_total");
    b.late_dropped = r.AddCounter("qnet_stream_late_dropped_total");
    b.tail_dropped = r.AddCounter("qnet_stream_tail_dropped_total");
    b.windows_closed = r.AddCounter("qnet_stream_windows_closed_total");
    b.windows_estimated = r.AddCounter("qnet_stream_windows_estimated_total");
    b.degraded_windows = r.AddCounter("qnet_stream_degraded_windows_total");
    b.fit_iterations = r.AddCounter("qnet_stream_fit_iterations_total");
    b.peak_buffered_tasks = r.AddGauge("qnet_stream_peak_buffered_tasks");
    b.peak_queue_depth = r.AddGauge("qnet_stream_peak_queue_depth");
    return b;
  }();
  return c;
}

const SweepCounters& SweepCounters::Get() {
  static const SweepCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    SweepCounters b;
    b.sweeps = r.AddCounter("qnet_sweep_sweeps_total");
    b.moves = r.AddCounter("qnet_sweep_moves_total");
    return b;
  }();
  return c;
}

const FitCounters& FitCounters::Get() {
  static const FitCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    FitCounters b;
    b.stem_fits = r.AddCounter("qnet_fit_stem_fits_total");
    b.stem_iterations = r.AddCounter("qnet_fit_stem_iterations_total");
    b.meanfield_fits = r.AddCounter("qnet_fit_meanfield_fits_total");
    return b;
  }();
  return c;
}

const ScenarioCounters& ScenarioCounters::Get() {
  static const ScenarioCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    ScenarioCounters b;
    b.cells = r.AddCounter("qnet_scenario_cells_total");
    b.draws = r.AddCounter("qnet_scenario_draws_total");
    return b;
  }();
  return c;
}

const SimCounters& SimCounters::Get() {
  static const SimCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    SimCounters b;
    b.runs = r.AddCounter("qnet_sim_runs_total");
    b.tasks = r.AddCounter("qnet_sim_tasks_total");
    return b;
  }();
  return c;
}

const DetectCounters& DetectCounters::Get() {
  static const DetectCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    DetectCounters b;
    b.windows_observed = r.AddCounter("qnet_detect_windows_observed_total");
    b.alerts_total = r.AddCounter("qnet_detect_alerts_total");
    b.rate_shift_alerts = r.AddCounter("qnet_detect_rate_shift_alerts_total");
    b.service_drift_alerts = r.AddCounter("qnet_detect_service_drift_alerts_total");
    b.bottleneck_migration_alerts =
        r.AddCounter("qnet_detect_bottleneck_migration_alerts_total");
    b.degraded_run_alerts = r.AddCounter("qnet_detect_degraded_run_alerts_total");
    b.detection_latency_windows = r.AddHistogram("qnet_detect_latency_windows");
    return b;
  }();
  return c;
}

const ShardCounters& ShardCounters::Get() {
  static const ShardCounters c = [] {
    MetricRegistry& r = MetricRegistry::Global();
    ShardCounters b;
    b.records_routed = r.AddCounter("qnet_shard_records_routed_total");
    b.queue_push_batches = r.AddCounter("qnet_shard_queue_push_batches_total");
    b.queue_pop_batches = r.AddCounter("qnet_shard_queue_pop_batches_total");
    return b;
  }();
  return c;
}

StreamCounterBaseline StreamCounterBaseline::Capture() {
  const StreamCounters& c = StreamCounters::Get();
  StreamCounterBaseline b;
  b.tasks_ingested = c.tasks_ingested->Value();
  b.late_dropped = c.late_dropped->Value();
  b.tail_dropped = c.tail_dropped->Value();
  b.windows_closed = c.windows_closed->Value();
  b.windows_estimated = c.windows_estimated->Value();
  b.degraded_windows = c.degraded_windows->Value();
  b.fit_iterations = c.fit_iterations->Value();
  return b;
}

std::uint64_t StreamCounterBaseline::TasksIngestedDelta() const {
  return StreamCounters::Get().tasks_ingested->Value() - tasks_ingested;
}
std::uint64_t StreamCounterBaseline::LateDroppedDelta() const {
  return StreamCounters::Get().late_dropped->Value() - late_dropped;
}
std::uint64_t StreamCounterBaseline::TailDroppedDelta() const {
  return StreamCounters::Get().tail_dropped->Value() - tail_dropped;
}
std::uint64_t StreamCounterBaseline::WindowsClosedDelta() const {
  return StreamCounters::Get().windows_closed->Value() - windows_closed;
}
std::uint64_t StreamCounterBaseline::WindowsEstimatedDelta() const {
  return StreamCounters::Get().windows_estimated->Value() - windows_estimated;
}
std::uint64_t StreamCounterBaseline::DegradedWindowsDelta() const {
  return StreamCounters::Get().degraded_windows->Value() - degraded_windows;
}
std::uint64_t StreamCounterBaseline::FitIterationsDelta() const {
  return StreamCounters::Get().fit_iterations->Value() - fit_iterations;
}

}  // namespace qnet
