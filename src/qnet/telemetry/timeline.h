// Scoped span tracing into per-thread fixed-capacity ring buffers.
//
// A span is one timed interval of a named pipeline stage on one thread. Spans are
// captured by ScopedSpan (RAII) into a thread-local SpanRing — a fixed-capacity ring
// that overwrites its oldest entries, so capture is allocation-free and unbounded runs
// keep the most recent history. Every span also feeds a per-stage latency Histogram in
// the global MetricRegistry ("qnet_stage_<name>_ns"), which is what the stage-latency
// tables and Prometheus exposition read.
//
// Stage taxonomy and detail levels (Timeline::SetLevel, default 1):
//   level 1 — pipeline lifecycle: window assemble, queue wait, StEM fit, mean-field fit,
//             lane merge, emit, lane blocked, scenario cell, DES run.
//   level 2 — shard plumbing and sweep structure: lane push/pop, sweep color class,
//             sweep bucket.
//   level 3 — batched move-kernel tile (per-tile; very hot, off by default).
// A stage above the current level costs one relaxed atomic load and no clock read —
// that is how the ≤5% sweep-overhead gate holds with instrumentation compiled in.
//
// Determinism firewall: spans read TimelineClock and write telemetry state only.
// Nothing in this header exposes a value that sampling or estimation code consumes;
// building with -DQNET_TELEMETRY=0 compiles ScopedSpan to an empty struct and the
// capture paths to no-ops, and every bit-equality test passes either way.

#ifndef QNET_TELEMETRY_TIMELINE_H_
#define QNET_TELEMETRY_TIMELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qnet/support/stopwatch.h"
#include "qnet/telemetry/metrics.h"

namespace qnet {

enum class SpanStage : std::uint8_t {
  kWindowAssemble = 0,  // materialize a closed window's records for fitting
  kQueueWait,           // ingest thread waiting on the pipeline slot
  kStemFit,             // StemEstimator::Run
  kMeanFieldFit,        // MeanFieldEstimator::Fit
  kLaneMerge,           // LaneMerger pooling lane results into a fleet estimate
  kEmit,                // delivering a WindowEstimate to the caller
  kLaneBlocked,         // producer blocked on a full lane queue
  kScenarioCell,        // ScenarioEngine evaluating one grid cell
  kDesRun,              // one DES arena run
  kDetectObserve,       // ChangeMonitor consuming one WindowEstimate
  kLanePush,            // LaneQueue::PushMany batch
  kLanePop,             // LaneQueue::PopMany batch
  kSweepColor,          // one color class of a sharded sweep
  kSweepBucket,         // one (color, shard) bucket
  kSweepTile,           // one batched move-kernel tile
  kNumStages,
};

inline constexpr std::size_t kNumSpanStages =
    static_cast<std::size_t>(SpanStage::kNumStages);

// Stable short name, also the histogram suffix ("qnet_stage_<name>_ns").
const char* SpanStageName(SpanStage stage);

// Detail level at which a stage starts recording (see file comment).
int SpanStageLevel(SpanStage stage);

// One captured interval. Timestamps are TimelineClock nanos.
struct SpanRecord {
  std::uint64_t start_nanos = 0;
  std::uint64_t end_nanos = 0;
  SpanStage stage = SpanStage::kWindowAssemble;
};

class Timeline {
 public:
  // Spans per thread-local ring. Power of two so the wrap is a mask.
  static constexpr std::size_t kRingCapacity = 4096;

  // Runtime detail gate; 0 disables all span capture. Thread-safe (relaxed).
  static void SetLevel(int level);
  static int Level();

  static bool StageEnabled(SpanStage stage) {
#if QNET_TELEMETRY
    return SpanStageLevel(stage) <= level_.load(std::memory_order_relaxed);
#else
    (void)stage;
    return false;
#endif
  }

  // Appends to the calling thread's ring (registering the ring on first use —
  // the one-time setup allocation happens then, never on later captures).
  static void RecordSpan(SpanStage stage, std::uint64_t start_nanos,
                         std::uint64_t end_nanos);

  // Snapshot of every thread's ring, oldest-first per thread. `tid` is a dense
  // telemetry-local thread index (registration order), not an OS id.
  struct ThreadSpans {
    int tid = 0;
    std::vector<SpanRecord> spans;
  };
  static std::vector<ThreadSpans> CollectSpans();

  // Clears every ring (test isolation / between monitor runs).
  static void ClearSpans();

 private:
  static std::atomic<int> level_;
};

// RAII span. Construction checks the level gate before touching the clock, so a
// disabled stage costs one relaxed load. The per-stage histogram handle is looked up
// once per stage per process (function-local static bundle in timeline.cc).
#if QNET_TELEMETRY
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanStage stage)
      : stage_(stage), armed_(Timeline::StageEnabled(stage)) {
    if (armed_) {
      start_ = TimelineClock::NowNanos();
    }
  }
  ~ScopedSpan() {
    if (armed_) {
      Timeline::RecordSpan(stage_, start_, TimelineClock::NowNanos());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanStage stage_;
  bool armed_;
  std::uint64_t start_ = 0;
};
#else
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanStage) {}
};
#endif

// Per-stage latency histograms, registered in the global MetricRegistry as
// "qnet_stage_<name>_ns". Exposed so exporters and tests can reach them by stage.
Histogram* StageHistogram(SpanStage stage);

}  // namespace qnet

#endif  // QNET_TELEMETRY_TIMELINE_H_
