// Process-wide metric registry: counters, gauges, and log-bucketed histograms.
//
// The paper infers what a running service will not tell you; this layer makes sure the
// inference engine itself never has that problem. Design rules (the observability
// invariant in ROADMAP.md):
//
//  * Fixed-capacity registration at setup time. A MetricRegistry allocates every metric
//    slot at construction; AddCounter/AddGauge/AddHistogram hand out stable pointers
//    into those slots (re-registering a name returns the existing slot) and fail loudly
//    past capacity. Nothing on a hot path ever registers.
//  * Allocation-free, relaxed-atomic updates. Counter::Add, Gauge::SetMax and
//    Histogram::Record are single (or a handful of) relaxed atomic RMW operations —
//    safe from any thread, zero heap traffic, no fences on the sampler fast paths
//    (tests/test_alloc_free.cc pins this).
//  * One-way tap. Metrics observe; no code may read a metric back to make a decision.
//    Counters count deterministic events only; every wall-clock read lives in the
//    telemetry layer (timeline.h spans feeding stage histograms) or the legacy stats
//    stopwatches, and none of it feeds sampling or estimates.
//  * Single source for stats structs. StreamingStats / FleetStats / WindowAssemblerStats
//    shared fields are computed as per-run deltas of these counters (RunningCounts
//    below), so the exported metrics and the stats structs cannot drift.
//
// Compile-time switch: building with -DQNET_TELEMETRY=0 compiles every *timing* surface
// (histograms, spans, trace rings — see timeline.h) down to no-ops. Counters and gauges
// stay live under =0: they count deterministic events, back the user-facing stats
// structs, and cost one relaxed add each — the switch removes clocks, not accounting.

#ifndef QNET_TELEMETRY_METRICS_H_
#define QNET_TELEMETRY_METRICS_H_

#ifndef QNET_TELEMETRY
#define QNET_TELEMETRY 1
#endif

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qnet {

// Monotonic event count. Relaxed ordering: counters are statistics, never
// synchronization.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written / high-water-mark value (peak queue depths, buffer high-water marks).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  // Monotone max — the lock-free high-water-mark update.
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed (HDR-style) histogram over nonnegative integer values — nanosecond
// latencies throughout this codebase. Values 0..15 get exact buckets; above that each
// power-of-two octave splits into 8 sub-buckets, bounding the relative quantization
// error at 12.5% across the full uint64 range with a fixed 496-slot table. Record is
// three relaxed RMWs (bucket, sum, max) and never allocates.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kExactBuckets = 1u << (kSubBits + 1);  // 16
  static constexpr std::size_t kNumBuckets =
      kExactBuckets + (63 - kSubBits - 1) * (1u << kSubBits) + (1u << kSubBits);  // 496

  static std::size_t BucketIndex(std::uint64_t v) {
    if (v < kExactBuckets) {
      return static_cast<std::size_t>(v);
    }
    const int top = 63 - std::countl_zero(v);  // >= kSubBits + 1
    const std::uint64_t sub = (v >> (top - kSubBits)) & ((1u << kSubBits) - 1);
    return kExactBuckets +
           static_cast<std::size_t>(top - (kSubBits + 1)) * (1u << kSubBits) +
           static_cast<std::size_t>(sub);
  }

  // Smallest value mapping to bucket `index`; the bucket covers
  // [LowerBound(index), LowerBound(index) + Width(index)).
  static std::uint64_t BucketLowerBound(std::size_t index) {
    if (index < kExactBuckets) {
      return index;
    }
    const std::size_t i = index - kExactBuckets;
    const int top = (kSubBits + 1) + static_cast<int>(i / (1u << kSubBits));
    const std::uint64_t sub = i % (1u << kSubBits);
    return (std::uint64_t{1} << top) | (sub << (top - kSubBits));
  }
  static std::uint64_t BucketWidth(std::size_t index) {
    if (index < kExactBuckets) {
      return 1;
    }
    const int top = (kSubBits + 1) + static_cast<int>((index - kExactBuckets) /
                                                      (1u << kSubBits));
    return std::uint64_t{1} << (top - kSubBits);
  }

  void Record(std::uint64_t v) {
#if QNET_TELEMETRY
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  std::uint64_t BucketCount(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// --- snapshots ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramBucketSample {
  std::uint64_t lower = 0;  // inclusive lower bound of the bucket
  std::uint64_t width = 1;  // bucket covers [lower, lower + width)
  std::uint64_t count = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<HistogramBucketSample> buckets;  // nonzero buckets, ascending lower bound

  // Quantile estimate from the log buckets (bucket midpoint; the top bucket answers
  // with the exact observed max). q in [0, 1].
  double Quantile(double q) const;
};

// A stable-ordered (name-sorted) copy of every registered metric's current value —
// what the exporters (telemetry/export.h) consume.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;
};

// --- registry ----------------------------------------------------------------------------

struct MetricRegistryCapacity {
  std::size_t counters = 192;
  std::size_t gauges = 64;
  std::size_t histograms = 48;
};

class MetricRegistry {
 public:
  explicit MetricRegistry(const MetricRegistryCapacity& capacity = {});

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registration is setup-time work (mutex-guarded, may touch the name table); the
  // returned pointers are stable for the registry's lifetime and are the hot-path
  // handles. Registering an already-known name returns the existing metric.
  Counter* AddCounter(std::string_view name);
  Gauge* AddGauge(std::string_view name);
  Histogram* AddHistogram(std::string_view name);

  std::size_t NumCounters() const;
  std::size_t NumGauges() const;
  std::size_t NumHistograms() const;

  // Name-sorted copy of all current values. Values are read relaxed; taking a snapshot
  // while updates are in flight yields a consistent-enough statistical view (exact once
  // the producing threads have quiesced, which is when the exporters run).
  MetricsSnapshot Snapshot() const;

  // Zeroes every metric (test isolation only; production code never resets).
  void ResetAll();

  // The process-wide registry every subsystem registers into.
  static MetricRegistry& Global();

 private:
  mutable std::mutex mu_;
  MetricRegistryCapacity capacity_;
  std::unique_ptr<Counter[]> counters_;
  std::unique_ptr<Gauge[]> gauges_;
  std::unique_ptr<Histogram[]> histograms_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
};

// --- subsystem instrument bundles --------------------------------------------------------
//
// One lazily-registered bundle of handles per subsystem, all in the global registry.
// Get() is a function-local static: first use registers (setup-time), every later use is
// a pointer read. Hot paths hold the bundle reference, not names.

// The streaming pipeline's shared counters — the single source for the fields that
// StreamingStats, FleetStats and WindowAssemblerStats have in common. Incremented at
// exactly one site each (WindowSpanTracker for the ingest-side counts, the estimators'
// emit paths for the estimate-side counts); the stats structs are per-run deltas.
struct StreamCounters {
  Counter* tasks_ingested;      // WindowSpanTracker::Push calls (plain AND fleet path)
  Counter* late_dropped;        // records discarded under LateRecordPolicy::kDrop
  Counter* tail_dropped;        // end-of-stream remainder with nothing to merge into
  Counter* windows_closed;      // span decisions (merged-tail re-closes excluded)
  Counter* windows_estimated;   // estimates emitted (merged-tail re-fits excluded)
  Counter* degraded_windows;    // estimates emitted with degraded = true
  Counter* fit_iterations;      // summed WindowEstimate::fit_iterations
  Gauge* peak_buffered_tasks;   // high-water mark across assemblers / lanes
  Gauge* peak_queue_depth;      // high-water mark across lane ingest queues
  static const StreamCounters& Get();
};

// Sampler sweep execution (sharded_sweep.cc / move_kernel.cc).
struct SweepCounters {
  Counter* sweeps;  // scheduler sweeps executed
  Counter* moves;   // moves scheduled across those sweeps
  static const SweepCounters& Get();
};

// Window fits (stem.cc / meanfield.cc) — every caller, streaming or batch.
struct FitCounters {
  Counter* stem_fits;
  Counter* stem_iterations;  // iterations actually run (early stop shows up here)
  Counter* meanfield_fits;
  static const FitCounters& Get();
};

// Scenario engine cells (scenario_engine.cc).
struct ScenarioCounters {
  Counter* cells;
  Counter* draws;
  static const ScenarioCounters& Get();
};

// DES arena runs (sim_scratch.cc).
struct SimCounters {
  Counter* runs;
  Counter* tasks;
  static const SimCounters& Get();
};

// Online change detection (detect/change_monitor.cc, detect/alerts.cc). One counter per
// alert kind plus the windows-observed denominator; the detection-latency histogram is
// fed by the campaign harness (bench/perf_detect.cc and the campaign tests), which is
// the only place ground-truth change times exist — the monitor itself never knows them.
struct DetectCounters {
  Counter* windows_observed;          // ChangeMonitor::Observe calls (replacements too)
  Counter* alerts_total;              // every alert raised, any kind
  Counter* rate_shift_alerts;         // AlertKind::kRateShift
  Counter* service_drift_alerts;      // AlertKind::kServiceDrift
  Counter* bottleneck_migration_alerts;  // AlertKind::kBottleneckMigration
  Counter* degraded_run_alerts;       // AlertKind::kDegradedRun
  Histogram* detection_latency_windows;  // windows from scripted change to first alert
  static const DetectCounters& Get();
};

// Shard fleet plumbing (lane_queue.h / sharded_streaming.cc).
struct ShardCounters {
  Counter* records_routed;     // records delivered to lane workers
  Counter* queue_push_batches; // LaneQueue::PushMany calls
  Counter* queue_pop_batches;  // LaneQueue::PopMany returns
  static const ShardCounters& Get();
};

// Captures the stream counters' values so a Run() can report per-run deltas — the
// mechanism that populates the stats structs *from* the registry.
struct StreamCounterBaseline {
  std::uint64_t tasks_ingested = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t tail_dropped = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t windows_estimated = 0;
  std::uint64_t degraded_windows = 0;
  std::uint64_t fit_iterations = 0;

  static StreamCounterBaseline Capture();
  std::uint64_t TasksIngestedDelta() const;
  std::uint64_t LateDroppedDelta() const;
  std::uint64_t TailDroppedDelta() const;
  std::uint64_t WindowsClosedDelta() const;
  std::uint64_t WindowsEstimatedDelta() const;
  std::uint64_t DegradedWindowsDelta() const;
  std::uint64_t FitIterationsDelta() const;
};

}  // namespace qnet

#endif  // QNET_TELEMETRY_METRICS_H_
