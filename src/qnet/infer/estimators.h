// Reference estimators.
//
// * ObservedMeanService — the paper's Section 5.1 baseline: the sample mean of the *true*
//   service times of the observed tasks. As the paper notes, this comparison is unfair to
//   StEM because the baseline reads service times that are not actually measurable from an
//   incomplete trace; it exists to quantify the variance-reduction claim.
// * CompleteDataRatesMle — exponential-rate MLE when everything is observed (the M-step on
//   the full log); the oracle both methods approach as the observed fraction grows.

#ifndef QNET_INFER_ESTIMATORS_H_
#define QNET_INFER_ESTIMATORS_H_

#include <cstddef>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"

namespace qnet {

struct BaselineEstimate {
  // Per-queue mean of true service times over events of observed tasks; NaN for queues with
  // no observed events.
  std::vector<double> mean_service;
  std::vector<std::size_t> counts;
};

BaselineEstimate ObservedMeanService(const EventLog& truth,
                                     const std::vector<int>& observed_tasks);

// mu-hat_q = n_q / sum s_e on the complete log (index 0 = lambda-hat).
std::vector<double> CompleteDataRatesMle(const EventLog& log);

// Method-of-moments warm start for StEM: per-queue rate = 1 / (mean *response* time over
// events whose arrival and departure are both observed). Response >= service, so these
// rates underestimate mu under load, but they are scale-correct — which is what matters
// for Gibbs/StEM convergence speed (the EM fixed point contracts at ~(1 - observed
// fraction) per iteration from a cold start). Uses only measurable quantities. Queues with
// no fully-observed events fall back to `fallback_rate`. Index 0 is the arrival rate,
// estimated from observed entry-time gaps spread over the trace horizon.
std::vector<double> WarmStartRates(const EventLog& log, const Observation& obs,
                                   double fallback_rate = 1.0);

// Absolute errors |estimate - reference| per queue, skipping index 0 when skip_arrival.
std::vector<double> PerQueueAbsoluteError(const std::vector<double>& estimate,
                                          const std::vector<double>& reference,
                                          bool skip_arrival = true);

}  // namespace qnet

#endif  // QNET_INFER_ESTIMATORS_H_
