#include "qnet/infer/mg1.h"

#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

Mg1Metrics AnalyzeMg1(double lambda, const ServiceDistribution& service) {
  QNET_CHECK(lambda > 0.0, "arrival rate must be positive");
  const double mean_service = service.Mean();
  QNET_CHECK(mean_service > 0.0, "service mean must be positive");
  Mg1Metrics metrics;
  metrics.utilization = lambda * mean_service;
  if (metrics.utilization >= 1.0) {
    return metrics;
  }
  metrics.stable = true;
  // E[S^2] = Var + mean^2.
  const double second_moment = service.Variance() + mean_service * mean_service;
  metrics.mean_wait = lambda * second_moment / (2.0 * (1.0 - metrics.utilization));
  metrics.mean_response = metrics.mean_wait + mean_service;
  metrics.mean_in_queue = lambda * metrics.mean_wait;
  return metrics;
}

MmcMetrics AnalyzeMmc(double lambda, double mu, int servers) {
  QNET_CHECK(lambda > 0.0 && mu > 0.0, "rates must be positive");
  QNET_CHECK(servers >= 1, "need at least one server");
  MmcMetrics metrics;
  const double c = static_cast<double>(servers);
  const double offered = lambda / mu;  // offered load a = lambda/mu (in Erlangs)
  metrics.utilization = offered / c;
  if (metrics.utilization >= 1.0) {
    return metrics;
  }
  metrics.stable = true;
  // Erlang-C via the stable iterative form of the Erlang-B recursion:
  //   B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)); C = B(c) / (1 - rho (1 - B(c))).
  double erlang_b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    erlang_b = offered * erlang_b / (static_cast<double>(k) + offered * erlang_b);
  }
  metrics.prob_wait = erlang_b / (1.0 - metrics.utilization * (1.0 - erlang_b));
  metrics.mean_wait = metrics.prob_wait / (c * mu - lambda);
  metrics.mean_response = metrics.mean_wait + 1.0 / mu;
  metrics.mean_in_queue = lambda * metrics.mean_wait;
  return metrics;
}

}  // namespace qnet
