// Exact sampler/integrator for piecewise log-linear (piecewise-exponential) densities.
//
// The Gibbs conditionals of the paper (Figure 3) are densities of the form
//     p(x) ∝ exp(alpha_i + beta_i * x)   on segment [lo_i, hi_i),
// with up to three segments for the arrival move and two for the final-departure move.
// This class normalizes such densities in log space (immune to exp overflow even when
// |alpha| is in the tens of thousands), samples by inverse CDF, and exposes LogPdf/Cdf/Mean
// so tests can verify the sampler against numeric integration.

#ifndef QNET_INFER_PIECEWISE_EXP_H_
#define QNET_INFER_PIECEWISE_EXP_H_

#include <cstddef>
#include <vector>

#include "qnet/support/rng.h"

namespace qnet {

struct ExpSegment {
  double lo = 0.0;
  double hi = 0.0;
  double alpha = 0.0;  // log-density intercept
  double beta = 0.0;   // log-density slope
  double log_mass = 0.0;
};

class PiecewiseExpDensity {
 public:
  // Appends a segment; segments must be added left to right and non-overlapping. hi may be
  // +infinity only when beta < 0. Zero-width segments are ignored.
  void AddSegment(double lo, double hi, double alpha, double beta);

  // Computes segment masses and the normalizer. CHECK-fails when the total mass is zero.
  void Finalize();
  bool Finalized() const { return finalized_; }

  double LogNormalizer() const;
  double Sample(Rng& rng) const;
  // Normalized log density (-inf outside the support).
  double LogPdf(double x) const;
  double Cdf(double x) const;
  double Mean() const;

  std::size_t NumSegments() const { return segments_.size(); }
  const ExpSegment& Segment(std::size_t i) const { return segments_[i]; }
  double SupportLo() const;
  double SupportHi() const;

 private:
  std::vector<ExpSegment> segments_;
  double log_normalizer_ = 0.0;
  bool finalized_ = false;
};

}  // namespace qnet

#endif  // QNET_INFER_PIECEWISE_EXP_H_
