// Exact sampler/integrator for piecewise log-linear (piecewise-exponential) densities.
//
// The Gibbs conditionals of the paper (Figure 3) are densities of the form
//     p(x) ∝ exp(alpha_i + beta_i * x)   on segment [lo_i, hi_i),
// with up to three segments for the arrival move and two for the final-departure move.
// This class normalizes such densities in log space (immune to exp overflow even when
// |alpha| is in the tens of thousands), samples by inverse CDF, and exposes LogPdf/Cdf/Mean
// so tests can verify the sampler against numeric integration.
//
// Hot-path design (the Gibbs sampler builds + samples one of these per latent coordinate
// per sweep):
//  * fixed-capacity inline segment storage — the whole object lives on the stack and the
//    build→finalize→sample path performs zero heap allocations;
//  * Finalize computes segment masses in *linear* space relative to the density's peak
//    log value (one exp + one expm1 per segment instead of the log-space Log1mExp/log
//    chain), so Sample picks a segment with plain arithmetic and spends its only
//    transcendentals in the final inverse-CDF;
//  * per-segment log masses (test/diagnostic API) are derived lazily in Segment().
// Masses more than ~700 nats below the peak underflow to exactly zero weight, which is the
// same behavior the previous log-space implementation had at sampling time.

#ifndef QNET_INFER_PIECEWISE_EXP_H_
#define QNET_INFER_PIECEWISE_EXP_H_

#include <array>
#include <cstddef>

#include "qnet/support/rng.h"

namespace qnet {

struct ExpSegment {
  double lo = 0.0;
  double hi = 0.0;
  double alpha = 0.0;  // log-density intercept
  double beta = 0.0;   // log-density slope
  double log_mass = 0.0;
};

class PiecewiseExpDensity {
 public:
  // Arrival conditionals have <= 3 segments and final-departure conditionals <= 2; one
  // extra slot of headroom keeps the capacity check from ever firing on valid geometry.
  static constexpr std::size_t kMaxSegments = 4;

  // Appends a segment; segments must be added left to right and non-overlapping. hi may be
  // +infinity only when beta < 0. Zero-width segments are ignored. CHECK-fails beyond
  // kMaxSegments.
  void AddSegment(double lo, double hi, double alpha, double beta);

  // Computes segment masses and the normalizer. CHECK-fails when the total mass is zero.
  void Finalize();
  bool Finalized() const { return finalized_; }

  // Returns the density to the empty un-finalized state so the instance can be rebuilt
  // in place on the next move.
  void Reset() {
    num_segments_ = 0;
    finalized_ = false;
  }

  double LogNormalizer() const;
  double Sample(Rng& rng) const;
  // Normalized log density (-inf outside the support).
  double LogPdf(double x) const;
  double Cdf(double x) const;
  double Mean() const;

  std::size_t NumSegments() const { return num_segments_; }
  // Diagnostic accessor, returned by value with log_mass derived on demand (it is not
  // needed for sampling, and computing it here keeps the object free of mutable state —
  // safe to share const across threads).
  ExpSegment Segment(std::size_t i) const;
  double SupportLo() const;
  double SupportHi() const;

 private:
  std::array<ExpSegment, kMaxSegments> segments_;
  // Linear-space segment masses, scaled by exp(-peak_log_value_); valid after Finalize.
  std::array<double, kMaxSegments> mass_;
  double total_mass_ = 0.0;
  double peak_log_value_ = 0.0;  // max of the log density over all segment endpoints
  std::size_t num_segments_ = 0;
  bool finalized_ = false;
};

}  // namespace qnet

#endif  // QNET_INFER_PIECEWISE_EXP_H_
