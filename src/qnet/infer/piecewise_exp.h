// Exact sampler/integrator for piecewise log-linear (piecewise-exponential) densities.
//
// The Gibbs conditionals of the paper (Figure 3) are densities of the form
//     p(x) ∝ exp(alpha_i + beta_i * x)   on segment [lo_i, hi_i),
// with up to three segments for the arrival move and two for the final-departure move.
// This class normalizes such densities in log space (immune to exp overflow even when
// |alpha| is in the tens of thousands), samples by inverse CDF, and exposes LogPdf/Cdf/Mean
// so tests can verify the sampler against numeric integration.
//
// Hot-path design (the Gibbs sampler builds + samples one of these per latent coordinate
// per sweep):
//  * fixed-capacity inline segment storage — the whole object lives on the stack and the
//    build→finalize→sample path performs zero heap allocations;
//  * Finalize computes segment masses in *linear* space relative to the density's peak
//    log value (two exps per segment instead of the log-space Log1mExp/log chain), so
//    Sample picks a segment with plain arithmetic and spends its only transcendentals in
//    the final inverse-CDF;
//  * per-segment log masses (test/diagnostic API) are derived lazily in Segment().
// Masses more than ~700 nats below the peak underflow to exactly zero weight, which is the
// same behavior the previous log-space implementation had at sampling time.

#ifndef QNET_INFER_PIECEWISE_EXP_H_
#define QNET_INFER_PIECEWISE_EXP_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "qnet/support/logspace.h"
#include "qnet/support/rng.h"

namespace qnet {

struct ExpSegment {
  double lo = 0.0;
  double hi = 0.0;
  double alpha = 0.0;  // log-density intercept
  double beta = 0.0;   // log-density slope
  double log_mass = 0.0;
};

class PiecewiseExpDensity {
 public:
  // Arrival conditionals have <= 3 segments and final-departure conditionals <= 2; one
  // extra slot of headroom keeps the capacity check from ever firing on valid geometry.
  static constexpr std::size_t kMaxSegments = 4;

  // Appends a segment; segments must be added left to right and non-overlapping. hi may be
  // +infinity only when beta < 0. Zero-width segments are ignored. CHECK-fails beyond
  // kMaxSegments.
  void AddSegment(double lo, double hi, double alpha, double beta);

  // Computes segment masses and the normalizer. CHECK-fails when the total mass is zero.
  void Finalize();
  bool Finalized() const { return finalized_; }

  // Returns the density to the empty un-finalized state so the instance can be rebuilt
  // in place on the next move.
  void Reset() {
    num_segments_ = 0;
    finalized_ = false;
  }

  double LogNormalizer() const;
  // Draws the two uniforms (segment pick, then inverse CDF) from `rng` and delegates to
  // SampleWith. Every non-degenerate move consumes exactly these two draws.
  double Sample(Rng& rng) const;
  // Deterministic two-uniform sampling core: `u_pick` chooses the segment proportionally
  // to its mass, `u_inv` is the within-segment inverse-CDF quantile. Exposed so the
  // batched kernel (PiecewiseExpBatch) and the scalar path can be fed identical uniforms
  // and compared bit-for-bit.
  double SampleWith(double u_pick, double u_inv) const;
  // Normalized log density (-inf outside the support).
  double LogPdf(double x) const;
  double Cdf(double x) const;
  double Mean() const;

  std::size_t NumSegments() const { return num_segments_; }
  // Diagnostic accessor, returned by value with log_mass derived on demand (it is not
  // needed for sampling, and computing it here keeps the object free of mutable state —
  // safe to share const across threads).
  ExpSegment Segment(std::size_t i) const;
  double SupportLo() const;
  double SupportHi() const;

 private:
  std::array<ExpSegment, kMaxSegments> segments_;
  // Linear-space segment masses, scaled by exp(-peak_log_value_); valid after Finalize.
  std::array<double, kMaxSegments> mass_;
  double total_mass_ = 0.0;
  double peak_log_value_ = 0.0;  // max of the log density over all segment endpoints
  std::size_t num_segments_ = 0;
  bool finalized_ = false;
};

// SoA build/finalize/sample path for one tile of the batched move kernel: up to kMaxMoves
// densities held as per-segment arrays, so FinalizeAll runs as rectangular branchless
// passes — the transcendental work (two exps per segment) as contiguous vmath sweeps, the
// peak/mass combining as elementwise loops across moves — instead of ragged per-move
// control flow.
//
// Every array shares one layout: move m's segment rank k lives at [k * kMaxMoves + m],
// so segment rank k of every move forms one contiguous row of kMaxMoves lanes. AddSegment
// derives the cheap per-segment quantities (endpoint peak value, width, u = beta * width,
// |beta|) as it stores the geometry — a handful of scalar flops folded into the build
// loop — so FinalizeAll starts directly at the per-move peak fold and the fused
// exp/mass pass, with no transpose or re-derivation pass over the geometry.
//
// Unused (m, k) slots self-neutralize instead of being stored per segment: BeginMove
// pre-drops the move's peak-value slots to -inf (three stores), AddSegment overwrites the
// live ones, and a dead slot's -inf value makes both exps of the mass formula exactly
// zero — zero mass, a peak candidate that never wins, arithmetic that cannot produce a
// NaN against the (finite or zero-width) stale width/u/|beta| values left in the other
// arrays, which are value-initialized so even first-tile dead slots read defined doubles.
//
// Contract with the scalar class: for every move slot, FinalizeAll + Sample compute
// arithmetic identical operation-for-operation to PiecewiseExpDensity::Finalize +
// SampleWith (both run on vmath), so given the same segments and the same two uniforms
// the sampled time is bit-identical — pinned by tests/test_move_batch.cc. A move slot may
// be left empty (BeginMove with no AddSegment): that is the degenerate-window case, where
// the kernel writes the midpoint and never calls Sample on the slot.
//
// The object is fixed-capacity (no heap); the kernel keeps one per tile on the stack.
class PiecewiseExpBatch {
 public:
  static constexpr std::size_t kMaxMoves = 32;
  // One slot per segment the builders can actually emit (arrival conditionals cut the
  // window at most twice — 3 segments; final-departure at most once — 2). The scalar
  // class carries one extra headroom slot; here every slot costs a full lane of every
  // finalize pass, so the batch stride is exact and AddSegment's always-on capacity
  // check is the guard.
  static constexpr std::size_t kStride = 3;
  static_assert(kStride < PiecewiseExpDensity::kMaxSegments,
                "batch stride must cover every valid density minus the headroom slot");
  static constexpr std::size_t kMaxTotalSegments = kMaxMoves * kStride;

  void Clear() {
    num_moves_ = 0;
    max_count_ = 0;
    finalized_ = false;
  }

  // Opens the next move slot; returns its index. Segments added afterwards belong to it.
  // Drops the slot's peak values to -inf so segment ranks the move never fills
  // self-neutralize in FinalizeAll (zero mass, losing peak candidate).
  std::size_t BeginMove() {
    QNET_DCHECK(!finalized_, "BeginMove after FinalizeAll");
    QNET_CHECK(num_moves_ < kMaxMoves, "batch is full");  // always-on: guards the stores
    const std::size_t m = num_moves_;
    counts_[m] = 0;
    for (std::size_t k = 0; k < kStride; ++k) {
      value_[k * kMaxMoves + m] = kNegInf;
    }
    return num_moves_++;
  }

  // Same semantics as PiecewiseExpDensity::AddSegment, scoped to the open move slot.
  // Geometry validation is DCHECK-only here: this is the per-segment hot path, and the
  // scalar reference kernel (which tests pin bit-identical to the batched one) runs the
  // always-checked PiecewiseExpDensity::AddSegment on the very same segments.
  void AddSegment(double lo, double hi, double alpha, double beta) {
    QNET_DCHECK(num_moves_ > 0 && !finalized_, "no open move");
    QNET_DCHECK(lo <= hi, "segment bounds reversed: lo=", lo, " hi=", hi);
    if (!(lo < hi)) {
      return;  // Zero width carries zero mass.
    }
    QNET_DCHECK(hi != kPosInf || beta < 0.0, "unbounded segment requires beta < 0");
    const std::size_t m = num_moves_ - 1;
    const std::size_t count = counts_[m];
    QNET_DCHECK(count == 0 || hi_[(count - 1) * kMaxMoves + m] <= lo + 1e-12,
                "segments must be ordered and disjoint");
    // Always-on array-bound guard (cheap single compare; everything above is geometry).
    QNET_CHECK(count < kStride, "more than ", kStride,
               " segments; the Gibbs conditionals never need this");
    const std::size_t i = count * kMaxMoves + m;
    lo_[i] = lo;
    hi_[i] = hi;
    beta_[i] = beta;
    alpha_[i] = alpha;
    // Derive the finalize/sample inputs here (a few flops on values already in
    // registers) so FinalizeAll never revisits the geometry. Same expressions as the
    // scalar Finalize and SampleExpLinear, for bit-identical downstream branches: the
    // peak value sits at hi only for a rising bounded segment (on the unbounded tail
    // beta < 0, and at_hi's -inf is computed and discarded), width is +inf and u == -inf
    // on that tail.
    const double width = hi - lo;
    const double at_lo = alpha + beta * lo;
    value_[i] = (beta > 0.0 && hi != kPosInf) ? alpha + beta * hi : at_lo;
    width_[i] = width;
    u_[i] = beta * width;
    abs_beta_[i] = std::abs(beta);
    counts_[m] = count + 1;
    // Highest live rank in the batch: FinalizeAll's rectangular passes stop there
    // instead of at kStride (most conditionals have one or two segments, so the third
    // rank is usually all-dead — and a dead rank contributes exact zeros, so skipping
    // it cannot change a bit).
    max_count_ = std::max<std::uint32_t>(max_count_, static_cast<std::uint32_t>(count) + 1);
  }

  // Normalizes every non-empty move slot: two contiguous vmath exp sweeps plus
  // elementwise (vectorizable) peak/gap/mass/total passes.
  void FinalizeAll();

  // Samples every non-empty move slot from its two uniforms, writing out[m]; empty slots
  // (degenerate-window moves) are left untouched for the caller to fill. Bit-identical to
  // calling Sample(m, ...) per slot: the segment pick runs as the same sequential
  // mass subtractions, vectorized with rank-selects, and the common branch —
  // lo + log((1-v) + v*exp(u)) / beta, which the semi-infinite tail folds into exactly
  // because exp(-inf) == 0 — as fused vmath sweeps across the tile; only lanes needing a
  // rare inverse-CDF arm (numerically flat segment, large positive exponent) fall back
  // to a scalar patch-up on the same vmath kernels.
  void SampleAll(std::span<const double> u_pick, std::span<const double> u_inv,
                 std::span<double> out) const;

  // Samples move slot m from its two uniforms; FinalizeAll first, slot must be non-empty.
  double Sample(std::size_t m, double u_pick, double u_inv) const {
    QNET_DCHECK(finalized_, "FinalizeAll first");
    QNET_DCHECK(m < num_moves_, "move slot out of range: ", m);
    const std::size_t count = counts_[m];
    QNET_DCHECK(count > 0, "sampling an empty move slot");
    double u = u_pick * total_mass_[m];
    std::size_t pick = count - 1;
    for (std::size_t k = 0; k + 1 < count; ++k) {
      u -= mass_[k * kMaxMoves + m];
      if (u < 0.0) {
        pick = k;
        break;
      }
    }
    const std::size_t g = pick * kMaxMoves + m;
    return SampleExpLinear(beta_[g], lo_[g], hi_[g], u_inv);
  }

  std::size_t NumMoves() const { return num_moves_; }
  std::size_t NumSegments(std::size_t m) const {
    QNET_DCHECK(m < num_moves_, "move slot out of range: ", m);
    return counts_[m];
  }

 private:
  // All arrays use the one layout: move m's segment rank k at [k * kMaxMoves + m].
  // Geometry and the AddSegment-derived quantities are written for live slots only;
  // value_ additionally holds -inf in a move's dead ranks (BeginMove pre-drops them).
  // The derived arrays are value-initialized so the fused mass pass's full-row reads of
  // never-written slots see defined (then self-neutralizing) doubles. The peak gaps and
  // their exps are never materialized: the fused pass evaluates both inline-vmath exps
  // of the two-exp formula in the same vectorized loop that combines them.
  std::array<double, kMaxTotalSegments> lo_{};
  std::array<double, kMaxTotalSegments> hi_{};
  std::array<double, kMaxTotalSegments> alpha_{};
  std::array<double, kMaxTotalSegments> beta_{};
  std::array<double, kMaxTotalSegments> value_{};  // peak log value (at_hi or at_lo)
  std::array<double, kMaxTotalSegments> width_{};  // hi - lo (+inf on the unbounded tail)
  std::array<double, kMaxTotalSegments> u_{};      // beta * width, the sampling exponent
  std::array<double, kMaxTotalSegments> abs_beta_{};
  std::array<double, kMaxTotalSegments> mass_{};
  std::array<double, kMaxMoves> total_mass_;
  std::array<std::uint32_t, kMaxMoves> counts_{};
  std::size_t num_moves_ = 0;
  std::uint32_t max_count_ = 0;  // max over counts_[0..num_moves_): live rank bound
  bool finalized_ = false;
};

}  // namespace qnet

#endif  // QNET_INFER_PIECEWISE_EXP_H_
