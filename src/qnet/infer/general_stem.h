// Stochastic EM with general (non-exponential) service families — the estimator companion
// to GeneralGibbsSampler, completing the paper's "more general service distributions"
// extension. The E-step slice-samples the latent times; the M-step refits each queue's
// distribution by maximum likelihood within its assigned family (exponential, gamma, or
// log-normal), optionally choosing the family per queue by BIC at the end.

#ifndef QNET_INFER_GENERAL_STEM_H_
#define QNET_INFER_GENERAL_STEM_H_

#include <memory>
#include <string>
#include <vector>

#include "qnet/infer/general_gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/infer/model_select.h"
#include "qnet/model/network.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct GeneralStemOptions {
  std::size_t iterations = 120;
  std::size_t burn_in = 40;
  // Family fitted per real queue (queue 0 is always exponential — Poisson arrivals). If
  // empty, every queue uses `default_family`.
  std::vector<ServiceFamily> families;
  ServiceFamily default_family = ServiceFamily::kGamma;
  // Re-select each queue's family by BIC on the final imputed services.
  bool select_family_by_bic = false;
  std::size_t wait_sweeps = 30;
  GeneralGibbsOptions gibbs;
  InitializerOptions init;
};

struct GeneralStemResult {
  // Fitted network (deep copy with estimated service distributions).
  QueueingNetwork network;
  std::vector<double> mean_service;  // per queue, from the fitted distributions
  std::vector<double> mean_wait;     // posterior average (empty if wait_sweeps == 0)
  std::vector<std::string> fitted_description;  // Describe() per queue
  std::vector<ServiceFamily> chosen_family;     // per queue (index 0 unused)

  explicit GeneralStemResult(QueueingNetwork net) : network(std::move(net)) {}
};

class GeneralStemEstimator {
 public:
  explicit GeneralStemEstimator(GeneralStemOptions options = {})
      : options_(std::move(options)) {}

  // `initial_net` provides the topology and the starting service distributions (its rates
  // are also used by the feasible initializer via 1/mean).
  GeneralStemResult Run(const EventLog& truth, const Observation& obs,
                        const QueueingNetwork& initial_net, Rng& rng) const;

 private:
  GeneralStemOptions options_;
};

}  // namespace qnet

#endif  // QNET_INFER_GENERAL_STEM_H_
