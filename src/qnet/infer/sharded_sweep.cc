#include "qnet/infer/sharded_sweep.h"

#include <algorithm>

#include "qnet/model/conflict.h"
#include "qnet/support/check.h"

namespace qnet {

ShardedSweepScheduler::ShardedSweepScheduler(const EventLog& log,
                                             std::span<const SweepMove> moves,
                                             const ShardedSweepOptions& options)
    : shards_(std::max<std::size_t>(1, options.shards)) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  threads_ = std::max<std::size_t>(1, std::min(threads, shards_));

  const MoveColoring coloring = ColorSweepMoves(log, moves);
  num_colors_ = static_cast<std::size_t>(coloring.num_colors);

  // Counting sort of the moves into (color, shard) buckets; within a bucket moves keep
  // their class-rank order, so the schedule is a pure function of (moves, shards).
  const std::size_t buckets = num_colors_ * shards_;
  bucket_offsets_.assign(buckets + 1, 0);
  std::vector<std::size_t> rank_in_class(num_colors_, 0);
  std::vector<std::size_t> bucket_of(moves.size());
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const auto c = static_cast<std::size_t>(coloring.color[i]);
    const std::size_t s = rank_in_class[c]++ % shards_;
    bucket_of[i] = c * shards_ + s;
    ++bucket_offsets_[bucket_of[i] + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    bucket_offsets_[b + 1] += bucket_offsets_[b];
  }
  schedule_.resize(moves.size());
  std::vector<std::size_t> cursor(bucket_offsets_.begin(), bucket_offsets_.end() - 1);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    schedule_[cursor[bucket_of[i]]++] = moves[i];
  }

  if (threads_ > 1) {
    class_barrier_.emplace(static_cast<std::ptrdiff_t>(threads_));
    errors_.assign(threads_, nullptr);
    workers_.reserve(threads_ - 1);
    for (std::size_t t = 1; t < threads_; ++t) {
      workers_.emplace_back([this, t] { WorkerLoop(t); });
    }
  }
}

ShardedSweepScheduler::~ShardedSweepScheduler() {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

std::span<const SweepMove> ShardedSweepScheduler::Bucket(std::size_t color,
                                                         std::size_t shard) const {
  QNET_CHECK(color < num_colors_ && shard < shards_, "bucket out of range: color=", color,
             " shard=", shard);
  const std::size_t b = color * shards_ + shard;
  return {schedule_.data() + bucket_offsets_[b], bucket_offsets_[b + 1] - bucket_offsets_[b]};
}

void ShardedSweepScheduler::Run(FunctionRef<void(const SweepMove&, Rng&)> apply,
                                std::uint64_t sweep_seed) {
  if (threads_ <= 1) {
    // Sequential, allocation-free loop — no pool, no barrier.
    for (std::size_t c = 0; c < num_colors_; ++c) {
      for (std::size_t s = 0; s < shards_; ++s) {
        RunBucket(c, s, apply, sweep_seed);
      }
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    apply_ = &apply;
    sweep_seed_ = sweep_seed;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr());
    ++generation_;
  }
  cv_.notify_all();
  RunParticipant(0);
  // Passing the last class barrier means every participant finished every bucket (the
  // barrier synchronizes-with their writes), so errors_ is stable to read here.
  apply_ = nullptr;
  for (const std::exception_ptr& error : errors_) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

void ShardedSweepScheduler::RunParticipant(std::size_t t) {
  for (std::size_t c = 0; c < num_colors_; ++c) {
    if (!errors_[t]) {
      try {
        for (std::size_t s = t; s < shards_; s += threads_) {
          RunBucket(c, s, *apply_, sweep_seed_);
        }
      } catch (...) {
        errors_[t] = std::current_exception();
      }
    }
    class_barrier_->arrive_and_wait();
  }
}

void ShardedSweepScheduler::WorkerLoop(std::size_t t) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
    }
    RunParticipant(t);
  }
}

void ShardedSweepScheduler::RunBucket(std::size_t color, std::size_t shard,
                                      FunctionRef<void(const SweepMove&, Rng&)> apply,
                                      std::uint64_t sweep_seed) const {
  const std::size_t b = color * shards_ + shard;
  const std::size_t begin = bucket_offsets_[b];
  const std::size_t end = bucket_offsets_[b + 1];
  if (begin == end) {
    return;
  }
  Rng rng(MixSeed(MixSeed(sweep_seed, color), shard));
  for (std::size_t i = begin; i < end; ++i) {
    apply(schedule_[i], rng);
  }
}

}  // namespace qnet
