#include "qnet/infer/sharded_sweep.h"

#include <algorithm>

#include "qnet/support/check.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

ShardedSweepScheduler::ShardedSweepScheduler(const ShardedSweepOptions& options)
    : shards_(std::max<std::size_t>(1, options.shards)) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  threads_ = std::max<std::size_t>(1, std::min(threads, shards_));

  bucket_offsets_.assign(1, 0);

  if (threads_ > 1) {
    class_barrier_.emplace(static_cast<std::ptrdiff_t>(threads_));
    errors_.assign(threads_, nullptr);
    workers_.reserve(threads_ - 1);
    for (std::size_t t = 1; t < threads_; ++t) {
      workers_.emplace_back([this, t] { WorkerLoop(t); });
    }
  }
}

ShardedSweepScheduler::ShardedSweepScheduler(const EventLog& log,
                                             std::span<const SweepMove> moves,
                                             const ShardedSweepOptions& options)
    : ShardedSweepScheduler(options) {
  Rebuild(log, moves);
}

void ShardedSweepScheduler::Rebuild(const EventLog& log, std::span<const SweepMove> moves) {
  ColorSweepMovesInto(log, moves, coloring_scratch_, coloring_);
  num_colors_ = static_cast<std::size_t>(coloring_.num_colors);

  // Counting sort of the moves into (color, shard) buckets; within a bucket moves keep
  // their class-rank order, so the schedule is a pure function of (moves, shards).
  const std::size_t buckets = num_colors_ * shards_;
  bucket_offsets_.assign(buckets + 1, 0);
  rank_in_class_.assign(num_colors_, 0);
  bucket_of_.resize(moves.size());
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const auto c = static_cast<std::size_t>(coloring_.color[i]);
    const std::size_t s = rank_in_class_[c]++ % shards_;
    bucket_of_[i] = c * shards_ + s;
    ++bucket_offsets_[bucket_of_[i] + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    bucket_offsets_[b + 1] += bucket_offsets_[b];
  }
  schedule_.resize(moves.size());
  cursor_.assign(bucket_offsets_.begin(), bucket_offsets_.end() - 1);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    schedule_[cursor_[bucket_of_[i]]++] = moves[i];
  }
}

ShardedSweepScheduler::~ShardedSweepScheduler() {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

std::span<const SweepMove> ShardedSweepScheduler::Bucket(std::size_t color,
                                                         std::size_t shard) const {
  QNET_CHECK(color < num_colors_ && shard < shards_, "bucket out of range: color=", color,
             " shard=", shard);
  const std::size_t b = color * shards_ + shard;
  return {schedule_.data() + bucket_offsets_[b], bucket_offsets_[b + 1] - bucket_offsets_[b]};
}

void ShardedSweepScheduler::Run(FunctionRef<void(const SweepMove&, Rng&)> apply,
                                std::uint64_t sweep_seed) {
  // Per-move execution is the bucket-granular loop with the bucket's stream threaded
  // through its moves in order — the historical semantics, bit for bit.
  const auto per_move = [&apply](std::span<const SweepMove> bucket, std::uint64_t seed) {
    Rng rng(seed);
    for (const SweepMove& move : bucket) {
      apply(move, rng);
    }
  };
  RunBuckets(FunctionRef<void(std::span<const SweepMove>, std::uint64_t)>(per_move),
             sweep_seed);
}

void ShardedSweepScheduler::RunBuckets(
    FunctionRef<void(std::span<const SweepMove>, std::uint64_t)> run_bucket,
    std::uint64_t sweep_seed) {
  SweepCounters::Get().sweeps->Increment();
  SweepCounters::Get().moves->Add(schedule_.size());
  if (threads_ <= 1) {
    // Sequential, allocation-free loop — no pool, no barrier.
    for (std::size_t c = 0; c < num_colors_; ++c) {
      ScopedSpan color_span(SpanStage::kSweepColor);
      for (std::size_t s = 0; s < shards_; ++s) {
        RunBucket(c, s, run_bucket, sweep_seed);
      }
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    run_bucket_ = &run_bucket;
    sweep_seed_ = sweep_seed;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr());
    inflight_workers_ = threads_ - 1;
    ++generation_;
  }
  cv_.notify_all();
  RunParticipant(0);
  {
    // Wait for every worker's check-in, not just the last class barrier: with zero color
    // classes there is no barrier at all, and a worker that wakes after this sweep ends
    // must never observe a retired run_bucket_ or a Rebuilt class count.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return inflight_workers_ == 0; });
    run_bucket_ = nullptr;
  }
  for (const std::exception_ptr& error : errors_) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

void ShardedSweepScheduler::RunParticipant(std::size_t t) {
  for (std::size_t c = 0; c < num_colors_; ++c) {
    if (!errors_[t]) {
      try {
        // Per-participant share of the color class; the span ends before the class
        // barrier, so barrier wait shows up as the gap between color spans in a trace.
        ScopedSpan color_span(SpanStage::kSweepColor);
        for (std::size_t s = t; s < shards_; s += threads_) {
          RunBucket(c, s, *run_bucket_, sweep_seed_);
        }
      } catch (...) {
        errors_[t] = std::current_exception();
      }
    }
    class_barrier_->arrive_and_wait();
  }
}

void ShardedSweepScheduler::WorkerLoop(std::size_t t) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
    }
    RunParticipant(t);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--inflight_workers_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ShardedSweepScheduler::RunBucket(
    std::size_t color, std::size_t shard,
    FunctionRef<void(std::span<const SweepMove>, std::uint64_t)> run_bucket,
    std::uint64_t sweep_seed) const {
  const std::size_t b = color * shards_ + shard;
  const std::size_t begin = bucket_offsets_[b];
  const std::size_t end = bucket_offsets_[b + 1];
  if (begin == end) {
    return;
  }
  ScopedSpan bucket_span(SpanStage::kSweepBucket);
  run_bucket({schedule_.data() + begin, end - begin}, MixSeed(MixSeed(sweep_seed, color), shard));
}

}  // namespace qnet
