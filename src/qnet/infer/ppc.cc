#include "qnet/infer/ppc.h"

#include <cmath>
#include <limits>

#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {

bool PpcResult::ConsistentAt(double alpha) const {
  QNET_CHECK(alpha > 0.0 && alpha < 0.5, "alpha must be in (0, 0.5)");
  for (const auto& values : {p_value_mean, p_value_tail}) {
    for (double p : values) {
      if (!std::isnan(p) && (p < alpha || p > 1.0 - alpha)) {
        return false;
      }
    }
  }
  return true;
}

void ObservedResponseStats(const EventLog& log, const Observation& obs, double tail_quantile,
                           std::vector<double>* mean_out, std::vector<double>* tail_out) {
  const auto num_queues = static_cast<std::size_t>(log.NumQueues());
  std::vector<std::vector<double>> responses(num_queues);
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (!ev.initial && obs.ArrivalObserved(e) && obs.DepartureObserved(e)) {
      responses[static_cast<std::size_t>(ev.queue)].push_back(ev.departure - ev.arrival);
    }
  }
  mean_out->assign(num_queues, std::numeric_limits<double>::quiet_NaN());
  tail_out->assign(num_queues, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t q = 1; q < num_queues; ++q) {
    if (responses[q].size() >= 3) {
      (*mean_out)[q] = Mean(responses[q]);
      (*tail_out)[q] = Quantile(responses[q], tail_quantile);
    }
  }
}

PpcResult PosteriorPredictiveCheck(const EventLog& observed_log, const Observation& obs,
                                   const QueueingNetwork& fitted_net, Rng& rng,
                                   const PpcOptions& options) {
  QNET_CHECK(options.replicates >= 10, "need at least 10 replicates");
  QNET_CHECK(fitted_net.NumQueues() == observed_log.NumQueues(), "queue count mismatch");
  const auto num_queues = static_cast<std::size_t>(observed_log.NumQueues());

  PpcResult result;
  ObservedResponseStats(observed_log, obs, options.tail_quantile,
                        &result.observed_mean_response, &result.observed_tail_response);

  const double fraction =
      static_cast<double>(obs.observed_tasks.size()) /
      std::max(1.0, static_cast<double>(observed_log.NumTasks()));
  const double lambda = fitted_net.ArrivalRate();
  const auto num_tasks = static_cast<std::size_t>(observed_log.NumTasks());

  std::vector<std::size_t> mean_exceed(num_queues, 0);
  std::vector<std::size_t> tail_exceed(num_queues, 0);
  std::vector<std::size_t> defined(num_queues, 0);
  for (std::size_t rep = 0; rep < options.replicates; ++rep) {
    Rng rep_rng = rng.Fork();
    const EventLog replicate =
        SimulateWorkload(fitted_net, PoissonArrivals(lambda, num_tasks), rep_rng);
    TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    const Observation rep_obs = scheme.Apply(replicate, rep_rng);
    std::vector<double> rep_mean;
    std::vector<double> rep_tail;
    ObservedResponseStats(replicate, rep_obs, options.tail_quantile, &rep_mean, &rep_tail);
    for (std::size_t q = 1; q < num_queues; ++q) {
      if (std::isnan(result.observed_mean_response[q]) || std::isnan(rep_mean[q])) {
        continue;
      }
      ++defined[q];
      if (rep_mean[q] >= result.observed_mean_response[q]) {
        ++mean_exceed[q];
      }
      if (rep_tail[q] >= result.observed_tail_response[q]) {
        ++tail_exceed[q];
      }
    }
  }
  result.p_value_mean.assign(num_queues, std::numeric_limits<double>::quiet_NaN());
  result.p_value_tail.assign(num_queues, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t q = 1; q < num_queues; ++q) {
    if (defined[q] >= options.replicates / 2) {
      result.p_value_mean[q] =
          static_cast<double>(mean_exceed[q]) / static_cast<double>(defined[q]);
      result.p_value_tail[q] =
          static_cast<double>(tail_exceed[q]) / static_cast<double>(defined[q]);
    }
  }
  return result;
}

}  // namespace qnet
