#include "qnet/infer/mm1.h"

#include "qnet/support/check.h"

namespace qnet {

Mm1Metrics AnalyzeMm1(double lambda, double mu) {
  QNET_CHECK(lambda > 0.0 && mu > 0.0, "M/M/1 rates must be positive");
  Mm1Metrics metrics;
  metrics.utilization = lambda / mu;
  if (metrics.utilization >= 1.0) {
    return metrics;  // Unstable: waiting time diverges; stable stays false.
  }
  metrics.stable = true;
  metrics.mean_wait = metrics.utilization / (mu - lambda);
  metrics.mean_response = 1.0 / (mu - lambda);
  metrics.mean_in_system = lambda * metrics.mean_response;
  metrics.mean_in_queue = lambda * metrics.mean_wait;
  return metrics;
}

}  // namespace qnet
