// Gibbs sampling with general (non-exponential) service distributions — the direction the
// paper flags in Section 2 ("this viewpoint is just as useful for more general service
// distributions, and we are currently generalizing the sampler to that case").
//
// The move geometry (which service times a move touches, and the feasible window) is
// identical to the M/M/1 case; only the density changes:
//     g(a) = f_qe(s_e(a)) * f_qpi(s_pi(a)) * f_qpi(s_nu(pi)(a)),
// which for arbitrary log-concave-or-not f has no closed-form inverse CDF, so each latent
// coordinate is updated with a slice sampler restricted to (L, U). That per-move logic is
// GeneralMoveKernel (infer/move_kernel.h); this class is the thin sweep driver over it,
// sequential by default or colored/sharded after EnableShardedSweeps — the same driver
// structure as the exponential GibbsSampler, with only the kernel swapped.

#ifndef QNET_INFER_GENERAL_GIBBS_H_
#define QNET_INFER_GENERAL_GIBBS_H_

#include <memory>
#include <vector>

#include "qnet/infer/move_kernel.h"
#include "qnet/infer/sharded_sweep.h"
#include "qnet/infer/slice.h"
#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct GeneralGibbsOptions {
  bool resample_final_departures = true;
  SliceOptions slice;
};

class GeneralGibbsSampler {
 public:
  // Deep-copies the network (service distributions included) so the caller may mutate or
  // drop theirs; `state` must be feasible and consistent with `obs`.
  GeneralGibbsSampler(EventLog state, const Observation& obs, const QueueingNetwork& net,
                      GeneralGibbsOptions options = {});

  const EventLog& State() const { return state_; }
  const QueueingNetwork& Network() const { return net_; }

  // Replaces the service distribution of one queue (general-StEM M-step hook).
  void SetService(int queue, std::unique_ptr<ServiceDistribution> service);

  void Sweep(Rng& rng);

  // Same contract as GibbsSampler::EnableShardedSweeps: bit-identical results for any
  // thread count, one NextU64 consumed per sharded sweep.
  void EnableShardedSweeps(const ShardedSweepOptions& options = {});
  bool ShardedSweepsEnabled() const { return scheduler_ != nullptr; }
  const ShardedSweepScheduler* Scheduler() const { return scheduler_.get(); }

  // The sweep's moves in sequential scan order (see GibbsSampler::SweepMoves).
  std::vector<SweepMove> SweepMoves() const;

  std::size_t NumLatentArrivals() const { return arrival_moves_.size(); }

  // Current log joint density of all service times (continuous part of eq. (1)).
  double LogJoint() const { return state_.LogJointTimes(net_); }

 private:
  EventLog state_;
  QueueingNetwork net_;
  GeneralGibbsOptions options_;
  std::vector<SweepMove> arrival_moves_;
  std::vector<SweepMove> final_moves_;
  std::unique_ptr<ShardedSweepScheduler> scheduler_;
};

}  // namespace qnet

#endif  // QNET_INFER_GENERAL_GIBBS_H_
