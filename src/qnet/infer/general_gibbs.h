// Gibbs sampling with general (non-exponential) service distributions — the direction the
// paper flags in Section 2 ("this viewpoint is just as useful for more general service
// distributions, and we are currently generalizing the sampler to that case").
//
// The move geometry (which service times a move touches, and the feasible window) is
// identical to the M/M/1 case; only the density changes:
//     g(a) = f_qe(s_e(a)) * f_qpi(s_pi(a)) * f_qpi(s_nu(pi)(a)),
// which for arbitrary log-concave-or-not f has no closed-form inverse CDF, so each latent
// coordinate is updated with a slice sampler restricted to (L, U).

#ifndef QNET_INFER_GENERAL_GIBBS_H_
#define QNET_INFER_GENERAL_GIBBS_H_

#include <vector>

#include "qnet/infer/conditional.h"
#include "qnet/infer/slice.h"
#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct GeneralGibbsOptions {
  bool resample_final_departures = true;
  SliceOptions slice;
};

class GeneralGibbsSampler {
 public:
  // Deep-copies the network (service distributions included) so the caller may mutate or
  // drop theirs; `state` must be feasible and consistent with `obs`.
  GeneralGibbsSampler(EventLog state, const Observation& obs, const QueueingNetwork& net,
                      GeneralGibbsOptions options = {});

  const EventLog& State() const { return state_; }
  const QueueingNetwork& Network() const { return net_; }

  // Replaces the service distribution of one queue (general-StEM M-step hook).
  void SetService(int queue, std::unique_ptr<ServiceDistribution> service);

  void Sweep(Rng& rng);

  std::size_t NumLatentArrivals() const { return latent_arrivals_.size(); }

  // Current log joint density of all service times (continuous part of eq. (1)).
  double LogJoint() const { return state_.LogJointTimes(net_); }

 private:
  void ResampleArrival(EventId e, Rng& rng);
  void ResampleFinalDeparture(EventId e, Rng& rng);

  EventLog state_;
  QueueingNetwork net_;
  GeneralGibbsOptions options_;
  std::vector<EventId> latent_arrivals_;
  std::vector<EventId> latent_final_departures_;
};

}  // namespace qnet

#endif  // QNET_INFER_GENERAL_GIBBS_H_
