// Classical steady-state analyses beyond M/M/1: the M/G/1 Pollaczek-Khinchine formula and
// the M/M/c Erlang-C system. These are the "analytic approximations" the paper's
// introduction contrasts with posterior inference; the library ships them both as
// validation oracles for the simulator and as comparison baselines in the examples.

#ifndef QNET_INFER_MG1_H_
#define QNET_INFER_MG1_H_

#include "qnet/dist/distribution.h"

namespace qnet {

struct Mg1Metrics {
  bool stable = false;
  double utilization = 0.0;
  double mean_wait = 0.0;      // Pollaczek-Khinchine: lambda E[S^2] / (2 (1 - rho))
  double mean_response = 0.0;  // W_q + E[S]
  double mean_in_queue = 0.0;  // lambda * W_q (Little)
};

// Steady-state M/G/1 metrics for Poisson(lambda) arrivals and the given service
// distribution (any finite-variance ServiceDistribution).
Mg1Metrics AnalyzeMg1(double lambda, const ServiceDistribution& service);

struct MmcMetrics {
  bool stable = false;
  double utilization = 0.0;         // rho = lambda / (c * mu)
  double prob_wait = 0.0;           // Erlang-C probability an arrival waits
  double mean_wait = 0.0;           // C(c, a) / (c mu - lambda)
  double mean_response = 0.0;
  double mean_in_queue = 0.0;
};

// Steady-state M/M/c metrics (c identical exponential servers, shared FIFO queue).
MmcMetrics AnalyzeMmc(double lambda, double mu, int servers);

}  // namespace qnet

#endif  // QNET_INFER_MG1_H_
