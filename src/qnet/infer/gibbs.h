// Gibbs sampler over the unobserved arrival/departure times of an event log
// (paper Section 3).
//
// Two move types compose a sweep:
//  * arrival moves — resample a_e (jointly with d_pi(e)) for every non-initial event whose
//    arrival is unobserved, using the exact three-piece conditional of Figure 3;
//  * final-departure moves — resample the system exit time of every task whose last
//    departure is unobserved (the arrival move never touches these because nothing arrives
//    when a task leaves the system).
//
// The per-move logic lives in ExponentialMoveKernel (infer/move_kernel.h); this class is a
// thin sweep driver: it owns the state, the move list, and the scan policy. By default a
// sweep is the sequential scan over one RNG stream; EnableShardedSweeps switches it to the
// colored sharded schedule (infer/sharded_sweep.h), which runs conflict-free moves in
// parallel with bit-identical results for any thread count.
//
// The per-queue arrival order and the FSM routes are held fixed throughout (the paper's
// standing assumptions); every accepted move preserves feasibility by construction because
// the conditional's support is exactly the feasible window.

#ifndef QNET_INFER_GIBBS_H_
#define QNET_INFER_GIBBS_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "qnet/infer/move_kernel.h"
#include "qnet/infer/sharded_sweep.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct GibbsOptions {
  // Also resample unobserved task exit times. Disable only for the ablation bench.
  bool resample_final_departures = true;
  // Visit latent events in random order each sweep instead of id order.
  bool shuffle_scan = false;
  // Execute sweeps through the batched SoA kernel: moves run in conflict-free buckets
  // (colored once per trace) processed in `batch_width`-move tiles, with the per-segment
  // transcendentals evaluated as contiguous vmath sweeps. Bit-identical for any thread
  // count (the batch composition is a pure function of the schedule), but a different —
  // equally distributed — stream layout than the scalar scan. Ignored under shuffle_scan,
  // whose per-sweep random order has no fixed schedule to color.
  bool batched = true;
  // Tile width of the batched kernel (1..kMaxBatchWidth). Part of the stream layout.
  std::size_t batch_width = BatchedExponentialMoveKernel::kDefaultWidth;
  // Drive the batched schedule through the move-at-a-time reference kernel instead of
  // the SIMD tiles: same buckets, same lane streams, bit-identical states. This is the
  // batched kernel's A/B partner — the bit-equality tests and the benchmark gate compare
  // the two executions of the identical algorithm — and is never faster, so production
  // samplers leave it off. Only meaningful when `batched` is set.
  bool batched_reference = false;
};

class GibbsSampler {
 public:
  // `state` must be feasible and observationally consistent (observed times already equal
  // the measurements). `rates` holds mu_q for every queue, index 0 = lambda.
  GibbsSampler(EventLog state, const Observation& obs, std::vector<double> rates,
               GibbsOptions options = {});

  const EventLog& State() const { return state_; }
  // Mutating the state through this handle may change the link structure (e.g. route
  // Metropolis-Hastings reassigning queues), so it marks the internal batched schedule
  // stale; the next Sweep recolors it against the current links. Caller-supplied
  // schedulers (EnableShardedSweeps / UseScheduler) keep their documented frozen-per-trace
  // contract and are NOT rebuilt here.
  EventLog& MutableState() {
    batch_schedule_stale_ = true;
    return state_;
  }

  const std::vector<double>& Rates() const { return rates_; }
  void SetRates(std::vector<double> rates);

  // One systematic scan over all latent variables: sequential by default, the colored
  // sharded schedule after EnableShardedSweeps (which consumes exactly one NextU64 from
  // `rng` per sweep to seed the per-bucket streams).
  void Sweep(Rng& rng);

  // Switches Sweep to the ShardedSweepScheduler. Results depend on options.shards but
  // never on options.threads (bit-identical for any thread count); incompatible with
  // shuffle_scan, whose per-sweep random scan order has no fixed schedule to color.
  void EnableShardedSweeps(const ShardedSweepOptions& options = {});
  bool ShardedSweepsEnabled() const {
    return scheduler_ != nullptr || external_scheduler_ != nullptr;
  }
  // Non-null iff sharded sweeps are enabled (coloring/shard diagnostics).
  const ShardedSweepScheduler* Scheduler() const {
    return external_scheduler_ != nullptr ? external_scheduler_ : scheduler_.get();
  }

  // Like EnableShardedSweeps, but drives sweeps through a caller-owned scheduler that is
  // Rebuilt here against this sampler's trace. Long-lived callers (the streaming window
  // loop) pass the same scheduler to every sampler they create, so rescheduling reuses
  // its buffers and thread pool instead of paying a fresh construction per window.
  // Non-owning: `scheduler` must outlive the sampler; nullptr detaches.
  void UseScheduler(ShardedSweepScheduler* scheduler);

  // Fused M-step sufficient statistics. When enabled, every sweep keeps a per-event
  // service-time cache coherent at move scatter, and PerQueueServiceSumsInto re-derives
  // the per-queue sums from the cache in event-id order — bitwise the same totals as
  // EventLog::PerQueueServiceSum's full scan (same terms, same addition order), without
  // walking the event structs and their rho links per StEM iteration. Calling
  // EnableSuffStatsTracking (again) resynchronizes the cache from the current state —
  // required after mutating times through MutableState().
  void EnableSuffStatsTracking();
  bool SuffStatsTrackingEnabled() const { return !service_cache_.empty(); }
  // sums.size() must equal the queue count. CHECK-fails unless tracking is enabled.
  void PerQueueServiceSumsInto(std::span<double> sums) const;

  // The sweep's moves in sequential scan order: arrival moves, then final-departure moves
  // when enabled. The sharded schedule is a reordering of exactly this list.
  std::vector<SweepMove> SweepMoves() const;

  std::size_t NumLatentArrivals() const { return arrival_moves_.size(); }
  std::size_t NumLatentFinalDepartures() const { return final_moves_.size(); }

  // Unnormalized log joint of the current service times under exponential rates (density
  // part of eq. (1)); useful as a mixing diagnostic.
  double LogJointExponential() const;

 private:
  // The scheduler Sweep should route through: the caller-owned cache, then the owned one;
  // for batched sweeps with neither, the lazily-built internal single-shard schedule
  // (batching needs a coloring even when nothing runs in parallel).
  ShardedSweepScheduler* EffectiveScheduler(bool build_batch_schedule);

  EventLog state_;
  std::vector<double> rates_;
  GibbsOptions options_;
  std::vector<SweepMove> arrival_moves_;
  std::vector<SweepMove> final_moves_;
  std::vector<SweepMove> scan_buffer_;
  std::unique_ptr<ShardedSweepScheduler> scheduler_;
  ShardedSweepScheduler* external_scheduler_ = nullptr;
  // Internal shards=1/threads=1 schedule for the default batched path; built on first
  // use so non-batched samplers never pay for it, recolored when MutableState() may have
  // changed the link structure out from under the coloring.
  std::unique_ptr<ShardedSweepScheduler> batch_scheduler_;
  bool batch_schedule_stale_ = false;
  // Per-event service times, kept coherent by move scatter when tracking is enabled.
  std::vector<double> service_cache_;
};

}  // namespace qnet

#endif  // QNET_INFER_GIBBS_H_
