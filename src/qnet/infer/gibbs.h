// Gibbs sampler over the unobserved arrival/departure times of an event log
// (paper Section 3).
//
// Two move types compose a sweep:
//  * arrival moves — resample a_e (jointly with d_pi(e)) for every non-initial event whose
//    arrival is unobserved, using the exact three-piece conditional of Figure 3;
//  * final-departure moves — resample the system exit time of every task whose last
//    departure is unobserved (the arrival move never touches these because nothing arrives
//    when a task leaves the system).
//
// The per-move logic lives in ExponentialMoveKernel (infer/move_kernel.h); this class is a
// thin sweep driver: it owns the state, the move list, and the scan policy. By default a
// sweep is the sequential scan over one RNG stream; EnableShardedSweeps switches it to the
// colored sharded schedule (infer/sharded_sweep.h), which runs conflict-free moves in
// parallel with bit-identical results for any thread count.
//
// The per-queue arrival order and the FSM routes are held fixed throughout (the paper's
// standing assumptions); every accepted move preserves feasibility by construction because
// the conditional's support is exactly the feasible window.

#ifndef QNET_INFER_GIBBS_H_
#define QNET_INFER_GIBBS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "qnet/infer/move_kernel.h"
#include "qnet/infer/sharded_sweep.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct GibbsOptions {
  // Also resample unobserved task exit times. Disable only for the ablation bench.
  bool resample_final_departures = true;
  // Visit latent events in random order each sweep instead of id order.
  bool shuffle_scan = false;
};

class GibbsSampler {
 public:
  // `state` must be feasible and observationally consistent (observed times already equal
  // the measurements). `rates` holds mu_q for every queue, index 0 = lambda.
  GibbsSampler(EventLog state, const Observation& obs, std::vector<double> rates,
               GibbsOptions options = {});

  const EventLog& State() const { return state_; }
  EventLog& MutableState() { return state_; }

  const std::vector<double>& Rates() const { return rates_; }
  void SetRates(std::vector<double> rates);

  // One systematic scan over all latent variables: sequential by default, the colored
  // sharded schedule after EnableShardedSweeps (which consumes exactly one NextU64 from
  // `rng` per sweep to seed the per-bucket streams).
  void Sweep(Rng& rng);

  // Switches Sweep to the ShardedSweepScheduler. Results depend on options.shards but
  // never on options.threads (bit-identical for any thread count); incompatible with
  // shuffle_scan, whose per-sweep random scan order has no fixed schedule to color.
  void EnableShardedSweeps(const ShardedSweepOptions& options = {});
  bool ShardedSweepsEnabled() const { return scheduler_ != nullptr; }
  // Non-null iff sharded sweeps are enabled (coloring/shard diagnostics).
  const ShardedSweepScheduler* Scheduler() const { return scheduler_.get(); }

  // The sweep's moves in sequential scan order: arrival moves, then final-departure moves
  // when enabled. The sharded schedule is a reordering of exactly this list.
  std::vector<SweepMove> SweepMoves() const;

  std::size_t NumLatentArrivals() const { return arrival_moves_.size(); }
  std::size_t NumLatentFinalDepartures() const { return final_moves_.size(); }

  // Unnormalized log joint of the current service times under exponential rates (density
  // part of eq. (1)); useful as a mixing diagnostic.
  double LogJointExponential() const;

 private:
  EventLog state_;
  std::vector<double> rates_;
  GibbsOptions options_;
  std::vector<SweepMove> arrival_moves_;
  std::vector<SweepMove> final_moves_;
  std::vector<SweepMove> scan_buffer_;
  std::unique_ptr<ShardedSweepScheduler> scheduler_;
};

}  // namespace qnet

#endif  // QNET_INFER_GIBBS_H_
