// Gibbs sampler over the unobserved arrival/departure times of an event log
// (paper Section 3).
//
// Two move types compose a sweep:
//  * arrival moves — resample a_e (jointly with d_pi(e)) for every non-initial event whose
//    arrival is unobserved, using the exact three-piece conditional of Figure 3;
//  * final-departure moves — resample the system exit time of every task whose last
//    departure is unobserved (the arrival move never touches these because nothing arrives
//    when a task leaves the system).
//
// The per-queue arrival order and the FSM routes are held fixed throughout (the paper's
// standing assumptions); every accepted move preserves feasibility by construction because
// the conditional's support is exactly the feasible window.

#ifndef QNET_INFER_GIBBS_H_
#define QNET_INFER_GIBBS_H_

#include <cstddef>
#include <vector>

#include "qnet/infer/conditional.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct GibbsOptions {
  // Also resample unobserved task exit times. Disable only for the ablation bench.
  bool resample_final_departures = true;
  // Visit latent events in random order each sweep instead of id order.
  bool shuffle_scan = false;
};

class GibbsSampler {
 public:
  // `state` must be feasible and observationally consistent (observed times already equal
  // the measurements). `rates` holds mu_q for every queue, index 0 = lambda.
  GibbsSampler(EventLog state, const Observation& obs, std::vector<double> rates,
               GibbsOptions options = {});

  const EventLog& State() const { return state_; }
  EventLog& MutableState() { return state_; }

  const std::vector<double>& Rates() const { return rates_; }
  void SetRates(std::vector<double> rates);

  // One systematic scan over all latent variables.
  void Sweep(Rng& rng);

  std::size_t NumLatentArrivals() const { return latent_arrivals_.size(); }
  std::size_t NumLatentFinalDepartures() const { return latent_final_departures_.size(); }

  // Unnormalized log joint of the current service times under exponential rates (density
  // part of eq. (1)); useful as a mixing diagnostic.
  double LogJointExponential() const;

 private:
  void ResampleArrival(EventId e, Rng& rng);
  void ResampleFinalDeparture(EventId e, Rng& rng);

  EventLog state_;
  std::vector<double> rates_;
  GibbsOptions options_;
  std::vector<EventId> latent_arrivals_;
  std::vector<EventId> latent_final_departures_;
  std::vector<EventId> scan_buffer_;
};

}  // namespace qnet

#endif  // QNET_INFER_GIBBS_H_
