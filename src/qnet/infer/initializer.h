// Feasible initialization of the latent times (paper Section 3, last paragraph).
//
// The Gibbs sampler needs a starting assignment of every unobserved arrival/departure that
// satisfies all deterministic constraints: task continuity, nonnegative service times, the
// known per-queue arrival order, and FIFO departure order — while matching the observed
// times exactly. A task may interleave observed and unobserved visits, so an arrival can be
// constrained through both its queue and its task, which is what makes this nontrivial.
//
// Both initializers operate on the same constraint graph over departure variables
// x_e (one per event; arrivals are a_e = x_pi(e), initial arrivals are fixed at 0):
//     x_pi(e)      <= x_e   (service >= 0),
//     x_rho(e)     <= x_e   (FIFO departures),
//     x_pi(rho(e)) <= x_pi(e)   (known arrival order at e's queue),
// with observed departures pinned. This graph is a DAG (the true data order is a witness).
//
//  * kGreedy — forward assignment in topological order with exact backward upper bounds:
//    each free x_e gets max(preds) + Exp(mu_q) clipped into its feasible window. O(n log n);
//    the production default.
//  * kLp — the paper's linear program: minimize sum_e |s_e - 1/mu_qe| with begin-service
//    variables b_e >= a_e, b_e >= x_rho(e) and epigraph variables for the absolute values,
//    plus a small penalty pulling b_e down to the true max. Solved with the dense two-phase
//    simplex; intended for small/medium instances and for the ablation bench.

#ifndef QNET_INFER_INITIALIZER_H_
#define QNET_INFER_INITIALIZER_H_

#include <span>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

enum class InitMethod { kGreedy, kLp };

struct InitializerOptions {
  InitMethod method = InitMethod::kGreedy;
  // Weight of the pull-down penalty on begin-service variables in the LP objective.
  double lp_epsilon = 1e-3;
  // Feasibility tolerance for the final state check.
  double tol = 1e-6;
};

// Returns a copy of `truth` whose unobserved times are replaced with a feasible assignment.
// Only observed times and the structure (routes, per-queue order) of `truth` are consulted;
// unobserved true times never leak into the result. `rates` holds mu_q with index 0 =
// lambda (used as the service-time targets).
EventLog InitializeFeasible(const EventLog& truth, const Observation& obs,
                            std::span<const double> rates, Rng& rng,
                            const InitializerOptions& options = {});

// The topological order of the constraint graph (exposed for tests).
std::vector<EventId> ConstraintTopologicalOrder(const EventLog& log);

}  // namespace qnet

#endif  // QNET_INFER_INITIALIZER_H_
