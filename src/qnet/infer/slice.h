// Univariate slice sampler (Neal 2003): stepping-out + shrinkage, with optional hard
// support bounds. Powers the general-service-distribution Gibbs sampler, where the
// conditional is no longer piecewise exponential and has no closed-form inverse CDF.

#ifndef QNET_INFER_SLICE_H_
#define QNET_INFER_SLICE_H_

#include "qnet/support/function_ref.h"
#include "qnet/support/rng.h"

namespace qnet {

struct SliceOptions {
  // Initial bracket width for stepping out.
  double width = 1.0;
  // Maximum stepping-out expansions per side.
  std::size_t max_step_out = 64;
  // Maximum shrinkage steps before giving up and returning x0.
  std::size_t max_shrink = 256;
};

// Draws one sample from the (unnormalized) log density restricted to (lo, hi); x0 must lie
// inside the support with log_density(x0) > -inf. lo may be -inf and hi +inf. The density
// is taken by non-owning FunctionRef so per-call capturing lambdas never heap-allocate.
double SliceSample(FunctionRef<double(double)> log_density, double x0, double lo, double hi,
                   Rng& rng, const SliceOptions& options = {});

}  // namespace qnet

#endif  // QNET_INFER_SLICE_H_
