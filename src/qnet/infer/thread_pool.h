// Fork-join helper shared by the sampling engines.
//
// The static item -> thread partition (item i runs on thread i mod T) makes the work
// assignment — and therefore any per-item RNG stream consumption — a pure function of
// (items, threads), never of scheduling. Worker exceptions are captured per thread and
// the first (by thread index) is rethrown after join, so a QNET_CHECK failure inside a
// worker surfaces to the caller instead of terminating the process.
//
// This spawn-per-call helper fits coarse work units (a whole chain per item, as in
// parallel_chains). For fine-grained repeated dispatch — e.g. one sweep per call, many
// thousands of calls — use a persistent pool instead (see ShardedSweepScheduler, which
// parks its workers on a condition variable between sweeps).

#ifndef QNET_INFER_THREAD_POOL_H_
#define QNET_INFER_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "qnet/support/check.h"

namespace qnet {

// Runs work(i) for every i in [0, items) on a static round-robin partition over T
// threads. threads <= 1 degenerates to a plain sequential loop on the calling thread.
template <typename Work>
void RunOnThreadPool(std::size_t items, std::size_t threads, const Work& work) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < items; ++i) {
      work(i);
    }
    return;
  }
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = t; i < items; i += threads) {
          work(i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : pool) {
    thread.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

// One-deep pipeline stage: runs a single coarse work unit on a background thread while
// the caller keeps producing (e.g. the streaming estimator overlaps window N's StEM
// sweeps with window N+1's ingestion). Spawn-per-submit, matching RunOnThreadPool's
// coarse-unit philosophy — a window estimate is milliseconds-to-seconds of work, so
// thread spawn cost is noise. Exceptions thrown by the work unit are rethrown from
// Wait(); a slot destroyed while busy joins first and swallows the exception (call
// Wait() before destruction to observe it).
class PipelineSlot {
 public:
  PipelineSlot() = default;
  ~PipelineSlot() {
    if (worker_.joinable()) {
      worker_.join();
    }
  }

  PipelineSlot(const PipelineSlot&) = delete;
  PipelineSlot& operator=(const PipelineSlot&) = delete;

  bool Busy() const { return worker_.joinable(); }

  // Starts `work` on the background thread. The slot must be idle (Wait() first).
  template <typename Work>
  void Submit(Work&& work) {
    QNET_CHECK(!Busy(), "PipelineSlot::Submit while busy; call Wait() first");
    error_ = nullptr;
    worker_ = std::thread([this, w = std::forward<Work>(work)]() mutable {
      try {
        w();
      } catch (...) {
        error_ = std::current_exception();
      }
    });
  }

  // Blocks until the in-flight work unit (if any) finishes; rethrows its exception.
  void Wait() {
    if (!worker_.joinable()) {
      return;
    }
    worker_.join();
    worker_ = std::thread();
    if (error_ != nullptr) {
      std::exception_ptr error = std::exchange(error_, nullptr);
      std::rethrow_exception(error);
    }
  }

 private:
  std::thread worker_;
  std::exception_ptr error_;
};

}  // namespace qnet

#endif  // QNET_INFER_THREAD_POOL_H_
