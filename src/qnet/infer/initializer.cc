#include "qnet/infer/initializer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "qnet/lp/problem.h"
#include "qnet/lp/simplex.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

// Successor adjacency of the constraint graph on departure variables. Edge u -> v encodes
// x_u <= x_v.
std::vector<std::vector<EventId>> BuildConstraintEdges(const EventLog& log) {
  const std::size_t n = log.NumEvents();
  std::vector<std::vector<EventId>> succ(n);
  // Per-event inner loop over the whole log: *Unchecked accessors under DCHECK, per the
  // hot-path contract (ids come straight from the iteration bounds and the links).
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    const Event& ev = log.AtUnchecked(e);
    if (!ev.initial) {
      succ[static_cast<std::size_t>(ev.pi)].push_back(e);  // x_pi <= x_e
    }
    if (ev.rho != kNoEvent) {
      succ[static_cast<std::size_t>(ev.rho)].push_back(e);  // x_rho <= x_e
      const Event& rho = log.AtUnchecked(ev.rho);
      if (!ev.initial && !rho.initial) {
        // Arrival order: x_pi(rho(e)) <= x_pi(e).
        succ[static_cast<std::size_t>(rho.pi)].push_back(ev.pi);
      }
    }
  }
  return succ;
}

}  // namespace

std::vector<EventId> ConstraintTopologicalOrder(const EventLog& log) {
  const std::size_t n = log.NumEvents();
  const auto succ = BuildConstraintEdges(log);
  std::vector<int> indegree(n, 0);
  for (const auto& out : succ) {
    for (EventId v : out) {
      ++indegree[static_cast<std::size_t>(v)];
    }
  }
  std::deque<EventId> frontier;
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    if (indegree[static_cast<std::size_t>(e)] == 0) {
      frontier.push_back(e);
    }
  }
  std::vector<EventId> order;
  order.reserve(n);
  while (!frontier.empty()) {
    const EventId u = frontier.front();
    frontier.pop_front();
    order.push_back(u);
    for (EventId v : succ[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) {
        frontier.push_back(v);
      }
    }
  }
  QNET_CHECK(order.size() == n, "constraint graph has a cycle; corrupt event log?");
  return order;
}

namespace {

struct Windows {
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<char> pinned;
  std::vector<double> pin_value;
};

Windows ComputeWindows(const EventLog& log, const Observation& obs,
                       const std::vector<EventId>& topo,
                       const std::vector<std::vector<EventId>>& succ) {
  const std::size_t n = log.NumEvents();
  Windows w;
  w.lower.assign(n, 0.0);
  w.upper.assign(n, kPosInf);
  w.pinned.assign(n, 0);
  w.pin_value.assign(n, 0.0);
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    if (obs.DepartureObserved(e)) {
      w.pinned[static_cast<std::size_t>(e)] = 1;
      w.pin_value[static_cast<std::size_t>(e)] = log.DepartureUnchecked(e);
    }
  }
  // Forward pass: lower bounds.
  for (EventId u : topo) {
    auto& lb = w.lower[static_cast<std::size_t>(u)];
    if (w.pinned[static_cast<std::size_t>(u)] != 0) {
      QNET_CHECK(w.pin_value[static_cast<std::size_t>(u)] >= lb - 1e-6,
                 "observed departure violates lower bound at event ", u);
      lb = w.pin_value[static_cast<std::size_t>(u)];
    }
    for (EventId v : succ[static_cast<std::size_t>(u)]) {
      auto& lb_v = w.lower[static_cast<std::size_t>(v)];
      lb_v = std::max(lb_v, lb);
    }
  }
  // Backward pass: upper bounds.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const EventId u = *it;
    auto& ub = w.upper[static_cast<std::size_t>(u)];
    for (EventId v : succ[static_cast<std::size_t>(u)]) {
      ub = std::min(ub, w.upper[static_cast<std::size_t>(v)]);
    }
    if (w.pinned[static_cast<std::size_t>(u)] != 0) {
      QNET_CHECK(w.pin_value[static_cast<std::size_t>(u)] <= ub + 1e-6,
                 "observed departure violates upper bound at event ", u);
      ub = w.pin_value[static_cast<std::size_t>(u)];
    }
    QNET_CHECK(w.lower[static_cast<std::size_t>(u)] <= ub + 1e-6,
               "infeasible window at event ", u);
  }
  return w;
}

std::vector<double> AssignGreedy(const EventLog& log, const Windows& windows,
                                 const std::vector<EventId>& topo,
                                 const std::vector<std::vector<EventId>>& succ,
                                 std::span<const double> rates, Rng& rng) {
  const std::size_t n = log.NumEvents();
  // Incoming max of assigned predecessor values, maintained while walking the topo order.
  std::vector<double> pred_max(n, 0.0);
  std::vector<double> x(n, 0.0);
  for (EventId u : topo) {
    const std::size_t ui = static_cast<std::size_t>(u);
    double value;
    if (windows.pinned[ui] != 0) {
      value = windows.pin_value[ui];
      QNET_CHECK(value >= pred_max[ui] - 1e-6,
                 "observed time below assigned predecessors at event ", u);
    } else {
      const double base = std::max(pred_max[ui], windows.lower[ui]);
      const double rate = rates[static_cast<std::size_t>(log.AtUnchecked(u).queue)];
      double value_try = base + rng.Exponential(rate);
      const double ub = windows.upper[ui];
      if (value_try > ub) {
        // Clip into the window, placing the point strictly inside when possible.
        value_try = (std::isfinite(ub) && ub > base) ? base + 0.95 * (ub - base) : ub;
      }
      value = std::min(std::max(value_try, base), ub);
    }
    x[ui] = value;
    for (EventId v : succ[ui]) {
      auto& pm = pred_max[static_cast<std::size_t>(v)];
      pm = std::max(pm, value);
    }
  }
  return x;
}

std::vector<double> AssignLp(const EventLog& log, const Windows& windows,
                             std::span<const double> rates, double epsilon) {
  const std::size_t n = log.NumEvents();
  LpProblem lp;
  // One departure variable per free event; pinned events are constants.
  std::vector<int> x_var(n, -1);
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    const std::size_t ei = static_cast<std::size_t>(e);
    if (windows.pinned[ei] == 0) {
      x_var[ei] = lp.AddVariable("x" + std::to_string(e), 0.0);
    }
  }
  const auto x_term = [&](EventId e) -> std::pair<bool, double> {
    // Returns (is_variable, constant). Pinned events contribute a constant.
    const std::size_t ei = static_cast<std::size_t>(e);
    if (windows.pinned[ei] != 0) {
      return {false, windows.pin_value[ei]};
    }
    return {true, 0.0};
  };
  // Difference-constraint helper: x_u - x_v <= 0, with pinned sides folded into the rhs.
  const auto add_le2 = [&](EventId u, EventId v) {
    const auto [u_isvar, u_const] = x_term(u);
    const auto [v_isvar, v_const] = x_term(v);
    std::vector<std::pair<int, double>> terms;
    double rhs = 0.0;
    if (u_isvar) {
      terms.emplace_back(x_var[static_cast<std::size_t>(u)], 1.0);
    } else {
      rhs -= u_const;  // move constant to the rhs
    }
    if (v_isvar) {
      terms.emplace_back(x_var[static_cast<std::size_t>(v)], -1.0);
    } else {
      rhs += v_const;
    }
    if (terms.empty()) {
      QNET_CHECK(u_const <= v_const + 1e-6, "pinned times violate ordering");
      return;
    }
    lp.AddConstraint(std::move(terms), LpRelation::kLessEqual, rhs);
  };

  // Begin-service and epigraph variables, per event: b_e >= a_e, b_e >= x_rho(e),
  // s_e = x_e - b_e >= 0, u_e >= s_e - m_q, u_e >= m_q - s_e.
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    const Event& ev = log.At(e);
    const int b = lp.AddVariable("b" + std::to_string(e), 0.0);
    const int u = lp.AddVariable("u" + std::to_string(e), 0.0);
    const double target = 1.0 / rates[static_cast<std::size_t>(ev.queue)];
    lp.SetObjective(u, 1.0);
    lp.SetObjective(b, epsilon);

    // b >= arrival (x_pi for non-initial; 0 for initial events, already implied by b >= 0).
    if (!ev.initial) {
      const auto [pvar, pconst] = x_term(ev.pi);
      if (pvar) {
        lp.AddConstraint({{b, 1.0}, {x_var[static_cast<std::size_t>(ev.pi)], -1.0}},
                         LpRelation::kGreaterEqual, 0.0);
      } else {
        lp.AddConstraint({{b, 1.0}}, LpRelation::kGreaterEqual, pconst);
      }
    }
    if (ev.rho != kNoEvent) {
      const auto [rvar, rconst] = x_term(ev.rho);
      if (rvar) {
        lp.AddConstraint({{b, 1.0}, {x_var[static_cast<std::size_t>(ev.rho)], -1.0}},
                         LpRelation::kGreaterEqual, 0.0);
      } else {
        lp.AddConstraint({{b, 1.0}}, LpRelation::kGreaterEqual, rconst);
      }
    }
    // s_e = x_e - b >= 0 and the |s - m| epigraph.
    const auto [evar, econst] = x_term(e);
    if (evar) {
      const int xe = x_var[static_cast<std::size_t>(e)];
      lp.AddConstraint({{xe, 1.0}, {b, -1.0}}, LpRelation::kGreaterEqual, 0.0);
      lp.AddConstraint({{u, 1.0}, {xe, -1.0}, {b, 1.0}}, LpRelation::kGreaterEqual, -target);
      lp.AddConstraint({{u, 1.0}, {xe, 1.0}, {b, -1.0}}, LpRelation::kGreaterEqual, target);
    } else {
      lp.AddConstraint({{b, 1.0}}, LpRelation::kLessEqual, econst);
      lp.AddConstraint({{u, 1.0}, {b, 1.0}}, LpRelation::kGreaterEqual, econst - target);
      lp.AddConstraint({{u, 1.0}, {b, -1.0}}, LpRelation::kGreaterEqual, target - econst);
    }
  }

  // Ordering constraints (the DAG edges).
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    const Event& ev = log.At(e);
    if (!ev.initial) {
      add_le2(ev.pi, e);
    }
    if (ev.rho != kNoEvent) {
      add_le2(ev.rho, e);
      const Event& rho = log.At(ev.rho);
      if (!ev.initial && !rho.initial) {
        add_le2(rho.pi, ev.pi);
      }
    }
  }

  SimplexSolver solver;
  const LpSolution solution = solver.Solve(lp);
  QNET_CHECK(solution.status == LpStatus::kOptimal, "initializer LP did not solve: status=",
             static_cast<int>(solution.status));

  std::vector<double> x(n, 0.0);
  for (EventId e = 0; static_cast<std::size_t>(e) < n; ++e) {
    const std::size_t ei = static_cast<std::size_t>(e);
    x[ei] = windows.pinned[ei] != 0 ? windows.pin_value[ei]
                                    : solution.values[static_cast<std::size_t>(x_var[ei])];
  }
  return x;
}

}  // namespace

EventLog InitializeFeasible(const EventLog& truth, const Observation& obs,
                            std::span<const double> rates, Rng& rng,
                            const InitializerOptions& options) {
  obs.Validate(truth);
  QNET_CHECK(static_cast<std::size_t>(truth.NumQueues()) == rates.size(),
             "rates size mismatch");
  const auto topo = ConstraintTopologicalOrder(truth);
  const auto succ = BuildConstraintEdges(truth);
  const Windows windows = ComputeWindows(truth, obs, topo, succ);

  const std::vector<double> x = options.method == InitMethod::kGreedy
                                    ? AssignGreedy(truth, windows, topo, succ, rates, rng)
                                    : AssignLp(truth, windows, rates, options.lp_epsilon);

  EventLog state = truth;  // copies structure; all times overwritten below
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    const Event& ev = truth.AtUnchecked(e);
    state.SetDepartureUnchecked(e, x[static_cast<std::size_t>(e)]);
    if (ev.initial) {
      state.SetArrivalUnchecked(e, 0.0);
    } else {
      state.SetArrivalUnchecked(e, x[static_cast<std::size_t>(ev.pi)]);
    }
  }
  std::string why;
  QNET_CHECK(state.IsFeasible(options.tol, &why), "initializer produced infeasible state: ",
             why);
  return state;
}

}  // namespace qnet
