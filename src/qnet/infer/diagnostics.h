// MCMC diagnostics: autocorrelation, effective sample size (Geyer initial positive
// sequence), and the Gelman-Rubin potential scale reduction factor across chains.

#ifndef QNET_INFER_DIAGNOSTICS_H_
#define QNET_INFER_DIAGNOSTICS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace qnet {

// Lag-k sample autocorrelation of a series (biased, normalized by lag-0).
double Autocorrelation(std::span<const double> series, std::size_t lag);

// Effective sample size via Geyer's initial-positive-sequence truncation of the
// autocorrelation sum. Returns the series length for white noise.
double EffectiveSampleSize(std::span<const double> series);

// Integrated autocorrelation time tau (ESS = n / tau).
double IntegratedAutocorrTime(std::span<const double> series);

// Gelman-Rubin R-hat over >= 2 equal-length chains; values near 1 indicate convergence.
double GelmanRubin(const std::vector<std::vector<double>>& chains);

}  // namespace qnet

#endif  // QNET_INFER_DIAGNOSTICS_H_
