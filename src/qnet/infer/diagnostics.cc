#include "qnet/infer/diagnostics.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {

double Autocorrelation(std::span<const double> series, std::size_t lag) {
  QNET_CHECK(series.size() > lag, "series shorter than lag");
  const double mean = Mean(series);
  double c0 = 0.0;
  for (double x : series) {
    c0 += (x - mean) * (x - mean);
  }
  if (c0 == 0.0) {
    return lag == 0 ? 1.0 : 0.0;
  }
  double ck = 0.0;
  for (std::size_t i = 0; i + lag < series.size(); ++i) {
    ck += (series[i] - mean) * (series[i + lag] - mean);
  }
  return ck / c0;
}

double IntegratedAutocorrTime(std::span<const double> series) {
  QNET_CHECK(series.size() >= 4, "series too short");
  // Geyer: sum consecutive-pair autocorrelations while the pair sums stay positive.
  double tau = 1.0;
  const std::size_t max_lag = series.size() / 2;
  for (std::size_t lag = 1; lag + 1 <= max_lag; lag += 2) {
    const double pair = Autocorrelation(series, lag) + Autocorrelation(series, lag + 1);
    if (pair <= 0.0) {
      break;
    }
    tau += 2.0 * pair;
  }
  return tau;
}

double EffectiveSampleSize(std::span<const double> series) {
  return static_cast<double>(series.size()) / IntegratedAutocorrTime(series);
}

double GelmanRubin(const std::vector<std::vector<double>>& chains) {
  QNET_CHECK(chains.size() >= 2, "need at least two chains");
  const std::size_t n = chains.front().size();
  QNET_CHECK(n >= 2, "chains too short");
  for (const auto& chain : chains) {
    QNET_CHECK(chain.size() == n, "chains must have equal length");
  }
  const double m = static_cast<double>(chains.size());
  const double dn = static_cast<double>(n);
  std::vector<double> chain_means;
  double within = 0.0;
  for (const auto& chain : chains) {
    chain_means.push_back(Mean(chain));
    within += Variance(chain);
  }
  within /= m;
  const double grand = Mean(chain_means);
  double between = 0.0;
  for (double cm : chain_means) {
    between += (cm - grand) * (cm - grand);
  }
  between *= dn / (m - 1.0);
  if (within == 0.0) {
    return 1.0;
  }
  const double var_plus = (dn - 1.0) / dn * within + between / dn;
  return std::sqrt(var_plus / within);
}

}  // namespace qnet
