// Posterior summaries over Gibbs samples: per-queue mean/quantile estimates of service and
// waiting times with credible intervals, plus a multi-chain runner that assesses
// convergence with the Gelman-Rubin statistic. This turns the point estimates of the paper
// into calibrated interval estimates — a capability the graphical-models viewpoint gives
// for free and the classical analyses cannot provide.

#ifndef QNET_INFER_POSTERIOR_H_
#define QNET_INFER_POSTERIOR_H_

#include <cstddef>
#include <vector>

#include "qnet/infer/gibbs.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

// Accumulates per-sweep per-queue mean service/wait series plus a per-queue tail-latency
// (response-quantile) series — the posterior estimate of e.g. p95 latency from a sparse
// trace.
class PosteriorSummary {
 public:
  explicit PosteriorSummary(int num_queues, double tail_quantile = 0.95);

  void Accumulate(const EventLog& state);

  // Appends another summary's draws after this one's (chain-order pooling). Deterministic:
  // merging the same summaries in the same order always yields identical series, which is
  // what makes the parallel-chains engine's pooled output independent of thread timing.
  void Merge(const PosteriorSummary& other);

  std::size_t NumSamples() const { return num_samples_; }
  // Posterior means.
  std::vector<double> MeanService() const;
  std::vector<double> MeanWait() const;
  // Posterior quantiles (per queue), e.g. 0.05/0.95 for a 90% credible interval.
  std::vector<double> ServiceQuantile(double q) const;
  std::vector<double> WaitQuantile(double q) const;
  // Posterior mean of the per-queue tail (response quantile chosen at construction).
  std::vector<double> MeanTailResponse() const;
  // Raw per-queue series (one value per accumulated sweep) for diagnostics.
  const std::vector<double>& ServiceSeries(int queue) const;
  const std::vector<double>& WaitSeries(int queue) const;

  // --- Parameter draws -------------------------------------------------------------------
  // Draw i is the rate vector implied by the i-th accumulated sweep: rates[q] is the
  // reciprocal of that sweep's per-queue mean service time — the complete-data MLE
  // theta-hat(E_i) of the imputed event set, with index 0 the arrival rate lambda (queue
  // 0's "service" is the interarrival process). Draws are indexed in accumulation order
  // (after Merge: chain-order, matching the parallel-chains pooling contract) and carry
  // the usual MCMC autocorrelation — thin before treating them as independent. By
  // construction 1/RateDraw(i) agrees with ServiceSeries(q)[i], so draw moments and
  // quantiles are consistent with MeanService()/ServiceQuantile() on the reciprocal
  // scale; tests pin this.
  std::vector<double> RateDraw(std::size_t draw) const;

 private:
  std::size_t num_samples_ = 0;
  double tail_quantile_;
  std::vector<std::vector<double>> service_series_;  // [queue][sweep]
  std::vector<std::vector<double>> wait_series_;
  std::vector<std::vector<double>> tail_series_;
};

struct MultiChainOptions {
  std::size_t chains = 4;
  std::size_t sweeps = 200;
  std::size_t burn_in = 50;
  GibbsOptions gibbs;
};

struct MultiChainResult {
  // Pooled posterior summary across chains (post burn-in).
  PosteriorSummary pooled;
  // Per-queue Gelman-Rubin statistics on the mean-service series.
  std::vector<double> r_hat_service;
  // Largest R-hat across queues (values near 1 indicate convergence).
  double max_r_hat = 0.0;

  explicit MultiChainResult(int num_queues) : pooled(num_queues) {}
};

// Runs several independently-initialized Gibbs chains at fixed rates and summarizes them.
MultiChainResult RunMultiChainGibbs(const EventLog& truth, const Observation& obs,
                                    const std::vector<double>& rates, Rng& rng,
                                    const MultiChainOptions& options = {});

}  // namespace qnet

#endif  // QNET_INFER_POSTERIOR_H_
