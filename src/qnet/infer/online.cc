#include "qnet/infer/online.h"

#include "qnet/stream/replay_stream.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/check.h"

namespace qnet {

std::pair<EventLog, Observation> ExtractTaskWindow(const EventLog& truth,
                                                   const Observation& obs,
                                                   const std::vector<int>& tasks) {
  QNET_CHECK(!tasks.empty(), "empty task window");
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    QNET_CHECK(tasks[i - 1] < tasks[i], "window tasks must be sorted and unique");
  }
  WindowLogBuilder builder(truth.NumQueues());
  TaskRecord record;
  for (const int task : tasks) {
    FillTaskRecord(truth, obs, task, record);
    builder.Add(record);
  }
  return builder.Finish();
}

std::vector<WindowEstimate> RunOnlineStem(const EventLog& truth, const Observation& obs,
                                          std::vector<double> init_rates, Rng& rng,
                                          const OnlineStemOptions& options) {
  QNET_CHECK(options.window_duration > 0.0, "window duration must be positive");
  LogReplayStream stream(truth, obs);
  StreamingEstimatorOptions stream_options;
  stream_options.window.window_duration = options.window_duration;
  stream_options.window.min_tasks_per_window = options.min_tasks_per_window;
  stream_options.stem = options.stem;
  stream_options.pipeline = options.pipeline;
  StreamingEstimator estimator(std::move(init_rates), rng.NextU64(), stream_options);
  return estimator.Run(stream);
}

}  // namespace qnet
