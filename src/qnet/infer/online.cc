#include "qnet/infer/online.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

std::pair<EventLog, Observation> ExtractTaskWindow(const EventLog& truth,
                                                   const Observation& obs,
                                                   const std::vector<int>& tasks) {
  QNET_CHECK(!tasks.empty(), "empty task window");
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    QNET_CHECK(tasks[i - 1] < tasks[i], "window tasks must be sorted and unique");
  }
  EventLog window(truth.NumQueues());
  Observation window_obs;
  // First pass: create tasks and visits, recording the id mapping implicitly — events are
  // appended per task in route order, so we can rebuild flags in the same sweep order.
  std::vector<EventId> old_ids;
  for (std::size_t wk = 0; wk < tasks.size(); ++wk) {
    const int task = tasks[wk];
    const auto& chain = truth.TaskEvents(task);
    window.AddTask(truth.TaskEntryTime(task));
    old_ids.push_back(chain.front());
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const Event& ev = truth.At(chain[i]);
      window.AddVisit(static_cast<int>(wk), ev.state, ev.queue, ev.arrival, ev.departure);
      old_ids.push_back(chain[i]);
    }
  }
  window.BuildQueueLinks();

  window_obs.arrival_observed.assign(window.NumEvents(), 0);
  window_obs.departure_observed.assign(window.NumEvents(), 0);
  for (EventId e = 0; static_cast<std::size_t>(e) < window.NumEvents(); ++e) {
    const EventId old = old_ids[static_cast<std::size_t>(e)];
    window_obs.arrival_observed[static_cast<std::size_t>(e)] =
        window.At(e).initial ? 1 : obs.arrival_observed[static_cast<std::size_t>(old)];
    window_obs.departure_observed[static_cast<std::size_t>(e)] =
        obs.departure_observed[static_cast<std::size_t>(old)];
  }
  // Restore the arrival/departure consistency invariant on the window boundary: departures
  // whose successor event fell outside the window keep their original flag only if the
  // original flag came from an observed successor arrival — re-derive instead.
  for (EventId e = 0; static_cast<std::size_t>(e) < window.NumEvents(); ++e) {
    const Event& ev = window.At(e);
    if (!ev.initial) {
      window_obs.departure_observed[static_cast<std::size_t>(ev.pi)] =
          window_obs.arrival_observed[static_cast<std::size_t>(e)];
    }
  }
  // Tasks observed at the task level: those whose every non-initial arrival is observed.
  for (int wk = 0; wk < window.NumTasks(); ++wk) {
    const auto& chain = window.TaskEvents(wk);
    bool all = true;
    for (std::size_t i = 1; i < chain.size(); ++i) {
      all = all && window_obs.arrival_observed[static_cast<std::size_t>(chain[i])] != 0;
    }
    if (all && chain.size() > 1) {
      window_obs.observed_tasks.push_back(wk);
    }
  }
  window_obs.Validate(window);
  return {std::move(window), std::move(window_obs)};
}

std::vector<WindowEstimate> RunOnlineStem(const EventLog& truth, const Observation& obs,
                                          std::vector<double> init_rates, Rng& rng,
                                          const OnlineStemOptions& options) {
  QNET_CHECK(options.window_duration > 0.0, "window duration must be positive");
  std::vector<WindowEstimate> estimates;
  std::vector<int> pending;
  double window_start = 0.0;
  double window_end = options.window_duration;

  const StemEstimator estimator(options.stem);
  std::vector<double> rates = std::move(init_rates);

  const auto flush = [&](double t0, double t1) {
    if (pending.size() < std::max<std::size_t>(options.min_tasks_per_window, 2)) {
      return false;
    }
    auto [window, window_obs] = ExtractTaskWindow(truth, obs, pending);
    // The window re-sweep is the same MoveKernel-driven sampler as batch StEM (including
    // the sharded scheduler when options.stem.sharded_sweeps is set) — no online-only
    // sweep loop to drift from the batch behavior.
    const StemResult result = estimator.Run(window, window_obs, rates, rng);
    WindowEstimate est;
    est.t0 = t0;
    est.t1 = t1;
    est.tasks = pending.size();
    est.rates = result.rates;
    est.mean_wait = result.mean_wait;
    estimates.push_back(est);
    rates = result.rates;  // Warm start for the next window.
    pending.clear();
    return true;
  };

  for (int task = 0; task < truth.NumTasks(); ++task) {
    const double entry = truth.TaskEntryTime(task);
    while (entry >= window_end) {
      if (flush(window_start, window_end)) {
        window_start = window_end;
      }
      window_end += options.window_duration;
    }
    pending.push_back(task);
  }
  flush(window_start, window_end);
  return estimates;
}

}  // namespace qnet
