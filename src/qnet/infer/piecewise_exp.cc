#include "qnet/infer/piecewise_exp.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

// Below this |beta| * width the segment is numerically uniform.
constexpr double kFlatThreshold = 1e-12;

}  // namespace

void PiecewiseExpDensity::AddSegment(double lo, double hi, double alpha, double beta) {
  QNET_CHECK(!finalized_, "AddSegment after Finalize");
  QNET_CHECK(lo <= hi, "segment bounds reversed: lo=", lo, " hi=", hi);
  if (!(lo < hi)) {
    return;  // Zero width carries zero mass.
  }
  if (hi == kPosInf) {
    QNET_CHECK(beta < 0.0, "unbounded segment requires beta < 0");
  }
  if (num_segments_ > 0) {
    QNET_CHECK(segments_[num_segments_ - 1].hi <= lo + 1e-12,
               "segments must be ordered and disjoint");
  }
  QNET_CHECK(num_segments_ < kMaxSegments, "more than ", kMaxSegments,
             " segments; the Gibbs conditionals never need this");
  segments_[num_segments_++] = ExpSegment{lo, hi, alpha, beta, kNegInf};
}

void PiecewiseExpDensity::Finalize() {
  QNET_CHECK(!finalized_, "Finalize called twice");
  QNET_CHECK(num_segments_ > 0, "density has no support");

  // The log density is linear on each segment, so its maximum over the support is attained
  // at a segment endpoint (for the unbounded tail, at lo since beta < 0 there).
  double peak = kNegInf;
  std::array<double, kMaxSegments> peak_value;  // per-segment max of alpha + beta * x
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    const double at_lo = seg.alpha + seg.beta * seg.lo;
    const double value =
        (seg.beta > 0.0 && seg.hi != kPosInf) ? seg.alpha + seg.beta * seg.hi : at_lo;
    peak_value[i] = value;
    peak = std::max(peak, value);
  }
  QNET_CHECK(peak > kNegInf && peak < kPosInf, "density peak is not finite");
  peak_log_value_ = peak;

  // Segment masses relative to the peak:  mass_i = exp(peak_i - peak) * R_i, where R_i is
  // the integral of exp(beta (x - argpeak_i)) over the segment — computed with one expm1,
  // never overflowing because the integrand is anchored at its maximum.
  double total = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    const double gap = peak_value[i] - peak;
    const double scale = gap == 0.0 ? 1.0 : std::exp(gap);  // in (0, 1]
    double reduced;
    if (seg.hi == kPosInf) {
      reduced = 1.0 / (-seg.beta);
    } else {
      const double width = seg.hi - seg.lo;
      const double u = seg.beta * width;
      if (std::abs(u) < kFlatThreshold) {
        reduced = width;
      } else {
        // (1 - exp(-|u|)) / |beta|, the integral anchored at the segment's peak end.
        reduced = -std::expm1(-std::abs(u)) / std::abs(seg.beta);
      }
    }
    mass_[i] = scale * reduced;
    total += mass_[i];
  }
  total_mass_ = total;
  QNET_CHECK(total > 0.0, "density has zero total mass");
  QNET_CHECK(std::isfinite(total), "density mass is not finite");
  // The log normalizer (peak + log(total)) is derived on demand in LogNormalizer():
  // sampling needs only the linear masses, so the hot path skips the log entirely.
  finalized_ = true;
}

double PiecewiseExpDensity::LogNormalizer() const {
  QNET_CHECK(finalized_, "Finalize first");
  return peak_log_value_ + std::log(total_mass_);
}

double PiecewiseExpDensity::Sample(Rng& rng) const {
  QNET_CHECK(finalized_, "Finalize first");
  // Pick a segment proportionally to its mass (plain arithmetic on the linear masses),
  // then inverse-CDF within the segment.
  double u = rng.Uniform() * total_mass_;
  std::size_t pick = num_segments_ - 1;
  for (std::size_t i = 0; i + 1 < num_segments_; ++i) {
    u -= mass_[i];
    if (u < 0.0) {
      pick = i;
      break;
    }
  }
  const ExpSegment& seg = segments_[pick];
  return SampleExpLinear(seg.beta, seg.lo, seg.hi, rng.Uniform());
}

double PiecewiseExpDensity::LogPdf(double x) const {
  QNET_CHECK(finalized_, "Finalize first");
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    if (x >= seg.lo && x <= seg.hi) {
      return seg.alpha + seg.beta * x - LogNormalizer();
    }
  }
  return kNegInf;
}

double PiecewiseExpDensity::Cdf(double x) const {
  QNET_CHECK(finalized_, "Finalize first");
  if (x <= SupportLo()) {
    return 0.0;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    if (x >= seg.hi) {
      total += mass_[i] / total_mass_;
    } else if (x > seg.lo) {
      total += std::exp(LogIntegralExpLinear(seg.alpha, seg.beta, seg.lo, x) - LogNormalizer());
      break;
    } else {
      break;
    }
  }
  return std::min(total, 1.0);
}

double PiecewiseExpDensity::Mean() const {
  QNET_CHECK(finalized_, "Finalize first");
  double mean = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    const double weight = mass_[i] / total_mass_;
    if (weight <= 0.0) {
      continue;
    }
    double segment_mean = 0.0;
    if (seg.hi == kPosInf) {
      segment_mean = seg.lo + 1.0 / (-seg.beta);
    } else if (std::abs(seg.beta * (seg.hi - seg.lo)) < kFlatThreshold) {
      segment_mean = 0.5 * (seg.lo + seg.hi);
    } else {
      // Conditional mean of density ∝ exp(beta x) on [lo, hi]; this is the truncated
      // exponential with rate -beta:  E[X] = lo + 1/beta * (u e^u / (e^u - 1) - 1) with
      // u = beta * width, written via expm1 for stability.
      const double width = seg.hi - seg.lo;
      const double u = seg.beta * width;
      const double em = std::expm1(u);
      segment_mean = seg.lo + (width * (em + 1.0) / em - 1.0 / seg.beta);
    }
    mean += weight * segment_mean;
  }
  return mean;
}

ExpSegment PiecewiseExpDensity::Segment(std::size_t i) const {
  QNET_CHECK(i < num_segments_, "segment index out of range: ", i);
  ExpSegment seg = segments_[i];
  if (finalized_) {
    seg.log_mass = mass_[i] > 0.0 ? peak_log_value_ + std::log(mass_[i]) : kNegInf;
  }
  return seg;
}

double PiecewiseExpDensity::SupportLo() const {
  QNET_CHECK(num_segments_ > 0, "density has no support");
  return segments_[0].lo;
}

double PiecewiseExpDensity::SupportHi() const {
  QNET_CHECK(num_segments_ > 0, "density has no support");
  return segments_[num_segments_ - 1].hi;
}

}  // namespace qnet
