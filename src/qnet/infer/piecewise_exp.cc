#include "qnet/infer/piecewise_exp.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

void PiecewiseExpDensity::AddSegment(double lo, double hi, double alpha, double beta) {
  QNET_CHECK(!finalized_, "AddSegment after Finalize");
  QNET_CHECK(lo <= hi, "segment bounds reversed: lo=", lo, " hi=", hi);
  if (!(lo < hi)) {
    return;  // Zero width carries zero mass.
  }
  if (hi == kPosInf) {
    QNET_CHECK(beta < 0.0, "unbounded segment requires beta < 0");
  }
  if (!segments_.empty()) {
    QNET_CHECK(segments_.back().hi <= lo + 1e-12, "segments must be ordered and disjoint");
  }
  segments_.push_back(ExpSegment{lo, hi, alpha, beta, kNegInf});
}

void PiecewiseExpDensity::Finalize() {
  QNET_CHECK(!finalized_, "Finalize called twice");
  QNET_CHECK(!segments_.empty(), "density has no support");
  std::vector<double> masses;
  masses.reserve(segments_.size());
  for (ExpSegment& seg : segments_) {
    seg.log_mass = LogIntegralExpLinear(seg.alpha, seg.beta, seg.lo, seg.hi);
    masses.push_back(seg.log_mass);
  }
  log_normalizer_ = LogSumExp(masses);
  QNET_CHECK(log_normalizer_ > kNegInf, "density has zero total mass");
  QNET_CHECK(std::isfinite(log_normalizer_), "density mass is not finite");
  finalized_ = true;
}

double PiecewiseExpDensity::LogNormalizer() const {
  QNET_CHECK(finalized_, "Finalize first");
  return log_normalizer_;
}

double PiecewiseExpDensity::Sample(Rng& rng) const {
  QNET_CHECK(finalized_, "Finalize first");
  // Pick a segment proportionally to its mass, then inverse-CDF within the segment.
  double u = rng.Uniform();
  std::size_t pick = segments_.size() - 1;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    u -= std::exp(segments_[i].log_mass - log_normalizer_);
    if (u < 0.0) {
      pick = i;
      break;
    }
  }
  const ExpSegment& seg = segments_[pick];
  return SampleExpLinear(seg.beta, seg.lo, seg.hi, rng.Uniform());
}

double PiecewiseExpDensity::LogPdf(double x) const {
  QNET_CHECK(finalized_, "Finalize first");
  for (const ExpSegment& seg : segments_) {
    if (x >= seg.lo && x <= seg.hi) {
      return seg.alpha + seg.beta * x - log_normalizer_;
    }
  }
  return kNegInf;
}

double PiecewiseExpDensity::Cdf(double x) const {
  QNET_CHECK(finalized_, "Finalize first");
  if (x <= SupportLo()) {
    return 0.0;
  }
  double total = 0.0;
  for (const ExpSegment& seg : segments_) {
    if (x >= seg.hi) {
      total += std::exp(seg.log_mass - log_normalizer_);
    } else if (x > seg.lo) {
      total += std::exp(LogIntegralExpLinear(seg.alpha, seg.beta, seg.lo, x) - log_normalizer_);
      break;
    } else {
      break;
    }
  }
  return std::min(total, 1.0);
}

double PiecewiseExpDensity::Mean() const {
  QNET_CHECK(finalized_, "Finalize first");
  double mean = 0.0;
  for (const ExpSegment& seg : segments_) {
    const double weight = std::exp(seg.log_mass - log_normalizer_);
    if (weight <= 0.0) {
      continue;
    }
    double segment_mean = 0.0;
    if (seg.hi == kPosInf) {
      segment_mean = seg.lo + 1.0 / (-seg.beta);
    } else if (std::abs(seg.beta * (seg.hi - seg.lo)) < 1e-12) {
      segment_mean = 0.5 * (seg.lo + seg.hi);
    } else {
      // Conditional mean of density ∝ exp(beta x) on [lo, hi]; this is the truncated
      // exponential with rate -beta:  E[X] = lo + 1/beta * (u e^u / (e^u - 1) - 1) with
      // u = beta * width, written via expm1 for stability.
      const double width = seg.hi - seg.lo;
      const double u = seg.beta * width;
      const double em = std::expm1(u);
      segment_mean = seg.lo + (width * (em + 1.0) / em - 1.0 / seg.beta);
    }
    mean += weight * segment_mean;
  }
  return mean;
}

double PiecewiseExpDensity::SupportLo() const {
  QNET_CHECK(!segments_.empty(), "density has no support");
  return segments_.front().lo;
}

double PiecewiseExpDensity::SupportHi() const {
  QNET_CHECK(!segments_.empty(), "density has no support");
  return segments_.back().hi;
}

}  // namespace qnet
