#include "qnet/infer/piecewise_exp.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/vmath.h"

namespace qnet {
namespace {

// Below this |beta| * width the segment's mass is computed as if uniform. The threshold
// balances the flat approximation's relative error (~|u|/2) against the cancellation in
// the two-exp mass formula (~1e-16/|u|); both are ~1e-8 at the crossover. Sampling keeps
// its own tighter 1e-12 branch point in SampleExpLinear — mass and inverse-CDF thresholds
// are independent (mass only weights the segment pick).
constexpr double kFlatThreshold = 1.5e-8;

}  // namespace

void PiecewiseExpDensity::AddSegment(double lo, double hi, double alpha, double beta) {
  QNET_CHECK(!finalized_, "AddSegment after Finalize");
  QNET_CHECK(lo <= hi, "segment bounds reversed: lo=", lo, " hi=", hi);
  if (!(lo < hi)) {
    return;  // Zero width carries zero mass.
  }
  if (hi == kPosInf) {
    QNET_CHECK(beta < 0.0, "unbounded segment requires beta < 0");
  }
  if (num_segments_ > 0) {
    QNET_CHECK(segments_[num_segments_ - 1].hi <= lo + 1e-12,
               "segments must be ordered and disjoint");
  }
  QNET_CHECK(num_segments_ < kMaxSegments, "more than ", kMaxSegments,
             " segments; the Gibbs conditionals never need this");
  segments_[num_segments_++] = ExpSegment{lo, hi, alpha, beta, kNegInf};
}

void PiecewiseExpDensity::Finalize() {
  QNET_CHECK(!finalized_, "Finalize called twice");
  QNET_CHECK(num_segments_ > 0, "density has no support");

  // The log density is linear on each segment, so its maximum over the support is attained
  // at a segment endpoint (for the unbounded tail, at lo since beta < 0 there).
  double peak = kNegInf;
  std::array<double, kMaxSegments> peak_value;  // per-segment max of alpha + beta * x
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    const double at_lo = seg.alpha + seg.beta * seg.lo;
    const double value =
        (seg.beta > 0.0 && seg.hi != kPosInf) ? seg.alpha + seg.beta * seg.hi : at_lo;
    peak_value[i] = value;
    peak = std::max(peak, value);
  }
  QNET_CHECK(peak > kNegInf && peak < kPosInf, "density peak is not finite");
  peak_log_value_ = peak;

  // Segment masses relative to the peak:  mass_i = (exp(gap) - exp(gap - |u|)) / |beta|
  // with gap = peak_i - peak <= 0 and u = beta * width — the integral of the shifted
  // exponential, anchored at the segment's peak end so neither exp can overflow. Two exps
  // instead of the exp * expm1 product: cheaper, and the unbounded tail folds in for free
  // because |u| == inf makes the second exp exactly zero. The subtraction cancels for
  // near-flat segments, costing relative mass accuracy ~1e-16/|u|, capped at ~1e-8 where
  // the flat arm takes over (see kFlatThreshold). The transcendentals run on vmath so
  // this scalar path and PiecewiseExpBatch::FinalizeAll compute bit-identical masses.
  double total = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    const double gap = peak_value[i] - peak;
    const double scale = vmath::Exp(gap);  // in (0, 1]
    const double width = seg.hi - seg.lo;  // +inf on the unbounded tail
    const double u = seg.beta * width;     // -inf there (beta < 0)
    double mass;
    if (std::abs(u) < kFlatThreshold) {
      mass = scale * width;
    } else {
      mass = (scale - vmath::Exp(gap - std::abs(u))) / std::abs(seg.beta);
    }
    mass_[i] = mass;
    total += mass;
  }
  total_mass_ = total;
  QNET_CHECK(total > 0.0, "density has zero total mass");
  QNET_CHECK(std::isfinite(total), "density mass is not finite");
  // The log normalizer (peak + log(total)) is derived on demand in LogNormalizer():
  // sampling needs only the linear masses, so the hot path skips the log entirely.
  finalized_ = true;
}

double PiecewiseExpDensity::LogNormalizer() const {
  QNET_CHECK(finalized_, "Finalize first");
  return peak_log_value_ + std::log(total_mass_);
}

double PiecewiseExpDensity::Sample(Rng& rng) const {
  // Explicit draw order (pick first, inverse-CDF second) — the two-uniform protocol every
  // sampling path shares, batched or not.
  const double u_pick = rng.Uniform();
  const double u_inv = rng.Uniform();
  return SampleWith(u_pick, u_inv);
}

double PiecewiseExpDensity::SampleWith(double u_pick, double u_inv) const {
  QNET_CHECK(finalized_, "Finalize first");
  // Pick a segment proportionally to its mass (plain arithmetic on the linear masses),
  // then inverse-CDF within the segment.
  double u = u_pick * total_mass_;
  std::size_t pick = num_segments_ - 1;
  for (std::size_t i = 0; i + 1 < num_segments_; ++i) {
    u -= mass_[i];
    if (u < 0.0) {
      pick = i;
      break;
    }
  }
  const ExpSegment& seg = segments_[pick];
  return SampleExpLinear(seg.beta, seg.lo, seg.hi, u_inv);
}

double PiecewiseExpDensity::LogPdf(double x) const {
  QNET_CHECK(finalized_, "Finalize first");
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    if (x >= seg.lo && x <= seg.hi) {
      return seg.alpha + seg.beta * x - LogNormalizer();
    }
  }
  return kNegInf;
}

double PiecewiseExpDensity::Cdf(double x) const {
  QNET_CHECK(finalized_, "Finalize first");
  if (x <= SupportLo()) {
    return 0.0;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    if (x >= seg.hi) {
      total += mass_[i] / total_mass_;
    } else if (x > seg.lo) {
      total += std::exp(LogIntegralExpLinear(seg.alpha, seg.beta, seg.lo, x) - LogNormalizer());
      break;
    } else {
      break;
    }
  }
  return std::min(total, 1.0);
}

double PiecewiseExpDensity::Mean() const {
  QNET_CHECK(finalized_, "Finalize first");
  double mean = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    const ExpSegment& seg = segments_[i];
    const double weight = mass_[i] / total_mass_;
    if (weight <= 0.0) {
      continue;
    }
    double segment_mean = 0.0;
    if (seg.hi == kPosInf) {
      segment_mean = seg.lo + 1.0 / (-seg.beta);
    } else if (std::abs(seg.beta * (seg.hi - seg.lo)) < kFlatThreshold) {
      segment_mean = 0.5 * (seg.lo + seg.hi);
    } else {
      // Conditional mean of density ∝ exp(beta x) on [lo, hi]; this is the truncated
      // exponential with rate -beta:  E[X] = lo + 1/beta * (u e^u / (e^u - 1) - 1) with
      // u = beta * width, written via expm1 for stability.
      const double width = seg.hi - seg.lo;
      const double u = seg.beta * width;
      const double em = std::expm1(u);
      segment_mean = seg.lo + (width * (em + 1.0) / em - 1.0 / seg.beta);
    }
    mean += weight * segment_mean;
  }
  return mean;
}

ExpSegment PiecewiseExpDensity::Segment(std::size_t i) const {
  QNET_CHECK(i < num_segments_, "segment index out of range: ", i);
  ExpSegment seg = segments_[i];
  if (finalized_) {
    seg.log_mass = mass_[i] > 0.0 ? peak_log_value_ + std::log(mass_[i]) : kNegInf;
  }
  return seg;
}

double PiecewiseExpDensity::SupportLo() const {
  QNET_CHECK(num_segments_ > 0, "density has no support");
  return segments_[0].lo;
}

double PiecewiseExpDensity::SupportHi() const {
  QNET_CHECK(num_segments_ > 0, "density has no support");
  return segments_[num_segments_ - 1].hi;
}

void PiecewiseExpBatch::FinalizeAll() {
  QNET_CHECK(!finalized_, "FinalizeAll called twice");
  const std::size_t nm = num_moves_;

  // AddSegment already derived everything per segment (value, width, u, |beta|), so this
  // starts at the per-move peak fold. Every rectangular pass stops at the batch's
  // highest live rank rather than kStride: a rank that is dead in every move would only
  // contribute exact zeros (masses) and -inf (peak candidates), so skipping it cannot
  // change a bit — and most conditionals have one or two segments, making rank 2 usually
  // all-dead. Rank 0 is processed even in an all-empty batch (ks >= 1): BeginMove
  // dropped its values to -inf, so it computes defined zeros rather than reading stale
  // slots downstream.
  const std::size_t ks = std::max<std::size_t>(max_count_, 1);

  // Per-move peak as an elementwise max fold across live ranks (max is exact, so any
  // association matches the scalar loop bit for bit; a dead rank's -inf — pre-dropped by
  // BeginMove — never wins). Empty moves anchor at 0 so their gaps stay -inf (mass 0)
  // instead of producing -inf - -inf = NaN. Validity accumulates as an OR-reduction (a
  // bool && chain would serialize the loop).
  std::array<double, kMaxMoves> anchor;
  for (std::size_t m = 0; m < nm; ++m) {
    anchor[m] = value_[m];
  }
  for (std::size_t k = 1; k < ks; ++k) {
    const std::size_t base = k * kMaxMoves;
    for (std::size_t m = 0; m < nm; ++m) {
      anchor[m] = std::max(anchor[m], value_[base + m]);
    }
  }
  std::uint32_t bad_peaks = 0;
  for (std::size_t m = 0; m < nm; ++m) {
    const double peak = anchor[m];
    const bool empty = counts_[m] == 0;
    const bool finite = bool(peak > kNegInf) & bool(peak < kPosInf);
    bad_peaks |= (!empty & !finite) ? 1u : 0u;
    anchor[m] = empty ? 0.0 : peak;
  }
  QNET_CHECK(bad_peaks == 0, "a density peak in the batch is not finite");

  // Fused mass pass over the live (move, segment-rank) slots: peak gap, both exps of the
  // two-exp mass formula — evaluated inline (vmath::Exp is an inline polynomial kernel,
  // so the whole loop still vectorizes; no gap/exp arrays are materialized) — and the
  // mass select. Every case of the scalar Finalize collapses into one select:
  //  * flat (|u| < threshold):  mass = exp(gap) * width — the explicit arm (the dead
  //    slope arm divides by |beta| == 0 there; the NaN is computed and discarded);
  //  * bounded non-flat:        mass = (exp(gap) - exp(gap - |u|)) / |beta|;
  //  * unbounded tail (u == -inf, not flat because |u| == inf): exp(gap - inf) == 0
  //    exactly, so mass = exp(gap) / |beta| — the same bits as the scalar arm;
  //  * dead rank below a live one: value -inf makes gap -inf and both exps exactly 0, so
  //    the mass is 0 whichever arm the stale width/u/|beta| select (they are mutually
  //    consistent: |u| tiny only with finite width and, when |beta| == 0, the flat arm).
  for (std::size_t k = 0; k < ks; ++k) {
    const std::size_t base = k * kMaxMoves;
    for (std::size_t m = 0; m < nm; ++m) {
      const double gap = value_[base + m] - anchor[m];
      const double au = std::abs(u_[base + m]);
      const double e1 = vmath::Exp(gap);
      const double e2 = vmath::Exp(gap - au);
      const double flat_mass = e1 * width_[base + m];
      const double slope_mass = (e1 - e2) / abs_beta_[base + m];
      mass_[base + m] = au < kFlatThreshold ? flat_mass : slope_mass;
    }
  }

  // The left-fold total matches the scalar Finalize's running sum (trailing exact zeros
  // from dead ranks cannot change a nonnegative double, so stopping at ks is exact too).
  for (std::size_t m = 0; m < nm; ++m) {
    total_mass_[m] = mass_[m];
  }
  for (std::size_t k = 1; k < ks; ++k) {
    const std::size_t base = k * kMaxMoves;
    for (std::size_t m = 0; m < nm; ++m) {
      total_mass_[m] += mass_[base + m];
    }
  }
  std::uint32_t bad_totals = 0;
  for (std::size_t m = 0; m < nm; ++m) {
    const double total = total_mass_[m];
    const bool ok = bool(counts_[m] == 0) | (bool(total > 0.0) & bool(total < kPosInf));
    bad_totals |= ok ? 0u : 1u;
  }
  QNET_CHECK(bad_totals == 0, "a density in the batch has zero or non-finite total mass");
  finalized_ = true;
}

void PiecewiseExpBatch::SampleAll(std::span<const double> u_pick,
                                  std::span<const double> u_inv,
                                  std::span<double> out) const {
  QNET_DCHECK(finalized_, "FinalizeAll first");
  QNET_DCHECK(u_pick.size() >= num_moves_ && u_inv.size() >= num_moves_ &&
                  out.size() >= num_moves_,
              "uniform/output rows shorter than the batch");
  // Pass 1 (branchless): the segment pick as the same *sequential* subtractions
  // SampleWith performs — t1 = u - mass0, t2 = t1 - mass1, pick = first negative — so
  // borderline rounding agrees bit for bit, clamped to the move's last live rank (the
  // scalar loop's count - 1 default; quantile u < total can survive all subtractions).
  // The picked segment's parameters are then rank-selects across the three contiguous
  // rows (no gathers), and the lanes SampleExpLinear would route through a rare branch —
  // numerically flat pick, large positive exponent — or that are empty are flagged for
  // the scalar patch-up loop; their staged values flow through the common formula as
  // garbage (possibly inf/NaN, never a trap) and are discarded by the merge.
  static_assert(kStride == 3, "the rank selects below assume stride 3");
  const std::size_t nm = num_moves_;
  std::array<double, kMaxMoves> su;      // exponent u of the picked segment
  std::array<double, kMaxMoves> slo;     // picked segment's lo
  std::array<double, kMaxMoves> shi;     // picked segment's hi
  std::array<double, kMaxMoves> sbeta;   // picked segment's beta
  std::array<double, kMaxMoves> swidth;  // picked segment's width
  std::array<std::uint32_t, kMaxMoves> rare;
  std::uint32_t any_rare = 0;
  for (std::size_t m = 0; m < nm; ++m) {
    const std::uint32_t count = counts_[m];
    const double t1 = u_pick[m] * total_mass_[m] - mass_[m];
    const double t2 = t1 - mass_[kMaxMoves + m];
    const std::size_t ordinal = t1 < 0.0 ? 0u : (t2 < 0.0 ? 1u : 2u);
    const std::size_t last = count == 0 ? 0u : count - 1;
    const std::size_t pick = ordinal < last ? ordinal : last;
    const double uu = pick == 0 ? u_[m] : pick == 1 ? u_[kMaxMoves + m] : u_[2 * kMaxMoves + m];
    su[m] = uu;
    slo[m] = pick == 0 ? lo_[m] : pick == 1 ? lo_[kMaxMoves + m] : lo_[2 * kMaxMoves + m];
    shi[m] = pick == 0 ? hi_[m] : pick == 1 ? hi_[kMaxMoves + m] : hi_[2 * kMaxMoves + m];
    sbeta[m] =
        pick == 0 ? beta_[m] : pick == 1 ? beta_[kMaxMoves + m] : beta_[2 * kMaxMoves + m];
    swidth[m] = pick == 0 ? width_[m]
                : pick == 1 ? width_[kMaxMoves + m]
                            : width_[2 * kMaxMoves + m];
    const std::uint32_t r =
        (bool(std::abs(uu) < 1e-12) | bool(uu >= 30.0) | bool(count == 0)) ? 1u : 0u;
    rare[m] = r;
    any_rare |= r;
  }
  // Pass 2: the tile's inverse-CDF transcendentals as one fused vectorized loop
  // (vmath::Exp / vmath::Log are the same inline kernels SampleExpLinear runs, so lane
  // values match it bit for bit): x = lo + log((1-v) + v*exp(u)) / beta. The
  // semi-infinite tail needs no arm of its own because exp(-inf) == 0 bitwise. The store
  // is unconditional into a staging row: blending into out[m] in the same loop (a load
  // of out under a bool) defeats gcc's if-conversion of the Log kernel's selects,
  // dropping the whole loop to scalar.
  std::array<double, kMaxMoves> sres;
  for (std::size_t m = 0; m < nm; ++m) {
    const double v = u_inv[m];
    const double e = vmath::Exp(su[m]);
    const double arg = (1.0 - v) + v * e;
    sres[m] = slo[m] + vmath::Log(arg) / sbeta[m];
  }
  for (std::size_t m = 0; m < nm; ++m) {
    if (!rare[m]) {
      out[m] = sres[m];
    }
  }
  if (any_rare == 0) {
    return;  // Whole tile took the common branch — typical.
  }
  // Scalar patch-up for the flagged lanes, on the staged parameters and the same vmath
  // kernels as SampleExpLinear's corresponding arms. Empty slots stay untouched: the
  // kernel writes the degenerate midpoint itself.
  for (std::size_t m = 0; m < nm; ++m) {
    if (!rare[m] || counts_[m] == 0) {
      continue;
    }
    const double uu = su[m];
    const double v = u_inv[m];
    if (std::abs(uu) < 1e-12) {
      out[m] = slo[m] + v * swidth[m];
    } else {
      out[m] = shi[m] + vmath::Log(v + (1.0 - v) * vmath::Exp(-uu)) / sbeta[m];
    }
  }
}

}  // namespace qnet
