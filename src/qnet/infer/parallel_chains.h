// Parallel multi-chain sampling engine: K independent Gibbs (or StEM) chains on a thread
// pool, pooling their posterior draws.
//
// Why: the paper's sampler mixes slowly on sparse observations, so wall-clock accuracy is
// bounded by aggregate sweeps/second. Independent chains are embarrassingly parallel, give
// R-hat convergence diagnostics for free, and pooling their post-burn-in draws multiplies
// the effective draw budget per unit wall-clock.
//
// Threading model (deterministic by construction):
//  * chain c gets its own xoshiro256++ stream seeded from the c-th NextU64() of a master
//    SplitMix-seeded Rng — chain streams depend only on (seed, c), never on scheduling;
//  * chains are assigned to threads statically (chain c -> thread c mod T), each chain
//    writes only its own result slot, and the shared inputs (EventLog, Observation, rates)
//    are read-only — no locks, no atomics, no false sharing on the hot path;
//  * pooled summaries are merged on the calling thread in chain-index order after join,
//    so the pooled output is bit-identical for a fixed (seed, chains) regardless of T.
// Consequence: results are reproducible across machines and thread counts; T only changes
// wall-clock time.

#ifndef QNET_INFER_PARALLEL_CHAINS_H_
#define QNET_INFER_PARALLEL_CHAINS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/infer/posterior.h"
#include "qnet/infer/stem.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"

namespace qnet {

struct ParallelChainsOptions {
  std::size_t chains = 4;
  // Worker threads; 0 = one thread per chain capped at the hardware concurrency. The
  // result is identical for every value — threads only affect wall-clock.
  std::size_t threads = 0;
  std::size_t sweeps = 200;
  std::size_t burn_in = 50;
  double tail_quantile = 0.95;
  GibbsOptions gibbs;
  InitializerOptions init;
  // Intra-chain parallelism: run each chain's sweeps through the colored sharded
  // scheduler (infer/sharded_sweep.h), composing K chains × S shards. Total worker
  // threads ≈ threads × sharded.threads — size both for the host. Draws change when
  // sharding is toggled or sharded.shards changes (different deterministic stream
  // layout), but stay bit-identical across every (threads, sharded.threads) pair.
  bool sharded_sweeps = false;
  ShardedSweepOptions sharded;
};

struct ChainStats {
  std::uint64_t seed = 0;        // the chain's derived stream seed
  std::size_t draws = 0;         // post-burn-in draws contributed to the pool
  double seconds = 0.0;          // wall time of this chain's init + sweeps
};

struct ParallelChainsResult {
  // Pooled posterior draws across chains, in chain-index order (post burn-in).
  PosteriorSummary pooled;
  std::vector<PosteriorSummary> per_chain;
  std::vector<ChainStats> chain_stats;
  // Per-queue Gelman-Rubin statistics on the mean-service series (queues 1..Q; index 0 is
  // held at 1). Values near 1 indicate the chains agree.
  std::vector<double> r_hat_service;
  double max_r_hat = 0.0;
  std::size_t total_draws = 0;
  double wall_seconds = 0.0;  // end-to-end, including pooling

  double DrawsPerSecond() const {
    return wall_seconds > 0.0 ? static_cast<double>(total_draws) / wall_seconds : 0.0;
  }

  explicit ParallelChainsResult(int num_queues, double tail_quantile)
      : pooled(num_queues, tail_quantile) {}
};

// Runs K independently-initialized Gibbs chains at fixed rates and pools their draws.
// `truth` provides structure + observed times; `rates` holds mu_q (index 0 = lambda).
ParallelChainsResult RunParallelChains(const EventLog& truth, const Observation& obs,
                                       const std::vector<double>& rates, std::uint64_t seed,
                                       const ParallelChainsOptions& options = {});

struct ParallelStemResult {
  // Mean of the per-chain StEM rate estimates (index 0 = lambda-hat).
  std::vector<double> pooled_rates;
  std::vector<double> pooled_mean_service;  // 1 / pooled_rates
  std::vector<StemResult> per_chain;
  // Per-queue R-hat over the post-burn-in rate trajectories across chains.
  std::vector<double> r_hat_rates;
  double max_r_hat = 0.0;
  double wall_seconds = 0.0;
};

// Runs K independent StEM estimators (each with its own Gibbs chain) in parallel and pools
// the rate estimates. Empty `init_rates` uses the warm start, as in StemEstimator::Run.
ParallelStemResult RunParallelStem(const EventLog& truth, const Observation& obs,
                                   const std::vector<double>& init_rates, std::uint64_t seed,
                                   const StemOptions& stem_options = {},
                                   std::size_t chains = 4, std::size_t threads = 0);

}  // namespace qnet

#endif  // QNET_INFER_PARALLEL_CHAINS_H_
