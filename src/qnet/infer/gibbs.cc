#include "qnet/infer/gibbs.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

GibbsSampler::GibbsSampler(EventLog state, const Observation& obs, std::vector<double> rates,
                           GibbsOptions options)
    : state_(std::move(state)), rates_(std::move(rates)), options_(options) {
  obs.Validate(state_);
  QNET_CHECK(rates_.size() == static_cast<std::size_t>(state_.NumQueues()),
             "rates size mismatch");
  std::string why;
  QNET_CHECK(state_.IsFeasible(1e-6, &why), "initial Gibbs state infeasible: ", why);
  CollectLatentMoves(state_, obs, arrival_moves_, final_moves_);
}

void GibbsSampler::SetRates(std::vector<double> rates) {
  QNET_CHECK(rates.size() == rates_.size(), "rates size mismatch");
  for (double r : rates) {
    QNET_CHECK(r > 0.0, "rates must be positive");
  }
  rates_ = std::move(rates);
}

ShardedSweepScheduler* GibbsSampler::EffectiveScheduler(bool build_batch_schedule) {
  if (external_scheduler_ != nullptr) {
    return external_scheduler_;
  }
  if (scheduler_ != nullptr) {
    return scheduler_.get();
  }
  if (!build_batch_schedule) {
    return nullptr;
  }
  if (batch_scheduler_ == nullptr) {
    ShardedSweepOptions options;
    options.shards = 1;
    options.threads = 1;
    const std::vector<SweepMove> moves = SweepMoves();
    batch_scheduler_ = std::make_unique<ShardedSweepScheduler>(state_, moves, options);
  } else if (batch_schedule_stale_) {
    // MutableState() may have rerouted events since the last sweep; the move list is
    // link-independent but the conflict coloring is not, so recolor before batching.
    const std::vector<SweepMove> moves = SweepMoves();
    batch_scheduler_->Rebuild(state_, moves);
  }
  batch_schedule_stale_ = false;
  return batch_scheduler_.get();
}

void GibbsSampler::Sweep(Rng& rng) {
  const std::span<double> cache(service_cache_);
  if (options_.batched && !options_.shuffle_scan) {
    ShardedSweepScheduler* scheduler = EffectiveScheduler(/*build_batch_schedule=*/true);
    const BatchedExponentialMoveKernel kernel(rates_, options_.batch_width, cache);
    if (options_.batched_reference) {
      scheduler->RunBuckets(
          [&](std::span<const SweepMove> bucket, std::uint64_t bucket_seed) {
            kernel.RunBucketReference(state_, bucket, bucket_seed);
          },
          rng.NextU64());
    } else {
      scheduler->RunBuckets(
          [&](std::span<const SweepMove> bucket, std::uint64_t bucket_seed) {
            kernel.RunBucket(state_, bucket, bucket_seed);
          },
          rng.NextU64());
    }
    return;
  }
  const ExponentialMoveKernel kernel(rates_, cache);
  ShardedSweepScheduler* scheduler = EffectiveScheduler(/*build_batch_schedule=*/false);
  if (scheduler != nullptr) {
    scheduler->Run(
        [&](const SweepMove& move, Rng& move_rng) { kernel.Apply(state_, move, move_rng); },
        rng.NextU64());
    return;
  }
  // Systematic scans iterate the move lists in place; only the shuffled scan needs a
  // mutable copy, and scan_buffer_ persists across sweeps so the copy reuses its capacity
  // after the first sweep (no per-sweep allocation either way).
  std::span<const SweepMove> scan = arrival_moves_;
  if (options_.shuffle_scan) {
    scan_buffer_.assign(arrival_moves_.begin(), arrival_moves_.end());
    rng.Shuffle(scan_buffer_);
    scan = scan_buffer_;
  }
  RunSweep(state_, scan, kernel, rng);
  if (options_.resample_final_departures) {
    scan = final_moves_;
    if (options_.shuffle_scan) {
      scan_buffer_.assign(final_moves_.begin(), final_moves_.end());
      rng.Shuffle(scan_buffer_);
      scan = scan_buffer_;
    }
    RunSweep(state_, scan, kernel, rng);
  }
}

void GibbsSampler::EnableShardedSweeps(const ShardedSweepOptions& options) {
  QNET_CHECK(!options_.shuffle_scan,
             "sharded sweeps are incompatible with shuffle_scan: the colored schedule is "
             "frozen per trace");
  const std::vector<SweepMove> moves = SweepMoves();
  scheduler_ = std::make_unique<ShardedSweepScheduler>(state_, moves, options);
}

void GibbsSampler::UseScheduler(ShardedSweepScheduler* scheduler) {
  if (scheduler != nullptr) {
    QNET_CHECK(!options_.shuffle_scan,
               "sharded sweeps are incompatible with shuffle_scan: the colored schedule is "
               "frozen per trace");
    const std::vector<SweepMove> moves = SweepMoves();
    scheduler->Rebuild(state_, moves);
  }
  external_scheduler_ = scheduler;
}

void GibbsSampler::EnableSuffStatsTracking() {
  service_cache_.resize(state_.NumEvents());
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    service_cache_[static_cast<std::size_t>(e)] = state_.ServiceTime(e);
  }
}

void GibbsSampler::PerQueueServiceSumsInto(std::span<double> sums) const {
  QNET_CHECK(SuffStatsTrackingEnabled(), "EnableSuffStatsTracking first");
  QNET_CHECK(sums.size() == rates_.size(), "sums size mismatch");
  std::fill(sums.begin(), sums.end(), 0.0);
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    sums[static_cast<std::size_t>(state_.AtUnchecked(e).queue)] +=
        service_cache_[static_cast<std::size_t>(e)];
  }
}

std::vector<SweepMove> GibbsSampler::SweepMoves() const {
  return ConcatSweepMoves(arrival_moves_, final_moves_, options_.resample_final_departures);
}

double GibbsSampler::LogJointExponential() const {
  double total = 0.0;
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    const double mu = rates_[static_cast<std::size_t>(state_.At(e).queue)];
    total += std::log(mu) - mu * std::max(state_.ServiceTime(e), 0.0);
  }
  return total;
}

}  // namespace qnet
