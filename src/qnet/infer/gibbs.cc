#include "qnet/infer/gibbs.h"

#include <cmath>
#include <span>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

GibbsSampler::GibbsSampler(EventLog state, const Observation& obs, std::vector<double> rates,
                           GibbsOptions options)
    : state_(std::move(state)), rates_(std::move(rates)), options_(options) {
  obs.Validate(state_);
  QNET_CHECK(rates_.size() == static_cast<std::size_t>(state_.NumQueues()),
             "rates size mismatch");
  std::string why;
  QNET_CHECK(state_.IsFeasible(1e-6, &why), "initial Gibbs state infeasible: ", why);
  CollectLatentMoves(state_, obs, arrival_moves_, final_moves_);
}

void GibbsSampler::SetRates(std::vector<double> rates) {
  QNET_CHECK(rates.size() == rates_.size(), "rates size mismatch");
  for (double r : rates) {
    QNET_CHECK(r > 0.0, "rates must be positive");
  }
  rates_ = std::move(rates);
}

void GibbsSampler::Sweep(Rng& rng) {
  const ExponentialMoveKernel kernel(rates_);
  if (scheduler_ != nullptr) {
    scheduler_->Run(
        [&](const SweepMove& move, Rng& move_rng) { kernel.Apply(state_, move, move_rng); },
        rng.NextU64());
    return;
  }
  // Systematic scans iterate the move lists in place; only the shuffled scan needs a
  // mutable copy, and scan_buffer_ persists across sweeps so the copy reuses its capacity
  // after the first sweep (no per-sweep allocation either way).
  std::span<const SweepMove> scan = arrival_moves_;
  if (options_.shuffle_scan) {
    scan_buffer_.assign(arrival_moves_.begin(), arrival_moves_.end());
    rng.Shuffle(scan_buffer_);
    scan = scan_buffer_;
  }
  RunSweep(state_, scan, kernel, rng);
  if (options_.resample_final_departures) {
    scan = final_moves_;
    if (options_.shuffle_scan) {
      scan_buffer_.assign(final_moves_.begin(), final_moves_.end());
      rng.Shuffle(scan_buffer_);
      scan = scan_buffer_;
    }
    RunSweep(state_, scan, kernel, rng);
  }
}

void GibbsSampler::EnableShardedSweeps(const ShardedSweepOptions& options) {
  QNET_CHECK(!options_.shuffle_scan,
             "sharded sweeps are incompatible with shuffle_scan: the colored schedule is "
             "frozen per trace");
  const std::vector<SweepMove> moves = SweepMoves();
  scheduler_ = std::make_unique<ShardedSweepScheduler>(state_, moves, options);
}

std::vector<SweepMove> GibbsSampler::SweepMoves() const {
  return ConcatSweepMoves(arrival_moves_, final_moves_, options_.resample_final_departures);
}

double GibbsSampler::LogJointExponential() const {
  double total = 0.0;
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    const double mu = rates_[static_cast<std::size_t>(state_.At(e).queue)];
    total += std::log(mu) - mu * std::max(state_.ServiceTime(e), 0.0);
  }
  return total;
}

}  // namespace qnet
