#include "qnet/infer/gibbs.h"

#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

GibbsSampler::GibbsSampler(EventLog state, const Observation& obs, std::vector<double> rates,
                           GibbsOptions options)
    : state_(std::move(state)), rates_(std::move(rates)), options_(options) {
  obs.Validate(state_);
  QNET_CHECK(rates_.size() == static_cast<std::size_t>(state_.NumQueues()),
             "rates size mismatch");
  std::string why;
  QNET_CHECK(state_.IsFeasible(1e-6, &why), "initial Gibbs state infeasible: ", why);
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    const Event& ev = state_.At(e);
    if (!ev.initial && !obs.ArrivalObserved(e)) {
      latent_arrivals_.push_back(e);
    }
    if (ev.tau == kNoEvent && !obs.DepartureObserved(e)) {
      latent_final_departures_.push_back(e);
    }
  }
}

void GibbsSampler::SetRates(std::vector<double> rates) {
  QNET_CHECK(rates.size() == rates_.size(), "rates size mismatch");
  for (double r : rates) {
    QNET_CHECK(r > 0.0, "rates must be positive");
  }
  rates_ = std::move(rates);
}

void GibbsSampler::Sweep(Rng& rng) {
  // Systematic scans iterate the latent id lists in place; only the shuffled scan needs a
  // mutable copy, and scan_buffer_ persists across sweeps so the copy reuses its capacity
  // after the first sweep (no per-sweep allocation either way).
  const std::vector<EventId>* scan = &latent_arrivals_;
  if (options_.shuffle_scan) {
    scan_buffer_.assign(latent_arrivals_.begin(), latent_arrivals_.end());
    rng.Shuffle(scan_buffer_);
    scan = &scan_buffer_;
  }
  for (EventId e : *scan) {
    ResampleArrival(e, rng);
  }
  if (options_.resample_final_departures) {
    scan = &latent_final_departures_;
    if (options_.shuffle_scan) {
      scan_buffer_.assign(latent_final_departures_.begin(), latent_final_departures_.end());
      rng.Shuffle(scan_buffer_);
      scan = &scan_buffer_;
    }
    for (EventId e : *scan) {
      ResampleFinalDeparture(e, rng);
    }
  }
}

void GibbsSampler::ResampleArrival(EventId e, Rng& rng) {
  const ArrivalMove move = GatherArrivalMove(state_, e, rates_);
  const double a = SampleArrival(move, rng);
  state_.SetArrivalUnchecked(e, a);
  state_.SetDepartureUnchecked(state_.AtUnchecked(e).pi, a);
}

void GibbsSampler::ResampleFinalDeparture(EventId e, Rng& rng) {
  const FinalDepartureMove move = GatherFinalDepartureMove(state_, e, rates_);
  state_.SetDepartureUnchecked(e, SampleFinalDeparture(move, rng));
}

double GibbsSampler::LogJointExponential() const {
  double total = 0.0;
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    const double mu = rates_[static_cast<std::size_t>(state_.At(e).queue)];
    total += std::log(mu) - mu * std::max(state_.ServiceTime(e), 0.0);
  }
  return total;
}

}  // namespace qnet
