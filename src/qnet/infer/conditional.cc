#include "qnet/infer/conditional.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

ArrivalMove GatherArrivalMove(const EventLog& log, EventId e, std::span<const double> rates) {
  QNET_CHECK(static_cast<std::size_t>(log.NumQueues()) == rates.size(), "rate vector size");
  return GatherArrivalMoveUnchecked(log, e, rates);
}

ArrivalMove GatherArrivalGeometry(const EventLog& log, EventId e) {
  return GatherArrivalMoveUnchecked(log, e, {});
}

PiecewiseExpDensity BuildArrivalDensity(const ArrivalMove& move) {
  PiecewiseExpDensity density;
  BuildArrivalSegmentsInto(move, density);
  density.Finalize();
  return density;
}

double SampleArrival(const ArrivalMove& move, Rng& rng) {
  if (!(move.upper - move.lower > kDegenerateWindow)) {
    return 0.5 * (move.lower + move.upper);
  }
  return BuildArrivalDensity(move).Sample(rng);
}

double SampleArrivalClosedForm(const ArrivalMove& move, Rng& rng) {
  QNET_CHECK(move.has_t1 && move.has_nu_pi && !move.rho_is_pi,
             "closed form requires the full Figure-3 neighborhood");
  const double L = move.lower;
  const double U = move.upper;
  QNET_CHECK(L < U, "empty conditional window");
  const double mu_e = move.mu_e;
  const double mu_pi = move.mu_pi;
  // Paper notation: A/B bracket the middle piece; delta_mu = mu_pi - mu_e gives the middle
  // slope -(delta_mu) when d_rho(e) < a_nu(pi).
  const double a_break = std::clamp(std::min(move.t1, move.t2), L, U);
  const double b_break = std::clamp(std::max(move.t1, move.t2), L, U);
  const double delta_mu = mu_pi - mu_e;

  // Piece masses, in log space (the published formulas exponentiate mu*t directly; we keep
  // their structure but normalize stably).
  const double log_z1 =
      LogIntegralExpLinear(move.LogG(0.5 * (L + a_break)) + mu_pi * 0.5 * (L + a_break),
                           -mu_pi, L, a_break);
  const double middle_beta = (move.t1 < move.t2) ? (mu_e - mu_pi) : 0.0;
  const double log_z2 =
      (a_break < b_break)
          ? LogIntegralExpLinear(
                move.LogG(0.5 * (a_break + b_break)) - middle_beta * 0.5 * (a_break + b_break),
                middle_beta, a_break, b_break)
          : kNegInf;
  const double log_z3 =
      LogIntegralExpLinear(move.LogG(0.5 * (b_break + U)) - mu_e * 0.5 * (b_break + U), mu_e,
                           b_break, U);
  const std::array<double, 3> piece_masses{log_z1, log_z2, log_z3};
  const double log_z = LogSumExp(piece_masses);

  const double u_case = rng.Uniform();
  const double v = rng.Uniform();
  const double p1 = std::exp(log_z1 - log_z);
  const double p2 = std::exp(log_z2 - log_z);

  if (u_case < p1) {
    // Case 1 of eq. (3): inverse CDF of exp(-mu_pi * a) on (L, A).
    const double lo_term = std::exp(-mu_pi * (L - L));  // = 1; anchor at L for stability
    const double hi_term = std::exp(-mu_pi * (a_break - L));
    return L - std::log(lo_term + v * (hi_term - lo_term)) / mu_pi;
  }
  if (u_case < p1 + p2) {
    // Case 2, eq. (4).
    if (move.t1 >= move.t2 || delta_mu == 0.0) {
      return a_break + v * (b_break - a_break);
    }
    const double width = b_break - a_break;
    if (delta_mu > 0.0) {
      // Density decreasing from A: A + TrExp(|delta_mu|; B - A).
      return a_break + SampleExpLinear(-delta_mu, 0.0, width, v);
    }
    // Density increasing toward B: B - TrExp(|delta_mu|; B - A).
    return b_break - SampleExpLinear(delta_mu, 0.0, width, v);
  }
  // Case 3 of eq. (3): inverse CDF of exp(+mu_e * a) on (B, U), anchored at U.
  const double lo_term = std::exp(mu_e * (b_break - U));
  const double hi_term = 1.0;
  return U + std::log(lo_term + v * (hi_term - lo_term)) / mu_e;
}

FinalDepartureMove GatherFinalDepartureMove(const EventLog& log, EventId e,
                                            std::span<const double> rates) {
  QNET_CHECK(static_cast<std::size_t>(log.NumQueues()) == rates.size(), "rate vector size");
  return GatherFinalDepartureMoveUnchecked(log, e, rates);
}

FinalDepartureMove GatherFinalDepartureGeometry(const EventLog& log, EventId e) {
  return GatherFinalDepartureMoveUnchecked(log, e, {});
}

PiecewiseExpDensity BuildFinalDepartureDensity(const FinalDepartureMove& move) {
  PiecewiseExpDensity density;
  BuildFinalDepartureSegmentsInto(move, density);
  density.Finalize();
  return density;
}

double SampleFinalDeparture(const FinalDepartureMove& move, Rng& rng) {
  if (std::isfinite(move.upper) && !(move.upper - move.lower > kDegenerateWindow)) {
    return 0.5 * (move.lower + move.upper);
  }
  return BuildFinalDepartureDensity(move).Sample(rng);
}

}  // namespace qnet
