#include "qnet/infer/conditional.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

constexpr double kDegenerateWindow = 1e-12;

// Empty span = unit rates. Only the Gather*Geometry wrappers pass an empty span (so no
// ones vector is ever materialized); the public rate-taking entry points validate exact
// size before delegating here.
inline double RateAt(std::span<const double> rates, int queue) {
  return rates.empty() ? 1.0 : rates[static_cast<std::size_t>(queue)];
}

ArrivalMove GatherArrivalMoveImpl(const EventLog& log, EventId e,
                                  std::span<const double> rates) {
  // Inner-loop contract: every access below is *Unchecked (bounds DCHECK-only); this is
  // called once per latent coordinate per sweep.
  const Event& ev = log.AtUnchecked(e);
  QNET_CHECK(!ev.initial, "cannot resample the arrival of an initial event");

  ArrivalMove move;
  move.event = e;
  move.d_e = ev.departure;
  move.mu_e = RateAt(rates, ev.queue);

  const Event& pi = log.AtUnchecked(ev.pi);
  move.mu_pi = RateAt(rates, pi.queue);
  move.c_pi = log.BeginServiceUnchecked(ev.pi);

  move.rho_is_pi = (ev.rho == ev.pi);
  if (ev.rho != kNoEvent && !move.rho_is_pi) {
    move.has_t1 = true;
    move.t1 = log.DepartureUnchecked(ev.rho);
  }

  // nu(pi): the next arrival at pi's queue. When it is e itself (consecutive same-queue
  // visits) its service time is s_e, already accounted for by the first term.
  if (pi.nu != kNoEvent && pi.nu != e) {
    move.has_nu_pi = true;
    move.t2 = log.ArrivalUnchecked(pi.nu);
    move.d_nu_pi = log.DepartureUnchecked(pi.nu);
  }

  // Bounds: L = max{c_pi, a_rho(e)}; U = min{d_e, a_nu(e), d_nu(pi)}.
  double lower = move.c_pi;
  if (ev.rho != kNoEvent) {
    lower = std::max(lower, log.ArrivalUnchecked(ev.rho));
  }
  double upper = move.d_e;
  if (ev.nu != kNoEvent) {
    upper = std::min(upper, log.ArrivalUnchecked(ev.nu));
  }
  if (move.has_nu_pi) {
    upper = std::min(upper, move.d_nu_pi);
  }
  move.lower = lower;
  move.upper = upper;
  return move;
}

FinalDepartureMove GatherFinalDepartureMoveImpl(const EventLog& log, EventId e,
                                                std::span<const double> rates) {
  const Event& ev = log.AtUnchecked(e);
  QNET_CHECK(ev.tau == kNoEvent,
             "event has a within-task successor; use the arrival move on tau instead");
  FinalDepartureMove move;
  move.event = e;
  move.mu_e = RateAt(rates, ev.queue);
  move.c_e = log.BeginServiceUnchecked(e);
  if (ev.nu != kNoEvent) {
    move.has_nu = true;
    move.t_nu = log.ArrivalUnchecked(ev.nu);
    move.d_nu = log.DepartureUnchecked(ev.nu);
    move.upper = move.d_nu;
  } else {
    move.upper = kPosInf;
  }
  move.lower = move.c_e;
  return move;
}

}  // namespace

double ArrivalMove::LogG(double a) const {
  // Service of e: d_e - max(a, t1); with rho missing or rho == pi the max resolves to a.
  double log_g;
  if (has_t1) {
    log_g = -mu_e * (d_e - std::max(a, t1));
  } else {
    log_g = -mu_e * (d_e - a);
  }
  // Service of pi.
  log_g += -mu_pi * (a - c_pi);
  // Service of nu(pi), when it exists and is not e itself.
  if (has_nu_pi) {
    log_g += -mu_pi * (d_nu_pi - std::max(a, t2));
  }
  return log_g;
}

ArrivalMove GatherArrivalMove(const EventLog& log, EventId e, std::span<const double> rates) {
  QNET_CHECK(static_cast<std::size_t>(log.NumQueues()) == rates.size(), "rate vector size");
  return GatherArrivalMoveImpl(log, e, rates);
}

ArrivalMove GatherArrivalGeometry(const EventLog& log, EventId e) {
  return GatherArrivalMoveImpl(log, e, {});
}

PiecewiseExpDensity BuildArrivalDensity(const ArrivalMove& move) {
  QNET_CHECK(move.lower < move.upper, "empty conditional window: L=", move.lower,
             " U=", move.upper);
  // Breakpoints inside (L, U) where a max() changes branch: at most lower, t1, t2, upper.
  std::array<double, 4> cuts;
  std::size_t num_cuts = 0;
  cuts[num_cuts++] = move.lower;
  if (move.has_t1 && move.t1 > move.lower && move.t1 < move.upper) {
    cuts[num_cuts++] = move.t1;
  }
  if (move.has_nu_pi && move.t2 > move.lower && move.t2 < move.upper) {
    cuts[num_cuts++] = move.t2;
  }
  cuts[num_cuts++] = move.upper;
  std::sort(cuts.begin(), cuts.begin() + num_cuts);

  PiecewiseExpDensity density;
  for (std::size_t i = 0; i + 1 < num_cuts; ++i) {
    const double lo = cuts[i];
    const double hi = cuts[i + 1];
    if (!(lo < hi)) {
      continue;
    }
    const double mid = 0.5 * (lo + hi);
    // Slope of log g on this segment, from the indicator structure:
    //   +mu_e   once a > t1 (or always, when the first max resolves to a),
    //   -mu_pi  from s_pi,
    //   +mu_pi  once a > t2 (when nu(pi) exists).
    double beta = -move.mu_pi;
    if (!move.has_t1 || mid > move.t1) {
      beta += move.mu_e;
    }
    if (move.has_nu_pi && mid > move.t2) {
      beta += move.mu_pi;
    }
    const double alpha = move.LogG(mid) - beta * mid;
    density.AddSegment(lo, hi, alpha, beta);
  }
  density.Finalize();
  return density;
}

double SampleArrival(const ArrivalMove& move, Rng& rng) {
  if (!(move.upper - move.lower > kDegenerateWindow)) {
    return 0.5 * (move.lower + move.upper);
  }
  return BuildArrivalDensity(move).Sample(rng);
}

double SampleArrivalClosedForm(const ArrivalMove& move, Rng& rng) {
  QNET_CHECK(move.has_t1 && move.has_nu_pi && !move.rho_is_pi,
             "closed form requires the full Figure-3 neighborhood");
  const double L = move.lower;
  const double U = move.upper;
  QNET_CHECK(L < U, "empty conditional window");
  const double mu_e = move.mu_e;
  const double mu_pi = move.mu_pi;
  // Paper notation: A/B bracket the middle piece; delta_mu = mu_pi - mu_e gives the middle
  // slope -(delta_mu) when d_rho(e) < a_nu(pi).
  const double a_break = std::clamp(std::min(move.t1, move.t2), L, U);
  const double b_break = std::clamp(std::max(move.t1, move.t2), L, U);
  const double delta_mu = mu_pi - mu_e;

  // Piece masses, in log space (the published formulas exponentiate mu*t directly; we keep
  // their structure but normalize stably).
  const double log_z1 =
      LogIntegralExpLinear(move.LogG(0.5 * (L + a_break)) + mu_pi * 0.5 * (L + a_break),
                           -mu_pi, L, a_break);
  const double middle_beta = (move.t1 < move.t2) ? (mu_e - mu_pi) : 0.0;
  const double log_z2 =
      (a_break < b_break)
          ? LogIntegralExpLinear(
                move.LogG(0.5 * (a_break + b_break)) - middle_beta * 0.5 * (a_break + b_break),
                middle_beta, a_break, b_break)
          : kNegInf;
  const double log_z3 =
      LogIntegralExpLinear(move.LogG(0.5 * (b_break + U)) - mu_e * 0.5 * (b_break + U), mu_e,
                           b_break, U);
  const std::array<double, 3> piece_masses{log_z1, log_z2, log_z3};
  const double log_z = LogSumExp(piece_masses);

  const double u_case = rng.Uniform();
  const double v = rng.Uniform();
  const double p1 = std::exp(log_z1 - log_z);
  const double p2 = std::exp(log_z2 - log_z);

  if (u_case < p1) {
    // Case 1 of eq. (3): inverse CDF of exp(-mu_pi * a) on (L, A).
    const double lo_term = std::exp(-mu_pi * (L - L));  // = 1; anchor at L for stability
    const double hi_term = std::exp(-mu_pi * (a_break - L));
    return L - std::log(lo_term + v * (hi_term - lo_term)) / mu_pi;
  }
  if (u_case < p1 + p2) {
    // Case 2, eq. (4).
    if (move.t1 >= move.t2 || delta_mu == 0.0) {
      return a_break + v * (b_break - a_break);
    }
    const double width = b_break - a_break;
    if (delta_mu > 0.0) {
      // Density decreasing from A: A + TrExp(|delta_mu|; B - A).
      return a_break + SampleExpLinear(-delta_mu, 0.0, width, v);
    }
    // Density increasing toward B: B - TrExp(|delta_mu|; B - A).
    return b_break - SampleExpLinear(delta_mu, 0.0, width, v);
  }
  // Case 3 of eq. (3): inverse CDF of exp(+mu_e * a) on (B, U), anchored at U.
  const double lo_term = std::exp(mu_e * (b_break - U));
  const double hi_term = 1.0;
  return U + std::log(lo_term + v * (hi_term - lo_term)) / mu_e;
}

double FinalDepartureMove::LogG(double d) const {
  double log_g = -mu_e * (d - c_e);
  if (has_nu) {
    log_g += -mu_e * (d_nu - std::max(t_nu, d));
  }
  return log_g;
}

FinalDepartureMove GatherFinalDepartureMove(const EventLog& log, EventId e,
                                            std::span<const double> rates) {
  QNET_CHECK(static_cast<std::size_t>(log.NumQueues()) == rates.size(), "rate vector size");
  return GatherFinalDepartureMoveImpl(log, e, rates);
}

FinalDepartureMove GatherFinalDepartureGeometry(const EventLog& log, EventId e) {
  return GatherFinalDepartureMoveImpl(log, e, {});
}

PiecewiseExpDensity BuildFinalDepartureDensity(const FinalDepartureMove& move) {
  QNET_CHECK(move.lower < move.upper, "empty conditional window");
  PiecewiseExpDensity density;
  // Below t_nu the second service still starts at t_nu: slope -mu_e. Above, the two terms
  // cancel: slope 0 (the nu(e) service shrinks exactly as s_e grows).
  if (move.has_nu && move.t_nu > move.lower && move.t_nu < move.upper) {
    const double mid1 = 0.5 * (move.lower + move.t_nu);
    density.AddSegment(move.lower, move.t_nu, move.LogG(mid1) + move.mu_e * mid1, -move.mu_e);
    const double mid2 = 0.5 * (move.t_nu + move.upper);
    density.AddSegment(move.t_nu, move.upper, move.LogG(mid2), 0.0);
  } else {
    const double probe = std::isfinite(move.upper)
                             ? 0.5 * (move.lower + move.upper)
                             : move.lower + 1.0;
    double beta = -move.mu_e;
    if (move.has_nu && move.t_nu <= move.lower) {
      beta = 0.0;  // Entire window is above the breakpoint: flat.
    }
    QNET_CHECK(std::isfinite(move.upper) || beta < 0.0,
               "unbounded final-departure window needs decreasing density");
    density.AddSegment(move.lower, move.upper, move.LogG(probe) - beta * probe, beta);
  }
  density.Finalize();
  return density;
}

double SampleFinalDeparture(const FinalDepartureMove& move, Rng& rng) {
  if (std::isfinite(move.upper) && !(move.upper - move.lower > kDegenerateWindow)) {
    return 0.5 * (move.lower + move.upper);
  }
  return BuildFinalDepartureDensity(move).Sample(rng);
}

}  // namespace qnet
