#include "qnet/infer/slice.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

double SliceSample(FunctionRef<double(double)> log_density, double x0, double lo, double hi,
                   Rng& rng, const SliceOptions& options) {
  QNET_CHECK(x0 >= lo && x0 <= hi, "slice start outside bounds");
  const double log_f0 = log_density(x0);
  QNET_CHECK(log_f0 > kNegInf, "slice start has zero density");
  // Vertical level: log u = log f(x0) - Exp(1).
  const double log_level = log_f0 - rng.Exponential(1.0);

  // Stepping out, clipped to the hard bounds.
  double left = x0 - options.width * rng.Uniform();
  double right = left + options.width;
  left = std::max(left, lo);
  right = std::min(right, hi);
  for (std::size_t i = 0; i < options.max_step_out && left > lo; ++i) {
    if (log_density(left) <= log_level) {
      break;
    }
    left = std::max(left - options.width, lo);
  }
  for (std::size_t i = 0; i < options.max_step_out && right < hi; ++i) {
    if (log_density(right) <= log_level) {
      break;
    }
    right = std::min(right + options.width, hi);
  }

  // Shrinkage.
  for (std::size_t i = 0; i < options.max_shrink; ++i) {
    const double x = left + (right - left) * rng.Uniform();
    if (log_density(x) > log_level) {
      return x;
    }
    if (x < x0) {
      left = x;
    } else {
      right = x;
    }
  }
  return x0;  // Extremely peaked conditional: keep the current value.
}

}  // namespace qnet
