#include "qnet/infer/stem.h"

#include <algorithm>
#include <cmath>

#include "qnet/infer/estimators.h"
#include "qnet/support/check.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

std::vector<double> StemEstimator::MStep(const EventLog& log, double service_sum_floor,
                                         double arrival_time_origin) {
  const std::vector<double> sums = log.PerQueueServiceSum();
  const std::vector<std::size_t> counts = log.PerQueueCount();
  std::vector<double> rates(sums.size(), 0.0);
  MStepFromSums(sums, counts, rates, service_sum_floor, arrival_time_origin);
  return rates;
}

void StemEstimator::MStepFromSums(std::span<const double> sums,
                                  std::span<const std::size_t> counts,
                                  std::span<double> rates, double service_sum_floor,
                                  double arrival_time_origin) {
  QNET_CHECK(sums.size() == counts.size() && sums.size() == rates.size(),
             "per-queue statistic sizes disagree");
  for (std::size_t q = 0; q < sums.size(); ++q) {
    QNET_CHECK(counts[q] > 0, "queue ", q, " has no events; cannot estimate its rate");
    // Queue 0's sum telescopes to the imputed last entry time; re-anchoring it to the
    // window origin makes lambda window-local. origin 0.0 subtracts exactly nothing.
    // A window whose (imputed) entries all sit at or before the origin — e.g. a lane's
    // share consisting solely of late-merged records — has no window-local arrival span;
    // fall back to the absolute anchor rather than dividing by the floor (which would
    // explode lambda to ~n/1e-9).
    double sum = sums[q];
    if (q == 0 && sums[q] - arrival_time_origin > 0.0) {
      sum = sums[q] - arrival_time_origin;
    }
    rates[q] = static_cast<double>(counts[q]) / std::max(sum, service_sum_floor);
  }
}

StemResult StemEstimator::Run(const EventLog& truth, const Observation& obs,
                              std::vector<double> init_rates, Rng& rng) const {
  ScopedSpan span(SpanStage::kStemFit);
  FitCounters::Get().stem_fits->Increment();
  if (init_rates.empty()) {
    init_rates = WarmStartRates(truth, obs);
  }
  QNET_CHECK(init_rates.size() == static_cast<std::size_t>(truth.NumQueues()),
             "init_rates size mismatch");
  QNET_CHECK(options_.iterations > options_.burn_in,
             "need iterations > burn_in; iterations=", options_.iterations,
             " burn_in=", options_.burn_in);

  EventLog state = InitializeFeasible(truth, obs, init_rates, rng, options_.init);
  GibbsSampler gibbs(std::move(state), obs, init_rates, options_.gibbs);
  if (options_.scheduler_cache != nullptr) {
    gibbs.UseScheduler(options_.scheduler_cache);
  } else if (options_.sharded_sweeps) {
    gibbs.EnableShardedSweeps(options_.sharded);
  }
  // Fused sufficient statistics: sweeps keep the per-event service cache coherent, so the
  // per-iteration M-step reads per-queue sums off the cache (bit-equal to the historical
  // PerQueueServiceSum scan) and the counts — constant under the fixed link structure —
  // are gathered exactly once.
  gibbs.EnableSuffStatsTracking();
  const std::vector<std::size_t> counts = gibbs.State().PerQueueCount();

  const std::size_t num_queues = init_rates.size();
  std::vector<double> sums(num_queues, 0.0);
  std::vector<double> rates = std::move(init_rates);
  std::vector<double> rate_accum(num_queues, 0.0);
  std::size_t accum_count = 0;
  // Early-stop state: previous post-burn-in running mean and the consecutive-stable
  // streak. Pure functions of the rate trace (see StemOptions::convergence_tol).
  std::vector<double> prev_mean(num_queues, 0.0);
  std::size_t stable_streak = 0;

  StemResult result;
  result.latent_arrivals = gibbs.NumLatentArrivals();
  result.rate_trace.reserve(options_.iterations);

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    // E-step: one (or a few) Gibbs sweeps at the current rates.
    gibbs.SetRates(rates);
    for (std::size_t s = 0; s < options_.sweeps_per_iteration; ++s) {
      gibbs.Sweep(rng);
    }
    // M-step: complete-data MLE on the fused statistics of the imputed log.
    gibbs.PerQueueServiceSumsInto(sums);
    std::vector<double> new_rates(num_queues, 0.0);
    MStepFromSums(sums, counts, new_rates, options_.service_sum_floor,
                  options_.arrival_time_origin);
    if (!options_.estimate_arrival_rate) {
      new_rates[0] = rates[0];
    }
    rates = std::move(new_rates);
    result.rate_trace.push_back(rates);
    if (iter >= options_.burn_in) {
      for (std::size_t q = 0; q < num_queues; ++q) {
        rate_accum[q] += rates[q];
      }
      ++accum_count;
      if (options_.convergence_tol > 0.0) {
        double max_rel_change = 0.0;
        for (std::size_t q = 0; q < num_queues; ++q) {
          const double mean = rate_accum[q] / static_cast<double>(accum_count);
          if (accum_count >= 2) {
            const double rel = std::abs(mean - prev_mean[q]) /
                               std::max(std::abs(prev_mean[q]), 1e-12);
            max_rel_change = std::max(max_rel_change, rel);
          }
          prev_mean[q] = mean;
        }
        if (accum_count >= 2) {
          stable_streak = max_rel_change <= options_.convergence_tol ? stable_streak + 1 : 0;
          if (stable_streak >= options_.convergence_patience) {
            break;
          }
        }
      }
    }
  }
  result.iterations_run = result.rate_trace.size();
  FitCounters::Get().stem_iterations->Add(result.iterations_run);

  result.rates.resize(num_queues);
  for (std::size_t q = 0; q < num_queues; ++q) {
    result.rates[q] = rate_accum[q] / static_cast<double>(accum_count);
  }
  result.mean_service.resize(num_queues);
  for (std::size_t q = 0; q < num_queues; ++q) {
    result.mean_service[q] = 1.0 / result.rates[q];
  }

  // Waiting-time phase: freeze the averaged rates and average per-queue waits over sweeps.
  if (options_.wait_sweeps > 0) {
    gibbs.SetRates(result.rates);
    std::vector<double> wait_accum(num_queues, 0.0);
    for (std::size_t s = 0; s < options_.wait_sweeps; ++s) {
      gibbs.Sweep(rng);
      const std::vector<double> waits = gibbs.State().PerQueueMeanWait();
      for (std::size_t q = 0; q < num_queues; ++q) {
        wait_accum[q] += waits[q];
      }
    }
    result.mean_wait.resize(num_queues);
    for (std::size_t q = 0; q < num_queues; ++q) {
      result.mean_wait[q] = wait_accum[q] / static_cast<double>(options_.wait_sweeps);
    }
  }

  result.final_state = gibbs.State();
  return result;
}

}  // namespace qnet
