// Service-distribution model selection (paper Section 6 future work).
//
// Given (imputed or observed) service-time samples for a queue, fits each candidate family
// by maximum likelihood and scores it by BIC. Families: exponential, gamma, log-normal.

#ifndef QNET_INFER_MODEL_SELECT_H_
#define QNET_INFER_MODEL_SELECT_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qnet/dist/distribution.h"

namespace qnet {

enum class ServiceFamily { kExponential, kGamma, kLogNormal };

std::string FamilyName(ServiceFamily family);

// Maximum-likelihood fit of `family` to positive samples. Gamma uses Newton iteration on the
// digamma equation; log-normal uses the log-moment closed form.
std::unique_ptr<ServiceDistribution> FitMle(ServiceFamily family,
                                            std::span<const double> samples);

struct ModelScore {
  ServiceFamily family = ServiceFamily::kExponential;
  double log_likelihood = 0.0;
  double bic = 0.0;  // -2 log L + k log n (lower is better)
  std::unique_ptr<ServiceDistribution> fitted;
};

// Scores each family on the samples, sorted by ascending BIC (best first).
std::vector<ModelScore> ScoreFamilies(std::span<const double> samples,
                                      const std::vector<ServiceFamily>& families = {
                                          ServiceFamily::kExponential, ServiceFamily::kGamma,
                                          ServiceFamily::kLogNormal});

// Convenience: the family with the lowest BIC.
ServiceFamily SelectServiceFamily(std::span<const double> samples);

}  // namespace qnet

#endif  // QNET_INFER_MODEL_SELECT_H_
