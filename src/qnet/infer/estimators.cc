#include "qnet/infer/estimators.h"

#include <cmath>
#include <limits>

#include "qnet/support/check.h"

namespace qnet {

BaselineEstimate ObservedMeanService(const EventLog& truth,
                                     const std::vector<int>& observed_tasks) {
  const auto num_queues = static_cast<std::size_t>(truth.NumQueues());
  BaselineEstimate est;
  est.mean_service.assign(num_queues, std::numeric_limits<double>::quiet_NaN());
  est.counts.assign(num_queues, 0);
  std::vector<double> sums(num_queues, 0.0);
  for (int task : observed_tasks) {
    for (EventId e : truth.TaskEvents(task)) {
      const auto q = static_cast<std::size_t>(truth.At(e).queue);
      sums[q] += truth.ServiceTime(e);
      ++est.counts[q];
    }
  }
  for (std::size_t q = 0; q < num_queues; ++q) {
    if (est.counts[q] > 0) {
      est.mean_service[q] = sums[q] / static_cast<double>(est.counts[q]);
    }
  }
  return est;
}

std::vector<double> CompleteDataRatesMle(const EventLog& log) {
  const std::vector<double> sums = log.PerQueueServiceSum();
  const std::vector<std::size_t> counts = log.PerQueueCount();
  std::vector<double> rates(sums.size(), 0.0);
  for (std::size_t q = 0; q < sums.size(); ++q) {
    QNET_CHECK(counts[q] > 0 && sums[q] > 0.0, "queue ", q, " lacks data for the MLE");
    rates[q] = static_cast<double>(counts[q]) / sums[q];
  }
  return rates;
}

std::vector<double> WarmStartRates(const EventLog& log, const Observation& obs,
                                   double fallback_rate) {
  QNET_CHECK(fallback_rate > 0.0, "fallback rate must be positive");
  const auto num_queues = static_cast<std::size_t>(log.NumQueues());
  std::vector<double> response_sum(num_queues, 0.0);
  std::vector<std::size_t> response_count(num_queues, 0);
  const std::vector<std::size_t> event_count = log.PerQueueCount();
  double max_entry = 0.0;
  double horizon = 0.0;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (ev.initial) {
      // Entry times of observed-departure initial events anchor the arrival rate.
      if (obs.DepartureObserved(e)) {
        max_entry = std::max(max_entry, ev.departure);
        horizon = std::max(horizon, ev.departure);
      }
      continue;
    }
    if (obs.ArrivalObserved(e)) {
      horizon = std::max(horizon, ev.arrival);
    }
    if (obs.ArrivalObserved(e) && obs.DepartureObserved(e)) {
      response_sum[static_cast<std::size_t>(ev.queue)] += ev.departure - ev.arrival;
      ++response_count[static_cast<std::size_t>(ev.queue)];
      horizon = std::max(horizon, ev.departure);
    }
  }
  std::vector<double> rates(num_queues, fallback_rate);
  for (std::size_t q = 1; q < num_queues; ++q) {
    double rate = 0.0;
    // Bound 1: response >= service, so mu >= 1 / mean-observed-response. Tight for lightly
    // loaded queues, loose (by orders of magnitude) for saturated ones.
    if (response_count[q] > 0 && response_sum[q] > 0.0) {
      rate = static_cast<double>(response_count[q]) / response_sum[q];
    }
    // Bound 2: a single server that processed n_q jobs within the horizon has mu >= n_q /
    // horizon (exact for saturated queues, which is precisely where bound 1 collapses).
    // Event counts per queue are known for all events (the paper's counter assumption).
    if (horizon > 0.0) {
      rate = std::max(rate, static_cast<double>(event_count[q]) / horizon);
    }
    if (rate > 0.0) {
      rates[q] = rate;
    }
  }
  // Arrival rate: the total task count is known and the latest observed entry approximates
  // the arrival horizon.
  if (max_entry > 0.0) {
    rates[0] = static_cast<double>(log.NumTasks()) / max_entry;
  }
  return rates;
}

std::vector<double> PerQueueAbsoluteError(const std::vector<double>& estimate,
                                          const std::vector<double>& reference,
                                          bool skip_arrival) {
  QNET_CHECK(estimate.size() == reference.size(), "size mismatch");
  std::vector<double> errors;
  errors.reserve(estimate.size());
  for (std::size_t q = skip_arrival ? 1 : 0; q < estimate.size(); ++q) {
    errors.push_back(std::abs(estimate[q] - reference[q]));
  }
  return errors;
}

}  // namespace qnet
