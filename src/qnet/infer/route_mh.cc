#include "qnet/infer/route_mh.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

// log density of an exponential service of duration s at rate mu.
double ServiceLogPdf(double mu, double s) {
  if (s < 0.0) {
    return kNegInf;
  }
  return std::log(mu) - mu * s;
}

// Derived service time of `e` if its within-queue predecessor departed at `rho_departure`
// (-inf when there is none).
double ServiceGiven(const EventLog& state, EventId e, double rho_departure) {
  const Event& ev = state.At(e);
  return ev.departure - std::max(ev.arrival, rho_departure);
}

}  // namespace

bool ProposeQueueReassignment(EventLog& state, EventId e, const Fsm& fsm,
                              std::span<const double> rates, Rng& rng) {
  const Event& ev = state.At(e);
  QNET_CHECK(!ev.initial, "initial events have no route choice");
  QNET_CHECK(ev.state >= 0, "event has no FSM state");

  // Alternative queues: the emission support of sigma_e, minus the current queue. The
  // uniform proposal over this set is symmetric (same support size from every member).
  std::vector<int> alternatives;
  for (int q = 1; q < state.NumQueues(); ++q) {
    if (q != ev.queue && fsm.Emission(ev.state, q) > 0.0) {
      alternatives.push_back(q);
    }
  }
  if (alternatives.empty()) {
    return false;
  }
  const int new_queue =
      alternatives[static_cast<std::size_t>(rng.UniformInt(alternatives.size()))];

  // Locate the insertion neighbors in the target queue without mutating.
  const auto& new_order = state.QueueOrder(new_queue);
  EventId new_rho = kNoEvent;
  EventId new_nu = kNoEvent;
  {
    const auto pos = std::upper_bound(
        new_order.begin(), new_order.end(), e, [&state](EventId a, EventId b) {
          const Event& ea = state.At(a);
          const Event& eb = state.At(b);
          if (ea.arrival != eb.arrival) {
            return ea.arrival < eb.arrival;
          }
          return a < b;
        });
    new_nu = (pos == new_order.end()) ? kNoEvent : *pos;
    new_rho = (pos == new_order.begin()) ? kNoEvent : *(pos - 1);
  }

  // FIFO feasibility at the new position, with all times held fixed.
  const double new_rho_dep = new_rho == kNoEvent ? kNegInf : state.At(new_rho).departure;
  if (new_rho != kNoEvent && state.At(new_rho).departure > ev.departure) {
    return false;
  }
  if (new_nu != kNoEvent && state.At(new_nu).departure < ev.departure) {
    return false;
  }
  const double s_e_new = ServiceGiven(state, e, new_rho_dep);
  if (s_e_new < 0.0) {
    return false;  // would start service after departing
  }

  const double mu_old = rates[static_cast<std::size_t>(ev.queue)];
  const double mu_new = rates[static_cast<std::size_t>(new_queue)];
  const double old_rho_dep = ev.rho == kNoEvent ? kNegInf : state.At(ev.rho).departure;

  // Log-density of the three affected service times, before and after.
  double log_before = ServiceLogPdf(mu_old, ServiceGiven(state, e, old_rho_dep));
  double log_after = ServiceLogPdf(mu_new, s_e_new);
  if (ev.nu != kNoEvent) {
    // Old successor: its predecessor becomes ev.rho.
    log_before += ServiceLogPdf(mu_old, ServiceGiven(state, ev.nu, ev.departure));
    log_after += ServiceLogPdf(mu_old, ServiceGiven(state, ev.nu, old_rho_dep));
  }
  if (new_nu != kNoEvent) {
    // New successor: its predecessor becomes e.
    log_before += ServiceLogPdf(mu_new, ServiceGiven(state, new_nu, new_rho_dep));
    log_after += ServiceLogPdf(mu_new, ServiceGiven(state, new_nu, ev.departure));
  }
  // Emission-probability ratio.
  log_after += std::log(fsm.Emission(ev.state, new_queue));
  log_before += std::log(fsm.Emission(ev.state, ev.queue));

  const double log_accept = log_after - log_before;
  if (log_accept < 0.0 && std::log(std::max(rng.Uniform(), 1e-300)) >= log_accept) {
    return false;
  }
  state.MoveEventToQueue(e, new_queue);
  return true;
}

RouteMhStats RouteMhSweep(EventLog& state, std::span<const EventId> events, const Fsm& fsm,
                          std::span<const double> rates, Rng& rng) {
  RouteMhStats stats;
  for (EventId e : events) {
    ++stats.proposed;
    if (ProposeQueueReassignment(state, e, fsm, rates, rng)) {
      ++stats.accepted;
    }
  }
  return stats;
}

std::vector<EventId> RouteLatentEvents(const EventLog& log, const std::vector<int>& tasks) {
  std::vector<EventId> events;
  for (int task : tasks) {
    const auto& chain = log.TaskEvents(task);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      events.push_back(chain[i]);
    }
  }
  return events;
}

}  // namespace qnet
