#include "qnet/infer/slow_requests.h"

#include <algorithm>

#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {

int SlowRequestReport::SlowBottleneckQueue() const {
  int best = -1;
  double best_wait = -1.0;
  for (std::size_t q = 1; q < slow_wait.size(); ++q) {
    if (slow_wait[q] > best_wait) {
      best_wait = slow_wait[q];
      best = static_cast<int>(q);
    }
  }
  return best;
}

int SlowRequestReport::MostDisproportionateQueue() const {
  int best = -1;
  double best_ratio = -1.0;
  for (std::size_t q = 1; q < slow_wait.size(); ++q) {
    const double base = all_wait[q] + 1e-9;
    const double ratio = slow_wait[q] / base;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = static_cast<int>(q);
    }
  }
  return best;
}

SlowRequestReport AnalyzeSlowRequests(const EventLog& log, double percentile) {
  QNET_CHECK(percentile > 0.0 && percentile < 1.0, "percentile must be in (0,1)");
  QNET_CHECK(log.NumTasks() > 0, "empty log");
  const auto num_queues = static_cast<std::size_t>(log.NumQueues());
  const auto num_tasks = static_cast<std::size_t>(log.NumTasks());

  std::vector<double> responses(num_tasks);
  for (int k = 0; k < log.NumTasks(); ++k) {
    responses[static_cast<std::size_t>(k)] = log.TaskExitTime(k) - log.TaskEntryTime(k);
  }
  const double threshold = Quantile(responses, percentile);

  SlowRequestReport report;
  report.threshold = threshold;
  report.num_tasks = num_tasks;
  report.slow_wait.assign(num_queues, 0.0);
  report.slow_service.assign(num_queues, 0.0);
  report.all_wait.assign(num_queues, 0.0);
  report.all_service.assign(num_queues, 0.0);

  for (int k = 0; k < log.NumTasks(); ++k) {
    const bool slow = responses[static_cast<std::size_t>(k)] >= threshold;
    if (slow) {
      ++report.num_slow;
    }
    const auto& chain = log.TaskEvents(k);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const auto q = static_cast<std::size_t>(log.At(chain[i]).queue);
      const double wait = log.WaitTime(chain[i]);
      const double service = log.ServiceTime(chain[i]);
      report.all_wait[q] += wait;
      report.all_service[q] += service;
      if (slow) {
        report.slow_wait[q] += wait;
        report.slow_service[q] += service;
      }
    }
  }
  for (std::size_t q = 0; q < num_queues; ++q) {
    report.all_wait[q] /= static_cast<double>(num_tasks);
    report.all_service[q] /= static_cast<double>(num_tasks);
    if (report.num_slow > 0) {
      report.slow_wait[q] /= static_cast<double>(report.num_slow);
      report.slow_service[q] /= static_cast<double>(report.num_slow);
    }
  }
  return report;
}

SlowRequestReport AnalyzeSlowRequestsPosterior(GibbsSampler& sampler, Rng& rng,
                                               std::size_t sweeps, double percentile) {
  QNET_CHECK(sweeps > 0, "need at least one sweep");
  SlowRequestReport total;
  const auto num_queues = static_cast<std::size_t>(sampler.State().NumQueues());
  total.slow_wait.assign(num_queues, 0.0);
  total.slow_service.assign(num_queues, 0.0);
  total.all_wait.assign(num_queues, 0.0);
  total.all_service.assign(num_queues, 0.0);
  for (std::size_t s = 0; s < sweeps; ++s) {
    sampler.Sweep(rng);
    const SlowRequestReport sample = AnalyzeSlowRequests(sampler.State(), percentile);
    total.threshold += sample.threshold / static_cast<double>(sweeps);
    total.num_slow = sample.num_slow;
    total.num_tasks = sample.num_tasks;
    for (std::size_t q = 0; q < num_queues; ++q) {
      total.slow_wait[q] += sample.slow_wait[q] / static_cast<double>(sweeps);
      total.slow_service[q] += sample.slow_service[q] / static_cast<double>(sweeps);
      total.all_wait[q] += sample.all_wait[q] / static_cast<double>(sweeps);
      total.all_service[q] += sample.all_service[q] / static_cast<double>(sweeps);
    }
  }
  return total;
}

}  // namespace qnet
