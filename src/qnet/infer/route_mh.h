// Metropolis-Hastings route resampling (paper Section 3):
//
//   "we assume the FSM paths (sigma_e, q_e) for all events are known. If these paths are
//    unknown for some events, they can be resampled by an outer Metropolis-Hastings step."
//
// The move implemented here covers the common replicated-server case: an event's FSM state
// sigma_e is known but *which* emission-compatible queue served it is not (e.g., which of a
// tier's replicas a load balancer picked for an untraced request). A proposal reassigns one
// event to a uniformly-chosen alternative queue in the emission support of its state,
// holding all times fixed. With times fixed, reassignment changes exactly three derived
// service times — the event's own (new within-queue predecessor), its old successor's (it
// loses a predecessor), and its new successor's (it gains one) — so the acceptance ratio is
// a local product of exponential service densities times the emission-probability ratio.
// Proposals that violate FIFO feasibility at the new position are rejected outright.
//
// Compose with the time moves by interleaving: GibbsSampler::Sweep for times, then
// RouteMhSweep for routes.

#ifndef QNET_INFER_ROUTE_MH_H_
#define QNET_INFER_ROUTE_MH_H_

#include <span>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/model/fsm.h"
#include "qnet/support/rng.h"

namespace qnet {

struct RouteMhStats {
  std::size_t proposed = 0;
  std::size_t accepted = 0;

  double AcceptanceRate() const {
    return proposed == 0 ? 0.0 : static_cast<double>(accepted) / static_cast<double>(proposed);
  }
};

// Attempts one reassignment proposal for event e; returns true when accepted (the state is
// then already updated). Events whose FSM state emits a single queue are skipped.
bool ProposeQueueReassignment(EventLog& state, EventId e, const Fsm& fsm,
                              std::span<const double> rates, Rng& rng);

// One MH pass over `events` (typically the queue-latent events of untraced tasks).
RouteMhStats RouteMhSweep(EventLog& state, std::span<const EventId> events, const Fsm& fsm,
                          std::span<const double> rates, Rng& rng);

// Convenience: the non-initial events of every task in `tasks` (e.g. unobserved tasks).
std::vector<EventId> RouteLatentEvents(const EventLog& log, const std::vector<int>& tasks);

}  // namespace qnet

#endif  // QNET_INFER_ROUTE_MH_H_
