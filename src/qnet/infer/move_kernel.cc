#include "qnet/infer/move_kernel.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {
namespace {

// When the current point has zero density (e.g. a boundary-clipped initial state under a
// distribution whose pdf vanishes at 0, like a log-normal), probe the window for a usable
// slice start.
double FindSliceStart(FunctionRef<double(double)> log_density, double x0, double lo,
                      double hi, Rng& rng) {
  if (log_density(x0) > kNegInf) {
    return x0;
  }
  double best = x0;
  double best_value = kNegInf;
  for (int i = 0; i < 32; ++i) {
    const double x = lo + (hi - lo) * rng.Uniform();
    const double value = log_density(x);
    if (value > best_value) {
      best_value = value;
      best = x;
    }
  }
  return best_value > kNegInf ? best : x0;
}

}  // namespace

void CollectLatentMoves(const EventLog& log, const Observation& obs,
                        std::vector<SweepMove>& arrival_moves,
                        std::vector<SweepMove>& final_moves) {
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (!ev.initial && !obs.ArrivalObserved(e)) {
      arrival_moves.push_back({MoveKind::kArrival, e});
    }
    if (ev.tau == kNoEvent && !obs.DepartureObserved(e)) {
      final_moves.push_back({MoveKind::kFinalDeparture, e});
    }
  }
}

std::vector<SweepMove> ConcatSweepMoves(std::span<const SweepMove> arrival_moves,
                                        std::span<const SweepMove> final_moves,
                                        bool include_finals) {
  std::vector<SweepMove> moves(arrival_moves.begin(), arrival_moves.end());
  if (include_finals) {
    moves.insert(moves.end(), final_moves.begin(), final_moves.end());
  }
  return moves;
}

BatchedExponentialMoveKernel::BatchedExponentialMoveKernel(std::span<const double> rates,
                                                           std::size_t width,
                                                           std::span<double> service_cache)
    : rates_(rates), service_cache_(service_cache), width_(width) {
  QNET_CHECK(width_ >= 1 && width_ <= kMaxBatchWidth, "batch width out of range: ", width_);
  static_assert(PiecewiseExpBatch::kMaxMoves >= kMaxBatchWidth,
                "a tile of lanes must fit in one segment batch");
}

void BatchedExponentialMoveKernel::RunBucket(EventLog& state,
                                             std::span<const SweepMove> moves,
                                             std::uint64_t bucket_seed) const {
  // One rate-vector check per bucket; the tile loop then uses the unchecked gathers so
  // the compiler can overlap neighboring moves' pointer chases.
  QNET_CHECK(static_cast<std::size_t>(state.NumQueues()) == rates_.size(), "rate vector size");
  if (moves.empty()) {
    return;
  }
  // Lane l is touched only by ranks ≡ l (mod width_), so a bucket smaller than the
  // width never advances the upper lanes — skip seeding them. The modulus (and with it
  // every move's stream) is width_ regardless of the lane count seeded here.
  BatchRng lanes(bucket_seed, std::min(width_, moves.size()));
  PiecewiseExpBatch batch;
  std::array<double, kMaxBatchWidth> picks;
  std::array<double, kMaxBatchWidth> invs;
  std::array<double, kMaxBatchWidth> sampled;
  for (std::size_t tile_start = 0; tile_start < moves.size(); tile_start += width_) {
    // Level-3 detail: one span per SoA tile. Off by default (Timeline level 1), where
    // the cost is a single relaxed load per tile.
    ScopedSpan tile_span(SpanStage::kSweepTile);
    const std::size_t tile = std::min(width_, moves.size() - tile_start);
    batch.Clear();
    // Gather: footprint geometry and segment parameters, SoA. Conflict-freedom means no
    // gather here reads a time this tile's scatter phase will write. Degenerate-window
    // moves leave their slot empty and pre-store the midpoint; SampleAll skips them.
    // No software prefetch here: the event log at bench scale is L2-resident and the
    // out-of-order window already overlaps neighboring lanes' pointer chases, so an
    // interleaved A/B of none / next-tile-record / two-distance prefetch schemes measured
    // every prefetch variant as pure instruction overhead (1-2% slower).
    for (std::size_t l = 0; l < tile; ++l) {
      const SweepMove& move = moves[tile_start + l];
      batch.BeginMove();
      if (move.kind == MoveKind::kArrival) {
        const ArrivalMove m = GatherArrivalMoveUnchecked(state, move.event, rates_);
        if (!(m.upper - m.lower > kDegenerateWindow)) {
          sampled[l] = 0.5 * (m.lower + m.upper);
        } else {
          BuildArrivalSegmentsInto(m, batch);
        }
      } else {
        const FinalDepartureMove m =
            GatherFinalDepartureMoveUnchecked(state, move.event, rates_);
        if (std::isfinite(m.upper) && !(m.upper - m.lower > kDegenerateWindow)) {
          sampled[l] = 0.5 * (m.lower + m.upper);
        } else {
          BuildFinalDepartureSegmentsInto(m, batch);
        }
      }
    }
    // Normalize: the tile's transcendentals as contiguous vmath sweeps.
    batch.FinalizeAll();
    // Draw: one picks row, one quantiles row — lane l advances iff it has a move this
    // tile, and degenerate moves consume (and discard) their draws so every lane's stream
    // position is a pure function of the bucket rank.
    lanes.FillUniformRows(std::span<double>(picks.data(), tile),
                          std::span<double>(invs.data(), tile));
    // Sample: inverse-CDF for the whole tile (two more vmath sweeps), then scatter.
    batch.SampleAll(std::span<const double>(picks.data(), tile),
                    std::span<const double>(invs.data(), tile),
                    std::span<double>(sampled.data(), tile));
    for (std::size_t l = 0; l < tile; ++l) {
      ScatterMoveResult(state, moves[tile_start + l], sampled[l], service_cache_);
    }
  }
}

void BatchedExponentialMoveKernel::RunBucketReference(EventLog& state,
                                                      std::span<const SweepMove> moves,
                                                      std::uint64_t bucket_seed) const {
  if (moves.empty()) {
    return;
  }
  BatchRng lanes(bucket_seed, std::min(width_, moves.size()));
  for (std::size_t r = 0; r < moves.size(); ++r) {
    const std::size_t lane = r % width_;
    const double u_pick = lanes.Uniform(lane);
    const double u_inv = lanes.Uniform(lane);
    const SweepMove& move = moves[r];
    PiecewiseExpDensity density;
    double sampled;
    if (move.kind == MoveKind::kArrival) {
      const ArrivalMove m = GatherArrivalMove(state, move.event, rates_);
      if (!(m.upper - m.lower > kDegenerateWindow)) {
        sampled = 0.5 * (m.lower + m.upper);
      } else {
        BuildArrivalSegmentsInto(m, density);
        density.Finalize();
        sampled = density.SampleWith(u_pick, u_inv);
      }
    } else {
      const FinalDepartureMove m = GatherFinalDepartureMove(state, move.event, rates_);
      if (std::isfinite(m.upper) && !(m.upper - m.lower > kDegenerateWindow)) {
        sampled = 0.5 * (m.lower + m.upper);
      } else {
        BuildFinalDepartureSegmentsInto(m, density);
        density.Finalize();
        sampled = density.SampleWith(u_pick, u_inv);
      }
    }
    ScatterMoveResult(state, move, sampled, service_cache_);
  }
}

void GeneralMoveKernel::Apply(EventLog& state, const SweepMove& move, Rng& rng) const {
  if (move.kind == MoveKind::kArrival) {
    ApplyArrival(state, move.event, rng);
  } else {
    ApplyFinalDeparture(state, move.event, rng);
  }
}

void GeneralMoveKernel::ApplyArrival(EventLog& state, EventId e, Rng& rng) const {
  const ArrivalMove geom = GatherArrivalGeometry(state, e);
  if (!(geom.upper - geom.lower > kDegenerateWindow)) {
    return;
  }
  const Event& ev = state.AtUnchecked(e);
  const ServiceDistribution& f_e = net_->Service(ev.queue);
  const int pi_queue = state.AtUnchecked(ev.pi).queue;
  const ServiceDistribution& f_pi = net_->Service(pi_queue);

  const auto log_density = [&](double a) {
    const double s_e = geom.has_t1 ? geom.d_e - std::max(a, geom.t1) : geom.d_e - a;
    double total = f_e.LogPdf(s_e);
    total += f_pi.LogPdf(a - geom.c_pi);
    if (geom.has_nu_pi) {
      total += f_pi.LogPdf(geom.d_nu_pi - std::max(a, geom.t2));
    }
    return total;
  };

  const double x0 =
      FindSliceStart(log_density, state.ArrivalUnchecked(e), geom.lower, geom.upper, rng);
  if (log_density(x0) == kNegInf) {
    return;  // Nothing in the window has positive density under the current parameters.
  }
  SliceOptions slice = slice_;
  slice.width = std::min(slice.width, 0.5 * (geom.upper - geom.lower));
  const double a = SliceSample(log_density, x0, geom.lower, geom.upper, rng, slice);
  state.SetArrivalUnchecked(e, a);
  state.SetDepartureUnchecked(ev.pi, a);
}

void GeneralMoveKernel::ApplyFinalDeparture(EventLog& state, EventId e, Rng& rng) const {
  const FinalDepartureMove geom = GatherFinalDepartureGeometry(state, e);
  const ServiceDistribution& f_e = net_->Service(state.AtUnchecked(e).queue);
  const auto log_density = [&](double d) {
    double total = f_e.LogPdf(d - geom.c_e);
    if (geom.has_nu) {
      total += f_e.LogPdf(geom.d_nu - std::max(geom.t_nu, d));
    }
    return total;
  };
  const double hi =
      std::isfinite(geom.upper) ? geom.upper : geom.c_e + 64.0 * f_e.Mean() + 1.0;
  if (!(hi - geom.lower > kDegenerateWindow)) {
    return;
  }
  const double x0 =
      FindSliceStart(log_density, state.DepartureUnchecked(e), geom.lower, hi, rng);
  if (log_density(x0) == kNegInf) {
    return;
  }
  SliceOptions slice = slice_;
  slice.width = std::min(slice.width, 0.5 * (hi - geom.lower));
  state.SetDepartureUnchecked(e, SliceSample(log_density, x0, geom.lower, hi, rng, slice));
}

}  // namespace qnet
