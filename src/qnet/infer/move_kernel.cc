#include "qnet/infer/move_kernel.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

constexpr double kDegenerateWindow = 1e-12;

// When the current point has zero density (e.g. a boundary-clipped initial state under a
// distribution whose pdf vanishes at 0, like a log-normal), probe the window for a usable
// slice start.
double FindSliceStart(FunctionRef<double(double)> log_density, double x0, double lo,
                      double hi, Rng& rng) {
  if (log_density(x0) > kNegInf) {
    return x0;
  }
  double best = x0;
  double best_value = kNegInf;
  for (int i = 0; i < 32; ++i) {
    const double x = lo + (hi - lo) * rng.Uniform();
    const double value = log_density(x);
    if (value > best_value) {
      best_value = value;
      best = x;
    }
  }
  return best_value > kNegInf ? best : x0;
}

}  // namespace

void CollectLatentMoves(const EventLog& log, const Observation& obs,
                        std::vector<SweepMove>& arrival_moves,
                        std::vector<SweepMove>& final_moves) {
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (!ev.initial && !obs.ArrivalObserved(e)) {
      arrival_moves.push_back({MoveKind::kArrival, e});
    }
    if (ev.tau == kNoEvent && !obs.DepartureObserved(e)) {
      final_moves.push_back({MoveKind::kFinalDeparture, e});
    }
  }
}

std::vector<SweepMove> ConcatSweepMoves(std::span<const SweepMove> arrival_moves,
                                        std::span<const SweepMove> final_moves,
                                        bool include_finals) {
  std::vector<SweepMove> moves(arrival_moves.begin(), arrival_moves.end());
  if (include_finals) {
    moves.insert(moves.end(), final_moves.begin(), final_moves.end());
  }
  return moves;
}

void GeneralMoveKernel::Apply(EventLog& state, const SweepMove& move, Rng& rng) const {
  if (move.kind == MoveKind::kArrival) {
    ApplyArrival(state, move.event, rng);
  } else {
    ApplyFinalDeparture(state, move.event, rng);
  }
}

void GeneralMoveKernel::ApplyArrival(EventLog& state, EventId e, Rng& rng) const {
  const ArrivalMove geom = GatherArrivalGeometry(state, e);
  if (!(geom.upper - geom.lower > kDegenerateWindow)) {
    return;
  }
  const Event& ev = state.AtUnchecked(e);
  const ServiceDistribution& f_e = net_->Service(ev.queue);
  const int pi_queue = state.AtUnchecked(ev.pi).queue;
  const ServiceDistribution& f_pi = net_->Service(pi_queue);

  const auto log_density = [&](double a) {
    const double s_e = geom.has_t1 ? geom.d_e - std::max(a, geom.t1) : geom.d_e - a;
    double total = f_e.LogPdf(s_e);
    total += f_pi.LogPdf(a - geom.c_pi);
    if (geom.has_nu_pi) {
      total += f_pi.LogPdf(geom.d_nu_pi - std::max(a, geom.t2));
    }
    return total;
  };

  const double x0 =
      FindSliceStart(log_density, state.ArrivalUnchecked(e), geom.lower, geom.upper, rng);
  if (log_density(x0) == kNegInf) {
    return;  // Nothing in the window has positive density under the current parameters.
  }
  SliceOptions slice = slice_;
  slice.width = std::min(slice.width, 0.5 * (geom.upper - geom.lower));
  const double a = SliceSample(log_density, x0, geom.lower, geom.upper, rng, slice);
  state.SetArrivalUnchecked(e, a);
  state.SetDepartureUnchecked(ev.pi, a);
}

void GeneralMoveKernel::ApplyFinalDeparture(EventLog& state, EventId e, Rng& rng) const {
  const FinalDepartureMove geom = GatherFinalDepartureGeometry(state, e);
  const ServiceDistribution& f_e = net_->Service(state.AtUnchecked(e).queue);
  const auto log_density = [&](double d) {
    double total = f_e.LogPdf(d - geom.c_e);
    if (geom.has_nu) {
      total += f_e.LogPdf(geom.d_nu - std::max(geom.t_nu, d));
    }
    return total;
  };
  const double hi =
      std::isfinite(geom.upper) ? geom.upper : geom.c_e + 64.0 * f_e.Mean() + 1.0;
  if (!(hi - geom.lower > kDegenerateWindow)) {
    return;
  }
  const double x0 =
      FindSliceStart(log_density, state.DepartureUnchecked(e), geom.lower, hi, rng);
  if (log_density(x0) == kNegInf) {
    return;
  }
  SliceOptions slice = slice_;
  slice.width = std::min(slice.width, 0.5 * (hi - geom.lower));
  state.SetDepartureUnchecked(e, SliceSample(log_density, x0, geom.lower, hi, rng, slice));
}

}  // namespace qnet
