#include "qnet/infer/meanfield.h"

#include <algorithm>
#include <limits>

#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

void MeanFieldEstimator::Fit(const EventLog& truth, const Observation& obs,
                             double arrival_time_origin, MeanFieldFit& out) {
  ScopedSpan fit_span(SpanStage::kMeanFieldFit);
  FitCounters::Get().meanfield_fits->Increment();
  const std::size_t num_queues = static_cast<std::size_t>(truth.NumQueues());
  count_.assign(num_queues, 0);
  resp_sum_.assign(num_queues, 0.0);
  resp_count_.assign(num_queues, 0);
  out.rates.assign(num_queues, options_.fallback_rate);
  out.mean_wait.assign(num_queues, 0.0);
  out.fitted.assign(num_queues, 0);
  out.observed_responses = 0;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  double last_entry = 0.0;  // latest observed system entry time
  double t_min = kInf;      // earliest / latest observed time in the window: the busy
  double t_max = -kInf;     // span lambda_q is measured against
  const EventId num_events = static_cast<EventId>(truth.NumEvents());
  for (EventId e = 0; e < num_events; ++e) {
    const Event& ev = truth.AtUnchecked(e);
    if (ev.initial) {
      // An initial event's departure IS the task's system entry time; its observation bit
      // mirrors the first visit's arrival bit.
      if (obs.DepartureObserved(e)) {
        last_entry = std::max(last_entry, ev.departure);
        t_min = std::min(t_min, ev.departure);
        t_max = std::max(t_max, ev.departure);
      }
      continue;
    }
    const std::size_t q = static_cast<std::size_t>(ev.queue);
    ++count_[q];
    const bool arrival_seen = obs.ArrivalObserved(e);
    const bool departure_seen = obs.DepartureObserved(e);
    if (arrival_seen) {
      t_min = std::min(t_min, ev.arrival);
      t_max = std::max(t_max, ev.arrival);
    }
    if (departure_seen) {
      t_min = std::min(t_min, ev.departure);
      t_max = std::max(t_max, ev.departure);
    }
    if (arrival_seen && departure_seen) {
      resp_sum_[q] += ev.departure - ev.arrival;
      ++resp_count_[q];
      ++out.observed_responses;
    }
  }

  // Busy span: independent of the lambda anchoring so the service-side fit is identical
  // bits whether the caller anchors lambda absolutely or window-locally.
  const double span = t_max > t_min ? std::max(t_max - t_min, options_.min_span)
                                    : options_.min_span;

  const double n_tasks = static_cast<double>(truth.NumTasks());
  if (truth.NumTasks() > 0) {
    out.fitted[0] = 1;
    if (last_entry - arrival_time_origin > 0.0) {
      out.rates[0] = n_tasks / (last_entry - arrival_time_origin);
    } else if (last_entry > 0.0) {
      // Degenerate origin (at/after the last entry): absolute anchor, like the M-step.
      out.rates[0] = n_tasks / last_entry;
    }
  }

  for (std::size_t q = 1; q < num_queues; ++q) {
    if (count_[q] == 0) {
      continue;  // fallback rate; fitted stays 0 so the caller can substitute its chain
    }
    out.fitted[q] = 1;
    const double lambda_q = static_cast<double>(count_[q]) / span;
    if (resp_count_[q] > 0) {
      const double rbar = std::max(
          resp_sum_[q] / static_cast<double>(resp_count_[q]), options_.min_span);
      // Invert R = 1/(mu - lambda): strictly above lambda_q, so always stable.
      const double mu = lambda_q + 1.0 / rbar;
      out.rates[q] = mu;
      out.mean_wait[q] = std::max(rbar - 1.0 / mu, 0.0);
    } else {
      // Events but no measured response: only lambda_q is pinned; place mu on the right
      // scale via the assumed utilization (warm starts only need scale-correctness).
      const double mu = lambda_q / options_.assumed_utilization;
      out.rates[q] = mu;
      out.mean_wait[q] = MeanFieldWait(lambda_q, mu, options_.max_utilization);
    }
  }
}

double MeanFieldWait(double lambda, double mu, double max_utilization) {
  if (mu <= 0.0 || lambda <= 0.0) {
    return 0.0;
  }
  const double lam = std::min(lambda, max_utilization * mu);
  return lam / (mu * (mu - lam));
}

PooledCorrection CorrectCrossLaneShare(double pooled_rate, double pooled_wait,
                                       double lambda_q) {
  PooledCorrection out{pooled_rate, pooled_wait};
  if (pooled_rate <= 0.0 || lambda_q < 0.0) {
    return out;
  }
  const double response = 1.0 / pooled_rate + std::max(pooled_wait, 0.0);
  if (!(response > 0.0)) {
    return out;
  }
  out.rate = lambda_q + 1.0 / response;
  out.wait = response - 1.0 / out.rate;
  return out;
}

double ModelCrossLaneServiceRate(double pooled_rate, double lambda_q,
                                 std::span<const double> lane_shares,
                                 std::span<const double> lane_weights,
                                 std::size_t iterations, double min_service_fraction) {
  if (pooled_rate <= 0.0 || lambda_q <= 0.0 || lane_shares.empty() ||
      lane_shares.size() != lane_weights.size()) {
    return pooled_rate;
  }
  double weight_sum = 0.0;
  for (const double w : lane_weights) {
    weight_sum += std::max(w, 0.0);
  }
  if (weight_sum <= 0.0) {
    return pooled_rate;
  }
  const double biased_service = 1.0 / pooled_rate;
  double service = biased_service;
  for (std::size_t it = 0; it < iterations; ++it) {
    const double mu = 1.0 / service;
    double lane_wait = 0.0;
    for (std::size_t l = 0; l < lane_shares.size(); ++l) {
      const double share = std::clamp(lane_shares[l], 0.0, 1.0);
      lane_wait += std::max(lane_weights[l], 0.0) / weight_sum *
                   MeanFieldWait(share * lambda_q, mu);
    }
    const double cross_share = std::max(MeanFieldWait(lambda_q, mu) - lane_wait, 0.0);
    const double target =
        std::clamp(biased_service - cross_share, min_service_fraction * biased_service,
                   biased_service);
    // Damped: near saturation the undamped map overshoots and oscillates.
    service = 0.5 * (service + target);
  }
  return 1.0 / service;
}

}  // namespace qnet
