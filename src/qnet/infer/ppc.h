// Posterior-predictive checks — model criticism for the fitted queueing model.
//
// After StEM produces rate estimates, a natural question the paper's Section 6 gestures at
// (model selection / "flexibility for future modeling work") is whether the M/M/1 network
// is consistent with what was actually observed. The classical Bayesian answer: simulate
// replicate traces from the fitted model and compare a discrepancy statistic T computed on
// the *observed* portion of the real trace against its replicate distribution. Tail
// probabilities near 0 or 1 flag misfit (e.g. deterministic or heavy-tailed service inside
// an exponential model).
//
// Statistics checked per queue: mean observed response time and the p95 observed response.

#ifndef QNET_INFER_PPC_H_
#define QNET_INFER_PPC_H_

#include <cstddef>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct PpcOptions {
  std::size_t replicates = 100;
  double tail_quantile = 0.95;
};

struct PpcResult {
  // Per-queue observed statistics (NaN when a queue has no fully-observed events).
  std::vector<double> observed_mean_response;
  std::vector<double> observed_tail_response;
  // Per-queue posterior-predictive p-values: P(T_rep >= T_obs). Values near 0.5 indicate
  // good fit; near 0 or 1 indicate misfit. NaN mirrors the observed stats.
  std::vector<double> p_value_mean;
  std::vector<double> p_value_tail;

  // True when every defined p-value lies inside [alpha, 1 - alpha].
  bool ConsistentAt(double alpha) const;
};

// Computes per-queue mean/p95 response over events whose arrival AND departure are
// observed. Exposed for tests.
void ObservedResponseStats(const EventLog& log, const Observation& obs, double tail_quantile,
                           std::vector<double>* mean_out, std::vector<double>* tail_out);

// Runs the check: `fitted_net` supplies the estimated rates and the routing FSM; each
// replicate simulates the same number of tasks and applies a fresh task sample of the same
// fraction as `obs` before computing the statistics.
PpcResult PosteriorPredictiveCheck(const EventLog& observed_log, const Observation& obs,
                                   const QueueingNetwork& fitted_net, Rng& rng,
                                   const PpcOptions& options = {});

}  // namespace qnet

#endif  // QNET_INFER_PPC_H_
