// Classical M/M/1 steady-state formulas. The paper's Section 1 contrasts these with the
// posterior-inference approach; the library uses them for simulator validation and for the
// capacity-planning example's "what-if" extrapolation.

#ifndef QNET_INFER_MM1_H_
#define QNET_INFER_MM1_H_

namespace qnet {

struct Mm1Metrics {
  bool stable = false;          // lambda < mu
  double utilization = 0.0;     // rho = lambda / mu
  double mean_wait = 0.0;       // W_q = rho / (mu - lambda), time in queue
  double mean_response = 0.0;   // W   = 1 / (mu - lambda), queue + service
  double mean_in_system = 0.0;  // L   = lambda * W (Little's law)
  double mean_in_queue = 0.0;   // L_q = lambda * W_q
};

// Metrics are only populated when stable; an overloaded queue (rho >= 1) reports
// stable == false with utilization set.
Mm1Metrics AnalyzeMm1(double lambda, double mu);

}  // namespace qnet

#endif  // QNET_INFER_MM1_H_
