// Unified per-move Gibbs kernel — the one sampler core.
//
// A latent move is always the same shape: gather the move's fixed neighborhood, build (or
// evaluate) the conditional on the feasible window, sample, write the new time(s) back in
// place. The exponential sampler realizes it with the paper's exact piecewise-exponential
// conditional (Figure 3); the general-service sampler with slice sampling over the same
// geometry. Both are packaged here as kernels with an identical `Apply(state, move, rng)`
// surface so every sweep driver — the sequential scans in GibbsSampler and
// GeneralGibbsSampler, the colored sharded scheduler, and the StEM/online re-sweeps — runs
// the exact same per-move code instead of each sampler hard-coding its own copy.
//
// Contracts:
//  * Apply is const and touches only the move's footprint
//    (EventLog::ComputeMoveFootprint), so kernels are safe to call concurrently on moves
//    with disjoint footprints — this is what the sharded sweep scheduler relies on;
//  * Apply performs zero heap allocations (the PR-1 hot-path contract, enforced by
//    tests/test_alloc_free.cc);
//  * kernels are non-owning views over the parameters (rates span / network reference);
//    the referents must outlive the kernel.

#ifndef QNET_INFER_MOVE_KERNEL_H_
#define QNET_INFER_MOVE_KERNEL_H_

#include <span>
#include <vector>

#include "qnet/infer/conditional.h"
#include "qnet/infer/slice.h"
#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

// The latent coordinates of (log, obs) as sweep moves, in scan (event id) order: an
// arrival move for every non-initial event whose arrival is unobserved, a final-departure
// move for every task-final event whose departure is unobserved. Shared by every sweep
// driver so move eligibility is defined exactly once.
void CollectLatentMoves(const EventLog& log, const Observation& obs,
                        std::vector<SweepMove>& arrival_moves,
                        std::vector<SweepMove>& final_moves);

// The sequential scan order: arrival moves, then (optionally) final-departure moves.
std::vector<SweepMove> ConcatSweepMoves(std::span<const SweepMove> arrival_moves,
                                        std::span<const SweepMove> final_moves,
                                        bool include_finals);

// Exponential-service kernel: exact three-piece conditional, inverse-CDF sampling. Fully
// inline — the sequential sweep compiles to the same code as the pre-kernel loop.
class ExponentialMoveKernel {
 public:
  // `rates` holds mu_q for every queue (index 0 = lambda) and must outlive the kernel.
  explicit ExponentialMoveKernel(std::span<const double> rates) : rates_(rates) {}

  void Apply(EventLog& state, const SweepMove& move, Rng& rng) const {
    if (move.kind == MoveKind::kArrival) {
      const ArrivalMove m = GatherArrivalMove(state, move.event, rates_);
      const double a = SampleArrival(m, rng);
      state.SetArrivalUnchecked(move.event, a);
      state.SetDepartureUnchecked(state.AtUnchecked(move.event).pi, a);
    } else {
      const FinalDepartureMove m = GatherFinalDepartureMove(state, move.event, rates_);
      state.SetDepartureUnchecked(move.event, SampleFinalDeparture(m, rng));
    }
  }

 private:
  std::span<const double> rates_;
};

// General-service kernel: the same move geometry, conditional evaluated through the
// network's service distributions and sampled with a window-restricted slice sampler.
class GeneralMoveKernel {
 public:
  GeneralMoveKernel(const QueueingNetwork& net, const SliceOptions& slice)
      : net_(&net), slice_(slice) {}

  void Apply(EventLog& state, const SweepMove& move, Rng& rng) const;

 private:
  void ApplyArrival(EventLog& state, EventId e, Rng& rng) const;
  void ApplyFinalDeparture(EventLog& state, EventId e, Rng& rng) const;

  const QueueingNetwork* net_;
  SliceOptions slice_;
};

// Sequential sweep driver: one RNG stream, moves in scan order. The samplers' default
// Sweep is this loop; the sharded scheduler is the parallel alternative.
template <typename Kernel>
void RunSweep(EventLog& state, std::span<const SweepMove> moves, const Kernel& kernel,
              Rng& rng) {
  for (const SweepMove& move : moves) {
    kernel.Apply(state, move, rng);
  }
}

}  // namespace qnet

#endif  // QNET_INFER_MOVE_KERNEL_H_
