// Unified per-move Gibbs kernel — the one sampler core.
//
// A latent move is always the same shape: gather the move's fixed neighborhood, build (or
// evaluate) the conditional on the feasible window, sample, write the new time(s) back in
// place. The exponential sampler realizes it with the paper's exact piecewise-exponential
// conditional (Figure 3); the general-service sampler with slice sampling over the same
// geometry. Both are packaged here as kernels with an identical `Apply(state, move, rng)`
// surface so every sweep driver — the sequential scans in GibbsSampler and
// GeneralGibbsSampler, the colored sharded scheduler, and the StEM/online re-sweeps — runs
// the exact same per-move code instead of each sampler hard-coding its own copy.
//
// Contracts:
//  * Apply is const and touches only the move's footprint
//    (EventLog::ComputeMoveFootprint), so kernels are safe to call concurrently on moves
//    with disjoint footprints — this is what the sharded sweep scheduler relies on;
//  * Apply performs zero heap allocations (the PR-1 hot-path contract, enforced by
//    tests/test_alloc_free.cc);
//  * kernels are non-owning views over the parameters (rates span / network reference);
//    the referents must outlive the kernel.

#ifndef QNET_INFER_MOVE_KERNEL_H_
#define QNET_INFER_MOVE_KERNEL_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "qnet/infer/conditional.h"
#include "qnet/infer/piecewise_exp.h"
#include "qnet/infer/slice.h"
#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/obs/observation.h"
#include "qnet/support/batch_rng.h"
#include "qnet/support/rng.h"

namespace qnet {

// The latent coordinates of (log, obs) as sweep moves, in scan (event id) order: an
// arrival move for every non-initial event whose arrival is unobserved, a final-departure
// move for every task-final event whose departure is unobserved. Shared by every sweep
// driver so move eligibility is defined exactly once.
void CollectLatentMoves(const EventLog& log, const Observation& obs,
                        std::vector<SweepMove>& arrival_moves,
                        std::vector<SweepMove>& final_moves);

// The sequential scan order: arrival moves, then (optionally) final-departure moves.
std::vector<SweepMove> ConcatSweepMoves(std::span<const SweepMove> arrival_moves,
                                        std::span<const SweepMove> final_moves,
                                        bool include_finals);

// Refreshes one event's entry in a fused sufficient-statistics cache: the derived service
// time d_e - BeginService(e), stored per event id so the M-step can re-derive per-queue
// sums without walking the event structs. The expression is the same as
// EventLog::ServiceTime, so cache entries are bitwise equal to a fresh scan's terms.
inline void RefreshServiceCacheEntry(const EventLog& state, EventId e,
                                     std::span<double> cache) {
  cache[static_cast<std::size_t>(e)] =
      state.DepartureUnchecked(e) - state.BeginServiceUnchecked(e);
}

// Writes a sampled move result back into the log and keeps the optional service cache
// coherent. An arrival move changes a_e and d_pi, so the affected service times are
// {e, pi, nu(pi)}; a final-departure move changes d_e, affecting {e, nu(e)}. All of these
// lie inside the move's footprint, so concurrent scatter of conflict-free moves never
// races on cache entries. Shared by the scalar and batched kernels — the scatter is the
// one place move results touch the log.
inline void ScatterMoveResult(EventLog& state, const SweepMove& move, double sampled,
                              std::span<double> service_cache) {
  if (move.kind == MoveKind::kArrival) {
    state.SetArrivalUnchecked(move.event, sampled);
    const EventId pi = state.AtUnchecked(move.event).pi;
    state.SetDepartureUnchecked(pi, sampled);
    if (!service_cache.empty()) {
      RefreshServiceCacheEntry(state, move.event, service_cache);
      RefreshServiceCacheEntry(state, pi, service_cache);
      const EventId nu_pi = state.AtUnchecked(pi).nu;
      if (nu_pi != kNoEvent && nu_pi != move.event) {
        RefreshServiceCacheEntry(state, nu_pi, service_cache);
      }
    }
  } else {
    state.SetDepartureUnchecked(move.event, sampled);
    if (!service_cache.empty()) {
      RefreshServiceCacheEntry(state, move.event, service_cache);
      const EventId nu = state.AtUnchecked(move.event).nu;
      if (nu != kNoEvent) {
        RefreshServiceCacheEntry(state, nu, service_cache);
      }
    }
  }
}

// Exponential-service kernel: exact three-piece conditional, inverse-CDF sampling. Fully
// inline — the sequential sweep compiles to the same code as the pre-kernel loop.
class ExponentialMoveKernel {
 public:
  // `rates` holds mu_q for every queue (index 0 = lambda) and must outlive the kernel.
  // A non-empty `service_cache` (one slot per event) is kept coherent on every apply —
  // the fused M-step statistics; see GibbsSampler::EnableSuffStatsTracking.
  explicit ExponentialMoveKernel(std::span<const double> rates,
                                 std::span<double> service_cache = {})
      : rates_(rates), service_cache_(service_cache) {}

  void Apply(EventLog& state, const SweepMove& move, Rng& rng) const {
    if (move.kind == MoveKind::kArrival) {
      const ArrivalMove m = GatherArrivalMove(state, move.event, rates_);
      ScatterMoveResult(state, move, SampleArrival(m, rng), service_cache_);
    } else {
      const FinalDepartureMove m = GatherFinalDepartureMove(state, move.event, rates_);
      ScatterMoveResult(state, move, SampleFinalDeparture(m, rng), service_cache_);
    }
  }

 private:
  std::span<const double> rates_;
  std::span<double> service_cache_;
};

// Batched SoA kernel over one conflict-free bucket: the moves of a (color, shard) bucket
// have pairwise disjoint footprints, so no gather depends on another move's scatter and
// the bucket can be processed gather-all / finalize-all / sample-all / scatter-all in
// fixed-width tiles. Per tile the transcendental work (one exp and one expm1 per segment)
// runs as two contiguous vmath sweeps (PiecewiseExpBatch::FinalizeAll) instead of being
// interleaved with gather/scatter control flow.
//
// Stream protocol (a pure function of the schedule): the bucket owns `width` lanes, lane
// l seeded Rng(MixSeed(bucket_seed, l)); the move at bucket rank r draws from lane
// r % width, and every move — including degenerate-window moves, which discard them —
// consumes exactly two uniforms (segment pick, then inverse-CDF quantile). RunBucket and
// RunBucketReference therefore produce bit-identical states: the reference path walks the
// same lanes move-at-a-time through the scalar PiecewiseExpDensity (whose Finalize /
// SampleWith run the same vmath arithmetic), which is the correctness oracle pinned by
// tests/test_move_batch.cc.
class BatchedExponentialMoveKernel {
 public:
  static constexpr std::size_t kDefaultWidth = 32;

  // `width` is the tile width in moves (1 <= width <= kMaxBatchWidth); it is part of the
  // stream layout, so changing it changes the sampled values (not the distribution).
  explicit BatchedExponentialMoveKernel(std::span<const double> rates,
                                        std::size_t width = kDefaultWidth,
                                        std::span<double> service_cache = {});

  // Processes one conflict-free bucket in SIMD-width tiles.
  void RunBucket(EventLog& state, std::span<const SweepMove> moves,
                 std::uint64_t bucket_seed) const;

  // Move-at-a-time reference consuming the identical lane streams; kept as the readable
  // specification of RunBucket and pinned bit-identical to it by tests.
  void RunBucketReference(EventLog& state, std::span<const SweepMove> moves,
                          std::uint64_t bucket_seed) const;

  std::size_t Width() const { return width_; }

 private:
  std::span<const double> rates_;
  std::span<double> service_cache_;
  std::size_t width_;
};

// General-service kernel: the same move geometry, conditional evaluated through the
// network's service distributions and sampled with a window-restricted slice sampler.
class GeneralMoveKernel {
 public:
  GeneralMoveKernel(const QueueingNetwork& net, const SliceOptions& slice)
      : net_(&net), slice_(slice) {}

  void Apply(EventLog& state, const SweepMove& move, Rng& rng) const;

 private:
  void ApplyArrival(EventLog& state, EventId e, Rng& rng) const;
  void ApplyFinalDeparture(EventLog& state, EventId e, Rng& rng) const;

  const QueueingNetwork* net_;
  SliceOptions slice_;
};

// Sequential sweep driver: one RNG stream, moves in scan order. The samplers' default
// Sweep is this loop; the sharded scheduler is the parallel alternative.
template <typename Kernel>
void RunSweep(EventLog& state, std::span<const SweepMove> moves, const Kernel& kernel,
              Rng& rng) {
  for (const SweepMove& move : moves) {
    kernel.Apply(state, move, rng);
  }
}

}  // namespace qnet

#endif  // QNET_INFER_MOVE_KERNEL_H_
