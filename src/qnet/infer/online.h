// Online (sliding-window) StEM — the paper's Section 6 "online, distributed inference"
// future-work direction.
//
// Since the streaming refactor this is a thin adapter: RunOnlineStem wraps the batch log
// in a LogReplayStream and drains it through the StreamingEstimator
// (src/qnet/stream/streaming_estimator.h), which partitions tasks into event-time windows
// by entry time and runs warm-started StEM per window through the unified
// MoveKernel/sweep-driver core. Cross-window queueing interactions are approximated away
// (documented limitation). Window w's StEM run is seeded MixSeed(base, w) with base drawn
// once from `rng`, so results are bit-identical to streaming the same log — for any
// sharded-sweep thread count and any pipelining — and a trailing window with fewer than
// min_tasks_per_window tasks is merged into the previous window's span and re-estimated
// rather than dropped.
//
// ExtractTaskWindow remains the batch window extractor (it now rides the same
// WindowLogBuilder the assembler uses, so the two paths cannot diverge).

#ifndef QNET_INFER_ONLINE_H_
#define QNET_INFER_ONLINE_H_

#include <utility>
#include <vector>

#include "qnet/infer/stem.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/support/rng.h"

namespace qnet {

struct OnlineStemOptions {
  double window_duration = 60.0;
  // Windows with fewer tasks than this are merged into the next window (the trailing
  // window merges into the *previous* one instead — there is no next).
  std::size_t min_tasks_per_window = 8;
  StemOptions stem;
  // Overlap each window's StEM sweeps with the next window's ingestion (pure wall-clock
  // knob; estimates are unchanged).
  bool pipeline = false;
};

// Extracts the sub-log of `truth` containing exactly `tasks` (renumbered contiguously),
// together with the restriction of `obs`. Exposed for tests.
std::pair<EventLog, Observation> ExtractTaskWindow(const EventLog& truth,
                                                   const Observation& obs,
                                                   const std::vector<int>& tasks);

// Runs StEM per window over the whole log. init_rates seeds the first window.
std::vector<WindowEstimate> RunOnlineStem(const EventLog& truth, const Observation& obs,
                                          std::vector<double> init_rates, Rng& rng,
                                          const OnlineStemOptions& options = {});

}  // namespace qnet

#endif  // QNET_INFER_ONLINE_H_
