// Online (sliding-window) StEM — the paper's Section 6 "online, distributed inference"
// future-work direction, in its simplest useful form.
//
// The task stream is partitioned into consecutive time windows by entry time; each window is
// estimated with a short StEM run warm-started from the previous window's rates. This yields
// a rate trajectory over time, which is what the paper's "what happened five minutes ago"
// diagnosis questions consume. Tasks are assigned to the window containing their entry time;
// cross-window queueing interactions are approximated away (documented limitation).
//
// Every window's E-step sweeps run through the unified MoveKernel/sweep-driver core (the
// same GibbsSampler the batch estimators use — infer/move_kernel.h), so streaming windows
// cannot drift from the batch sampler's behavior. Set stem.sharded_sweeps to run each
// window's sweeps on the colored sharded scheduler (useful when windows are large and
// arrive faster than a sequential chain can sweep them).

#ifndef QNET_INFER_ONLINE_H_
#define QNET_INFER_ONLINE_H_

#include <vector>

#include "qnet/infer/stem.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct WindowEstimate {
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t tasks = 0;
  std::vector<double> rates;      // index 0 = lambda
  std::vector<double> mean_wait;  // posterior mean per queue (may be empty)
};

struct OnlineStemOptions {
  double window_duration = 60.0;
  // Windows with fewer tasks than this are merged into the next window.
  std::size_t min_tasks_per_window = 8;
  StemOptions stem;
};

// Extracts the sub-log of `truth` containing exactly `tasks` (renumbered contiguously),
// together with the restriction of `obs`. Exposed for tests.
std::pair<EventLog, Observation> ExtractTaskWindow(const EventLog& truth,
                                                   const Observation& obs,
                                                   const std::vector<int>& tasks);

// Runs StEM per window over the whole log. init_rates seeds the first window.
std::vector<WindowEstimate> RunOnlineStem(const EventLog& truth, const Observation& obs,
                                          std::vector<double> init_rates, Rng& rng,
                                          const OnlineStemOptions& options = {});

}  // namespace qnet

#endif  // QNET_INFER_ONLINE_H_
