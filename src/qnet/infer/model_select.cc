#include "qnet/infer/model_select.h"

#include <algorithm>
#include <cmath>

#include "qnet/dist/exponential.h"
#include "qnet/dist/gamma.h"
#include "qnet/dist/lognormal.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {
namespace {

constexpr double kPositiveFloor = 1e-12;

int FamilyParamCount(ServiceFamily family) {
  return family == ServiceFamily::kExponential ? 1 : 2;
}

double GammaShapeMle(double log_mean_minus_mean_log) {
  const double s = log_mean_minus_mean_log;
  QNET_CHECK(s > 0.0, "degenerate sample for gamma fit");
  // Minka's initializer, then Newton on log(k) - digamma(k) = s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  for (int i = 0; i < 100; ++i) {
    const double f = std::log(k) - Digamma(k) - s;
    const double fprime = 1.0 / k - Trigamma(k);
    const double step = f / fprime;
    double next = k - step;
    if (next <= 0.0) {
      next = k / 2.0;
    }
    if (std::abs(next - k) < 1e-12 * k) {
      k = next;
      break;
    }
    k = next;
  }
  return k;
}

}  // namespace

std::string FamilyName(ServiceFamily family) {
  switch (family) {
    case ServiceFamily::kExponential:
      return "exponential";
    case ServiceFamily::kGamma:
      return "gamma";
    case ServiceFamily::kLogNormal:
      return "lognormal";
  }
  return "unknown";
}

std::unique_ptr<ServiceDistribution> FitMle(ServiceFamily family,
                                            std::span<const double> samples) {
  QNET_CHECK(samples.size() >= 2, "need at least two samples to fit");
  double sum = 0.0;
  double sum_log = 0.0;
  for (double s : samples) {
    const double clipped = std::max(s, kPositiveFloor);
    sum += clipped;
    sum_log += std::log(clipped);
  }
  const double n = static_cast<double>(samples.size());
  const double mean = sum / n;
  const double mean_log = sum_log / n;

  switch (family) {
    case ServiceFamily::kExponential:
      return std::make_unique<Exponential>(1.0 / mean);
    case ServiceFamily::kGamma: {
      const double s = std::log(mean) - mean_log;
      if (s <= 1e-12) {
        // Near-deterministic sample; fall back to a high-shape gamma around the mean.
        return std::make_unique<GammaDist>(1e6, 1e6 / mean);
      }
      const double shape = GammaShapeMle(s);
      return std::make_unique<GammaDist>(shape, shape / mean);
    }
    case ServiceFamily::kLogNormal: {
      double var_log = 0.0;
      for (double x : samples) {
        const double diff = std::log(std::max(x, kPositiveFloor)) - mean_log;
        var_log += diff * diff;
      }
      var_log /= n;  // MLE uses the 1/n variance.
      return std::make_unique<LogNormal>(mean_log, std::sqrt(std::max(var_log, 1e-12)));
    }
  }
  QNET_CHECK(false, "unreachable");
  return nullptr;
}

std::vector<ModelScore> ScoreFamilies(std::span<const double> samples,
                                      const std::vector<ServiceFamily>& families) {
  QNET_CHECK(!families.empty(), "no candidate families");
  const double n = static_cast<double>(samples.size());
  std::vector<ModelScore> scores;
  for (ServiceFamily family : families) {
    ModelScore score;
    score.family = family;
    score.fitted = FitMle(family, samples);
    double log_lik = 0.0;
    for (double s : samples) {
      log_lik += score.fitted->LogPdf(std::max(s, kPositiveFloor));
    }
    score.log_likelihood = log_lik;
    score.bic = -2.0 * log_lik + FamilyParamCount(family) * std::log(n);
    scores.push_back(std::move(score));
  }
  std::sort(scores.begin(), scores.end(),
            [](const ModelScore& a, const ModelScore& b) { return a.bic < b.bic; });
  return scores;
}

ServiceFamily SelectServiceFamily(std::span<const double> samples) {
  return ScoreFamilies(samples).front().family;
}

}  // namespace qnet
