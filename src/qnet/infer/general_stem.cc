#include "qnet/infer/general_stem.h"

#include <algorithm>

#include "qnet/dist/exponential.h"
#include "qnet/support/check.h"

namespace qnet {
namespace {

constexpr double kServiceFloor = 1e-9;

// Imputed service times of every event, split per queue, in one pass over the log (the
// historical per-queue GatherServices re-scanned the full log once per queue per
// iteration). Event-id order within each queue and the floor are unchanged, so the
// gathered vectors are element-for-element identical to the per-queue scans'. The outer
// buffers persist across iterations; clear() keeps their capacity.
void GatherAllServices(const EventLog& state, std::vector<std::vector<double>>& services) {
  for (std::vector<double>& queue_services : services) {
    queue_services.clear();
  }
  for (EventId e = 0; static_cast<std::size_t>(e) < state.NumEvents(); ++e) {
    services[static_cast<std::size_t>(state.At(e).queue)].push_back(
        std::max(state.ServiceTime(e), kServiceFloor));
  }
}

}  // namespace

GeneralStemResult GeneralStemEstimator::Run(const EventLog& truth, const Observation& obs,
                                            const QueueingNetwork& initial_net,
                                            Rng& rng) const {
  QNET_CHECK(options_.iterations > options_.burn_in, "iterations must exceed burn-in");
  const int num_queues = initial_net.NumQueues();
  QNET_CHECK(options_.families.empty() ||
                 options_.families.size() == static_cast<std::size_t>(num_queues),
             "families vector must be empty or one entry per queue");

  const auto family_of = [&](int queue) {
    if (options_.families.empty()) {
      return options_.default_family;
    }
    return options_.families[static_cast<std::size_t>(queue)];
  };

  // Feasible init uses 1/mean as per-queue rate scales.
  std::vector<double> init_rates(static_cast<std::size_t>(num_queues), 1.0);
  for (int q = 0; q < num_queues; ++q) {
    init_rates[static_cast<std::size_t>(q)] = 1.0 / initial_net.Service(q).Mean();
  }
  EventLog state = InitializeFeasible(truth, obs, init_rates, rng, options_.init);
  GeneralGibbsSampler sampler(std::move(state), obs, initial_net, options_.gibbs);

  // StEM loop: sweep, then refit each queue's family on the imputed services. Post burn-in
  // fits are averaged in mean-parameter space by collecting the services of every kept
  // iteration and fitting once at the end (equivalent to Rao-Blackwellized averaging of the
  // sufficient statistics for these families).
  std::vector<std::vector<double>> kept_services(static_cast<std::size_t>(num_queues));
  std::vector<std::vector<double>> services(static_cast<std::size_t>(num_queues));
  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    sampler.Sweep(rng);
    GatherAllServices(sampler.State(), services);
    for (int q = 1; q < num_queues; ++q) {
      const std::vector<double>& queue_services = services[static_cast<std::size_t>(q)];
      if (queue_services.size() >= 2) {
        sampler.SetService(q, FitMle(family_of(q), queue_services));
      }
      if (iter >= options_.burn_in) {
        auto& bucket = kept_services[static_cast<std::size_t>(q)];
        bucket.insert(bucket.end(), queue_services.begin(), queue_services.end());
      }
    }
    // Arrival process stays exponential; refit lambda from imputed entry gaps.
    const std::vector<double>& entry_services = services[0];
    double total = 0.0;
    for (double s : entry_services) {
      total += s;
    }
    if (total > 0.0) {
      sampler.SetService(0, std::make_unique<Exponential>(
                                static_cast<double>(entry_services.size()) / total));
    }
  }

  GeneralStemResult result(sampler.Network().Clone());
  result.chosen_family.assign(static_cast<std::size_t>(num_queues),
                              ServiceFamily::kExponential);
  for (int q = 1; q < num_queues; ++q) {
    const auto& bucket = kept_services[static_cast<std::size_t>(q)];
    QNET_CHECK(bucket.size() >= 2, "queue ", q, " accumulated no service samples");
    ServiceFamily family = family_of(q);
    if (options_.select_family_by_bic) {
      family = SelectServiceFamily(bucket);
    }
    result.chosen_family[static_cast<std::size_t>(q)] = family;
    result.network.SetService(q, FitMle(family, bucket));
  }

  result.mean_service.assign(static_cast<std::size_t>(num_queues), 0.0);
  result.fitted_description.assign(static_cast<std::size_t>(num_queues), "");
  for (int q = 0; q < num_queues; ++q) {
    result.mean_service[static_cast<std::size_t>(q)] = result.network.Service(q).Mean();
    result.fitted_description[static_cast<std::size_t>(q)] =
        result.network.Service(q).Describe();
  }

  if (options_.wait_sweeps > 0) {
    // Waiting phase at the final fitted distributions.
    for (int q = 0; q < num_queues; ++q) {
      sampler.SetService(q, result.network.Service(q).Clone());
    }
    std::vector<double> wait_accum(static_cast<std::size_t>(num_queues), 0.0);
    for (std::size_t s = 0; s < options_.wait_sweeps; ++s) {
      sampler.Sweep(rng);
      const auto waits = sampler.State().PerQueueMeanWait();
      for (std::size_t q = 0; q < wait_accum.size(); ++q) {
        wait_accum[q] += waits[q] / static_cast<double>(options_.wait_sweeps);
      }
    }
    result.mean_wait = std::move(wait_accum);
  }
  return result;
}

}  // namespace qnet
