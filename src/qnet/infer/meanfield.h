// Mean-field (variational) window fits — the sampler-free fast path.
//
// Following Perez & Casale's mean-field/variational treatment of partially observed
// queueing networks (arXiv:1807.08673), each queue is decoupled into an independent
// M/M/1 node whose stationary response time R = 1/(mu - lambda) closes the moment
// equations. The estimator inverts that closure from directly measurable quantities in
// ONE deterministic pass over a window's events:
//
//   lambda     = n_tasks / (last observed entry - origin)         (same anchor as StEM)
//   lambda_q   = n_q / busy span                                  (counts are structure,
//                                                                  known exactly)
//   mu_q       = lambda_q + 1 / Rbar_q                            (R = 1/(mu - lambda))
//   W_q        = Rbar_q - 1/mu_q                                  (R = W + S)
//
// where Rbar_q averages the responses of events whose arrival AND departure are both
// observed (task-level sampling observes complete tasks, so every sampled task
// contributes its full per-queue responses). No Gibbs sweeps, no RNG, no latent-time
// imputation: the fit is a pure function of the observed times and the structure, and
// is O(events) with zero allocations per fit once the scratch vectors are warm.
//
// Compared to StEM the estimate is biased by the M/M/1 closure (exact for Poisson-fed
// exponential queues, approximate otherwise) and noisier at low observation fractions
// (it reads only directly measured responses, never imputes). Its three consumers
// tolerate that: warm starts only need scale-correct rates, degraded-mode estimates are
// flagged as such, and the cross-lane bias correction needs moments, not samples.
//
// Cross-lane bias correction (shard/lane_merger.h): a lane fitting its hash-thinned
// sub-log attributes the queueing caused by OTHER lanes' tasks to service, inflating the
// pooled service time S_b by the unexplained waiting share. Responses are physical
// times, so the decomposition error cancels in the sum S_b + W_b: the pooled mean
// response R = S_b + W_b is invariant under lane thinning. CorrectCrossLaneShare
// re-inverts the mean-field closure from that invariant — mu = lambda_q + 1/R — which
// needs no model of the thinned waiting process at all. When a pooled fit carries no
// waiting-time estimate the model-based fallback ModelCrossLaneServiceRate solves the
// fixed point S_b = S + W(lambda_q, 1/S) - sum_l w_l W(p_l lambda_q, 1/S) instead.

#ifndef QNET_INFER_MEANFIELD_H_
#define QNET_INFER_MEANFIELD_H_

#include <cstddef>
#include <span>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"

namespace qnet {

struct MeanFieldOptions {
  // Rate assigned to queues with no events in the window (the caller typically
  // substitutes its warm-start chain's previous rates for such queues).
  double fallback_rate = 1.0;
  // A queue with events but no fully-observed response pins only lambda_q; assume this
  // utilization to place mu_q = lambda_q / assumed_utilization on the right scale.
  double assumed_utilization = 0.5;
  // Floor on time spans (guards single-event windows).
  double min_span = 1e-9;
  // Utilization clamp for the M/M/1 waiting-time formula (keeps predicted waits finite
  // when a measured lambda_q crowds mu_q).
  double max_utilization = 0.95;
};

struct MeanFieldFit {
  std::vector<double> rates;      // index 0 = lambda
  std::vector<double> mean_wait;  // index 0 = 0
  // Per queue: nonzero when the window had events at this queue (rates[q] is estimated
  // from this window rather than the fallback).
  std::vector<char> fitted;
  // Events whose response was directly measured (arrival and departure both observed).
  std::size_t observed_responses = 0;
  bool AllQueuesFitted() const {
    for (std::size_t q = 1; q < fitted.size(); ++q) {
      if (fitted[q] == 0) {
        return false;
      }
    }
    return !fitted.empty();
  }
};

class MeanFieldEstimator {
 public:
  explicit MeanFieldEstimator(MeanFieldOptions options = {}) : options_(options) {}

  // Single-pass deterministic fit. `truth` provides structure + observed times
  // (unobserved times are never read); `arrival_time_origin` anchors lambda exactly like
  // StemOptions::arrival_time_origin (0.0 = absolute, window t0 = window-local). The
  // out-param is assign()ed in place so a reused `out` (and a reused estimator) makes
  // the fit allocation-free.
  void Fit(const EventLog& truth, const Observation& obs, double arrival_time_origin,
           MeanFieldFit& out);

  const MeanFieldOptions& Options() const { return options_; }

 private:
  MeanFieldOptions options_;
  // Scratch, sized to the log's queue count on first use.
  std::vector<std::size_t> count_;
  std::vector<double> resp_sum_;
  std::vector<std::size_t> resp_count_;
};

// Stationary M/M/1 mean waiting time W = lambda / (mu (mu - lambda)), with utilization
// clamped to max_utilization so overloaded inputs return a large finite wait instead of
// a negative or infinite one.
double MeanFieldWait(double lambda, double mu, double max_utilization = 0.95);

struct PooledCorrection {
  double rate = 0.0;
  double wait = 0.0;
};

// Corrects a pooled per-queue (service rate, mean wait) pair for cross-lane bias using
// the response invariant R = 1/pooled_rate + pooled_wait (see file comment):
// rate = lambda_q + 1/R, wait = R - 1/rate. lambda_q is the queue's TRUE event arrival
// rate (total count across lanes / window span). Degenerate inputs (nonpositive rate or
// response) are returned unchanged.
PooledCorrection CorrectCrossLaneShare(double pooled_rate, double pooled_wait,
                                       double lambda_q);

// Model-based fallback when the pooled fit has no waiting-time estimate: solves the
// damped fixed point S_b = S + W(lambda_q, 1/S) - sum_l w_l W(p_l lambda_q, 1/S) for
// the true mean service S, where p_l = lane_shares[l] is lane l's share of the queue's
// events and w_l = lane_weights[l] its weight in the pool (normalized internally). The
// bracketed term is the mean-field estimate of the cross-lane waiting share a lane
// cannot explain from its own sub-log. Deterministic: fixed iteration count, result
// clamped to [pooled_rate, pooled_rate / min_service_fraction].
double ModelCrossLaneServiceRate(double pooled_rate, double lambda_q,
                                 std::span<const double> lane_shares,
                                 std::span<const double> lane_weights,
                                 std::size_t iterations = 24,
                                 double min_service_fraction = 0.05);

}  // namespace qnet

#endif  // QNET_INFER_MEANFIELD_H_
