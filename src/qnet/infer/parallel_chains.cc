#include "qnet/infer/parallel_chains.h"

#include <algorithm>
#include <thread>

#include "qnet/infer/diagnostics.h"
#include "qnet/infer/thread_pool.h"
#include "qnet/support/check.h"
#include "qnet/support/stopwatch.h"

namespace qnet {
namespace {

std::size_t ResolveThreads(std::size_t requested, std::size_t chains) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  return std::max<std::size_t>(1, std::min(requested, chains));
}

// Derives one independent stream seed per chain from the master seed, in chain order —
// the c-th chain's stream is a pure function of (seed, c).
std::vector<std::uint64_t> DeriveChainSeeds(std::uint64_t seed, std::size_t chains) {
  Rng master(seed);
  std::vector<std::uint64_t> seeds(chains);
  for (std::uint64_t& s : seeds) {
    s = master.NextU64();
  }
  return seeds;
}

}  // namespace

ParallelChainsResult RunParallelChains(const EventLog& truth, const Observation& obs,
                                       const std::vector<double>& rates, std::uint64_t seed,
                                       const ParallelChainsOptions& options) {
  QNET_CHECK(options.chains >= 1, "need at least one chain");
  QNET_CHECK(options.sweeps > options.burn_in, "sweeps must exceed burn-in; sweeps=",
             options.sweeps, " burn_in=", options.burn_in);
  // R-hat over >= 2 chains needs at least 2 post-burn-in draws per chain; fail here
  // instead of after all the sampling work is done.
  QNET_CHECK(options.chains < 2 || options.sweeps - options.burn_in >= 2,
             "R-hat needs >= 2 post-burn-in sweeps per chain; sweeps=", options.sweeps,
             " burn_in=", options.burn_in);
  const Stopwatch total;
  const int num_queues = truth.NumQueues();
  const std::size_t threads = ResolveThreads(options.threads, options.chains);
  const std::vector<std::uint64_t> chain_seeds = DeriveChainSeeds(seed, options.chains);

  ParallelChainsResult result(num_queues, options.tail_quantile);
  result.per_chain.assign(options.chains, PosteriorSummary(num_queues, options.tail_quantile));
  result.chain_stats.assign(options.chains, ChainStats{});

  RunOnThreadPool(options.chains, threads, [&](std::size_t c) {
    const Stopwatch chain_total;
    Rng chain_rng(chain_seeds[c]);
    // Independent random initializations diversify the chain starts (required for R-hat to
    // be an honest convergence check).
    GibbsSampler sampler(InitializeFeasible(truth, obs, rates, chain_rng, options.init), obs,
                         rates, options.gibbs);
    if (options.sharded_sweeps) {
      sampler.EnableShardedSweeps(options.sharded);
    }
    PosteriorSummary& summary = result.per_chain[c];
    for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
      sampler.Sweep(chain_rng);
      if (sweep >= options.burn_in) {
        summary.Accumulate(sampler.State());
      }
    }
    ChainStats& stats = result.chain_stats[c];
    stats.seed = chain_seeds[c];
    stats.draws = summary.NumSamples();
    stats.seconds = chain_total.ElapsedSeconds();
  });

  // Pool in chain-index order on the calling thread: bit-identical for any thread count.
  for (const PosteriorSummary& summary : result.per_chain) {
    result.pooled.Merge(summary);
    result.total_draws += summary.NumSamples();
  }

  // R-hat needs >= 2 chains; a single chain reports the neutral value 1 everywhere.
  result.r_hat_service.assign(static_cast<std::size_t>(num_queues), 1.0);
  result.max_r_hat = 1.0;
  if (options.chains >= 2) {
    result.max_r_hat = 0.0;
    for (int q = 1; q < num_queues; ++q) {
      std::vector<std::vector<double>> series;
      series.reserve(options.chains);
      for (const PosteriorSummary& summary : result.per_chain) {
        series.push_back(summary.ServiceSeries(q));
      }
      const double r_hat = GelmanRubin(series);
      result.r_hat_service[static_cast<std::size_t>(q)] = r_hat;
      result.max_r_hat = std::max(result.max_r_hat, r_hat);
    }
  }
  result.wall_seconds = total.ElapsedSeconds();
  return result;
}

ParallelStemResult RunParallelStem(const EventLog& truth, const Observation& obs,
                                   const std::vector<double>& init_rates, std::uint64_t seed,
                                   const StemOptions& stem_options, std::size_t chains,
                                   std::size_t threads) {
  QNET_CHECK(chains >= 1, "need at least one chain");
  // Mirrors the RunParallelChains precondition: the cross-chain R-hat needs length >= 2
  // post-burn-in rate traces (StemEstimator itself only enforces iterations > burn_in).
  QNET_CHECK(chains < 2 || stem_options.iterations - stem_options.burn_in >= 2,
             "R-hat needs >= 2 post-burn-in StEM iterations per chain; iterations=",
             stem_options.iterations, " burn_in=", stem_options.burn_in);
  const Stopwatch total;
  const std::size_t num_queues = static_cast<std::size_t>(truth.NumQueues());
  const std::vector<std::uint64_t> chain_seeds = DeriveChainSeeds(seed, chains);

  ParallelStemResult result;
  result.per_chain.assign(chains, StemResult{});

  RunOnThreadPool(chains, ResolveThreads(threads, chains), [&](std::size_t c) {
    Rng chain_rng(chain_seeds[c]);
    result.per_chain[c] =
        StemEstimator(stem_options).Run(truth, obs, init_rates, chain_rng);
  });

  result.pooled_rates.assign(num_queues, 0.0);
  for (const StemResult& chain : result.per_chain) {
    for (std::size_t q = 0; q < num_queues; ++q) {
      result.pooled_rates[q] += chain.rates[q] / static_cast<double>(chains);
    }
  }
  result.pooled_mean_service.assign(num_queues, 0.0);
  for (std::size_t q = 0; q < num_queues; ++q) {
    result.pooled_mean_service[q] = 1.0 / result.pooled_rates[q];
  }

  result.r_hat_rates.assign(num_queues, 1.0);
  result.max_r_hat = 1.0;
  if (chains >= 2) {
    result.max_r_hat = 0.0;
    for (std::size_t q = 0; q < num_queues; ++q) {
      std::vector<std::vector<double>> series;
      series.reserve(chains);
      for (const StemResult& chain : result.per_chain) {
        std::vector<double> trace;
        trace.reserve(chain.rate_trace.size() - stem_options.burn_in);
        for (std::size_t iter = stem_options.burn_in; iter < chain.rate_trace.size(); ++iter) {
          trace.push_back(chain.rate_trace[iter][q]);
        }
        series.push_back(std::move(trace));
      }
      const double r_hat = GelmanRubin(series);
      result.r_hat_rates[q] = r_hat;
      result.max_r_hat = std::max(result.max_r_hat, r_hat);
    }
  }
  result.wall_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace qnet
