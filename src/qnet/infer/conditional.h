// Event-local Gibbs conditionals (paper Section 3, Figures 2 and 3).
//
// Arrival move. Resampling the arrival time a_e of a non-initial event e is equivalent to
// resampling the departure d_pi(e) of its within-task predecessor, because a_e = d_pi(e).
// Holding every other time and the per-queue arrival order fixed, changing a := a_e changes
// exactly three derived service times (Figure 2):
//     s_e        = d_e - max(a, d_rho(e))                     [rate mu_e]
//     s_pi       = a - max(a_pi, d_rho(pi))  =: a - c_pi      [rate mu_pi]
//     s_nu(pi)   = d_nu(pi) - max(a_nu(pi), a)                [rate mu_pi]
// where nu(pi) is the next arrival at pi's queue. The conditional density is
//     g(a) = exp{-mu_e s_e(a) - mu_pi s_pi(a) - mu_pi s_nu(pi)(a)}   on (L, U),
//     L = max{c_pi, a_rho(e)},      U = min{d_e, a_nu(e), d_nu(pi)},
// a piecewise-exponential density whose breakpoints are t1 = d_rho(e) and t2 = a_nu(pi)
// (the paper's A = min(t1, t2), B = max(t1, t2)).
//
// Special cases handled here that the paper's Figure 3 formulas assume away:
//  * missing neighbors (first/last event in a queue, last arrival at pi's queue),
//  * rho(e) == pi(e): the task re-enters the queue it just left, so s_e = d_e - a and the
//    "third" service time *is* s_e (the terms merge; the conditional is flat in between),
//  * pi(e) is the task's initial event, in which case mu_pi is the arrival rate lambda and
//    c_pi is the previous task's entry time (this is how entry times get resampled).
//
// Final-departure move. The departure of a task's last event is nobody's arrival, so the
// arrival move never updates it. Holding everything else fixed, changing d := d_e changes
//     s_e     = d - max(a_e, d_rho(e))  =: d - c_e            [rate mu_e]
//     s_nu(e) = d_nu(e) - max(a_nu(e), d)                     [rate mu_e]
// giving a two-piece conditional on (c_e, d_nu(e)) with breakpoint a_nu(e) (unbounded above
// when e is the last arrival at its queue).

#ifndef QNET_INFER_CONDITIONAL_H_
#define QNET_INFER_CONDITIONAL_H_

#include <span>

#include "qnet/infer/piecewise_exp.h"
#include "qnet/model/event.h"
#include "qnet/support/rng.h"

namespace qnet {

struct ArrivalMove {
  EventId event = kNoEvent;

  double d_e = 0.0;    // departure of e (fixed)
  double mu_e = 0.0;   // service rate at e's queue
  double mu_pi = 0.0;  // service rate at pi's queue (lambda when pi is initial)
  double c_pi = 0.0;   // service start of pi: max(a_pi, d_rho(pi))

  bool has_t1 = false;  // rho(e) exists and differs from pi(e)
  double t1 = 0.0;      // d_rho(e)

  bool has_nu_pi = false;  // nu(pi) exists and differs from e
  double t2 = 0.0;         // a_nu(pi)
  double d_nu_pi = 0.0;    // d_nu(pi)

  bool rho_is_pi = false;  // consecutive same-queue visits: rho(e) == pi(e)

  double lower = 0.0;  // L
  double upper = 0.0;  // U

  // Exact unnormalized log conditional at a (the sum of the three service-time terms).
  double LogG(double a) const;
};

// Gathers the fixed neighborhood values for resampling a_e. `rates` holds mu_q for every
// queue (index 0 = lambda). CHECK-fails if e is an initial event.
ArrivalMove GatherArrivalMove(const EventLog& log, EventId e, std::span<const double> rates);

// Geometry-only variant with all rates set to 1 (LogG is then not meaningful); used by the
// general-service sampler, which evaluates its own densities on the same geometry.
// Allocation-free: forwards an empty rate span instead of building a ones vector.
ArrivalMove GatherArrivalGeometry(const EventLog& log, EventId e);

// Builds the normalized piecewise-exponential conditional. Requires lower < upper. The
// returned density lives entirely on the stack (inline segment storage); the whole
// gather→build→sample path performs zero heap allocations.
PiecewiseExpDensity BuildArrivalDensity(const ArrivalMove& move);

// Samples a_e | everything else. Degenerate windows (upper - lower below tolerance) return
// the midpoint. This is the production path.
double SampleArrival(const ArrivalMove& move, Rng& rng);

// Literal transcription of the paper's Figure 3 closed form (cases Z1/Z2/Z3 with the
// inverse-CDF expressions (3) and the A2 cases (4)). Requires the fully-populated
// neighborhood the paper assumes (has_t1 && has_nu_pi && !rho_is_pi). Used by property
// tests to pin the generic sampler to the published algorithm; note the published formulas
// exponentiate mu*t directly and therefore overflow for large times — production code uses
// SampleArrival.
double SampleArrivalClosedForm(const ArrivalMove& move, Rng& rng);

struct FinalDepartureMove {
  EventId event = kNoEvent;
  double mu_e = 0.0;
  double c_e = 0.0;  // service start of e: max(a_e, d_rho(e))

  bool has_nu = false;  // nu(e) exists
  double t_nu = 0.0;    // a_nu(e)
  double d_nu = 0.0;    // d_nu(e)

  double lower = 0.0;  // c_e
  double upper = 0.0;  // d_nu(e) or +infinity

  double LogG(double d) const;
};

// Gathers the neighborhood for resampling the final departure of a task's last event.
// CHECK-fails if e has a within-task successor (its departure is then an arrival and must be
// resampled with the arrival move).
FinalDepartureMove GatherFinalDepartureMove(const EventLog& log, EventId e,
                                            std::span<const double> rates);

// Geometry-only variant (rates set to 1), mirroring GatherArrivalGeometry.
FinalDepartureMove GatherFinalDepartureGeometry(const EventLog& log, EventId e);

PiecewiseExpDensity BuildFinalDepartureDensity(const FinalDepartureMove& move);

double SampleFinalDeparture(const FinalDepartureMove& move, Rng& rng);

}  // namespace qnet

#endif  // QNET_INFER_CONDITIONAL_H_
