// Event-local Gibbs conditionals (paper Section 3, Figures 2 and 3).
//
// Arrival move. Resampling the arrival time a_e of a non-initial event e is equivalent to
// resampling the departure d_pi(e) of its within-task predecessor, because a_e = d_pi(e).
// Holding every other time and the per-queue arrival order fixed, changing a := a_e changes
// exactly three derived service times (Figure 2):
//     s_e        = d_e - max(a, d_rho(e))                     [rate mu_e]
//     s_pi       = a - max(a_pi, d_rho(pi))  =: a - c_pi      [rate mu_pi]
//     s_nu(pi)   = d_nu(pi) - max(a_nu(pi), a)                [rate mu_pi]
// where nu(pi) is the next arrival at pi's queue. The conditional density is
//     g(a) = exp{-mu_e s_e(a) - mu_pi s_pi(a) - mu_pi s_nu(pi)(a)}   on (L, U),
//     L = max{c_pi, a_rho(e)},      U = min{d_e, a_nu(e), d_nu(pi)},
// a piecewise-exponential density whose breakpoints are t1 = d_rho(e) and t2 = a_nu(pi)
// (the paper's A = min(t1, t2), B = max(t1, t2)).
//
// Special cases handled here that the paper's Figure 3 formulas assume away:
//  * missing neighbors (first/last event in a queue, last arrival at pi's queue),
//  * rho(e) == pi(e): the task re-enters the queue it just left, so s_e = d_e - a and the
//    "third" service time *is* s_e (the terms merge; the conditional is flat in between),
//  * pi(e) is the task's initial event, in which case mu_pi is the arrival rate lambda and
//    c_pi is the previous task's entry time (this is how entry times get resampled).
//
// Final-departure move. The departure of a task's last event is nobody's arrival, so the
// arrival move never updates it. Holding everything else fixed, changing d := d_e changes
//     s_e     = d - max(a_e, d_rho(e))  =: d - c_e            [rate mu_e]
//     s_nu(e) = d_nu(e) - max(a_nu(e), d)                     [rate mu_e]
// giving a two-piece conditional on (c_e, d_nu(e)) with breakpoint a_nu(e) (unbounded above
// when e is the last arrival at its queue).

#ifndef QNET_INFER_CONDITIONAL_H_
#define QNET_INFER_CONDITIONAL_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "qnet/infer/piecewise_exp.h"
#include "qnet/model/event.h"
#include "qnet/support/rng.h"

namespace qnet {

// Windows no wider than this are resampled as their midpoint without drawing a density
// (shared by the scalar samplers below and the batched kernel, which must agree on what
// "degenerate" means).
inline constexpr double kDegenerateWindow = 1e-12;

struct ArrivalMove {
  EventId event = kNoEvent;

  double d_e = 0.0;    // departure of e (fixed)
  double mu_e = 0.0;   // service rate at e's queue
  double mu_pi = 0.0;  // service rate at pi's queue (lambda when pi is initial)
  double c_pi = 0.0;   // service start of pi: max(a_pi, d_rho(pi))

  bool has_t1 = false;  // rho(e) exists and differs from pi(e)
  double t1 = 0.0;      // d_rho(e)

  bool has_nu_pi = false;  // nu(pi) exists and differs from e
  double t2 = 0.0;         // a_nu(pi)
  double d_nu_pi = 0.0;    // d_nu(pi)

  bool rho_is_pi = false;  // consecutive same-queue visits: rho(e) == pi(e)

  double lower = 0.0;  // L
  double upper = 0.0;  // U

  // Exact unnormalized log conditional at a (the sum of the three service-time terms).
  // Inline: the builders evaluate it once per segment on the hot path, and keeping it
  // header-visible folds it into their loops instead of paying a cross-TU call.
  double LogG(double a) const {
    // Service of e: d_e - max(a, t1); with rho missing or rho == pi the max resolves to a.
    double log_g = has_t1 ? -mu_e * (d_e - std::max(a, t1)) : -mu_e * (d_e - a);
    // Service of pi.
    log_g += -mu_pi * (a - c_pi);
    // Service of nu(pi), when it exists and is not e itself.
    if (has_nu_pi) {
      log_g += -mu_pi * (d_nu_pi - std::max(a, t2));
    }
    return log_g;
  }
};

// Gathers the fixed neighborhood values for resampling a_e. `rates` holds mu_q for every
// queue (index 0 = lambda). CHECK-fails if e is an initial event.
ArrivalMove GatherArrivalMove(const EventLog& log, EventId e, std::span<const double> rates);

namespace conditional_detail {

// Empty span = unit rates. Only the Gather*Geometry wrappers pass an empty span (so no
// ones vector is ever materialized); the rate-taking entry points validate size up front.
inline double RateAt(std::span<const double> rates, int queue) {
  return rates.empty() ? 1.0 : rates[static_cast<std::size_t>(queue)];
}

}  // namespace conditional_detail

// Inline gather core (rate-span size is the caller's responsibility — the batched kernel
// validates once per bucket and then runs a whole tile of these back to back, letting the
// compiler overlap the pointer chases of neighboring moves). GatherArrivalMove is this
// plus a per-call size check.
inline ArrivalMove GatherArrivalMoveUnchecked(const EventLog& log, EventId e,
                                              std::span<const double> rates) {
  using conditional_detail::RateAt;
  // Inner-loop contract: every access below is *Unchecked (bounds DCHECK-only); this is
  // called once per latent coordinate per sweep.
  const Event& ev = log.AtUnchecked(e);
  QNET_CHECK(!ev.initial, "cannot resample the arrival of an initial event");

  ArrivalMove move;
  move.event = e;
  move.d_e = ev.departure;
  move.mu_e = RateAt(rates, ev.queue);

  const Event& pi = log.AtUnchecked(ev.pi);
  move.mu_pi = RateAt(rates, pi.queue);
  move.c_pi = log.BeginServiceUnchecked(ev.pi);

  move.rho_is_pi = (ev.rho == ev.pi);
  if (ev.rho != kNoEvent && !move.rho_is_pi) {
    move.has_t1 = true;
    move.t1 = log.DepartureUnchecked(ev.rho);
  }

  // nu(pi): the next arrival at pi's queue. When it is e itself (consecutive same-queue
  // visits) its service time is s_e, already accounted for by the first term.
  if (pi.nu != kNoEvent && pi.nu != e) {
    move.has_nu_pi = true;
    move.t2 = log.ArrivalUnchecked(pi.nu);
    move.d_nu_pi = log.DepartureUnchecked(pi.nu);
  }

  // Bounds: L = max{c_pi, a_rho(e)}; U = min{d_e, a_nu(e), d_nu(pi)}.
  double lower = move.c_pi;
  if (ev.rho != kNoEvent) {
    lower = std::max(lower, log.ArrivalUnchecked(ev.rho));
  }
  double upper = move.d_e;
  if (ev.nu != kNoEvent) {
    upper = std::min(upper, log.ArrivalUnchecked(ev.nu));
  }
  if (move.has_nu_pi) {
    upper = std::min(upper, move.d_nu_pi);
  }
  move.lower = lower;
  move.upper = upper;
  return move;
}

// Geometry-only variant with all rates set to 1 (LogG is then not meaningful); used by the
// general-service sampler, which evaluates its own densities on the same geometry.
// Allocation-free: forwards an empty rate span instead of building a ones vector.
ArrivalMove GatherArrivalGeometry(const EventLog& log, EventId e);

// Emits the conditional's segments into any density sink with an
// AddSegment(lo, hi, alpha, beta) surface — PiecewiseExpDensity for the scalar path, an
// open PiecewiseExpBatch move slot for the batched kernel. One definition of the
// breakpoint/slope logic keeps the two paths identical by construction.
template <typename Density>
void BuildArrivalSegmentsInto(const ArrivalMove& move, Density& density) {
  QNET_CHECK(move.lower < move.upper, "empty conditional window: L=", move.lower,
             " U=", move.upper);
  // Breakpoints inside (L, U) where a max() changes branch: at most lower, t1, t2, upper.
  std::array<double, 4> cuts;
  std::size_t num_cuts = 0;
  cuts[num_cuts++] = move.lower;
  if (move.has_t1 && move.t1 > move.lower && move.t1 < move.upper) {
    cuts[num_cuts++] = move.t1;
  }
  if (move.has_nu_pi && move.t2 > move.lower && move.t2 < move.upper) {
    cuts[num_cuts++] = move.t2;
  }
  cuts[num_cuts++] = move.upper;
  // cuts[0] == lower and cuts[num_cuts-1] == upper already bracket the interior cuts
  // (t1/t2 are only added when strictly inside the window), so ordering needs at most
  // one swap — when both interior cuts are present and t2 < t1.
  if (num_cuts == 4 && cuts[2] < cuts[1]) {
    std::swap(cuts[1], cuts[2]);
  }

  for (std::size_t i = 0; i + 1 < num_cuts; ++i) {
    const double lo = cuts[i];
    const double hi = cuts[i + 1];
    if (!(lo < hi)) {
      continue;
    }
    const double mid = 0.5 * (lo + hi);
    // Slope of log g on this segment, from the indicator structure:
    //   +mu_e   once a > t1 (or always, when the first max resolves to a),
    //   -mu_pi  from s_pi,
    //   +mu_pi  once a > t2 (when nu(pi) exists).
    double beta = -move.mu_pi;
    if (!move.has_t1 || mid > move.t1) {
      beta += move.mu_e;
    }
    if (move.has_nu_pi && mid > move.t2) {
      beta += move.mu_pi;
    }
    const double alpha = move.LogG(mid) - beta * mid;
    density.AddSegment(lo, hi, alpha, beta);
  }
}

// Builds the normalized piecewise-exponential conditional. Requires lower < upper. The
// returned density lives entirely on the stack (inline segment storage); the whole
// gather→build→sample path performs zero heap allocations.
PiecewiseExpDensity BuildArrivalDensity(const ArrivalMove& move);

// Samples a_e | everything else. Degenerate windows (upper - lower below tolerance) return
// the midpoint. This is the production path.
double SampleArrival(const ArrivalMove& move, Rng& rng);

// Literal transcription of the paper's Figure 3 closed form (cases Z1/Z2/Z3 with the
// inverse-CDF expressions (3) and the A2 cases (4)). Requires the fully-populated
// neighborhood the paper assumes (has_t1 && has_nu_pi && !rho_is_pi). Used by property
// tests to pin the generic sampler to the published algorithm; note the published formulas
// exponentiate mu*t directly and therefore overflow for large times — production code uses
// SampleArrival.
double SampleArrivalClosedForm(const ArrivalMove& move, Rng& rng);

struct FinalDepartureMove {
  EventId event = kNoEvent;
  double mu_e = 0.0;
  double c_e = 0.0;  // service start of e: max(a_e, d_rho(e))

  bool has_nu = false;  // nu(e) exists
  double t_nu = 0.0;    // a_nu(e)
  double d_nu = 0.0;    // d_nu(e)

  double lower = 0.0;  // c_e
  double upper = 0.0;  // d_nu(e) or +infinity

  double LogG(double d) const {
    double log_g = -mu_e * (d - c_e);
    if (has_nu) {
      log_g += -mu_e * (d_nu - std::max(t_nu, d));
    }
    return log_g;
  }
};

// Gathers the neighborhood for resampling the final departure of a task's last event.
// CHECK-fails if e has a within-task successor (its departure is then an arrival and must be
// resampled with the arrival move).
FinalDepartureMove GatherFinalDepartureMove(const EventLog& log, EventId e,
                                            std::span<const double> rates);

// Inline gather core for the final-departure move; see GatherArrivalMoveUnchecked.
inline FinalDepartureMove GatherFinalDepartureMoveUnchecked(const EventLog& log, EventId e,
                                                            std::span<const double> rates) {
  const Event& ev = log.AtUnchecked(e);
  QNET_CHECK(ev.tau == kNoEvent,
             "event has a within-task successor; use the arrival move on tau instead");
  FinalDepartureMove move;
  move.event = e;
  move.mu_e = conditional_detail::RateAt(rates, ev.queue);
  move.c_e = log.BeginServiceUnchecked(e);
  if (ev.nu != kNoEvent) {
    move.has_nu = true;
    move.t_nu = log.ArrivalUnchecked(ev.nu);
    move.d_nu = log.DepartureUnchecked(ev.nu);
    move.upper = move.d_nu;
  } else {
    move.upper = kPosInf;
  }
  move.lower = move.c_e;
  return move;
}

// Geometry-only variant (rates set to 1), mirroring GatherArrivalGeometry.
FinalDepartureMove GatherFinalDepartureGeometry(const EventLog& log, EventId e);

// Segment emission for the final-departure conditional; see BuildArrivalSegmentsInto.
template <typename Density>
void BuildFinalDepartureSegmentsInto(const FinalDepartureMove& move, Density& density) {
  QNET_CHECK(move.lower < move.upper, "empty conditional window");
  // Below t_nu the second service still starts at t_nu: slope -mu_e. Above, the two terms
  // cancel: slope 0 (the nu(e) service shrinks exactly as s_e grows).
  if (move.has_nu && move.t_nu > move.lower && move.t_nu < move.upper) {
    const double mid1 = 0.5 * (move.lower + move.t_nu);
    density.AddSegment(move.lower, move.t_nu, move.LogG(mid1) + move.mu_e * mid1, -move.mu_e);
    const double mid2 = 0.5 * (move.t_nu + move.upper);
    density.AddSegment(move.t_nu, move.upper, move.LogG(mid2), 0.0);
  } else {
    const double probe = std::isfinite(move.upper)
                             ? 0.5 * (move.lower + move.upper)
                             : move.lower + 1.0;
    double beta = -move.mu_e;
    if (move.has_nu && move.t_nu <= move.lower) {
      beta = 0.0;  // Entire window is above the breakpoint: flat.
    }
    QNET_CHECK(std::isfinite(move.upper) || beta < 0.0,
               "unbounded final-departure window needs decreasing density");
    density.AddSegment(move.lower, move.upper, move.LogG(probe) - beta * probe, beta);
  }
}

PiecewiseExpDensity BuildFinalDepartureDensity(const FinalDepartureMove& move);

double SampleFinalDeparture(const FinalDepartureMove& move, Rng& rng);

}  // namespace qnet

#endif  // QNET_INFER_CONDITIONAL_H_
