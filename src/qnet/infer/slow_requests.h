// Slow-request diagnosis — the paper's second motivating question (Section 1):
//
//   "During the execution of the 1% of requests that perform poorly, which system
//    components receive the most load? The bottleneck for slow requests could be very
//    different than the bottleneck for average requests."
//
// Given a (complete or posterior-imputed) event log, selects the slowest `1 - percentile`
// fraction of tasks by end-to-end response time and attributes where their time went —
// per-queue waiting vs service — next to the same attribution for all tasks. The posterior
// variant averages the attribution over Gibbs samples, which is how the question is
// answered when only a sparse trace was observed.

#ifndef QNET_INFER_SLOW_REQUESTS_H_
#define QNET_INFER_SLOW_REQUESTS_H_

#include <cstddef>
#include <vector>

#include "qnet/infer/gibbs.h"
#include "qnet/model/event.h"
#include "qnet/support/rng.h"

namespace qnet {

struct SlowRequestReport {
  // Tasks with response time above this were classified slow.
  double threshold = 0.0;
  std::size_t num_slow = 0;
  std::size_t num_tasks = 0;
  // Per-queue mean time a *slow* task spent waiting / in service at that queue.
  std::vector<double> slow_wait;
  std::vector<double> slow_service;
  // Same attribution over *all* tasks, for contrast.
  std::vector<double> all_wait;
  std::vector<double> all_service;

  // Queue with the largest slow-task waiting time (the "slow-request bottleneck").
  int SlowBottleneckQueue() const;
  // Queue whose slow-vs-all waiting ratio is largest (where slow requests differ most).
  int MostDisproportionateQueue() const;
};

// Attribution on a single event log (percentile in (0, 1), e.g. 0.99 selects the slowest
// 1% of tasks; logs with fewer than ~1/(1-percentile) tasks keep at least one slow task).
SlowRequestReport AnalyzeSlowRequests(const EventLog& log, double percentile = 0.99);

// Posterior-averaged attribution: runs `sweeps` Gibbs sweeps and averages the per-queue
// attributions across the imputed logs.
SlowRequestReport AnalyzeSlowRequestsPosterior(GibbsSampler& sampler, Rng& rng,
                                               std::size_t sweeps = 50,
                                               double percentile = 0.99);

}  // namespace qnet

#endif  // QNET_INFER_SLOW_REQUESTS_H_
