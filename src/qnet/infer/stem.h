// Stochastic EM (paper Section 4).
//
// StEM alternates (i) an E-step that replaces the unobserved times with ONE Gibbs sweep from
// p(E_latent | E_observed, theta) and (ii) an M-step that sets theta = (lambda, {mu_q}) to
// the complete-data maximum-likelihood estimate mu_q = n_q / sum_{e at q} s_e. The returned
// point estimate averages the post-burn-in iterates (the standard StEM estimator); the
// per-queue waiting times are then estimated by running the Gibbs sampler with the final
// rates held fixed, as the paper prescribes.

#ifndef QNET_INFER_STEM_H_
#define QNET_INFER_STEM_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/support/rng.h"

namespace qnet {

struct StemOptions {
  std::size_t iterations = 200;
  std::size_t burn_in = 50;
  // Gibbs sweeps per E-step (the paper uses exactly 1).
  std::size_t sweeps_per_iteration = 1;
  // Extra fixed-rate Gibbs sweeps used to estimate waiting times after the rate estimate is
  // frozen; 0 disables the waiting-time phase.
  std::size_t wait_sweeps = 50;
  // Keep lambda fixed at its initial value instead of re-estimating it.
  bool estimate_arrival_rate = true;
  // Floor applied to per-queue service-time sums in the M-step (guards divide-by-zero when
  // a queue's imputed services collapse to ~0 early on).
  double service_sum_floor = 1e-9;
  // Time origin of the arrival process for the M-step's lambda estimate. Queue-0
  // "services" are the interarrival gaps with the FIRST gap measured from absolute time
  // 0, so their sum telescopes to the (imputed) last entry time and the lambda iterate on
  // a window [t0, t1) far into a stream comes out as ~n/t1 — decaying with stream age
  // rather than tracking the window's load (the PR-4 forecaster wart). Setting this to
  // the window's t0 measures that first gap from t0 instead, making the iterate the
  // window-local MLE n/(last entry - t0). The default 0.0 preserves the historical
  // absolute-time estimate bit-exactly; StreamingEstimatorOptions::window_local_arrival_rate
  // plumbs the per-window t0 in for streaming fits.
  double arrival_time_origin = 0.0;
  // Deterministic early stop on the StEM point estimate (the post-burn-in running mean
  // of the rate iterates). After each post-burn-in iteration the running mean is
  // compared against its previous value; once the max relative change across queues
  // stays <= convergence_tol for convergence_patience consecutive iterations, the loop
  // stops and StemResult::iterations_run records how many iterations actually ran. The
  // rule is a pure function of the rate trace — an early-stopped run's rate_trace is
  // bit-for-bit a prefix of the full run's, and its estimate is the average of that
  // prefix. 0 disables (the default), preserving the fixed-iteration behavior exactly.
  // Warm starts near the fixed point (e.g. mean-field seeds; see infer/meanfield.h)
  // make this the streaming fast path's headline win.
  double convergence_tol = 0.0;
  std::size_t convergence_patience = 3;
  GibbsOptions gibbs;
  InitializerOptions init;
  // Run the E-step (and waiting-time) sweeps through the colored sharded scheduler
  // instead of the sequential scan. Same contract as GibbsSampler::EnableShardedSweeps;
  // online/windowed estimation inherits this through OnlineStemOptions::stem.
  bool sharded_sweeps = false;
  ShardedSweepOptions sharded;
  // Caller-owned scheduler this run's sampler is rebuilt onto (see
  // GibbsSampler::UseScheduler), overriding sharded_sweeps/sharded. The streaming
  // estimators keep one per lane so every window reuses its buffers and worker pool
  // instead of constructing a scheduler per fit. Non-owning; runs sharing a cache must
  // not execute concurrently.
  ShardedSweepScheduler* scheduler_cache = nullptr;
};

struct StemResult {
  // Post-burn-in averaged rate estimates; index 0 is lambda-hat.
  std::vector<double> rates;
  // Convenience: 1 / rates (estimated mean service times; index 0 = mean interarrival).
  std::vector<double> mean_service;
  // Posterior-mean per-queue waiting time under the final rates (empty if wait_sweeps == 0).
  std::vector<double> mean_wait;
  // Rate trajectory, one vector per StEM iteration (for diagnostics).
  std::vector<std::vector<double>> rate_trace;
  // Final latent state (the last Gibbs sample).
  std::optional<EventLog> final_state;

  std::size_t latent_arrivals = 0;
  // StEM iterations actually executed (== rate_trace.size()); less than
  // StemOptions::iterations when the convergence_tol early stop fired.
  std::size_t iterations_run = 0;
};

class StemEstimator {
 public:
  explicit StemEstimator(StemOptions options = {}) : options_(options) {}

  // `truth` provides structure + observed times (unobserved times are never read); `obs`
  // marks what is observed; `init_rates` seeds theta (index 0 = lambda). Passing an empty
  // vector uses WarmStartRates(truth, obs) — recommended: from a cold start the EM fixed
  // point contracts at roughly (1 - observed fraction) per iteration, so sparse traces
  // converge very slowly without a scale-correct start.
  StemResult Run(const EventLog& truth, const Observation& obs,
                 std::vector<double> init_rates, Rng& rng) const;

  // Complete-data MLE of all rates from an event log: mu_q = n_q / sum s_e. The arrival
  // rate (queue 0) measures its service sum from `arrival_time_origin` (see StemOptions).
  static std::vector<double> MStep(const EventLog& log, double service_sum_floor = 1e-9,
                                   double arrival_time_origin = 0.0);

  // The same MLE arithmetic from externally-gathered sufficient statistics, written into
  // `rates` (all spans one slot per queue). Feeding it the fused-tracking sums of
  // GibbsSampler::PerQueueServiceSumsInto plus the (link-constant) PerQueueCount
  // reproduces MStep(log) bit for bit without re-scanning the event structs — the Run
  // loop's per-iteration path.
  static void MStepFromSums(std::span<const double> sums,
                            std::span<const std::size_t> counts, std::span<double> rates,
                            double service_sum_floor = 1e-9,
                            double arrival_time_origin = 0.0);

 private:
  StemOptions options_;
};

}  // namespace qnet

#endif  // QNET_INFER_STEM_H_
