#include "qnet/infer/general_gibbs.h"

#include "qnet/support/check.h"

namespace qnet {

GeneralGibbsSampler::GeneralGibbsSampler(EventLog state, const Observation& obs,
                                         const QueueingNetwork& net,
                                         GeneralGibbsOptions options)
    : state_(std::move(state)), net_(net.Clone()), options_(options) {
  obs.Validate(state_);
  std::string why;
  QNET_CHECK(state_.IsFeasible(1e-6, &why), "initial state infeasible: ", why);
  CollectLatentMoves(state_, obs, arrival_moves_, final_moves_);
}

void GeneralGibbsSampler::SetService(int queue, std::unique_ptr<ServiceDistribution> service) {
  net_.SetService(queue, std::move(service));
}

void GeneralGibbsSampler::Sweep(Rng& rng) {
  const GeneralMoveKernel kernel(net_, options_.slice);
  if (scheduler_ != nullptr) {
    scheduler_->Run(
        [&](const SweepMove& move, Rng& move_rng) { kernel.Apply(state_, move, move_rng); },
        rng.NextU64());
    return;
  }
  RunSweep(state_, arrival_moves_, kernel, rng);
  if (options_.resample_final_departures) {
    RunSweep(state_, final_moves_, kernel, rng);
  }
}

void GeneralGibbsSampler::EnableShardedSweeps(const ShardedSweepOptions& options) {
  const std::vector<SweepMove> moves = SweepMoves();
  scheduler_ = std::make_unique<ShardedSweepScheduler>(state_, moves, options);
}

std::vector<SweepMove> GeneralGibbsSampler::SweepMoves() const {
  return ConcatSweepMoves(arrival_moves_, final_moves_, options_.resample_final_departures);
}

}  // namespace qnet
