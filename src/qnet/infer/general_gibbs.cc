#include "qnet/infer/general_gibbs.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

constexpr double kDegenerateWindow = 1e-12;

// When the current point has zero density (e.g. a boundary-clipped initial state under a
// distribution whose pdf vanishes at 0, like a log-normal), probe the window for a usable
// slice start.
double FindSliceStart(FunctionRef<double(double)> log_density, double x0, double lo,
                      double hi, Rng& rng) {
  if (log_density(x0) > kNegInf) {
    return x0;
  }
  double best = x0;
  double best_value = kNegInf;
  for (int i = 0; i < 32; ++i) {
    const double x = lo + (hi - lo) * rng.Uniform();
    const double value = log_density(x);
    if (value > best_value) {
      best_value = value;
      best = x;
    }
  }
  return best_value > kNegInf ? best : x0;
}

}  // namespace

GeneralGibbsSampler::GeneralGibbsSampler(EventLog state, const Observation& obs,
                                         const QueueingNetwork& net,
                                         GeneralGibbsOptions options)
    : state_(std::move(state)), net_(net.Clone()), options_(options) {
  obs.Validate(state_);
  std::string why;
  QNET_CHECK(state_.IsFeasible(1e-6, &why), "initial state infeasible: ", why);
  for (EventId e = 0; static_cast<std::size_t>(e) < state_.NumEvents(); ++e) {
    const Event& ev = state_.At(e);
    if (!ev.initial && !obs.ArrivalObserved(e)) {
      latent_arrivals_.push_back(e);
    }
    if (ev.tau == kNoEvent && !obs.DepartureObserved(e)) {
      latent_final_departures_.push_back(e);
    }
  }
}

void GeneralGibbsSampler::SetService(int queue, std::unique_ptr<ServiceDistribution> service) {
  net_.SetService(queue, std::move(service));
}

void GeneralGibbsSampler::Sweep(Rng& rng) {
  for (EventId e : latent_arrivals_) {
    ResampleArrival(e, rng);
  }
  if (options_.resample_final_departures) {
    for (EventId e : latent_final_departures_) {
      ResampleFinalDeparture(e, rng);
    }
  }
}

void GeneralGibbsSampler::ResampleArrival(EventId e, Rng& rng) {
  const ArrivalMove geom = GatherArrivalGeometry(state_, e);
  if (!(geom.upper - geom.lower > kDegenerateWindow)) {
    return;
  }
  const Event& ev = state_.At(e);
  const ServiceDistribution& f_e = net_.Service(ev.queue);
  const int pi_queue = state_.At(ev.pi).queue;
  const ServiceDistribution& f_pi = net_.Service(pi_queue);

  const auto log_density = [&](double a) {
    const double s_e = geom.has_t1 ? geom.d_e - std::max(a, geom.t1) : geom.d_e - a;
    double total = f_e.LogPdf(s_e);
    total += f_pi.LogPdf(a - geom.c_pi);
    if (geom.has_nu_pi) {
      total += f_pi.LogPdf(geom.d_nu_pi - std::max(a, geom.t2));
    }
    return total;
  };

  const double x0 =
      FindSliceStart(log_density, state_.Arrival(e), geom.lower, geom.upper, rng);
  if (log_density(x0) == kNegInf) {
    return;  // Nothing in the window has positive density under the current parameters.
  }
  SliceOptions slice = options_.slice;
  slice.width = std::min(slice.width, 0.5 * (geom.upper - geom.lower));
  const double a = SliceSample(log_density, x0, geom.lower, geom.upper, rng, slice);
  state_.SetArrival(e, a);
  state_.SetDeparture(ev.pi, a);
}

void GeneralGibbsSampler::ResampleFinalDeparture(EventId e, Rng& rng) {
  const FinalDepartureMove geom = GatherFinalDepartureGeometry(state_, e);
  const ServiceDistribution& f_e = net_.Service(state_.At(e).queue);
  const auto log_density = [&](double d) {
    double total = f_e.LogPdf(d - geom.c_e);
    if (geom.has_nu) {
      total += f_e.LogPdf(geom.d_nu - std::max(geom.t_nu, d));
    }
    return total;
  };
  const double hi =
      std::isfinite(geom.upper) ? geom.upper : geom.c_e + 64.0 * f_e.Mean() + 1.0;
  if (!(hi - geom.lower > kDegenerateWindow)) {
    return;
  }
  const double x0 = FindSliceStart(log_density, state_.Departure(e), geom.lower, hi, rng);
  if (log_density(x0) == kNegInf) {
    return;
  }
  SliceOptions slice = options_.slice;
  slice.width = std::min(slice.width, 0.5 * (hi - geom.lower));
  state_.SetDeparture(e, SliceSample(log_density, x0, geom.lower, hi, rng, slice));
}

}  // namespace qnet
