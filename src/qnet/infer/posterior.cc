#include "qnet/infer/posterior.h"

#include "qnet/infer/diagnostics.h"
#include "qnet/infer/initializer.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {

PosteriorSummary::PosteriorSummary(int num_queues, double tail_quantile)
    : tail_quantile_(tail_quantile) {
  QNET_CHECK(num_queues >= 2, "bad queue count");
  QNET_CHECK(tail_quantile > 0.0 && tail_quantile < 1.0, "bad tail quantile");
  service_series_.resize(static_cast<std::size_t>(num_queues));
  wait_series_.resize(static_cast<std::size_t>(num_queues));
  tail_series_.resize(static_cast<std::size_t>(num_queues));
}

void PosteriorSummary::Accumulate(const EventLog& state) {
  QNET_CHECK(static_cast<std::size_t>(state.NumQueues()) == service_series_.size(),
             "queue count mismatch");
  const auto services = state.PerQueueMeanService();
  const auto waits = state.PerQueueMeanWait();
  const auto tails = state.PerQueueResponseQuantile(tail_quantile_);
  for (std::size_t q = 0; q < service_series_.size(); ++q) {
    service_series_[q].push_back(services[q]);
    wait_series_[q].push_back(waits[q]);
    tail_series_[q].push_back(tails[q]);
  }
  ++num_samples_;
}

void PosteriorSummary::Merge(const PosteriorSummary& other) {
  QNET_CHECK(other.service_series_.size() == service_series_.size(), "queue count mismatch");
  QNET_CHECK(other.tail_quantile_ == tail_quantile_, "tail quantile mismatch");
  for (std::size_t q = 0; q < service_series_.size(); ++q) {
    service_series_[q].insert(service_series_[q].end(), other.service_series_[q].begin(),
                              other.service_series_[q].end());
    wait_series_[q].insert(wait_series_[q].end(), other.wait_series_[q].begin(),
                           other.wait_series_[q].end());
    tail_series_[q].insert(tail_series_[q].end(), other.tail_series_[q].begin(),
                           other.tail_series_[q].end());
  }
  num_samples_ += other.num_samples_;
}

std::vector<double> PosteriorSummary::MeanService() const {
  std::vector<double> means(service_series_.size(), 0.0);
  for (std::size_t q = 0; q < service_series_.size(); ++q) {
    means[q] = Mean(service_series_[q]);
  }
  return means;
}

std::vector<double> PosteriorSummary::MeanWait() const {
  std::vector<double> means(wait_series_.size(), 0.0);
  for (std::size_t q = 0; q < wait_series_.size(); ++q) {
    means[q] = Mean(wait_series_[q]);
  }
  return means;
}

std::vector<double> PosteriorSummary::MeanTailResponse() const {
  std::vector<double> means(tail_series_.size(), 0.0);
  for (std::size_t q = 0; q < tail_series_.size(); ++q) {
    means[q] = Mean(tail_series_[q]);
  }
  return means;
}

std::vector<double> PosteriorSummary::ServiceQuantile(double q) const {
  std::vector<double> out(service_series_.size(), 0.0);
  for (std::size_t i = 0; i < service_series_.size(); ++i) {
    out[i] = Quantile(service_series_[i], q);
  }
  return out;
}

std::vector<double> PosteriorSummary::WaitQuantile(double q) const {
  std::vector<double> out(wait_series_.size(), 0.0);
  for (std::size_t i = 0; i < wait_series_.size(); ++i) {
    out[i] = Quantile(wait_series_[i], q);
  }
  return out;
}

std::vector<double> PosteriorSummary::RateDraw(std::size_t draw) const {
  QNET_CHECK(draw < num_samples_, "draw index ", draw, " out of range (", num_samples_,
             " accumulated sweeps)");
  std::vector<double> rates(service_series_.size(), 0.0);
  for (std::size_t q = 0; q < service_series_.size(); ++q) {
    const double mean_service = service_series_[q][draw];
    QNET_CHECK(mean_service > 0.0, "nonpositive mean service in draw ", draw, " queue ", q);
    rates[q] = 1.0 / mean_service;
  }
  return rates;
}

const std::vector<double>& PosteriorSummary::ServiceSeries(int queue) const {
  QNET_CHECK(queue >= 0 && static_cast<std::size_t>(queue) < service_series_.size(),
             "bad queue id");
  return service_series_[static_cast<std::size_t>(queue)];
}

const std::vector<double>& PosteriorSummary::WaitSeries(int queue) const {
  QNET_CHECK(queue >= 0 && static_cast<std::size_t>(queue) < wait_series_.size(),
             "bad queue id");
  return wait_series_[static_cast<std::size_t>(queue)];
}

MultiChainResult RunMultiChainGibbs(const EventLog& truth, const Observation& obs,
                                    const std::vector<double>& rates, Rng& rng,
                                    const MultiChainOptions& options) {
  QNET_CHECK(options.chains >= 2, "need at least two chains for R-hat");
  QNET_CHECK(options.sweeps > options.burn_in, "sweeps must exceed burn-in");
  const int num_queues = truth.NumQueues();
  MultiChainResult result(num_queues);

  std::vector<PosteriorSummary> chains;
  for (std::size_t c = 0; c < options.chains; ++c) {
    Rng chain_rng = rng.Fork();
    // Independent random initializations diversify the chain starts.
    GibbsSampler sampler(InitializeFeasible(truth, obs, rates, chain_rng), obs, rates,
                         options.gibbs);
    PosteriorSummary summary(num_queues);
    for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
      sampler.Sweep(chain_rng);
      if (sweep >= options.burn_in) {
        summary.Accumulate(sampler.State());
        result.pooled.Accumulate(sampler.State());
      }
    }
    chains.push_back(std::move(summary));
  }

  result.r_hat_service.assign(static_cast<std::size_t>(num_queues), 1.0);
  for (int q = 1; q < num_queues; ++q) {
    std::vector<std::vector<double>> series;
    for (const auto& chain : chains) {
      series.push_back(chain.ServiceSeries(q));
    }
    const double r_hat = GelmanRubin(series);
    result.r_hat_service[static_cast<std::size_t>(q)] = r_hat;
    result.max_r_hat = std::max(result.max_r_hat, r_hat);
  }
  return result;
}

}  // namespace qnet
