// Colored sharded sweep scheduler: intra-chain parallelism for one Gibbs chain.
//
// The single-site moves of a sweep touch only bounded footprints of the event graph
// (EventLog::ComputeMoveFootprint), so moves with disjoint footprints commute. The
// scheduler colors the sweep's conflict graph once per trace (model/conflict.h), then
// executes each sweep as: color classes in sequence, and within a class the moves split
// round-robin across S logical shards that run in parallel.
//
// Threading: workers are created once at construction and parked on a condition variable
// between sweeps (a sweep is ~100 microseconds of work — spawning threads per sweep would
// cost as much as the sweep itself). The caller participates as worker 0; a reusable
// std::barrier separates color classes. With threads == 1 there are no workers at all and
// Run is a plain sequential loop.
//
// Determinism contract (mirrors the PR-1 multi-chain contract):
//  * bucket (color c, shard s) of a sweep with seed w consumes its own xoshiro stream
//    seeded MixSeed(MixSeed(w, c), s) — a pure function of (w, c, s), never of timing;
//  * the move -> (color, shard) assignment is frozen at Rebuild (round-robin by rank
//    within the color class), so which stream samples which move never changes;
//  * threads only decide which CPU runs a bucket; results are bit-identical for every
//    thread count, including 1. After the pool is warm, Run performs zero heap
//    allocations for any thread count (the per-move hot-path contract of
//    tests/test_alloc_free.cc), and a same-shaped Rebuild reuses every buffer's capacity
//    (the streaming estimators re-schedule every window).
// Changing `shards` (or the move order) legitimately changes the stream layout and hence
// the sampled values; it does not change the stationary distribution.
//
// Execution granularity: Run applies one move at a time from the bucket's stream;
// RunBuckets hands each non-empty bucket (its move slice plus its stream seed) to the
// caller in one piece, which is what the batched SoA kernel needs to process a bucket in
// SIMD-width tiles. Both walk the identical schedule, so the choice of entry point never
// changes which moves share a bucket.

#ifndef QNET_INFER_SHARDED_SWEEP_H_
#define QNET_INFER_SHARDED_SWEEP_H_

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "qnet/model/conflict.h"
#include "qnet/model/event.h"
#include "qnet/support/function_ref.h"
#include "qnet/support/rng.h"

namespace qnet {

struct ShardedSweepOptions {
  // Logical shard count per color class. Part of the determinism contract: results depend
  // on `shards` but never on `threads`.
  std::size_t shards = 4;
  // Worker threads; 0 = hardware concurrency, always clamped to `shards`. Pure wall-clock
  // knob.
  std::size_t threads = 0;
};

class ShardedSweepScheduler {
 public:
  // Resolves shard/thread counts and launches the worker pool; the schedule is empty
  // until Rebuild. Constructing once and Rebuilding per trace is how long-lived callers
  // (streaming windows) amortize both the thread launch and the schedule buffers.
  explicit ShardedSweepScheduler(const ShardedSweepOptions& options = {});
  // Convenience: construct and build the schedule in one step.
  ShardedSweepScheduler(const EventLog& log, std::span<const SweepMove> moves,
                        const ShardedSweepOptions& options = {});
  ~ShardedSweepScheduler();

  ShardedSweepScheduler(const ShardedSweepScheduler&) = delete;
  ShardedSweepScheduler& operator=(const ShardedSweepScheduler&) = delete;

  // Colors `moves` against `log`'s link structure and freezes the (color, shard)
  // partition. The coloring reads links only — never times — so the schedule stays valid
  // while a sampler mutates times in place. Must not be called while a sweep is running.
  // Reuses all internal buffers; a same-shaped rebuild allocates nothing once warm.
  void Rebuild(const EventLog& log, std::span<const SweepMove> moves);

  // Executes one sweep, one move at a time. `apply` must be safe to call concurrently on
  // moves with disjoint footprints (MoveKernel::Apply is). `sweep_seed` must change every
  // sweep — the sweep drivers draw it from their chain stream (rng.NextU64()) so sweep
  // seeds form a deterministic sequence per chain.
  void Run(FunctionRef<void(const SweepMove&, Rng&)> apply, std::uint64_t sweep_seed);

  // Executes one sweep at bucket granularity: `run_bucket` receives each non-empty
  // bucket's move slice and its stream seed MixSeed(MixSeed(sweep_seed, color), shard),
  // and must consume that stream deterministically (the batched kernel's lane protocol).
  // Same schedule, same concurrency rules, and the same barrier structure as Run.
  void RunBuckets(FunctionRef<void(std::span<const SweepMove>, std::uint64_t)> run_bucket,
                  std::uint64_t sweep_seed);

  std::size_t NumMoves() const { return schedule_.size(); }
  std::size_t NumColors() const { return num_colors_; }
  std::size_t NumShards() const { return shards_; }
  std::size_t NumThreads() const { return threads_; }

  // Moves of bucket (color, shard) in execution order — diagnostics and tests.
  std::span<const SweepMove> Bucket(std::size_t color, std::size_t shard) const;

 private:
  void RunBucket(std::size_t color, std::size_t shard,
                 FunctionRef<void(std::span<const SweepMove>, std::uint64_t)> run_bucket,
                 std::uint64_t sweep_seed) const;
  // One sweep's worth of work for participant t: its shards of every color class, with
  // the class barrier after each. Exceptions are parked in errors_[t] and the thread
  // keeps arriving at the remaining barriers so the other participants never deadlock.
  void RunParticipant(std::size_t t);
  void WorkerLoop(std::size_t t);

  std::size_t shards_;
  std::size_t threads_;
  std::size_t num_colors_ = 0;
  std::vector<SweepMove> schedule_;          // moves grouped by (color, shard)
  std::vector<std::size_t> bucket_offsets_;  // num_colors_ * shards_ + 1 entries

  // Rebuild scratch, kept as members so per-trace rescheduling reuses capacity.
  ColoringScratch coloring_scratch_;
  MoveColoring coloring_;
  std::vector<std::size_t> rank_in_class_;
  std::vector<std::size_t> bucket_of_;
  std::vector<std::size_t> cursor_;

  // Persistent pool (threads_ > 1 only). RunBuckets publishes {run_bucket_, sweep_seed_}
  // and bumps generation_ under mu_; parked workers wake, run RunParticipant, and park
  // again. The caller runs RunParticipant(0) itself, then blocks on done_cv_ until every
  // worker has checked back in. The explicit check-in (rather than the final class
  // barrier) is load-bearing: a schedule can have zero color classes, and Rebuild may
  // change the class count between sweeps, so the caller must not return — and the next
  // Rebuild/RunBuckets must not start — while a late-waking worker could still read this
  // generation's {run_bucket_, num_colors_}.
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t inflight_workers_ = 0;
  bool stop_ = false;
  const FunctionRef<void(std::span<const SweepMove>, std::uint64_t)>* run_bucket_ = nullptr;
  std::uint64_t sweep_seed_ = 0;
  std::optional<std::barrier<>> class_barrier_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> workers_;
};

}  // namespace qnet

#endif  // QNET_INFER_SHARDED_SWEEP_H_
