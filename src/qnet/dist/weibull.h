// Weibull service distribution in shape/scale parameterization. Shape < 1 is heavy-tailed
// (stretched exponential), shape 1 is exponential with rate 1/scale, shape > 1 approaches
// normal-like service.

#ifndef QNET_DIST_WEIBULL_H_
#define QNET_DIST_WEIBULL_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class Weibull : public ServiceDistribution {
 public:
  Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
    QNET_CHECK(shape > 0.0 && scale > 0.0, "Weibull parameters must be positive; shape=",
               shape, " scale=", scale);
  }

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  double Sample(Rng& rng) const override {
    // Inverse CDF: scale * (-log(1 - u))^{1/shape}.
    return scale_ * std::pow(-std::log1p(-rng.Uniform()), 1.0 / shape_);
  }

  double LogPdf(double x) const override {
    if (x < 0.0 || (x == 0.0 && shape_ < 1.0)) {
      return kNegInf;
    }
    if (x == 0.0) {
      return shape_ == 1.0 ? -std::log(scale_) : kNegInf;
    }
    const double z = x / scale_;
    return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) - std::pow(z, shape_);
  }

  double Cdf(double x) const override {
    if (x <= 0.0) {
      return 0.0;
    }
    return -std::expm1(-std::pow(x / scale_, shape_));
  }

  double Mean() const override { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

  double Variance() const override {
    const double g1 = std::tgamma(1.0 + 1.0 / shape_);
    const double g2 = std::tgamma(1.0 + 2.0 / shape_);
    return scale_ * scale_ * (g2 - g1 * g1);
  }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<Weibull>(shape_, scale_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
    return os.str();
  }

 private:
  double shape_;
  double scale_;
};

}  // namespace qnet

#endif  // QNET_DIST_WEIBULL_H_
