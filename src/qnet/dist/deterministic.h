// Deterministic (point-mass) service distribution — the M/D/1 reference case, whose waiting
// time is exactly half the M/M/1 value at the same utilization (Pollaczek-Khinchine with
// SCV = 0).

#ifndef QNET_DIST_DETERMINISTIC_H_
#define QNET_DIST_DETERMINISTIC_H_

#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class Deterministic : public ServiceDistribution {
 public:
  explicit Deterministic(double value) : value_(value) {
    QNET_CHECK(value > 0.0, "Deterministic service time must be positive: ", value);
  }

  double value() const { return value_; }

  double Sample(Rng&) const override { return value_; }

  // A point mass has no density; report a large finite log-"density" at the atom so that
  // likelihood comparisons strongly prefer exact matches, and -inf elsewhere.
  double LogPdf(double x) const override { return x == value_ ? 700.0 : kNegInf; }

  double Cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }

  double Mean() const override { return value_; }
  double Variance() const override { return 0.0; }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<Deterministic>(value_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "deterministic(value=" << value_ << ")";
    return os.str();
  }

 private:
  double value_;
};

}  // namespace qnet

#endif  // QNET_DIST_DETERMINISTIC_H_
