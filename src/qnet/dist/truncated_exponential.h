// Exponential distribution truncated to [lo, hi]: density proportional to exp(-rate * x)
// on the interval. `rate` may be zero (uniform) or negative (increasing density) when hi is
// finite; an unbounded interval requires rate > 0. This is the building block the Gibbs
// conditionals sample segment-wise.

#ifndef QNET_DIST_TRUNCATED_EXPONENTIAL_H_
#define QNET_DIST_TRUNCATED_EXPONENTIAL_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class TruncatedExponential : public ServiceDistribution {
 public:
  TruncatedExponential(double rate, double lo, double hi) : rate_(rate), lo_(lo), hi_(hi) {
    QNET_CHECK(lo < hi, "TruncatedExponential needs lo < hi; lo=", lo, " hi=", hi);
    QNET_CHECK(std::isfinite(hi) || rate > 0.0,
               "unbounded TruncatedExponential requires rate > 0");
    QNET_CHECK(std::isfinite(lo), "lo must be finite");
  }

  double rate() const { return rate_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  double Sample(Rng& rng) const override {
    // Density ∝ exp(beta x) with beta = -rate; SampleExpLinear handles hi = +inf.
    return SampleExpLinear(-rate_, lo_, hi_, rng.Uniform());
  }

  double LogPdf(double x) const override {
    if (x < lo_ || x > hi_) {
      return kNegInf;
    }
    const double b = -rate_;
    if (!std::isfinite(hi_)) {
      // Shifted exponential: rate * exp(-rate (x - lo)).
      return std::log(rate_) - rate_ * (x - lo_);
    }
    const double width = hi_ - lo_;
    // Normalizer anchored at lo: g = b / expm1(b * width) is positive for either sign of b.
    const double g = NearFlat() ? 1.0 / width : b / std::expm1(b * width);
    return std::log(g) + b * (x - lo_);
  }

  double Cdf(double x) const override {
    if (x <= lo_) {
      return 0.0;
    }
    if (x >= hi_) {
      return 1.0;
    }
    const double b = -rate_;
    if (!std::isfinite(hi_)) {
      return -std::expm1(b * (x - lo_));
    }
    if (NearFlat()) {
      return (x - lo_) / (hi_ - lo_);
    }
    return std::expm1(b * (x - lo_)) / std::expm1(b * (hi_ - lo_));
  }

  double Mean() const override {
    if (!std::isfinite(hi_)) {
      return lo_ + 1.0 / rate_;
    }
    const double width = hi_ - lo_;
    if (NearFlat()) {
      return 0.5 * (lo_ + hi_);
    }
    // Conditional mean of exp(b x) on [lo, hi] via expm1 (see PiecewiseExpDensity::Mean).
    const double b = -rate_;
    const double u = b * width;
    const double em = std::expm1(u);
    return lo_ + width * (em + 1.0) / em - 1.0 / b;
  }

  double Variance() const override {
    if (!std::isfinite(hi_)) {
      return 1.0 / (rate_ * rate_);
    }
    const double width = hi_ - lo_;
    if (NearFlat()) {
      return width * width / 12.0;
    }
    // Shift to y = x - lo with density ∝ exp(b y) on [0, w]: E[y^2] - E[y]^2 is shift
    // invariant, and both moments have stable expm1 forms.
    const double b = -rate_;
    const double u = b * width;
    const double em = std::expm1(u);
    const double ey = width * (em + 1.0) / em - 1.0 / b;
    const double ey2 =
        width * width * (em + 1.0) / em - 2.0 * (width * (em + 1.0) / em) / b + 2.0 / (b * b);
    return ey2 - ey * ey;
  }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<TruncatedExponential>(rate_, lo_, hi_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "truncated_exponential(rate=" << rate_ << ", lo=" << lo_ << ", hi=" << hi_ << ")";
    return os.str();
  }

 private:
  bool NearFlat() const { return std::abs(rate_ * (hi_ - lo_)) < 1e-10; }

  double rate_;
  double lo_;
  double hi_;
};

}  // namespace qnet

#endif  // QNET_DIST_TRUNCATED_EXPONENTIAL_H_
