#include "qnet/dist/gamma.h"

#include <cmath>

#include "qnet/support/check.h"

namespace qnet {
namespace {

// P(a, x) by the series gamma(a,x) = x^a e^-x sum_n x^n Gamma(a)/Gamma(a+1+n).
double LowerGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Q(a, x) by the Lentz modified continued fraction; P = 1 - Q.
double UpperGammaContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedLowerGamma(double a, double x) {
  QNET_CHECK(a > 0.0, "RegularizedLowerGamma requires a > 0; a=", a);
  QNET_CHECK(x >= 0.0, "RegularizedLowerGamma requires x >= 0; x=", x);
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return LowerGammaSeries(a, x);
  }
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

}  // namespace qnet
