// Hyperexponential service distribution: a finite mixture of exponentials. Its SCV always
// exceeds 1, which makes it the standard model for bursty service in M/G/1 comparisons.

#ifndef QNET_DIST_HYPEREXP_H_
#define QNET_DIST_HYPEREXP_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class HyperExponential : public ServiceDistribution {
 public:
  HyperExponential(std::vector<double> weights, std::vector<double> rates)
      : weights_(std::move(weights)), rates_(std::move(rates)) {
    QNET_CHECK(!weights_.empty(), "HyperExponential needs at least one branch");
    QNET_CHECK(weights_.size() == rates_.size(), "weights/rates size mismatch: ",
               weights_.size(), " vs ", rates_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      QNET_CHECK(weights_[i] >= 0.0, "negative mixture weight: ", weights_[i]);
      QNET_CHECK(rates_[i] > 0.0, "branch rate must be positive: ", rates_[i]);
      total += weights_[i];
    }
    QNET_CHECK(std::abs(total - 1.0) < 1e-9, "mixture weights must sum to 1; sum=", total);
  }

  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& rates() const { return rates_; }

  double Sample(Rng& rng) const override {
    const std::size_t branch = rng.Categorical(weights_);
    return rng.Exponential(rates_[branch]);
  }

  double LogPdf(double x) const override {
    if (x < 0.0) {
      return kNegInf;
    }
    double density = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      density += weights_[i] * rates_[i] * std::exp(-rates_[i] * x);
    }
    return density > 0.0 ? std::log(density) : kNegInf;
  }

  double Cdf(double x) const override {
    if (x <= 0.0) {
      return 0.0;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      total += weights_[i] * -std::expm1(-rates_[i] * x);
    }
    return total;
  }

  double Mean() const override {
    double mean = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      mean += weights_[i] / rates_[i];
    }
    return mean;
  }

  double Variance() const override {
    double second = 0.0;  // E[X^2] = sum_i w_i * 2 / rate_i^2
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      second += weights_[i] * 2.0 / (rates_[i] * rates_[i]);
    }
    const double mean = Mean();
    return second - mean * mean;
  }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<HyperExponential>(weights_, rates_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "hyperexponential(";
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      os << (i > 0 ? ", " : "") << weights_[i] << "@" << rates_[i];
    }
    os << ")";
    return os.str();
  }

 private:
  std::vector<double> weights_;
  std::vector<double> rates_;
};

}  // namespace qnet

#endif  // QNET_DIST_HYPEREXP_H_
