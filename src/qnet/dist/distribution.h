// Abstract service-time distribution. Queue q's "service" process in the paper's event
// model is any positive distribution; queue 0's service process is the system interarrival
// process. Implementations must be immutable after construction so that sharing a clone
// across threads is safe.

#ifndef QNET_DIST_DISTRIBUTION_H_
#define QNET_DIST_DISTRIBUTION_H_

#include <memory>
#include <string>

#include "qnet/support/rng.h"

namespace qnet {

class ServiceDistribution {
 public:
  virtual ~ServiceDistribution() = default;

  virtual double Sample(Rng& rng) const = 0;
  // Natural-log density; -inf outside the support.
  virtual double LogPdf(double x) const = 0;
  virtual double Cdf(double x) const = 0;
  virtual double Mean() const = 0;
  virtual double Variance() const = 0;
  virtual std::unique_ptr<ServiceDistribution> Clone() const = 0;
  // Human-readable family + parameters, e.g. "Exponential(rate=2)".
  virtual std::string Describe() const = 0;
};

// SCV = Var/Mean^2; 1 for exponential, < 1 for more regular, > 1 for burstier service.
inline double SquaredCoefficientOfVariation(const ServiceDistribution& dist) {
  const double mean = dist.Mean();
  return dist.Variance() / (mean * mean);
}

}  // namespace qnet

#endif  // QNET_DIST_DISTRIBUTION_H_
