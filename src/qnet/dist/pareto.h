// Pareto type II (Lomax) service distribution, supported on [0, inf): survival function
// (1 + x/scale)^{-shape}. The genuinely heavy tail (polynomial, not exponential) used to
// stress posterior predictive checks. Mean = scale/(shape-1); we require shape > 2 so the
// variance is finite (SCV = shape/(shape-2) > 1 always).

#ifndef QNET_DIST_PARETO_H_
#define QNET_DIST_PARETO_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class Pareto : public ServiceDistribution {
 public:
  Pareto(double shape, double scale) : shape_(shape), scale_(scale) {
    QNET_CHECK(shape > 2.0, "Pareto needs shape > 2 for finite variance; shape=", shape);
    QNET_CHECK(scale > 0.0, "Pareto scale must be positive: ", scale);
  }

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  double Sample(Rng& rng) const override {
    // Inverse CDF: scale * ((1 - u)^{-1/shape} - 1).
    return scale_ * std::expm1(-std::log1p(-rng.Uniform()) / shape_);
  }

  double LogPdf(double x) const override {
    if (x < 0.0) {
      return kNegInf;
    }
    return std::log(shape_ / scale_) - (shape_ + 1.0) * std::log1p(x / scale_);
  }

  double Cdf(double x) const override {
    if (x <= 0.0) {
      return 0.0;
    }
    return -std::expm1(-shape_ * std::log1p(x / scale_));
  }

  double Mean() const override { return scale_ / (shape_ - 1.0); }

  double Variance() const override {
    return scale_ * scale_ * shape_ /
           ((shape_ - 1.0) * (shape_ - 1.0) * (shape_ - 2.0));
  }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<Pareto>(shape_, scale_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "pareto(shape=" << shape_ << ", scale=" << scale_ << ")";
    return os.str();
  }

 private:
  double shape_;
  double scale_;
};

}  // namespace qnet

#endif  // QNET_DIST_PARETO_H_
