// Exponential service distribution — the M/M/1 fast path of the paper's Gibbs sampler
// (the conditional densities of Figure 3 are piecewise exponential only in this case).

#ifndef QNET_DIST_EXPONENTIAL_H_
#define QNET_DIST_EXPONENTIAL_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class Exponential : public ServiceDistribution {
 public:
  explicit Exponential(double rate) : rate_(rate) {
    QNET_CHECK(rate > 0.0, "Exponential rate must be positive: ", rate);
  }

  double rate() const { return rate_; }

  double Sample(Rng& rng) const override { return rng.Exponential(rate_); }

  double LogPdf(double x) const override {
    if (x < 0.0) {
      return kNegInf;
    }
    return std::log(rate_) - rate_ * x;
  }

  double Cdf(double x) const override {
    if (x <= 0.0) {
      return 0.0;
    }
    return -std::expm1(-rate_ * x);
  }

  double Mean() const override { return 1.0 / rate_; }
  double Variance() const override { return 1.0 / (rate_ * rate_); }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<Exponential>(rate_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "exponential(rate=" << rate_ << ")";
    return os.str();
  }

 private:
  double rate_;
};

}  // namespace qnet

#endif  // QNET_DIST_EXPONENTIAL_H_
