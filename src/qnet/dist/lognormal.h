// Log-normal service distribution (log X ~ N(mu, sigma^2)) — the canonical heavy-ish-tailed
// service model for web workloads; FromMeanScv matches a target mean and squared coefficient
// of variation, which is how the M/G/1 scenarios are parameterized.

#ifndef QNET_DIST_LOGNORMAL_H_
#define QNET_DIST_LOGNORMAL_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class LogNormal : public ServiceDistribution {
 public:
  LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    QNET_CHECK(sigma > 0.0, "LogNormal sigma must be positive: ", sigma);
  }

  // The log-normal with the given mean and SCV: sigma^2 = log(1 + scv),
  // mu = log(mean) - sigma^2 / 2.
  static LogNormal FromMeanScv(double mean, double scv) {
    QNET_CHECK(mean > 0.0 && scv > 0.0, "FromMeanScv needs positive mean and scv");
    const double sigma2 = std::log1p(scv);
    return LogNormal(std::log(mean) - 0.5 * sigma2, std::sqrt(sigma2));
  }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  double Sample(Rng& rng) const override { return rng.LogNormal(mu_, sigma_); }

  double LogPdf(double x) const override {
    if (x <= 0.0) {
      return kNegInf;
    }
    const double z = (std::log(x) - mu_) / sigma_;
    return -0.5 * z * z - std::log(x * sigma_) - 0.5 * std::log(2.0 * M_PI);
  }

  double Cdf(double x) const override {
    if (x <= 0.0) {
      return 0.0;
    }
    const double z = (std::log(x) - mu_) / (sigma_ * std::sqrt(2.0));
    return 0.5 * std::erfc(-z);
  }

  double Mean() const override { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

  double Variance() const override {
    const double s2 = sigma_ * sigma_;
    return std::expm1(s2) * std::exp(2.0 * mu_ + s2);
  }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<LogNormal>(mu_, sigma_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
    return os.str();
  }

 private:
  double mu_;
  double sigma_;
};

}  // namespace qnet

#endif  // QNET_DIST_LOGNORMAL_H_
