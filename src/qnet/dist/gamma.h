// Gamma service distribution in shape/rate parameterization (mean = shape/rate). Shape < 1
// gives decreasing densities (burstier than exponential); large shapes approach
// deterministic service. Used by the general-service sampler and the BIC model selector.

#ifndef QNET_DIST_GAMMA_H_
#define QNET_DIST_GAMMA_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a), a > 0, x >= 0.
// Series expansion for x < a + 1, Lentz continued fraction otherwise.
double RegularizedLowerGamma(double a, double x);

class GammaDist : public ServiceDistribution {
 public:
  GammaDist(double shape, double rate) : shape_(shape), rate_(rate) {
    QNET_CHECK(shape > 0.0 && rate > 0.0, "Gamma parameters must be positive; shape=", shape,
               " rate=", rate);
  }

  double shape() const { return shape_; }
  double rate() const { return rate_; }

  double Sample(Rng& rng) const override { return rng.Gamma(shape_, 1.0 / rate_); }

  double LogPdf(double x) const override {
    if (x < 0.0 || (x == 0.0 && shape_ < 1.0)) {
      return kNegInf;
    }
    if (x == 0.0) {
      return shape_ == 1.0 ? std::log(rate_) : kNegInf;
    }
    return shape_ * std::log(rate_) - std::lgamma(shape_) + (shape_ - 1.0) * std::log(x) -
           rate_ * x;
  }

  double Cdf(double x) const override {
    if (x <= 0.0) {
      return 0.0;
    }
    return RegularizedLowerGamma(shape_, rate_ * x);
  }

  double Mean() const override { return shape_ / rate_; }
  double Variance() const override { return shape_ / (rate_ * rate_); }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<GammaDist>(shape_, rate_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "gamma(shape=" << shape_ << ", rate=" << rate_ << ")";
    return os.str();
  }

 private:
  double shape_;
  double rate_;
};

}  // namespace qnet

#endif  // QNET_DIST_GAMMA_H_
