// Uniform service distribution on [lo, hi] — low-variance service for ablations and as the
// SCV < 1 reference point in the M/G/1 comparisons.

#ifndef QNET_DIST_UNIFORM_DIST_H_
#define QNET_DIST_UNIFORM_DIST_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "qnet/dist/distribution.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

class UniformDist : public ServiceDistribution {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
    QNET_CHECK(lo < hi, "UniformDist needs lo < hi; lo=", lo, " hi=", hi);
    QNET_CHECK(lo >= 0.0, "service times are nonnegative; lo=", lo);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  double Sample(Rng& rng) const override { return rng.Uniform(lo_, hi_); }

  double LogPdf(double x) const override {
    if (x < lo_ || x > hi_) {
      return kNegInf;
    }
    return -std::log(hi_ - lo_);
  }

  double Cdf(double x) const override {
    if (x <= lo_) {
      return 0.0;
    }
    if (x >= hi_) {
      return 1.0;
    }
    return (x - lo_) / (hi_ - lo_);
  }

  double Mean() const override { return 0.5 * (lo_ + hi_); }

  double Variance() const override {
    const double width = hi_ - lo_;
    return width * width / 12.0;
  }

  std::unique_ptr<ServiceDistribution> Clone() const override {
    return std::make_unique<UniformDist>(lo_, hi_);
  }

  std::string Describe() const override {
    std::ostringstream os;
    os << "uniform(lo=" << lo_ << ", hi=" << hi_ << ")";
    return os.str();
  }

 private:
  double lo_;
  double hi_;
};

}  // namespace qnet

#endif  // QNET_DIST_UNIFORM_DIST_H_
