#include "qnet/shard/lane_router.h"

#include <utility>

#include "qnet/support/check.h"
#include "qnet/support/task_hash.h"

namespace qnet {

LaneRouter::LaneRouter(LaneRouterOptions options)
    : options_(std::move(options)), counts_(options_.lanes, 0) {
  QNET_CHECK(options_.lanes > 0, "LaneRouter needs a positive lane count");
}

std::size_t LaneRouter::Route(const TaskRecord& record) {
  const std::size_t lane = options_.lane_of ? options_.lane_of(record)
                                            : TaskLane(TaskHash(record), options_.lanes);
  QNET_CHECK(lane < options_.lanes, "partitioner returned lane ", lane, " of ",
             options_.lanes);
  ++counts_[lane];
  return lane;
}

}  // namespace qnet
