// Pooling of per-lane window fits into one WindowEstimate per global window.
//
// The merger is the fleet's watermark coordinator on the estimation side: the router
// announces every span decision in emission order (ExpectWindow), each lane answers it
// with its lane-local fit (Post), and a window's pooled estimate is released only when
// ALL K lanes have answered — the pooled stream therefore advances as the minimum over
// lane progress, and no window is emitted before every lane has closed it. A lane with
// zero records in the window answers immediately with an empty fit, so idle lanes never
// stall the fleet.
//
// Pooling discipline (the chain-order Merge discipline of parallel_chains, applied to
// lanes): contributions are combined in lane-index order — a pure function of the fits,
// never of which lane answered first — with documented weights:
//   * lambda (rates[0]) SUMS across lanes: each lane observes an independent
//     hash-thinned sub-stream, so the fleet arrival rate is the sum of lane rates. A
//     lane whose sub-log could not be fitted (a queue with no events) contributes its
//     empirical n_lane / (t1 - origin) instead.
//   * service rates (rates[q>0]) and mean waits average across fitted lanes, weighted by
//     lane task counts: every lane estimates the same per-queue parameters, with
//     precision proportional to its share of the data.
//   * a window with exactly one contributing lane copies that lane's fit verbatim —
//     bit-exact, which is what makes a single-lane fleet reproduce the plain
//     StreamingEstimator (no 1.0-weighted arithmetic is allowed to perturb bits).
// Per-lane fits on disjoint sub-streams are the mean-field-flavored decomposition the
// fleet trades for horizontal scaling: pooled estimates are bit-identical across every
// execution arrangement for a FIXED lane count, and statistically consistent (not
// bit-identical) across different lane counts. See docs/architecture.md.

#ifndef QNET_SHARD_LANE_MERGER_H_
#define QNET_SHARD_LANE_MERGER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "qnet/stream/streaming_estimator.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/stopwatch.h"

namespace qnet {

// One lane's answer to one close token.
struct LaneWindowFit {
  std::size_t tasks = 0;  // lane-local record count in the window
  bool fitted = false;    // a fit produced rates/mean_wait
  bool skipped = false;   // records present but the sub-log missed a queue: no fit
  // The fit is mean-field-only (degraded); the pooled estimate ORs this flag.
  bool degraded = false;
  // StEM iterations the lane's fit actually ran (0 for degraded fits); pooled by SUM.
  std::size_t fit_iterations = 0;
  std::vector<double> rates;
  std::vector<double> mean_wait;
  // Per-queue event counts of the lane's sub-log (empty for empty lane windows). The
  // bias correction reconstructs each queue's TRUE event arrival rate from these sums —
  // counts are structure, exact regardless of how the lane fitted (or skipped).
  std::vector<std::size_t> queue_counts;
};

struct PooledWindow {
  WindowEstimate estimate;
  std::size_t window_index = 0;
  bool replaces_previous = false;  // merged-tail re-close: replaces the last estimate
};

class LaneMerger {
 public:
  // With cross_lane_bias_correction, multi-lane pooled service rates and waits are
  // re-inverted through the mean-field response invariant (infer/meanfield.h:
  // CorrectCrossLaneShare; model fallback when the pool carries no waits): a lane
  // attributes the queueing caused by other lanes' tasks to service, so the pooled
  // service estimate inflates with utilization — the PR-5 documented bias. The
  // single-contributing-lane verbatim path is never corrected, so K = 1 stays
  // bit-exact with the plain estimator, and the flag defaults off (pooled estimates
  // preserved bit-exactly).
  LaneMerger(std::size_t lanes, int num_queues, bool window_local_arrival_rate,
             bool cross_lane_bias_correction = false);

  // Router thread, in emission order: announce a decision every lane will answer.
  void ExpectWindow(const WindowSpanTracker::SpanDecision& decision);

  // Lane threads: deliver lane `lane`'s fit for its oldest unanswered window. Lanes
  // process close tokens in order, so per-lane delivery order is emission order.
  void Post(std::size_t lane, LaneWindowFit fit);

  // Router thread: pops the next pooled window in emission order. With block=false,
  // returns false when the oldest window is still incomplete (or none is pending); with
  // block=true, waits until it completes, returning false only when nothing is pending
  // or the fleet aborted.
  bool Pop(PooledWindow& out, bool block);

  // A lane died: wake any blocked Pop so the fleet can unwind (the lane's exception is
  // surfaced by its PipelineSlot).
  void Abort();
  bool Aborted() const;

  // Longest span between a window's close broadcast and its last lane fit.
  double MaxMergeLagSeconds() const;

 private:
  struct PendingWindow {
    WindowSpanTracker::SpanDecision decision;
    Stopwatch since_expected;
    std::vector<LaneWindowFit> fits;
    std::vector<char> answered;
    std::size_t answers = 0;
  };

  WindowEstimate Pool(const PendingWindow& window) const;

  const std::size_t lanes_;
  const int num_queues_;
  const bool window_local_;
  const bool bias_correction_;

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<PendingWindow> board_;  // emission order
  // Windows complete in emission order (every lane answers its tokens in order), so a
  // plain counter is an exact lock-free fast path for the router's per-record polling.
  std::atomic<std::size_t> complete_windows_{0};
  std::atomic<bool> aborted_{false};
  double max_merge_lag_seconds_ = 0.0;
};

}  // namespace qnet

#endif  // QNET_SHARD_LANE_MERGER_H_
