// Hash partitioning of a TraceStream across K lanes.
//
// The router assigns every TaskRecord to lane TaskLane(TaskHash(record), lanes) — a pure
// function of the record's physical identity (support/task_hash.h), so placement is
// stable across runs, hosts, and external partitioners, and re-sharding to a different
// lane count is a deterministic re-mapping of the same hashes. An optional `lane_of`
// override substitutes a caller-defined partition (e.g. tenant- or entry-point-keyed
// routing); it must be a pure function of the record for the fleet's determinism
// contract to hold.
//
// The router is single-threaded (it runs on the fleet's ingest thread, upstream of the
// per-lane queues) and keeps per-lane routed counts for FleetStats.

#ifndef QNET_SHARD_LANE_ROUTER_H_
#define QNET_SHARD_LANE_ROUTER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "qnet/stream/task_record.h"

namespace qnet {

struct LaneRouterOptions {
  std::size_t lanes = 1;
  // Optional partition override; must return a value in [0, lanes) and be a pure
  // function of the record. Default: TaskLane(TaskHash(record), lanes).
  std::function<std::size_t(const TaskRecord&)> lane_of;
};

class LaneRouter {
 public:
  explicit LaneRouter(LaneRouterOptions options);

  std::size_t Lanes() const { return options_.lanes; }

  // Lane of `record`; also counts the assignment.
  std::size_t Route(const TaskRecord& record);

  // Records routed to each lane so far.
  const std::vector<std::size_t>& LaneCounts() const { return counts_; }

 private:
  LaneRouterOptions options_;
  std::vector<std::size_t> counts_;
};

}  // namespace qnet

#endif  // QNET_SHARD_LANE_ROUTER_H_
