// Bounded single-producer/single-consumer queue connecting the fleet's router (ingest)
// thread to one lane worker.
//
// Items are a tagged union of "here is your next record", "close the current window
// (span decision)" and "end of stream". Tokens travel IN BAND with the records, so a
// lane's view of which records precede a window close is exactly the router's — lane
// processing is a pure function of the item sequence, never of timing.
//
// The ring is fixed-capacity and slots are reused by copy-assignment (a TaskRecord's
// visit vector keeps its capacity across wraps, as do the consumer's pop targets), so
// the steady-state queue hop itself allocates nothing. Producer and consumer move items
// in BATCHES (PushMany/PopMany) — one lock + one wake per batch, not per record — which
// is what keeps a single-lane fleet within a few percent of the plain estimator's
// throughput. Batching never reorders items, so results are bit-identical for any batch
// size. A full ring blocks the producer — that is the fleet's backpressure, and PushMany
// returns the seconds it spent blocked so the router can account it
// (FleetStats::router_blocked_seconds).
//
// CloseConsumer is the abnormal-exit valve: a lane worker that dies calls it so a
// blocked producer wakes up and discovers the fleet is unwinding instead of deadlocking.

#ifndef QNET_SHARD_LANE_QUEUE_H_
#define QNET_SHARD_LANE_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "qnet/stream/task_record.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/check.h"
#include "qnet/support/stopwatch.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

struct LaneItem {
  enum class Kind { kRecord, kClose, kFinish };
  Kind kind = Kind::kRecord;
  TaskRecord record;                      // kRecord
  WindowSpanTracker::SpanDecision close;  // kClose
};

class LaneQueue {
 public:
  explicit LaneQueue(std::size_t capacity) : ring_(capacity) {
    QNET_CHECK(capacity > 0, "lane queue capacity must be positive");
  }

  LaneQueue(const LaneQueue&) = delete;
  LaneQueue& operator=(const LaneQueue&) = delete;

  // Enqueues copies of items[0..count) in order (slot capacity is reused), blocking
  // whenever the ring is full. Returns the seconds spent blocked. If the consumer side
  // has been closed the remaining items are silently dropped — the fleet is unwinding
  // and will surface the lane's error.
  double PushMany(const LaneItem* items, std::size_t count) {
    ScopedSpan push_span(SpanStage::kLanePush);
    ShardCounters::Get().queue_push_batches->Increment();
    double blocked = 0.0;
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t at = 0;
    while (at < count) {
      if (size_ == ring_.size() && !consumer_closed_) {
        ScopedSpan blocked_span(SpanStage::kLaneBlocked);
        Stopwatch waited;
        not_full_.wait(lock, [&] { return size_ < ring_.size() || consumer_closed_; });
        blocked += waited.ElapsedSeconds();
      }
      if (consumer_closed_) {
        return blocked;
      }
      while (at < count && size_ < ring_.size()) {
        ring_[head_] = items[at++];
        head_ = (head_ + 1) % ring_.size();
        ++size_;
      }
      peak_depth_ = std::max(peak_depth_, size_);
      not_empty_.notify_one();
    }
    return blocked;
  }

  double Push(const LaneItem& item) { return PushMany(&item, 1); }

  // Dequeues up to `max` items into out[0..returned) (copy-assignment: element capacity
  // is reused; out grows once to `max` and is never shrunk), blocking while the ring is
  // empty. The producer always terminates the stream with a kFinish item, so consumers
  // never wait forever on an orderly shutdown.
  std::size_t PopMany(std::vector<LaneItem>& out, std::size_t max) {
    QNET_CHECK(max > 0, "PopMany needs a positive batch size");
    ScopedSpan pop_span(SpanStage::kLanePop);
    ShardCounters::Get().queue_pop_batches->Increment();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0; });
    const std::size_t count = std::min(max, size_);
    if (out.size() < count) {
      out.resize(count);
    }
    for (std::size_t at = 0; at < count; ++at) {
      out[at] = ring_[tail_];
      tail_ = (tail_ + 1) % ring_.size();
    }
    size_ -= count;
    lock.unlock();
    not_full_.notify_one();
    return count;
  }

  // Consumer died: wake and release a blocked producer; subsequent pushes are dropped.
  void CloseConsumer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      consumer_closed_ = true;
    }
    not_full_.notify_one();
  }

  std::size_t PeakDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<LaneItem> ring_;
  std::size_t head_ = 0;  // next push slot
  std::size_t tail_ = 0;  // next pop slot
  std::size_t size_ = 0;
  std::size_t peak_depth_ = 0;
  bool consumer_closed_ = false;
};

}  // namespace qnet

#endif  // QNET_SHARD_LANE_QUEUE_H_
