#include "qnet/shard/sharded_streaming.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <memory>
#include <utility>

#include "qnet/infer/stem.h"
#include "qnet/infer/thread_pool.h"
#include "qnet/shard/lane_merger.h"
#include "qnet/shard/lane_queue.h"
#include "qnet/shard/lane_router.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/check.h"
#include "qnet/support/stopwatch.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {
namespace {

// One lane: bounded ingest queue + record buffer + per-window log build + warm-started
// StEM fit chain. RunLoop consumes the queue until the finish token; everything the
// worker does is a pure function of its item sequence, which the router makes a pure
// function of the stream.
class LaneWorker {
 public:
  LaneWorker(std::size_t lane, int num_queues, const ShardedStreamingOptions& options,
             std::vector<double> init_rates, std::uint64_t seed, LaneMerger* merger)
      : lane_(lane),
        num_queues_(num_queues),
        options_(options),
        merger_(merger),
        queue_(options.lane_queue_capacity),
        chain_(std::move(init_rates), seed, options.stream.window_local_arrival_rate,
               /*salted=*/options.lanes > 1, /*lane=*/lane),
        mean_field_(options.stream.mean_field) {
    // One scheduler per lane, rebuilt per window fit: windows on a lane are strictly
    // sequential, so the cache is exclusively owned and every fit reuses the lane's
    // coloring/bucket buffers (and worker pool, under sharded sweeps) instead of
    // constructing a scheduler per window. Mirrors StreamingEstimator::Run — only wired
    // when a fit would build a scheduler anyway, so a plain sequential configuration
    // keeps its historical stream layout untouched.
    if (options_.stream.stem.gibbs.batched || options_.stream.stem.sharded_sweeps) {
      ShardedSweepOptions cache_options;
      if (options_.stream.stem.sharded_sweeps) {
        cache_options = options_.stream.stem.sharded;
      } else {
        cache_options.shards = 1;
        cache_options.threads = 1;
      }
      scheduler_cache_ = std::make_unique<ShardedSweepScheduler>(cache_options);
    }
  }

  LaneQueue& Queue() { return queue_; }
  // Event-time progress of the worker, sampled by the router for lag stats.
  double ConsumedWatermark() const { return watermark_.load(std::memory_order_relaxed); }
  LaneStats& Stats() { return stats_; }

  void RunLoop() {
    try {
      // Batched pops mirror the router's batched pushes: one lock per ~64 items. The
      // batch elements keep their record capacity across reuse.
      std::vector<LaneItem> batch;
      for (;;) {
        const std::size_t count = queue_.PopMany(batch, 64);
        for (std::size_t at = 0; at < count; ++at) {
          LaneItem& item = batch[at];
          if (item.kind == LaneItem::Kind::kFinish) {
            return;  // nothing follows a finish token
          }
          if (item.kind == LaneItem::Kind::kRecord) {
            ++stats_.tasks_routed;
            ShardCounters::Get().records_routed->Increment();
            // max: a late-merged record can sit behind the close-token advance below.
            watermark_.store(
                std::max(watermark_.load(std::memory_order_relaxed),
                         item.record.entry_time),
                std::memory_order_relaxed);
            buffer_.push_back(item.record);
            const std::size_t buffered = buffer_.size() + last_window_.size();
            if (buffered > stats_.peak_buffered_tasks) {
              stats_.peak_buffered_tasks = buffered;
              StreamCounters::Get().peak_buffered_tasks->SetMax(
                  static_cast<double>(buffered));
            }
            continue;
          }
          ProcessClose(item.close);
        }
      }
      // Leftover buffered records are the globally dropped tail; the router accounts
      // them fleet-wide from the tracker.
    } catch (...) {
      // Unblock the router and wake the merger before surfacing the error through the
      // PipelineSlot (Run rethrows it from Wait()).
      queue_.CloseConsumer();
      merger_->Abort();
      throw;
    }
  }

 private:
  void ProcessClose(const WindowSpanTracker::SpanDecision& decision) {
    ScopedSpan span(SpanStage::kWindowAssemble);
    ++stats_.windows_closed;
    // The lane-local application of the global membership rule — the SAME helper the
    // assembler materializes with, applied to this lane's sub-sequence.
    std::vector<TaskRecord> records =
        TakeDecisionRecords(decision, buffer_, last_window_);

    LaneWindowFit fit;
    fit.tasks = records.size();
    if (records.empty()) {
      ++stats_.empty_windows;
    } else {
      WindowLogBuilder builder(num_queues_);
      for (const TaskRecord& record : records) {
        builder.Add(record);
      }
      auto [log, obs] = builder.Finish();
      // The sub-log's per-queue counts feed the merger's bias correction (lambda_q is
      // reconstructed from the summed counts — exact, fit or no fit).
      fit.queue_counts = log.PerQueueCount();
      // A hash-thinned sub-window can miss a queue entirely; StEM cannot estimate a
      // rate with no events.
      bool every_queue_present = true;
      for (const std::size_t count : fit.queue_counts) {
        if (count == 0) {
          every_queue_present = false;
          break;
        }
      }
      const FastPathMode mode = options_.stream.fast_path;
      // Degradation triggers on the GLOBAL window task count (decision.count), a pure
      // function of the stream — the same windows degrade at any lane count, keeping
      // the fixed-K bit-equality and cross-K consistency contracts. Under the degrade
      // policies a missing-queue sub-log also degrades (mean-field fallback with chain
      // rates for the absent queues) instead of sitting the window out.
      const bool degrade_policy =
          mode == FastPathMode::kDegrade || mode == FastPathMode::kMeanFieldOnly;
      const bool mean_field_only =
          mode == FastPathMode::kMeanFieldOnly ||
          (mode == FastPathMode::kDegrade &&
           decision.count > options_.stream.degrade_task_budget) ||
          (degrade_policy && !every_queue_present);
      if (!every_queue_present && !degrade_policy) {
        fit.skipped = true;
        ++stats_.skipped_fits;
      } else {
        WindowFitChain::Plan plan = chain_.PlanFit(
            decision.window_index, decision.merged_tail_tasks > 0, decision.t0);
        if (mode != FastPathMode::kOff) {
          // Mean-field fit of the sub-log: the warm start (queues without events keep
          // the chain's previous rates) and, when degraded, the estimate itself.
          mean_field_.Fit(log, obs, plan.arrival_time_origin, mf_fit_);
          for (std::size_t q = 0; q < plan.warm_start.size(); ++q) {
            if (mf_fit_.fitted[q] != 0) {
              plan.warm_start[q] = mf_fit_.rates[q];
            }
          }
        }
        if (mean_field_only) {
          chain_.Complete(plan.warm_start);
          fit.fitted = true;
          fit.degraded = true;
          ++stats_.degraded_fits;
          fit.rates = std::move(plan.warm_start);
          fit.mean_wait = mf_fit_.mean_wait;
        } else {
          StemOptions stem = options_.stream.stem;
          stem.arrival_time_origin = plan.arrival_time_origin;
          stem.scheduler_cache = scheduler_cache_.get();
          const StemEstimator estimator(stem);
          Rng rng(plan.seed);
          Stopwatch fitting;
          const StemResult result =
              estimator.Run(log, obs, std::move(plan.warm_start), rng);
          stats_.fit_seconds += fitting.ElapsedSeconds();
          stats_.fit_iterations_total += result.iterations_run;
          chain_.Complete(result.rates);
          fit.fitted = true;
          fit.fit_iterations = result.iterations_run;
          fit.rates = result.rates;
          fit.mean_wait = result.mean_wait;
        }
      }
    }
    // Mirror the assembler: every normal close becomes the trailing-merge target (even
    // an empty one — the global merged-tail re-close targets the last GLOBAL window, and
    // this lane's share of it may well be empty).
    if (decision.merged_tail_tasks == 0 && options_.stream.window.merge_trailing_window) {
      last_window_ = std::move(records);
    }
    // Processing the close token IS event-time progress: an idle lane that answers
    // every token is fully caught up to t1 even though it consumed no records (the lag
    // stat must not report it as trailing by the whole stream).
    watermark_.store(std::max(watermark_.load(std::memory_order_relaxed), decision.t1),
                     std::memory_order_relaxed);
    merger_->Post(lane_, std::move(fit));
  }

  const std::size_t lane_;
  const int num_queues_;
  const ShardedStreamingOptions& options_;
  LaneMerger* merger_;
  LaneQueue queue_;
  WindowFitChain chain_;
  std::unique_ptr<ShardedSweepScheduler> scheduler_cache_;
  MeanFieldEstimator mean_field_;
  MeanFieldFit mf_fit_;
  std::vector<TaskRecord> buffer_;
  std::vector<TaskRecord> last_window_;
  std::atomic<double> watermark_{0.0};
  LaneStats stats_;
};

}  // namespace

ShardedStreamingEstimator::ShardedStreamingEstimator(std::vector<double> init_rates,
                                                     std::uint64_t seed,
                                                     const ShardedStreamingOptions& options)
    : init_rates_(std::move(init_rates)), seed_(seed), options_(options) {
  QNET_CHECK(options_.lanes > 0, "fleet needs at least one lane");
}

std::vector<WindowEstimate> ShardedStreamingEstimator::Run(TraceStream& stream) {
  stats_ = FleetStats{};
  const std::size_t lanes = options_.lanes;
  Stopwatch total;

  WindowSpanTracker tracker(options_.stream.window);
  LaneRouterOptions router_options;
  router_options.lanes = lanes;
  router_options.lane_of = options_.lane_of;
  LaneRouter router(std::move(router_options));
  LaneMerger merger(lanes, stream.NumQueues(),
                    options_.stream.window_local_arrival_rate,
                    options_.cross_lane_bias_correction);

  std::vector<std::unique_ptr<LaneWorker>> workers;
  workers.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    workers.push_back(std::make_unique<LaneWorker>(lane, stream.NumQueues(), options_,
                                                   init_rates_, seed_, &merger));
  }
  std::vector<PipelineSlot> slots(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    slots[lane].Submit([worker = workers[lane].get()] { worker->RunLoop(); });
  }

  std::vector<double> max_watermark_lag(lanes, 0.0);
  std::vector<WindowEstimate> estimates;

  // Per-lane record batches: one queue lock per `router_batch` records. Slots are
  // recycled by copy-assignment, so the steady-state routing path allocates nothing.
  const std::size_t batch_size = std::max<std::size_t>(options_.router_batch, 1);
  struct RouterBatch {
    std::vector<LaneItem> items;
    std::size_t count = 0;
  };
  std::vector<RouterBatch> batches(lanes);
  for (RouterBatch& batch : batches) {
    batch.items.resize(batch_size);
  }
  const auto flush_lane = [&](std::size_t lane) {
    RouterBatch& batch = batches[lane];
    if (batch.count > 0) {
      stats_.router_blocked_seconds +=
          workers[lane]->Queue().PushMany(batch.items.data(), batch.count);
      batch.count = 0;
    }
  };
  const auto flush_all = [&] {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      flush_lane(lane);
    }
  };

  const auto emit = [&](PooledWindow&& pooled) {
    ScopedSpan span(SpanStage::kEmit);
    const StreamCounters& counters = StreamCounters::Get();
    if (pooled.estimate.degraded) {
      ++stats_.degraded_windows;
      counters.degraded_windows->Increment();
    }
    stats_.fit_iterations_total += pooled.estimate.fit_iterations;
    counters.fit_iterations->Add(
        static_cast<std::uint64_t>(pooled.estimate.fit_iterations));
    if (pooled.replaces_previous) {
      QNET_CHECK(!estimates.empty(), "merged-tail window with no previous estimate");
      estimates.back() = std::move(pooled.estimate);
    } else {
      estimates.push_back(std::move(pooled.estimate));
      ++stats_.windows_estimated;
      counters.windows_estimated->Increment();
    }
    if (options_.stream.on_window) {
      options_.stream.on_window(estimates.back());
    }
  };

  const auto broadcast_decisions = [&] {
    while (tracker.HasClosed()) {
      // Every routed record ahead of the token must reach its lane first.
      flush_all();
      const WindowSpanTracker::SpanDecision decision = tracker.PopClosed();
      merger.ExpectWindow(decision);
      LaneItem token;
      token.kind = LaneItem::Kind::kClose;
      token.close = decision;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        stats_.router_blocked_seconds += workers[lane]->Queue().Push(token);
        max_watermark_lag[lane] =
            std::max(max_watermark_lag[lane],
                     tracker.Watermark() - workers[lane]->ConsumedWatermark());
      }
    }
  };

  const auto broadcast_finish = [&] {
    flush_all();
    LaneItem token;
    token.kind = LaneItem::Kind::kFinish;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      workers[lane]->Queue().Push(token);
    }
  };

  TaskRecord record;
  try {
    while (stream.Next(record)) {
      // The tracker counts ingestion and late drops (and mirrors them to the registry);
      // the fleet stats read them back from the tracker after the run.
      const WindowSpanTracker::PushVerdict verdict = tracker.Push(record.entry_time);
      if (verdict == WindowSpanTracker::PushVerdict::kLateDropped) {
        continue;
      }
      const std::size_t lane = router.Route(record);
      RouterBatch& batch = batches[lane];
      LaneItem& slot = batch.items[batch.count++];
      slot.kind = LaneItem::Kind::kRecord;
      slot.record = record;
      if (batch.count == batch_size) {
        flush_lane(lane);
      }
      broadcast_decisions();
      PooledWindow pooled;
      while (merger.Pop(pooled, /*block=*/false)) {
        emit(std::move(pooled));
      }
      if (merger.Aborted()) {
        break;
      }
    }
    if (!merger.Aborted()) {
      tracker.Finish();
      broadcast_decisions();
      stats_.tail_dropped = tracker.TailDropped();
    }
  } catch (...) {
    // Stream or bookkeeping failure on the router thread: release the lanes so the
    // slots' destructors can join, then surface the original error.
    broadcast_finish();
    throw;
  }

  broadcast_finish();
  PooledWindow pooled;
  while (merger.Pop(pooled, /*block=*/true)) {
    emit(std::move(pooled));
  }
  for (PipelineSlot& slot : slots) {
    slot.Wait();  // rethrows the first lane failure
  }

  stats_.lanes = lanes;
  stats_.tasks_ingested = tracker.TasksPushed();
  stats_.late_dropped = tracker.LateDropped();
  stats_.total_wall_seconds = total.ElapsedSeconds();
  stats_.tasks_per_second =
      stats_.total_wall_seconds > 0.0
          ? static_cast<double>(stats_.tasks_ingested) / stats_.total_wall_seconds
          : 0.0;
  stats_.max_merge_lag_seconds = merger.MaxMergeLagSeconds();
  stats_.lane.resize(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    stats_.lane[lane] = workers[lane]->Stats();
    stats_.lane[lane].peak_queue_depth = workers[lane]->Queue().PeakDepth();
    StreamCounters::Get().peak_queue_depth->SetMax(
        static_cast<double>(stats_.lane[lane].peak_queue_depth));
    stats_.lane[lane].max_watermark_lag = std::max(0.0, max_watermark_lag[lane]);
    stats_.lane[lane].tasks_per_second =
        stats_.total_wall_seconds > 0.0
            ? static_cast<double>(stats_.lane[lane].tasks_routed) /
                  stats_.total_wall_seconds
            : 0.0;
  }
  return estimates;
}

}  // namespace qnet
