// Sharded streaming front-end: hash-partitioned multi-lane windowed inference with
// deterministic pooled estimates.
//
// One ingest (router) thread pulls TaskRecords from any TraceStream and hash-partitions
// them across K lanes (LaneRouter over support/task_hash.h). Each lane is an independent
// worker — bounded ingest queue, per-window log assembly, and a warm-started windowed
// StEM fit chain (the same WindowFitChain the plain StreamingEstimator uses) — running
// on its own PipelineSlot thread (infer/thread_pool.h). A LaneMerger pools the K
// per-window fits into one WindowEstimate per global window.
//
// Window coordination: the router runs the WindowSpanTracker (the exact decision core of
// WindowAssembler) over the GLOBAL entry-time sequence, so window spans, counts, and
// emission indices are bit-identical to a single assembler's for ANY lane count. Close
// decisions travel in band through every lane's queue — no lane can close window w
// before it has consumed every record the router placed ahead of the token — and the
// merger releases window w only when all K lanes have answered it: the pooled stream
// advances as the min over lane progress (an idle lane answers immediately and never
// stalls the fleet).
//
// Determinism contract: lane l's fit of window w is seeded MixSeed(MixSeed(base, w), l)
// (for K >= 2; a single-lane fleet elides the lane salt so K = 1 reproduces the plain
// StreamingEstimator bit-exactly). Seeds, warm starts, window membership, and pooling
// order are pure functions of (stream contents, options, base seed, K) — never of
// thread scheduling, queue timing, sharded-sweep thread counts under each lane, or
// pipelining. Pooled estimates are therefore bit-identical across every execution
// arrangement for a FIXED K. Across DIFFERENT K the estimates are statistically
// consistent but not bit-identical: each lane fits its own hash-thinned sub-stream (the
// mean-field-flavored decomposition that buys horizontal scaling), so K, like the chain
// count in parallel_chains, is part of the estimator's statistical definition. The
// merge weighting (lambda sums; service rates and waits task-count-weighted) is
// documented in shard/lane_merger.h.

#ifndef QNET_SHARD_SHARDED_STREAMING_H_
#define QNET_SHARD_SHARDED_STREAMING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "qnet/shard/fleet_stats.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/stream/task_record.h"

namespace qnet {

struct ShardedStreamingOptions {
  // Number of hash lanes K (the estimation decomposition width; see file comment).
  std::size_t lanes = 1;
  // Bounded per-lane ingest queue capacity (records + tokens). A full queue blocks the
  // router — backpressure, reported in FleetStats::router_blocked_seconds.
  std::size_t lane_queue_capacity = 1024;
  // Records are handed to a lane in batches of up to this size (one lock + one wake per
  // batch instead of per record). Window-close tokens flush every lane's batch first, so
  // item order — and therefore every estimate — is bit-identical for any value; this is
  // a pure wall-clock knob.
  std::size_t router_batch = 32;
  // Optional partition override (default TaskLane(TaskHash(record), lanes)); must be a
  // pure function of the record. See shard/lane_router.h.
  std::function<std::size_t(const TaskRecord&)> lane_of;
  // Correct the pooled per-queue service rates and waits for the cross-lane waiting
  // share (the documented utilization-coupled bias of lane decomposition) using the
  // mean-field response invariant — see shard/lane_merger.h and infer/meanfield.h.
  // Deterministic (a pure function of the lane fits), but default off: the historical
  // pooled estimates are preserved bit-exactly. The single-contributing-lane verbatim
  // path is never corrected, so K = 1 reproduces the plain estimator either way.
  bool cross_lane_bias_correction = false;
  // Window, StEM, lambda-anchoring and on_window options, shared by every lane.
  // `stream.pipeline` is accepted but inert: lane workers always overlap their fits
  // with the router's ingestion (the fleet subsumes pipelining); estimates are
  // bit-identical either way. `stream.on_window` fires on the Run() caller's thread
  // with the POOLED estimates, in window order — WindowForecaster rides the merged
  // stream unchanged. `stream.fast_path` applies per lane: kDegrade triggers on the
  // GLOBAL window task count (the same windows degrade at any K), and under
  // kDegrade/kMeanFieldOnly a lane whose sub-log misses a queue answers with a
  // mean-field fallback fit instead of sitting the window out.
  StreamingEstimatorOptions stream;
};

class ShardedStreamingEstimator {
 public:
  // `init_rates` warm-starts every lane's first window (index 0 = lambda); `seed` drives
  // the per-(window, lane) MixSeed discipline above.
  ShardedStreamingEstimator(std::vector<double> init_rates, std::uint64_t seed,
                            const ShardedStreamingOptions& options = {});

  // Drains `stream` to completion and returns the pooled per-window estimate sequence
  // (a merged-tail re-fit replaces the last entry in place, exactly like the plain
  // estimator).
  std::vector<WindowEstimate> Run(TraceStream& stream);

  // Valid after Run.
  const FleetStats& Stats() const { return stats_; }

 private:
  std::vector<double> init_rates_;
  std::uint64_t seed_;
  ShardedStreamingOptions options_;
  FleetStats stats_;
};

}  // namespace qnet

#endif  // QNET_SHARD_SHARDED_STREAMING_H_
