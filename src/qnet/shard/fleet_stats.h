// Per-lane and fleet-wide throughput/backpressure counters for the sharded streaming
// front-end (see shard/sharded_streaming.h). All values are collected after Run()
// completes; nothing here is read concurrently.

#ifndef QNET_SHARD_FLEET_STATS_H_
#define QNET_SHARD_FLEET_STATS_H_

#include <cstddef>
#include <vector>

namespace qnet {

struct LaneStats {
  std::size_t tasks_routed = 0;
  // Close tokens processed (every global window, including merged-tail re-closes —
  // identical across lanes by construction).
  std::size_t windows_closed = 0;
  // Windows in which this lane held zero records (it still answers the close token
  // immediately, so an idle lane never stalls the global watermark).
  std::size_t empty_windows = 0;
  // Windows whose lane-local sub-log was missing a queue entirely, so no StEM fit ran
  // (the lane's tasks still count toward the pooled estimate's lambda, empirically).
  std::size_t skipped_fits = 0;
  // Lane fits answered with a mean-field-only (degraded) fit — over the degrade task
  // budget, in all-variational mode, or a missing-queue fallback under kDegrade.
  std::size_t degraded_fits = 0;
  // Sum of StEM iterations this lane's fits actually ran (early-stop savings witness).
  std::size_t fit_iterations_total = 0;
  // High-water mark of records buffered in the lane (open-window buffer plus the
  // previous window retained for the trailing merge) — each lane's bounded-memory
  // witness, mirroring WindowAssemblerStats::peak_buffered_tasks.
  std::size_t peak_buffered_tasks = 0;
  // High-water mark of the lane's ingest queue (records + tokens awaiting the worker);
  // pinned at the configured capacity when the router had to block (backpressure).
  std::size_t peak_queue_depth = 0;
  // Wall-clock spent inside this lane's StEM fits.
  double fit_seconds = 0.0;
  // Largest event-time distance the lane's processing trailed the router's ingest
  // watermark, sampled at every window-close broadcast.
  double max_watermark_lag = 0.0;
  // tasks_routed / fleet wall time.
  double tasks_per_second = 0.0;
};

struct FleetStats {
  std::size_t lanes = 0;
  std::size_t tasks_ingested = 0;
  std::size_t windows_estimated = 0;
  std::size_t late_dropped = 0;
  std::size_t tail_dropped = 0;
  double total_wall_seconds = 0.0;
  double tasks_per_second = 0.0;  // end-to-end sustained ingest rate
  // Total wall-clock the router spent blocked on full lane queues (backpressure: the
  // fleet ingested faster than its slowest lane could fit).
  double router_blocked_seconds = 0.0;
  // Longest a closed window waited between its close broadcast and the last lane
  // delivering its fit — the fleet's analog of StreamingStats::max_sweep_lag_seconds.
  double max_merge_lag_seconds = 0.0;
  // Pooled estimates emitted with degraded = true (some contributing lane fit was
  // mean-field-only; a merged-tail re-fit counts again).
  std::size_t degraded_windows = 0;
  // Sum of pooled WindowEstimate::fit_iterations across emitted estimates.
  std::size_t fit_iterations_total = 0;
  std::vector<LaneStats> lane;
};

}  // namespace qnet

#endif  // QNET_SHARD_FLEET_STATS_H_
