#include "qnet/shard/lane_merger.h"

#include <algorithm>
#include <utility>

#include "qnet/infer/meanfield.h"
#include "qnet/support/check.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

LaneMerger::LaneMerger(std::size_t lanes, int num_queues, bool window_local_arrival_rate,
                       bool cross_lane_bias_correction)
    : lanes_(lanes),
      num_queues_(num_queues),
      window_local_(window_local_arrival_rate),
      bias_correction_(cross_lane_bias_correction) {
  QNET_CHECK(lanes_ > 0, "LaneMerger needs a positive lane count");
  QNET_CHECK(num_queues_ >= 2, "LaneMerger needs at least the arrival queue plus one");
}

void LaneMerger::ExpectWindow(const WindowSpanTracker::SpanDecision& decision) {
  std::lock_guard<std::mutex> lock(mu_);
  PendingWindow window;
  window.decision = decision;
  window.fits.resize(lanes_);
  window.answered.assign(lanes_, 0);
  board_.push_back(std::move(window));
}

void LaneMerger::Post(std::size_t lane, LaneWindowFit fit) {
  bool completed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    QNET_CHECK(lane < lanes_, "bad lane ", lane);
    for (PendingWindow& window : board_) {
      if (window.answered[lane]) {
        continue;
      }
      window.answered[lane] = 1;
      window.fits[lane] = std::move(fit);
      ++window.answers;
      if (window.answers == lanes_) {
        max_merge_lag_seconds_ =
            std::max(max_merge_lag_seconds_, window.since_expected.ElapsedSeconds());
        complete_windows_.fetch_add(1, std::memory_order_release);
        completed = true;
      }
      break;
    }
  }
  if (completed) {
    ready_.notify_all();
  }
}

bool LaneMerger::Pop(PooledWindow& out, bool block) {
  if (!block && complete_windows_.load(std::memory_order_acquire) == 0) {
    return false;  // lock-free fast path for the router's per-record polling
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (block) {
    ready_.wait(lock, [&] {
      return aborted_.load(std::memory_order_relaxed) || board_.empty() ||
             board_.front().answers == lanes_;
    });
  }
  if (board_.empty() || board_.front().answers < lanes_) {
    return false;
  }
  const PendingWindow window = std::move(board_.front());
  board_.pop_front();
  complete_windows_.fetch_sub(1, std::memory_order_release);
  lock.unlock();
  {
    ScopedSpan span(SpanStage::kLaneMerge);
    out.estimate = Pool(window);
  }
  out.window_index = window.decision.window_index;
  out.replaces_previous = window.decision.merged_tail_tasks > 0;
  return true;
}

void LaneMerger::Abort() {
  aborted_.store(true, std::memory_order_release);
  ready_.notify_all();
}

bool LaneMerger::Aborted() const { return aborted_.load(std::memory_order_acquire); }

double LaneMerger::MaxMergeLagSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_merge_lag_seconds_;
}

WindowEstimate LaneMerger::Pool(const PendingWindow& window) const {
  const WindowSpanTracker::SpanDecision& decision = window.decision;
  WindowEstimate estimate;
  estimate.t0 = decision.t0;
  estimate.t1 = decision.t1;
  estimate.tasks = decision.count;
  estimate.merged_tail_tasks = decision.merged_tail_tasks;
  estimate.window_local_arrival_rate = window_local_;

  // Single contributing lane: verbatim copy (see header — the bit-exactness anchor).
  const LaneWindowFit* only = nullptr;
  std::size_t contributing = 0;
  for (const LaneWindowFit& fit : window.fits) {
    if (fit.tasks > 0) {
      ++contributing;
      only = &fit;
    }
  }
  if (contributing == 1 && only->fitted) {
    estimate.rates = only->rates;
    estimate.mean_wait = only->mean_wait;
    estimate.degraded = only->degraded;
    estimate.fit_iterations = only->fit_iterations;
    // One lane held every record, so no other lane's tasks queued here: nothing to
    // correct (and K = 1 must stay bit-exact).
    return estimate;
  }

  // Lambda anchor of the empirical fallback for unfittable lanes: the same origin their
  // fit would have used.
  const double origin = window_local_ ? decision.t0 : 0.0;
  const double span = std::max(decision.t1 - origin, 1e-12);

  estimate.rates.assign(static_cast<std::size_t>(num_queues_), 0.0);
  double weight_sum = 0.0;
  bool any_wait = false;
  double lambda = 0.0;
  // Lane-index order: the pooled value is a pure function of the fits.
  for (const LaneWindowFit& fit : window.fits) {
    if (fit.tasks == 0) {
      continue;  // empty lane window: contributes nothing
    }
    const double weight = static_cast<double>(fit.tasks);
    if (!fit.fitted) {
      // Skipped fit: the lane's share of the arrival process is still real load.
      lambda += weight / span;
      continue;
    }
    lambda += fit.rates[0];
    weight_sum += weight;
    estimate.degraded = estimate.degraded || fit.degraded;
    estimate.fit_iterations += fit.fit_iterations;
    for (std::size_t q = 1; q < fit.rates.size(); ++q) {
      estimate.rates[q] += weight * fit.rates[q];
    }
    if (!fit.mean_wait.empty()) {
      any_wait = true;
    }
  }
  // Every lane sat this window out (each sub-log missed some queue): there is no
  // service-rate estimate to pool, and emitting zeros would silently poison every
  // downstream consumer (the plain estimator fails loudly on such a window, inside
  // StEM's M-step). Reduce the lane count or widen the windows.
  QNET_CHECK(weight_sum > 0.0, "window [", decision.t0, ", ", decision.t1,
             ") has no fittable lane sub-log (every lane's share missed a queue)");
  estimate.rates[0] = lambda;
  for (std::size_t q = 1; q < estimate.rates.size(); ++q) {
    estimate.rates[q] /= weight_sum;
  }
  if (any_wait && weight_sum > 0.0) {
    estimate.mean_wait.assign(static_cast<std::size_t>(num_queues_), 0.0);
    for (const LaneWindowFit& fit : window.fits) {
      if (fit.tasks == 0 || !fit.fitted || fit.mean_wait.empty()) {
        continue;
      }
      const double weight = static_cast<double>(fit.tasks);
      for (std::size_t q = 0; q < fit.mean_wait.size(); ++q) {
        estimate.mean_wait[q] += weight * fit.mean_wait[q];
      }
    }
    for (double& wait : estimate.mean_wait) {
      wait /= weight_sum;
    }
  }

  if (bias_correction_) {
    // Each lane fitted a hash-thinned sub-log, attributing the queueing caused by the
    // OTHER lanes' tasks to service — the pooled service estimate inflates with
    // utilization. Re-invert per queue from the TRUE event arrival rate lambda_q (exact:
    // counts are structure) via the response invariant when waits were pooled, or the
    // thinned-wait model fallback otherwise. See infer/meanfield.h.
    const double window_span = std::max(decision.t1 - decision.t0, 1e-12);
    std::vector<double> lane_shares;
    std::vector<double> lane_weights;
    lane_shares.reserve(window.fits.size());
    lane_weights.reserve(window.fits.size());
    for (std::size_t q = 1; q < estimate.rates.size(); ++q) {
      std::size_t total_count = 0;
      for (const LaneWindowFit& fit : window.fits) {
        if (fit.queue_counts.size() > q) {
          total_count += fit.queue_counts[q];
        }
      }
      if (total_count == 0) {
        continue;
      }
      const double lambda_q = static_cast<double>(total_count) / window_span;
      if (!estimate.mean_wait.empty()) {
        const PooledCorrection corrected =
            CorrectCrossLaneShare(estimate.rates[q], estimate.mean_wait[q], lambda_q);
        estimate.rates[q] = corrected.rate;
        estimate.mean_wait[q] = corrected.wait;
      } else {
        lane_shares.clear();
        lane_weights.clear();
        for (const LaneWindowFit& fit : window.fits) {
          if (fit.tasks == 0 || !fit.fitted || fit.queue_counts.size() <= q) {
            continue;
          }
          lane_shares.push_back(static_cast<double>(fit.queue_counts[q]) /
                                static_cast<double>(total_count));
          lane_weights.push_back(static_cast<double>(fit.tasks));
        }
        estimate.rates[q] =
            ModelCrossLaneServiceRate(estimate.rates[q], lambda_q, lane_shares,
                                      lane_weights);
      }
    }
  }
  return estimate;
}

}  // namespace qnet
