// Monotonic wall-clock stopwatch for bench harnesses.

#ifndef QNET_SUPPORT_STOPWATCH_H_
#define QNET_SUPPORT_STOPWATCH_H_

#include <chrono>

namespace qnet {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qnet

#endif  // QNET_SUPPORT_STOPWATCH_H_
