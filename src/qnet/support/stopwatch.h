// Monotonic wall-clock primitives shared by the bench harnesses and the telemetry
// layer (src/qnet/telemetry/). TimelineClock is THE clock: every wall-clock read in the
// codebase that feeds timing surfaces — stopwatches, telemetry spans, stage histograms,
// bench mains — goes through it, so traces, stats, and benchmarks are mutually
// comparable and the determinism firewall has a single choke point to audit (clock reads
// feed telemetry and stats only, never sampling or estimates).

#ifndef QNET_SUPPORT_STOPWATCH_H_
#define QNET_SUPPORT_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace qnet {

// Monotonic nanosecond clock. Nanoseconds since an arbitrary (per-process) epoch;
// differences are meaningful, absolute values are not.
struct TimelineClock {
  static std::uint64_t NowNanos() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  static double ToSeconds(std::uint64_t nanos) {
    return static_cast<double>(nanos) * 1e-9;
  }
};

class Stopwatch {
 public:
  Stopwatch() : start_(TimelineClock::NowNanos()) {}

  void Reset() { start_ = TimelineClock::NowNanos(); }

  std::uint64_t ElapsedNanos() const { return TimelineClock::NowNanos() - start_; }

  double ElapsedSeconds() const {
    return TimelineClock::ToSeconds(ElapsedNanos());
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::uint64_t start_;
};

}  // namespace qnet

#endif  // QNET_SUPPORT_STOPWATCH_H_
