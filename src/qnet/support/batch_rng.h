// Lane-parallel RNG facade for the batched move kernel.
//
// A (color, shard) bucket of the sharded sweep schedule owns one seed; the batched kernel
// executes the bucket's moves in fixed-width tiles, and each move consumes uniforms from
// the xoshiro stream of its *lane* — lane(rank) = rank mod width, stream seeded
// MixSeed(bucket_seed, lane). Which stream feeds which move is therefore a pure function
// of (bucket_seed, rank, width): never of tile shape, batch timing, or thread placement.
//
// The lane states are stored structure-of-arrays (one array per xoshiro256++ state word,
// indexed by lane) so that FillUniformRow / FillUniformRows advance all active lanes as
// one vectorizable integer sweep — the rotate/xor/shift core has no cross-lane
// dependencies. Per lane the values are the unmodified Rng::Uniform sequence of
// Rng(MixSeed(bucket_seed, lane)): seeding runs the same SplitMix64 expansion as Rng's
// constructor (via SplitMix64Step) and the step is the same xoshiro256++ update, so the
// streams are bit-identical by construction (pinned by the golden-stream tests in
// tests/test_move_batch.cc). Uniform(l) is the scalar one-lane step the reference kernel
// draws from move-at-a-time — same state, same values.
//
// Everything is fixed-capacity and lives wherever the facade is placed (the kernel keeps
// it on the stack), so a bucket's whole RNG state costs zero heap allocations.

#ifndef QNET_SUPPORT_BATCH_RNG_H_
#define QNET_SUPPORT_BATCH_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {

// Hard cap on the tile width of the batched kernel (and so on the lane count here).
inline constexpr std::size_t kMaxBatchWidth = 32;

class BatchRng {
 public:
  // Seeds `width` independent lane streams: lane l runs Rng(MixSeed(bucket_seed, l)).
  BatchRng(std::uint64_t bucket_seed, std::size_t width) : width_(width) {
    QNET_CHECK(width >= 1 && width <= kMaxBatchWidth, "bad batch width: ", width);
    for (std::size_t l = 0; l < width_; ++l) {
      // Mirrors Rng's constructor: four SplitMix64 words, with the same all-zero guard.
      std::uint64_t sm = MixSeed(bucket_seed, static_cast<std::uint64_t>(l));
      s0_[l] = SplitMix64Step(sm);
      s1_[l] = SplitMix64Step(sm);
      s2_[l] = SplitMix64Step(sm);
      s3_[l] = SplitMix64Step(sm);
      if (s0_[l] == 0 && s1_[l] == 0 && s2_[l] == 0 && s3_[l] == 0) {
        s0_[l] = 0x9e3779b97f4a7c15ULL;
      }
    }
  }

  std::size_t Width() const { return width_; }

  // Next Uniform() of lane l alone (the scalar reference path draws from it per move;
  // the batched path drains the same streams through the row fills — same values).
  double Uniform(std::size_t l) {
    QNET_DCHECK(l < width_, "lane out of range: ", l);
    std::uint64_t a = s0_[l], b = s1_[l], c = s2_[l], d = s3_[l];
    const double out = StepLane(a, b, c, d);
    s0_[l] = a;
    s1_[l] = b;
    s2_[l] = c;
    s3_[l] = d;
    return out;
  }

  // out[l] = next Uniform() of lane l, for l < out.size() (the tile's active lanes; the
  // final tile of a bucket is allowed to be narrower than the width). Inactive lanes do
  // not advance.
  void FillUniformRow(std::span<double> out) {
    QNET_DCHECK(out.size() <= width_, "row wider than the lane count");
    for (std::size_t l = 0; l < out.size(); ++l) {
      std::uint64_t a = s0_[l], b = s1_[l], c = s2_[l], d = s3_[l];
      out[l] = StepLane(a, b, c, d);
      s0_[l] = a;
      s1_[l] = b;
      s2_[l] = c;
      s3_[l] = d;
    }
  }

  // Two rows in one sweep: row0[l] then row1[l] are lane l's next two uniforms — the
  // same values two FillUniformRow calls would produce, with each lane's state loaded
  // and stored once. This is the kernel's per-tile draw (u_pick row, then u_inv row).
  void FillUniformRows(std::span<double> row0, std::span<double> row1) {
    QNET_DCHECK(row0.size() == row1.size(), "row length mismatch");
    QNET_DCHECK(row0.size() <= width_, "row wider than the lane count");
    for (std::size_t l = 0; l < row0.size(); ++l) {
      std::uint64_t a = s0_[l], b = s1_[l], c = s2_[l], d = s3_[l];
      row0[l] = StepLane(a, b, c, d);
      row1[l] = StepLane(a, b, c, d);
      s0_[l] = a;
      s1_[l] = b;
      s2_[l] = c;
      s3_[l] = d;
    }
  }

 private:
  static std::uint64_t Rotl64(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  // One xoshiro256++ step over in-register state words: identical arithmetic to
  // Rng::NextU64 + Rng::Uniform, written over locals so the row fills keep each lane's
  // state out of memory between draws.
  static double StepLane(std::uint64_t& a, std::uint64_t& b, std::uint64_t& c,
                         std::uint64_t& d) {
    const std::uint64_t result = Rotl64(a + d, 23) + a;
    const std::uint64_t t = b << 17;
    c ^= a;
    d ^= b;
    b ^= c;
    a ^= d;
    c ^= t;
    d = Rotl64(d, 45);
    return static_cast<double>(result >> 11) * 0x1.0p-53;
  }

  std::size_t width_;
  // xoshiro256++ state word i of lane l at si_[l] (SoA across lanes).
  std::array<std::uint64_t, kMaxBatchWidth> s0_;
  std::array<std::uint64_t, kMaxBatchWidth> s1_;
  std::array<std::uint64_t, kMaxBatchWidth> s2_;
  std::array<std::uint64_t, kMaxBatchWidth> s3_;
};

}  // namespace qnet

#endif  // QNET_SUPPORT_BATCH_RNG_H_
