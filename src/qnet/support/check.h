// Contract-checking macros and the library-wide error type.
//
// QNET_CHECK fires in all build modes and throws qnet::Error so that tests can assert on
// contract violations; QNET_DCHECK compiles out under NDEBUG. Both accept an optional
// message argument that is appended to the diagnostic.

#ifndef QNET_SUPPORT_CHECK_H_
#define QNET_SUPPORT_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace qnet {

// Thrown on contract violations and unrecoverable API misuse.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const std::string& message = "") {
  std::ostringstream os;
  os << "QNET_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

// Builds the optional message lazily so that the happy path pays nothing.
template <typename... Parts>
std::string BuildMessage(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace internal
}  // namespace qnet

#define QNET_CHECK(cond, ...)                                                              \
  do {                                                                                     \
    if (!(cond)) {                                                                         \
      ::qnet::internal::CheckFail(#cond, __FILE__, __LINE__,                               \
                                  ::qnet::internal::BuildMessage("" __VA_OPT__(, ) __VA_ARGS__)); \
    }                                                                                      \
  } while (0)

#ifdef NDEBUG
#define QNET_DCHECK(cond, ...) \
  do {                         \
  } while (0)
#else
#define QNET_DCHECK(cond, ...) QNET_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#endif

#endif  // QNET_SUPPORT_CHECK_H_
