#include "qnet/support/logspace.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

double LogAdd(double a, double b) {
  if (a == kNegInf) {
    return b;
  }
  if (b == kNegInf) {
    return a;
  }
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double LogSub(double a, double b) {
  QNET_CHECK(a >= b, "LogSub requires a >= b; a=", a, " b=", b);
  if (b == kNegInf) {
    return a;
  }
  if (a == b) {
    return kNegInf;
  }
  return a + Log1mExp(a - b);
}

double LogSumExp(std::span<const double> xs) {
  double hi = kNegInf;
  for (double x : xs) {
    hi = std::max(hi, x);
  }
  if (hi == kNegInf || hi == kPosInf) {
    return hi;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += std::exp(x - hi);
  }
  return hi + std::log(sum);
}

double Log1mExp(double u) {
  QNET_DCHECK(u > 0.0, "Log1mExp domain requires u > 0; u=", u);
  // Split at ln 2 to keep either log1p or expm1 well conditioned.
  constexpr double kLn2 = 0.6931471805599453;
  if (u > kLn2) {
    return std::log1p(-std::exp(-u));
  }
  return std::log(-std::expm1(-u));
}

double LogIntegralExpLinear(double alpha, double beta, double lo, double hi) {
  QNET_DCHECK(lo <= hi, "integral bounds reversed: lo=", lo, " hi=", hi);
  if (!(lo < hi)) {
    return kNegInf;
  }
  if (hi == kPosInf) {
    QNET_CHECK(beta < 0.0, "semi-infinite integral requires beta < 0; beta=", beta);
    // Integral = exp(alpha + beta*lo) / (-beta).
    return alpha + beta * lo - std::log(-beta);
  }
  const double width = hi - lo;
  const double u = beta * width;
  // |u| small enough that expm1(u)/u ~= 1 + u/2: integrate as a near-uniform segment.
  if (std::abs(u) < 1e-12) {
    return alpha + beta * lo + std::log(width);
  }
  if (beta > 0.0) {
    // exp(alpha) * (exp(beta*hi) - exp(beta*lo)) / beta, anchored at the large end.
    return alpha + beta * hi + Log1mExp(u) - std::log(beta);
  }
  // beta < 0: anchor at lo where the integrand is largest.
  return alpha + beta * lo + Log1mExp(-u) - std::log(-beta);
}

}  // namespace qnet
