// Minimal command-line flag parsing for the example and benchmark binaries.
//
// Accepts "--key=value", "--key value", and bare "--switch" (boolean true). Unrecognized
// positional arguments are kept in Positional().

#ifndef QNET_SUPPORT_FLAGS_H_
#define QNET_SUPPORT_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace qnet {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;
  long GetInt(const std::string& key, long fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& Positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace qnet

#endif  // QNET_SUPPORT_FLAGS_H_
