#include "qnet/support/math.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStat::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

double RunningStat::Min() const {
  QNET_CHECK(count_ > 0, "Min() of empty RunningStat");
  return min_;
}

double RunningStat::Max() const {
  QNET_CHECK(count_ > 0, "Max() of empty RunningStat");
  return max_;
}

SummaryStats Summarize(std::span<const double> xs) {
  SummaryStats out;
  if (xs.empty()) {
    return out;
  }
  RunningStat rs;
  for (double x : xs) {
    rs.Add(x);
  }
  out.count = rs.Count();
  out.mean = rs.Mean();
  out.variance = rs.Variance();
  out.stddev = rs.Stddev();
  out.min = rs.Min();
  out.max = rs.Max();
  out.median = Median(xs);
  out.q25 = Quantile(xs, 0.25);
  out.q75 = Quantile(xs, 0.75);
  return out;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  RunningStat rs;
  for (double x : xs) {
    rs.Add(x);
  }
  return rs.Variance();
}

double Quantile(std::span<const double> xs, double q) {
  QNET_CHECK(!xs.empty(), "Quantile of empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return QuantileSorted(v, q);
}

double QuantileSorted(std::span<const double> sorted, double q) {
  QNET_CHECK(!sorted.empty(), "Quantile of empty sample");
  QNET_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double Digamma(double x) {
  QNET_CHECK(x > 0.0, "Digamma domain requires x > 0; x=", x);
  double result = 0.0;
  // Upward recurrence until the asymptotic series reaches ~1e-14 accuracy.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // ln x - 1/(2x) - sum_n B_2n / (2n x^{2n}).
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double Trigamma(double x) {
  QNET_CHECK(x > 0.0, "Trigamma domain requires x > 0; x=", x);
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // 1/x + 1/(2x^2) + sum_n B_2n / x^{2n+1}.
  result += inv * (1.0 +
                   inv * (0.5 + inv * (1.0 / 6.0 -
                                       inv2 * (1.0 / 30.0 -
                                               inv2 * (1.0 / 42.0 - inv2 / 30.0)))));
  return result;
}

double KsStatistic(std::vector<double> samples, const std::function<double(double)>& cdf) {
  QNET_CHECK(!samples.empty(), "KS statistic of empty sample");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

double KsPValue(double d, std::size_t n) {
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  // Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) {
      break;
    }
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double MaxFrequencyDeviation(std::span<const std::size_t> counts,
                             std::span<const double> expected_probs) {
  QNET_CHECK(counts.size() == expected_probs.size(), "bin count mismatch");
  std::size_t total = 0;
  for (std::size_t c : counts) {
    total += c;
  }
  QNET_CHECK(total > 0, "no samples");
  double worst = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double freq = static_cast<double>(counts[i]) / static_cast<double>(total);
    worst = std::max(worst, std::abs(freq - expected_probs[i]));
  }
  return worst;
}

}  // namespace qnet
