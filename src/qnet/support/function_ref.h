// Non-owning, trivially-copyable callable reference (the std::function_ref of P0792,
// reduced to what this library needs). Unlike std::function it never heap-allocates:
// capturing lambdas bigger than the small-object buffer made std::function construction a
// per-coordinate allocation in the slice-sampling hot path. The referenced callable must
// outlive the FunctionRef — pass it straight down the call stack only.

#ifndef QNET_SUPPORT_FUNCTION_REF_H_
#define QNET_SUPPORT_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace qnet {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef> &&
                                        std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): mirrors std::function_ref
      : object_(const_cast<void*>(static_cast<const void*>(&f))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return invoke_(object_, std::forward<Args>(args)...); }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace qnet

#endif  // QNET_SUPPORT_FUNCTION_REF_H_
