// Small statistics toolbox: streaming moments, quantiles, special functions, and the
// Kolmogorov-Smirnov machinery used by the distribution-identity property tests.

#ifndef QNET_SUPPORT_MATH_H_
#define QNET_SUPPORT_MATH_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace qnet {

// Welford streaming mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  std::size_t Count() const { return count_; }
  double Mean() const;
  // Unbiased sample variance (n-1 denominator); 0 for fewer than two samples.
  double Variance() const;
  double Stddev() const;
  double Min() const;
  double Max() const;
  double Sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

SummaryStats Summarize(std::span<const double> xs);

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);

// Linear-interpolation quantile of an unsorted sample; q in [0, 1].
double Quantile(std::span<const double> xs, double q);
// Same interpolation on an already-sorted sample; allocation-free (Quantile copies and
// sorts, then delegates here — so sorting in place once and calling this repeatedly is
// bit-identical to repeated Quantile calls).
double QuantileSorted(std::span<const double> sorted, double q);
double Median(std::span<const double> xs);

// Digamma (psi) function, valid for x > 0; asymptotic series with upward recurrence.
double Digamma(double x);
// Trigamma (psi') function, valid for x > 0.
double Trigamma(double x);

// One-sample Kolmogorov-Smirnov statistic against a CDF.
double KsStatistic(std::vector<double> samples, const std::function<double(double)>& cdf);
// Asymptotic KS p-value (Numerical Recipes form with the Stephens small-n correction).
double KsPValue(double d, std::size_t n);

// Two-sided chi-square style helper used by categorical-sampler tests: returns the maximum
// absolute deviation between empirical and expected bin frequencies.
double MaxFrequencyDeviation(std::span<const std::size_t> counts,
                             std::span<const double> expected_probs);

}  // namespace qnet

#endif  // QNET_SUPPORT_MATH_H_
