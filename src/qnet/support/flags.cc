#include "qnet/support/flags.h"

#include <cstdlib>

#include "qnet/support/check.h"

namespace qnet {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::GetString(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Flags::GetInt(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  QNET_CHECK(end != nullptr && *end == '\0', "flag --", key, " is not an integer: ",
             it->second);
  return value;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  QNET_CHECK(end != nullptr && *end == '\0', "flag --", key, " is not a number: ", it->second);
  return value;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace qnet
