#include "qnet/support/task_hash.h"

#include <bit>

#include "qnet/stream/task_record.h"
#include "qnet/support/check.h"

namespace qnet {
namespace {

// Canonical 64-bit encoding of a double: IEEE-754 bits, with -0.0 folded into +0.0 so the
// two representations of zero (a distinction no queueing time carries) hash identically.
std::uint64_t DoubleBits(double x) {
  if (x == 0.0) {
    x = 0.0;
  }
  return std::bit_cast<std::uint64_t>(x);
}

}  // namespace

std::uint64_t HashCombine(std::uint64_t h, std::uint64_t value) {
  // MixSeed's step: one SplitMix64 pass over h offset by (value + 1) golden-ratio
  // increments. Bijective in h for fixed value, and a strong finalizer, so every combined
  // field avalanches through all later steps.
  std::uint64_t x = h + (value + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t TaskHash(const TaskRecord& record) {
  std::uint64_t h = 0x71ee2bd356ad5e3fULL;  // arbitrary fixed domain tag
  h = HashCombine(h, DoubleBits(record.entry_time));
  h = HashCombine(h, static_cast<std::uint64_t>(record.visits.size()));
  for (const TaskVisit& visit : record.visits) {
    // queue/state packed into one word: both are small nonnegative int32s in practice,
    // and -1 sentinels widen to well-defined 0xffffffff.
    const std::uint64_t ids =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(visit.queue)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(visit.state));
    h = HashCombine(h, ids);
    h = HashCombine(h, DoubleBits(visit.arrival));
    h = HashCombine(h, DoubleBits(visit.departure));
  }
  return h;
}

std::size_t TaskLane(std::uint64_t hash, std::size_t lanes) {
  QNET_CHECK(lanes > 0, "TaskLane needs a positive lane count");
  const std::uint64_t n = static_cast<std::uint64_t>(lanes);
#if defined(__SIZEOF_INT128__)
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(hash) * static_cast<unsigned __int128>(n)) >> 64);
#else
  // Portable 64x64 -> high-64 multiply (compilers without __int128, e.g. MSVC x86):
  // identical result, so external partitioners agree regardless of toolchain.
  const std::uint64_t hash_lo = hash & 0xffffffffULL;
  const std::uint64_t hash_hi = hash >> 32;
  const std::uint64_t n_lo = n & 0xffffffffULL;
  const std::uint64_t n_hi = n >> 32;
  const std::uint64_t mid1 = hash_hi * n_lo + ((hash_lo * n_lo) >> 32);
  const std::uint64_t mid2 = hash_lo * n_hi + (mid1 & 0xffffffffULL);
  return static_cast<std::size_t>(hash_hi * n_hi + (mid1 >> 32) + (mid2 >> 32));
#endif
}

}  // namespace qnet
