// Numerically stable log-space arithmetic.
//
// The Gibbs conditional (paper Figure 3) normalizes piecewise-exponential densities whose
// unnormalized masses can differ by hundreds of orders of magnitude; every integral here is
// therefore carried in log space.

#ifndef QNET_SUPPORT_LOGSPACE_H_
#define QNET_SUPPORT_LOGSPACE_H_

#include <cmath>
#include <limits>
#include <span>

#include "qnet/support/check.h"
#include "qnet/support/vmath.h"

namespace qnet {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();
inline constexpr double kPosInf = std::numeric_limits<double>::infinity();

// log(exp(a) + exp(b)) without overflow; handles -inf operands.
double LogAdd(double a, double b);

// log(exp(a) - exp(b)) for a >= b; returns -inf when a == b.
double LogSub(double a, double b);

// log(sum_i exp(x_i)); returns -inf for an empty span.
double LogSumExp(std::span<const double> xs);

// log(1 - exp(-u)) for u > 0, stable near both ends (Maechler 2012).
double Log1mExp(double u);

// log of the integral of exp(alpha + beta * x) over [lo, hi].
//
// Requirements: lo <= hi. hi may be +infinity when beta < 0. Degenerate intervals return
// -inf. Stable for |beta| * (hi - lo) both tiny and huge.
double LogIntegralExpLinear(double alpha, double beta, double lo, double hi);

// Inverse CDF of the density proportional to exp(beta * x) on [lo, hi], evaluated at
// v in [0, 1]. hi may be +infinity when beta < 0. beta == 0 gives the uniform inverse CDF.
//
// This is the final transcendental of every Gibbs move, so it is inline and runs on
// vmath (support/vmath.h) rather than libm: the batched kernel and the scalar reference
// path call this exact function, which is what makes their sampled times bit-identical.
// The cold integration helpers above stay out-of-line on libm.
inline double SampleExpLinear(double beta, double lo, double hi, double v) {
  QNET_DCHECK(v >= 0.0 && v <= 1.0, "v out of [0,1]: ", v);
  QNET_DCHECK(lo < hi, "empty segment: lo=", lo, " hi=", hi);
  QNET_DCHECK(hi != kPosInf || beta < 0.0, "semi-infinite segment requires beta < 0");
  const double width = hi - lo;  // +inf on the unbounded tail
  const double u = beta * width;  // -inf there (beta < 0)
  if (std::abs(u) < 1e-12) {
    return lo + v * width;
  }
  // CDF(x) = (exp(beta*(x-lo)) - 1) / (exp(u) - 1); inverted as
  //   x = lo + log((1-v) + v*exp(u)) / beta.
  // One exp + one log; the unbounded tail needs no arm of its own since exp(-inf) == 0
  // collapses the argument to (1-v), which is exact for v >= 1/2 (Sterbenz) and within an
  // ulp otherwise — an absolute time error of order 1e-16/|beta|, far below the flat
  // threshold's own discretization. Near-flat segments (1e-12 <= |u| << 1) lose relative
  // precision in the log argument's distance from 1, but again only at absolute offset
  // error ~1e-16/|beta|. For large positive u, exp(u) overflows; anchor at hi instead:
  //   x = hi + log(v + (1-v)*exp(-u)) / beta.
  if (u >= 30.0) {
    return hi + vmath::Log(v + (1.0 - v) * vmath::Exp(-u)) / beta;
  }
  return lo + vmath::Log((1.0 - v) + v * vmath::Exp(u)) / beta;
}

}  // namespace qnet

#endif  // QNET_SUPPORT_LOGSPACE_H_
