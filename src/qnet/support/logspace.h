// Numerically stable log-space arithmetic.
//
// The Gibbs conditional (paper Figure 3) normalizes piecewise-exponential densities whose
// unnormalized masses can differ by hundreds of orders of magnitude; every integral here is
// therefore carried in log space.

#ifndef QNET_SUPPORT_LOGSPACE_H_
#define QNET_SUPPORT_LOGSPACE_H_

#include <limits>
#include <span>

namespace qnet {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();
inline constexpr double kPosInf = std::numeric_limits<double>::infinity();

// log(exp(a) + exp(b)) without overflow; handles -inf operands.
double LogAdd(double a, double b);

// log(exp(a) - exp(b)) for a >= b; returns -inf when a == b.
double LogSub(double a, double b);

// log(sum_i exp(x_i)); returns -inf for an empty span.
double LogSumExp(std::span<const double> xs);

// log(1 - exp(-u)) for u > 0, stable near both ends (Maechler 2012).
double Log1mExp(double u);

// log of the integral of exp(alpha + beta * x) over [lo, hi].
//
// Requirements: lo <= hi. hi may be +infinity when beta < 0. Degenerate intervals return
// -inf. Stable for |beta| * (hi - lo) both tiny and huge.
double LogIntegralExpLinear(double alpha, double beta, double lo, double hi);

// Inverse CDF of the density proportional to exp(beta * x) on [lo, hi], evaluated at
// v in [0, 1]. hi may be +infinity when beta < 0. beta == 0 gives the uniform inverse CDF.
double SampleExpLinear(double beta, double lo, double hi, double v);

}  // namespace qnet

#endif  // QNET_SUPPORT_LOGSPACE_H_
