#include "qnet/support/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t salt) {
  // SplitMix64 is a bijection, so for a fixed seed distinct salts map to distinct outputs.
  std::uint64_t x = seed + (salt + 1) * 0x9e3779b97f4a7c15ULL;
  return SplitMix64Step(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64Step(sm);
  }
  // Guard against the (measure-zero but fatal) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  QNET_CHECK(n > 0, "UniformInt requires n > 0");
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::TruncatedExponential(double rate, double lo, double hi) {
  QNET_CHECK(rate > 0.0, "TruncatedExponential rate must be positive: ", rate);
  QNET_CHECK(lo < hi, "TruncatedExponential needs lo < hi; lo=", lo, " hi=", hi);
  return SampleExpLinear(-rate, lo, hi, Uniform());
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  for (;;) {
    const double u = Uniform(-1.0, 1.0);
    const double v = Uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      cached_normal_ = v * factor;
      have_cached_normal_ = true;
      return u * factor;
    }
  }
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Gamma(double shape, double scale) {
  QNET_CHECK(shape > 0.0 && scale > 0.0, "Gamma parameters must be positive");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return scale * d * v;
    }
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::uint64_t Rng::Poisson(double mean) {
  QNET_CHECK(mean >= 0.0, "Poisson mean must be nonnegative: ", mean);
  if (mean == 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = Uniform();
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload generation.
  const double draw = Normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::CategoricalFromLogs(std::span<const double> log_weights) {
  QNET_CHECK(!log_weights.empty(), "Categorical over empty support");
  const double log_z = LogSumExp(log_weights);
  QNET_CHECK(log_z > kNegInf, "all categorical log-weights are -inf");
  double u = Uniform();
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    u -= std::exp(log_weights[i] - log_z);
    if (u < 0.0) {
      return i;
    }
  }
  return log_weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n, std::size_t k) {
  QNET_CHECK(k <= n, "cannot sample ", k, " of ", n, " without replacement");
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; insert t or j on collision.
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(UniformInt(j + 1));
    if (!chosen.insert(t).second) {
      chosen.insert(j);
    }
  }
  std::vector<std::size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace qnet
