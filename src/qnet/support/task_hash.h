// Stable, well-mixed hashing of TaskRecords for stream partitioning.
//
// TaskHash is the partition key of the sharded streaming front-end (shard/lane_router.h):
// it digests a task's physical identity — entry time, visit count, and every visit's
// (queue, state, arrival, departure) — through the same SplitMix64 mixing step as MixSeed,
// so the value is a pure function of the record's bytes:
//   * stable across lane counts: the hash never depends on how many lanes it is later
//     reduced onto, so growing a fleet from 2 to 4 lanes re-shards tasks without any
//     record hashing to a "new" identity;
//   * stable across platforms and standard libraries: only unsigned 64-bit arithmetic and
//     IEEE-754 bit patterns are used (no std::hash, no size_t width dependence), so the
//     same record hashes identically on every host — a requirement for external
//     partitioners (e.g. a collector fleet sharding upstream of this process) to agree
//     with LaneRouter on task placement;
//   * well-mixed: single-bit input changes flip about half the output bits (avalanche),
//     so low-entropy inputs (regular entry times, small queue ids) still spread uniformly.
//
// Observation flags are deliberately excluded: whether a time was *measured* is telemetry
// about a task, not its identity, and an external partitioner may not know the sampling
// scheme. Two records differing only in flags land on the same lane.
//
// TaskLane reduces a hash onto `lanes` buckets with the multiply-shift ("fastrange") map
// lane = floor(hash * lanes / 2^64), which uses the hash's high bits (uniform by the
// avalanche property) and avoids the modulo's bias and its division. It is part of the
// stable contract: external partitioners must use the same reduction.

#ifndef QNET_SUPPORT_TASK_HASH_H_
#define QNET_SUPPORT_TASK_HASH_H_

#include <cstdint>

namespace qnet {

struct TaskRecord;

// One SplitMix64 mixing step folding `value` into `h` (the same bijective step MixSeed
// applies). Exposed so external partitioners can hash their own record encodings
// compatibly.
std::uint64_t HashCombine(std::uint64_t h, std::uint64_t value);

// Digest of the record's physical identity (see file comment for the exact field set).
std::uint64_t TaskHash(const TaskRecord& record);

// Reduces a TaskHash onto [0, lanes) via multiply-shift; lanes must be positive.
std::size_t TaskLane(std::uint64_t hash, std::size_t lanes);

}  // namespace qnet

#endif  // QNET_SUPPORT_TASK_HASH_H_
