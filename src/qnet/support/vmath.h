// Deterministic polynomial transcendentals (exp, log, expm1, log1p), usable one value at
// a time or over a batch.
//
// Why not libm: the Gibbs hot path spends most of its cycles in exp/expm1/log1p calls made
// one scalar at a time, and libm implementations are out-of-line, branchy, and (worse for
// the batched kernel) opaque — there is no guarantee that evaluating the same inputs
// element-wise in a loop produces code the vectorizer can touch. The kernels here are
// written so that the *N-element batch form is literally a loop over the scalar inline
// form*: every lane performs the identical operation sequence, so scalar and batched
// evaluation are bit-identical by construction — the same discipline that keeps the
// sharded sweep bit-identical across thread counts. The build pins -ffp-contract=off
// globally so no TU can fuse a*b+c into an FMA and break that contract between a
// vectorized library TU and a scalar test TU.
//
// Accuracy: a few ulp (argument reduction is Cody–Waite, polynomials are Taylor with one
// guard term past the target precision; see the per-function notes). That is far below
// the statistical noise of any sampler that consumes these values, and the piecewise-
// exponential conditionals tolerate it by design — but it is NOT libm-bit-compatible:
// switching a call site from std::exp to vmath::Exp changes results by ulps, which is why
// the whole sampling path (Finalize + SampleExpLinear) switched in one PR.
//
// Range semantics (documented contract, pinned by tests/test_move_batch.cc):
//  * Exp(x) returns exactly 1.0 at x == 0, +inf above ~709.78, and flushes to exactly 0.0
//    below ~-708.40 (the smallest normal) — matching the piecewise-exp normalizer's
//    historical "masses ~700 nats below the peak underflow to zero weight" behavior, with
//    no denormal tail.
//  * Log(0) = -inf, Log(x<0) = NaN, Log(+inf) = +inf; subnormal inputs are rescaled.
//  * Expm1/Log1p are exact at 0 and defer to Exp/Log outside the cancellation-critical
//    window, so their accuracy degrades gracefully (never catastrophically) at the seam.
//  * NaN propagates through all four.

#ifndef QNET_SUPPORT_VMATH_H_
#define QNET_SUPPORT_VMATH_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

namespace qnet::vmath {

inline constexpr double kVmathNegInf = -std::numeric_limits<double>::infinity();
inline constexpr double kVmathPosInf = std::numeric_limits<double>::infinity();

namespace detail {

// 2^52 + 2^51: adding it to |v| < 2^51 rounds v to the nearest integer (ties to even) and
// leaves that integer in the low mantissa bits — branchless round + truncate in one add.
inline constexpr double kShifter = 6755399441055744.0;
inline constexpr double kLog2E = 1.4426950408889634074;
// ln 2 split so that n * kLn2Hi is exact for |n| <= 2^20 (the high part has zero trailing
// mantissa bits past position 32).
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kLn2 = 6.93147180559945309417e-01;
inline constexpr double kSqrt2 = 1.41421356237309514547;
// exp overflows above this (result would exceed DBL_MAX)...
inline constexpr double kExpOverflow = 709.782712893384;
// ...and flushes to zero below this (result would be subnormal).
inline constexpr double kExpUnderflow = -708.3964185322641;

// exp(j * ln2 / 128) for j = 0..127, correctly rounded. The table turns exp's argument
// reduction into |r| <= ln2/256 ~ 0.0027, where a degree-5 Taylor already has truncation
// error ~5e-19 — a 4-deep dependency chain instead of the 13-deep one a table-free
// reduction to |r| <= ln2/2 needs. 1 KiB, L1-resident on the hot path; the batch form
// turns the lookups into a vector gather.
inline constexpr double kExpTable[128] = {
    0x1.0000000000000p+0, 0x1.0163da9fb3335p+0, 0x1.02c9a3e778061p+0, 0x1.04315e86e7f85p+0,
    0x1.059b0d3158574p+0, 0x1.0706b29ddf6dep+0, 0x1.0874518759bc8p+0, 0x1.09e3ecac6f383p+0,
    0x1.0b5586cf9890fp+0, 0x1.0cc922b7247f7p+0, 0x1.0e3ec32d3d1a2p+0, 0x1.0fb66affed31bp+0,
    0x1.11301d0125b51p+0, 0x1.12abdc06c31ccp+0, 0x1.1429aaea92de0p+0, 0x1.15a98c8a58e51p+0,
    0x1.172b83c7d517bp+0, 0x1.18af9388c8deap+0, 0x1.1a35beb6fcb75p+0, 0x1.1bbe084045cd4p+0,
    0x1.1d4873168b9aap+0, 0x1.1ed5022fcd91dp+0, 0x1.2063b88628cd6p+0, 0x1.21f49917ddc96p+0,
    0x1.2387a6e756238p+0, 0x1.251ce4fb2a63fp+0, 0x1.26b4565e27cddp+0, 0x1.284dfe1f56381p+0,
    0x1.29e9df51fdee1p+0, 0x1.2b87fd0dad990p+0, 0x1.2d285a6e4030bp+0, 0x1.2ecafa93e2f56p+0,
    0x1.306fe0a31b715p+0, 0x1.32170fc4cd831p+0, 0x1.33c08b26416ffp+0, 0x1.356c55f929ff1p+0,
    0x1.371a7373aa9cbp+0, 0x1.38cae6d05d865p+0, 0x1.3a7db34e59ff7p+0, 0x1.3c32dc313a8e4p+0,
    0x1.3dea64c123422p+0, 0x1.3fa4504ac801cp+0, 0x1.4160a21f72e2ap+0, 0x1.431f5d950a897p+0,
    0x1.44e086061892dp+0, 0x1.46a41ed1d0057p+0, 0x1.486a2b5c13cd0p+0, 0x1.4a32af0d7d3dfp+0,
    0x1.4bfdad5362a27p+0, 0x1.4dcb299fddd0dp+0, 0x1.4f9b2769d2ca7p+0, 0x1.516daa2cf6642p+0,
    0x1.5342b569d4f82p+0, 0x1.551a4ca5d920fp+0, 0x1.56f4736b527dap+0, 0x1.58d12d497c7fdp+0,
    0x1.5ab07dd485429p+0, 0x1.5c9268a5946b7p+0, 0x1.5e76f15ad2149p+0, 0x1.605e1b976dc09p+0,
    0x1.6247eb03a5585p+0, 0x1.6434634ccc320p+0, 0x1.6623882552225p+0, 0x1.68155d44ca973p+0,
    0x1.6a09e667f3bccp+0, 0x1.6c012750bdabfp+0, 0x1.6dfb23c651a2fp+0, 0x1.6ff7df9519484p+0,
    0x1.71f75e8ec5f74p+0, 0x1.73f9a48a58174p+0, 0x1.75feb564267c9p+0, 0x1.780694fde5d3fp+0,
    0x1.7a11473eb0187p+0, 0x1.7c1ed0130c133p+0, 0x1.7e2f336cf4e62p+0, 0x1.80427543e1a12p+0,
    0x1.82589994cce13p+0, 0x1.8471a4623c7adp+0, 0x1.868d99b4492ecp+0, 0x1.88ac7d98a6699p+0,
    0x1.8ace5422aa0dbp+0, 0x1.8cf3216b5448cp+0, 0x1.8f1ae99157736p+0, 0x1.9145b0b91ffc5p+0,
    0x1.93737b0cdc5e5p+0, 0x1.95a44cbc8520fp+0, 0x1.97d829fde4e4fp+0, 0x1.9a0f170ca07bap+0,
    0x1.9c49182a3f090p+0, 0x1.9e86319e32323p+0, 0x1.a0c667b5de565p+0, 0x1.a309bec4a2d33p+0,
    0x1.a5503b23e255dp+0, 0x1.a799e1330b359p+0, 0x1.a9e6b5579fdc0p+0, 0x1.ac36bbfd3f379p+0,
    0x1.ae89f995ad3adp+0, 0x1.b0e07298db665p+0, 0x1.b33a2b84f15fbp+0, 0x1.b59728de5593ap+0,
    0x1.b7f76f2fb5e47p+0, 0x1.ba5b030a1064ap+0, 0x1.bcc1e904bc1d2p+0, 0x1.bf2c25bd71e08p+0,
    0x1.c199bdd85529cp+0, 0x1.c40ab5fffd07ap+0, 0x1.c67f12e57d14bp+0, 0x1.c8f6d9406e7b5p+0,
    0x1.cb720dcef9069p+0, 0x1.cdf0b555dc3fap+0, 0x1.d072d4a07897bp+0, 0x1.d2f87080d89f1p+0,
    0x1.d5818dcfba487p+0, 0x1.d80e316c98398p+0, 0x1.da9e603db3285p+0, 0x1.dd321f301b460p+0,
    0x1.dfc97337b9b5fp+0, 0x1.e264614f5a128p+0, 0x1.e502ee78b3ff6p+0, 0x1.e7a51fbc74c83p+0,
    0x1.ea4afa2a490d9p+0, 0x1.ecf482d8e67f0p+0, 0x1.efa1bee615a27p+0, 0x1.f252b376bba97p+0,
    0x1.f50765b6e4541p+0, 0x1.f7bfdad9cbe13p+0, 0x1.fa7c1819e90d8p+0, 0x1.fd3c22b8f71f1p+0,
};

// P(z) with log((1+s)/(1-s)) = s * (2 + z * P(z)), z = s^2. Shared by Log (mantissa in
// [sqrt2/2, sqrt2] gives z <= 0.030) and Log1p (|x| < 0.25 gives z <= 0.013); ten terms
// put the truncation below 3e-17 relative on both ranges.
inline double LogPoly(double z) {
  return z * (2.0 / 3 +
              z * (2.0 / 5 +
                   z * (2.0 / 7 +
                        z * (2.0 / 9 +
                             z * (2.0 / 11 +
                                  z * (2.0 / 13 +
                                       z * (2.0 / 15 +
                                            z * (2.0 / 17 + z * (2.0 / 19 + z * (2.0 / 21))))))))));
}

}  // namespace detail

// exp(x). Branchless core: shift-trick reduction against a 128-entry table, so
// exp(x) = T[n mod 128] * 2^(n div 128) * poly(r) with |r| <= ln2/256 and a degree-5
// polynomial. The 2^m scale is added straight into T[j]'s exponent field — exact, and
// never denormal/overflowed for in-range x because T[j] in [1, 2) keeps the biased
// exponent inside (0, 2047) out to both range limits. The out-of-range selects at the end
// also repair the garbage the core produces for |x| beyond the double range.
inline double Exp(double x) {
  const double fn_shifted = x * (128.0 * detail::kLog2E) + detail::kShifter;
  // Low mantissa bits of the shifted sum are round-to-nearest(x * 128 / ln 2) in two's
  // complement; valid whenever that is < 2^31, which covers every non-overflowing input
  // (the selects below own the rest).
  const auto n = static_cast<std::int32_t>(std::bit_cast<std::uint64_t>(fn_shifted));
  const double fn = fn_shifted - detail::kShifter;
  // Cody–Waite with ln2/128 split hi/lo (the /128 is an exact exponent shift, and
  // |fn| < 2^18 keeps fn * hi exact).
  const double r = (x - fn * (detail::kLn2Hi * 0x1p-7)) - fn * (detail::kLn2Lo * 0x1p-7);
  const double r2 = r * r;
  // 1/k! for k = 0..5; truncation ~5e-19 relative on |r| <= ln2/256.
  const double p =
      1.0 + r + r2 * (1.0 / 2 + r * (1.0 / 6 + r * (1.0 / 24 + r * (1.0 / 120))));
  const std::int64_t j = n & 127;
  const std::int64_t m = n >> 7;
  const double scale = std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(detail::kExpTable[j]) + (static_cast<std::uint64_t>(m) << 52));
  double result = scale * p;
  result = x < detail::kExpUnderflow ? 0.0 : result;   // also catches -inf
  result = x > detail::kExpOverflow ? kVmathPosInf : result;  // also catches +inf
  return result;  // NaN falls through both selects as NaN (r, hence p, is NaN)
}

// log(x): exponent/mantissa split, atanh-form polynomial on [sqrt2/2, sqrt2]. The
// out-of-domain fixups are integer-domain bit blends rather than FP selects: gcc sinks a
// `cond ? constant : expensive_core` select into control flow (skipping the core), which
// its loop if-conversion then refuses to undo — killing vectorization of LogN and Log1pN.
// Masked bit arithmetic never becomes a branch, so the whole body stays straight-line.
inline double Log(double x) {
  // One select rescales subnormals into the normal range (production callers never pass
  // them, but the bit split below would silently misread the exponent).
  const bool tiny = x < std::numeric_limits<double>::min();
  const double xs = tiny ? x * 0x1p54 : x;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(xs);
  std::int64_t e = static_cast<std::int64_t>(bits >> 52) - 1023 + (tiny ? -54 : 0);
  double m = std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFull) | 0x3FF0000000000000ull);
  const bool fold = m > detail::kSqrt2;
  m = fold ? m * 0.5 : m;
  e += fold ? 1 : 0;
  const double s = (m - 1.0) / (m + 1.0);
  const double z = s * s;
  const double log_m = s * (2.0 + detail::LogPoly(z));
  const double k = static_cast<double>(e);
  const double core = k * detail::kLn2Hi + (log_m + k * detail::kLn2Lo);
  // 0 -> -inf; negatives and NaN -> quiet NaN (the !(x >= 0) mask catches both); +inf
  // passes through.
  const std::uint64_t zero_mask = x == 0.0 ? ~0ull : 0ull;
  const std::uint64_t nan_mask = !(x >= 0.0) ? ~0ull : 0ull;
  const std::uint64_t inf_mask = x == kVmathPosInf ? ~0ull : 0ull;
  std::uint64_t r = std::bit_cast<std::uint64_t>(core);
  r = (r & ~zero_mask) | (std::bit_cast<std::uint64_t>(kVmathNegInf) & zero_mask);
  r = (r & ~nan_mask) |
      (std::bit_cast<std::uint64_t>(std::numeric_limits<double>::quiet_NaN()) & nan_mask);
  r = (r & ~inf_mask) | (std::bit_cast<std::uint64_t>(kVmathPosInf) & inf_mask);
  return std::bit_cast<double>(r);
}

// expm1(x): Taylor through x^13/13! on |x| <= 0.35 (truncation ~1e-17 relative), Exp - 1
// outside, where at most ~2 bits cancel. The quotient series q = expm1(x)/x is evaluated
// even/odd in x^2 so the two Horner chains overlap in the pipeline (coefficients are
// 1/(k+1)! for k = 0..12).
inline double Expm1(double x) {
  const double x2 = x * x;
  const double even =
      1.0 +
      x2 * (1.0 / 6 +
            x2 * (1.0 / 120 +
                  x2 * (1.0 / 5040 +
                        x2 * (1.0 / 362880 +
                              x2 * (1.0 / 39916800 + x2 * (1.0 / 6227020800))))));
  const double odd =
      1.0 / 2 +
      x2 * (1.0 / 24 +
            x2 * (1.0 / 720 +
                  x2 * (1.0 / 40320 + x2 * (1.0 / 3628800 + x2 * (1.0 / 479001600)))));
  const double q = even + x * odd;
  const double near = x * q;
  // Non-short-circuit &, and false for NaN so the far arm propagates it.
  const bool use_near = bool(x >= -0.35) & bool(x <= 0.35);
  return use_near ? near : Exp(x) - 1.0;
}

// log1p(x): atanh form on |x| < 0.25; Log(1 + x) outside, where the addition is either
// exact (Sterbenz, x in [-1, -0.5]) or loses well under an ulp of the result. Both arms
// are evaluated and combined with a bit blend for the same reason as Log's fixups: an FP
// select around the expensive Log arm gets sunk into a branch and blocks vectorization.
inline double Log1p(double x) {
  const double s = x / (2.0 + x);
  const double z = s * s;
  const double near = s * (2.0 + detail::LogPoly(z));
  const double far = Log(1.0 + x);  // NaN reaches here (both range compares false) and propagates
  // Non-short-circuit & : the && form introduces a branch that blocks vectorization.
  const bool use_near = bool(x >= -0.25) & bool(x <= 0.25);
  const std::uint64_t near_mask = use_near ? ~0ull : 0ull;
  const std::uint64_t r = (std::bit_cast<std::uint64_t>(near) & near_mask) |
                          (std::bit_cast<std::uint64_t>(far) & ~near_mask);
  return std::bit_cast<double>(r);
}

// Batch forms: literally the scalar kernel mapped over the span (the bit-identity
// contract), written so the compiler may vectorize the loop — every lane is independent
// and the scalar bodies above are branch-free selects.
inline void ExpN(std::span<const double> in, std::span<double> out) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = Exp(in[i]);
  }
}

inline void LogN(std::span<const double> in, std::span<double> out) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = Log(in[i]);
  }
}

inline void Expm1N(std::span<const double> in, std::span<double> out) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = Expm1(in[i]);
  }
}

inline void Log1pN(std::span<const double> in, std::span<double> out) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = Log1p(in[i]);
  }
}

}  // namespace qnet::vmath

#endif  // QNET_SUPPORT_VMATH_H_
