// Deterministic, fork-able random number generator (xoshiro256++ core, SplitMix64 seeding)
// plus the samplers the library needs. No dependency on <random> engines so that streams are
// reproducible across standard libraries.

#ifndef QNET_SUPPORT_RNG_H_
#define QNET_SUPPORT_RNG_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace qnet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  // Raw 64-bit output of the xoshiro256++ core.
  std::uint64_t NextU64();

  // Uniform double in [0, 1) with 53 random bits.
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n); n must be positive. Uses rejection to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t n);
  bool Bernoulli(double p);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);
  // Exponential with the given rate truncated to (lo, hi); hi may be +infinity.
  double TruncatedExponential(double rate, double lo, double hi);

  // Standard normal via the polar (Marsaglia) method with one cached deviate.
  double Normal();
  double Normal(double mean, double stddev);
  double LogNormal(double mu, double sigma);

  // Gamma(shape, scale) via Marsaglia-Tsang, with the standard shape < 1 boost.
  double Gamma(double shape, double scale);

  // Poisson: Knuth product method below mean 30, normal approximation above.
  std::uint64_t Poisson(double mean);

  // Index sampled proportionally to `weights` (nonnegative, not all zero).
  std::size_t Categorical(std::span<const double> weights);
  // Index sampled proportionally to exp(log_weights), stable in log space.
  std::size_t CategoricalFromLogs(std::span<const double> log_weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) {
      return;
    }
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n), returned sorted (Floyd's algorithm).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

  // Derives an independently-seeded generator; the parent stream advances by one draw.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Deterministically combines a seed with a salt (one SplitMix64 step over a golden-ratio
// offset of the pair). Distinct salts yield distinct, well-mixed seeds for the same base
// seed — used to derive independent per-(color, shard) streams from a per-sweep seed so
// that sharded sweeps are a pure function of (seed, color, shard), never of scheduling.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t salt);

}  // namespace qnet

#endif  // QNET_SUPPORT_RNG_H_
