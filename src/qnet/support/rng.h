// Deterministic, fork-able random number generator (xoshiro256++ core, SplitMix64 seeding)
// plus the samplers the library needs. No dependency on <random> engines so that streams are
// reproducible across standard libraries.

#ifndef QNET_SUPPORT_RNG_H_
#define QNET_SUPPORT_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "qnet/support/check.h"

namespace qnet {

// The core generator and the samplers on the DES/Gibbs hot paths (NextU64, Uniform,
// Exponential, Categorical, Bernoulli) are defined inline below the class: every
// simulated event costs a handful of these draws, and keeping them header-visible lets
// the per-event state updates fold into the caller's loop instead of paying a cross-TU
// call per sample. The arithmetic is identical to the historical out-of-line bodies, so
// all pinned streams are unchanged.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  // Raw 64-bit output of the xoshiro256++ core.
  std::uint64_t NextU64();

  // Uniform double in [0, 1) with 53 random bits.
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n); n must be positive. Uses rejection to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t n);
  bool Bernoulli(double p);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);
  // Exponential with the given rate truncated to (lo, hi); hi may be +infinity.
  double TruncatedExponential(double rate, double lo, double hi);

  // Standard normal via the polar (Marsaglia) method with one cached deviate.
  double Normal();
  double Normal(double mean, double stddev);
  double LogNormal(double mu, double sigma);

  // Gamma(shape, scale) via Marsaglia-Tsang, with the standard shape < 1 boost.
  double Gamma(double shape, double scale);

  // Poisson: Knuth product method below mean 30, normal approximation above.
  std::uint64_t Poisson(double mean);

  // Index sampled proportionally to `weights` (nonnegative, not all zero).
  std::size_t Categorical(std::span<const double> weights);
  // Index sampled proportionally to exp(log_weights), stable in log space.
  std::size_t CategoricalFromLogs(std::span<const double> log_weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) {
      return;
    }
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n), returned sorted (Floyd's algorithm).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

  // Derives an independently-seeded generator; the parent stream advances by one draw.
  Rng Fork();

 private:
  static std::uint64_t Rotl64(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<std::uint64_t, 4> state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

inline std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl64(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl64(state_[3], 45);
  return result;
}

inline double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

inline double Rng::Uniform(double lo, double hi) {
  QNET_DCHECK(lo <= hi, "Uniform bounds reversed");
  return lo + (hi - lo) * Uniform();
}

inline bool Rng::Bernoulli(double p) { return Uniform() < p; }

inline double Rng::Exponential(double rate) {
  QNET_CHECK(rate > 0.0, "Exponential rate must be positive: ", rate);
  return -std::log1p(-Uniform()) / rate;
}

inline std::size_t Rng::Categorical(std::span<const double> weights) {
  QNET_CHECK(!weights.empty(), "Categorical over empty support");
  double total = 0.0;
  for (double w : weights) {
    QNET_CHECK(w >= 0.0, "negative categorical weight: ", w);
    total += w;
  }
  QNET_CHECK(total > 0.0, "categorical weights sum to zero");
  double u = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bin.
}

// Deterministically combines a seed with a salt (one SplitMix64 step over a golden-ratio
// offset of the pair). Distinct salts yield distinct, well-mixed seeds for the same base
// seed — used to derive independent per-(color, shard) streams from a per-sweep seed so
// that sharded sweeps are a pure function of (seed, color, shard), never of scheduling.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t salt);

// One SplitMix64 step: advances `x` and returns the mixed output. This is the seeding
// expansion of Rng's constructor, exposed so BatchRng can seed its SoA lane states
// bit-identically to constructing Rng(MixSeed(seed, lane)) per lane.
inline std::uint64_t SplitMix64Step(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace qnet

#endif  // QNET_SUPPORT_RNG_H_
