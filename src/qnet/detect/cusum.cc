#include "qnet/detect/cusum.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

CusumDetector::CusumDetector(const CusumOptions& options) : options_(options) {
  QNET_CHECK(options_.warmup_windows >= 2, "CUSUM needs >= 2 warm-up windows");
  QNET_CHECK(options_.drift >= 0.0, "CUSUM drift must be non-negative");
  QNET_CHECK(options_.threshold > 0.0, "CUSUM threshold must be positive");
  QNET_CHECK(options_.min_relative_sigma > 0.0,
             "CUSUM min_relative_sigma must be positive");
  QNET_CHECK(options_.max_z > 0.0, "CUSUM max_z must be positive");
}

void CusumDetector::Reset() {
  warm_count_ = 0;
  warm_mean_ = 0.0;
  warm_m2_ = 0.0;
  armed_ = false;
  mu0_ = 0.0;
  sigma0_ = 1.0;
  s_pos_ = 0.0;
  s_neg_ = 0.0;
}

void CusumDetector::Arm() {
  mu0_ = warm_mean_;
  const double variance = warm_m2_ / static_cast<double>(warm_count_ - 1);
  const double sigma_floor = options_.min_relative_sigma * std::abs(mu0_);
  sigma0_ = std::max(std::sqrt(std::max(variance, 0.0)), sigma_floor);
  if (sigma0_ <= 0.0 || !std::isfinite(sigma0_)) {
    // Degenerate warm-up (all-zero signal): fall back to an absolute unit scale.
    sigma0_ = 1.0;
  }
  s_pos_ = 0.0;
  s_neg_ = 0.0;
  armed_ = true;
}

CusumDetector::Result CusumDetector::Observe(double x) {
  Result result;
  if (!armed_) {
    ++warm_count_;
    const double delta = x - warm_mean_;
    warm_mean_ += delta / static_cast<double>(warm_count_);
    warm_m2_ += delta * (x - warm_mean_);
    if (warm_count_ >= options_.warmup_windows) {
      Arm();
    }
    return result;
  }

  const double z =
      std::clamp((x - mu0_) / sigma0_, -options_.max_z, options_.max_z);
  s_pos_ = std::max(0.0, s_pos_ + z - options_.drift);
  s_neg_ = std::max(0.0, s_neg_ - z - options_.drift);

  if (s_pos_ > options_.threshold || s_neg_ > options_.threshold) {
    result.alert = true;
    result.statistic = s_pos_ >= s_neg_ ? s_pos_ : -s_neg_;
    const double denom = std::abs(mu0_) > 0.0 ? std::abs(mu0_) : 1.0;
    result.magnitude = (x - mu0_) / denom;
    // Re-baseline onto the post-change level: forget the old baseline and restart
    // warm-up so the detector stays sensitive to the next shift.
    Reset();
  }
  return result;
}

}  // namespace qnet
