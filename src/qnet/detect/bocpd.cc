#include "qnet/detect/bocpd.h"

#include <algorithm>
#include <cmath>

#include "qnet/support/check.h"

namespace qnet {

namespace {

// Student-t density with df degrees of freedom, location loc, squared scale scale2.
double StudentTPdf(double x, double df, double loc, double scale2) {
  const double z2 = (x - loc) * (x - loc) / scale2;
  const double log_norm = std::lgamma(0.5 * (df + 1.0)) - std::lgamma(0.5 * df) -
                          0.5 * std::log(df * M_PI * scale2);
  const double log_kernel = -0.5 * (df + 1.0) * std::log1p(z2 / df);
  return std::exp(log_norm + log_kernel);
}

}  // namespace

BocpdDetector::BocpdDetector(const BocpdOptions& options) : options_(options) {
  QNET_CHECK(options_.max_run_length >= 4, "BOCPD needs max_run_length >= 4");
  QNET_CHECK(options_.hazard > 0.0 && options_.hazard < 1.0,
             "BOCPD hazard must lie in (0, 1)");
  QNET_CHECK(options_.warmup_windows >= 2, "BOCPD needs >= 2 warm-up windows");
  QNET_CHECK(options_.alert_run_length + 1 < options_.max_run_length,
             "BOCPD alert_run_length must be below the truncation length");
  QNET_CHECK(options_.alert_mass > 0.0 && options_.alert_mass < 1.0,
             "BOCPD alert_mass must lie in (0, 1)");
  QNET_CHECK(options_.min_relative_sigma > 0.0,
             "BOCPD min_relative_sigma must be positive");
  const std::size_t n = options_.max_run_length;
  weight_.resize(n);
  mu_.resize(n);
  kappa_.resize(n);
  alpha_.resize(n);
  beta_.resize(n);
  next_weight_.resize(n);
  next_mu_.resize(n);
  next_kappa_.resize(n);
  next_alpha_.resize(n);
  next_beta_.resize(n);
}

void BocpdDetector::Reset() {
  warm_count_ = 0;
  warm_mean_ = 0.0;
  warm_m2_ = 0.0;
  armed_ = false;
  live_ = 0;
  since_alert_ = 0;
  collapse_mass_ = 0.0;
}

void BocpdDetector::Arm() {
  mu0_ = warm_mean_;
  const double variance = warm_m2_ / static_cast<double>(warm_count_ - 1);
  const double sigma_floor = options_.min_relative_sigma * std::abs(mu0_);
  double sigma2 = std::max(variance, sigma_floor * sigma_floor);
  if (sigma2 <= 0.0 || !std::isfinite(sigma2)) {
    sigma2 = 1.0;
  }
  kappa0_ = 1.0;
  alpha0_ = 1.0;
  beta0_ = sigma2;
  // Single hypothesis: a fresh run starting now, under the warm-up prior.
  weight_[0] = 1.0;
  mu_[0] = mu0_;
  kappa_[0] = kappa0_;
  alpha_[0] = alpha0_;
  beta_[0] = beta0_;
  live_ = 1;
  // Freshly armed, ALL mass sits at r = 0 by construction — that is not a change
  // point. The cooldown plus the live_-depth gate in Observe suppress alerts until the
  // posterior has had room to grow past the collapse horizon.
  since_alert_ = 0;
  armed_ = true;
}

BocpdDetector::Result BocpdDetector::Observe(double x) {
  Result result;
  if (!armed_) {
    ++warm_count_;
    const double delta = x - warm_mean_;
    warm_mean_ += delta / static_cast<double>(warm_count_);
    warm_m2_ += delta * (x - warm_mean_);
    if (warm_count_ >= options_.warmup_windows) {
      Arm();
    }
    return result;
  }

  const double h = options_.hazard;
  const std::size_t cap = options_.max_run_length;
  const std::size_t next_live = std::min(live_ + 1, cap);
  for (std::size_t r = 0; r < next_live; ++r) {
    next_weight_[r] = 0.0;
  }

  // Longest-run posterior mean before the update — the most stable baseline for the
  // alert magnitude.
  const double baseline = mu_[live_ - 1];

  double change_mass = 0.0;
  // Descending so that when two runs fold into the truncation slot, the longest run
  // (most data behind its posterior) writes the slot's parameters.
  for (std::size_t i = live_; i-- > 0;) {
    const std::size_t r = i;
    const double df = 2.0 * alpha_[r];
    const double scale2 = beta_[r] * (kappa_[r] + 1.0) / (alpha_[r] * kappa_[r]);
    const double pred = StudentTPdf(x, df, mu_[r], scale2);
    const double joint = weight_[r] * pred;
    change_mass += joint * h;
    // Growth: run r survives and absorbs x. Truncation folds overflow into the oldest
    // slot, whose posterior parameters (first writer — the longest run, thanks to the
    // descending sweep) stand in for all folded hypotheses.
    const std::size_t target = std::min(r + 1, cap - 1);
    if (next_weight_[target] == 0.0) {
      const double kappa = kappa_[r];
      next_mu_[target] = (kappa * mu_[r] + x) / (kappa + 1.0);
      next_kappa_[target] = kappa + 1.0;
      next_alpha_[target] = alpha_[r] + 0.5;
      next_beta_[target] =
          beta_[r] + kappa * (x - mu_[r]) * (x - mu_[r]) / (2.0 * (kappa + 1.0));
    }
    next_weight_[target] += joint * (1.0 - h);
  }
  // Change point: a fresh run under the prior.
  next_weight_[0] = change_mass;
  next_mu_[0] = mu0_;
  next_kappa_[0] = kappa0_;
  next_alpha_[0] = alpha0_;
  next_beta_[0] = beta0_;

  double total = 0.0;
  for (std::size_t r = 0; r < next_live; ++r) {
    total += next_weight_[r];
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    // Numerically dead posterior (e.g. an observation far outside every predictive's
    // support): restart from the prior rather than propagate NaNs.
    weight_[0] = 1.0;
    mu_[0] = mu0_;
    kappa_[0] = kappa0_;
    alpha_[0] = alpha0_;
    beta_[0] = beta0_;
    live_ = 1;
    collapse_mass_ = 1.0;
  } else {
    for (std::size_t r = 0; r < next_live; ++r) {
      weight_[r] = next_weight_[r] / total;
      mu_[r] = next_mu_[r];
      kappa_[r] = next_kappa_[r];
      alpha_[r] = next_alpha_[r];
      beta_[r] = next_beta_[r];
    }
    live_ = next_live;
    double mass = 0.0;
    const std::size_t short_runs = std::min(options_.alert_run_length + 1, live_);
    for (std::size_t r = 0; r < short_runs; ++r) {
      mass += weight_[r];
    }
    collapse_mass_ = mass;
  }

  if (since_alert_ < options_.cooldown_windows) {
    ++since_alert_;
    return result;
  }
  // A posterior that cannot yet hold a run longer than the collapse horizon has its
  // mass on short runs trivially, not because of a change.
  if (live_ <= options_.alert_run_length + 1) {
    return result;
  }
  if (collapse_mass_ > options_.alert_mass) {
    result.alert = true;
    result.statistic = collapse_mass_;
    const double denom = std::abs(baseline) > 0.0 ? std::abs(baseline) : 1.0;
    result.magnitude = (x - baseline) / denom;
    since_alert_ = 0;
  }
  return result;
}

}  // namespace qnet
