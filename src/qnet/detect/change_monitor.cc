#include "qnet/detect/change_monitor.h"

#include <cmath>

#include "qnet/support/check.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

ChangeMonitor::ChangeMonitor(int num_queues, const ChangeMonitorOptions& options)
    : num_queues_(num_queues),
      options_(options),
      state_{CusumDetector(options.rate_cusum), BocpdDetector(options.rate_bocpd),
             {}, {}},
      sink_(options.reserve_alerts) {
  QNET_CHECK(num_queues_ >= 2, "ChangeMonitor needs >= 2 queues (lambda + service)");
  QNET_CHECK(options_.bottleneck_margin >= 1.0,
             "bottleneck_margin must be >= 1 (a factor over the incumbent)");
  QNET_CHECK(options_.bottleneck_hold_windows >= 1,
             "bottleneck_hold_windows must be >= 1");
  state_.service_cusum.assign(static_cast<std::size_t>(num_queues_),
                              CusumDetector(options_.service_cusum));
  state_.wait_cusum.assign(static_cast<std::size_t>(num_queues_),
                           CusumDetector(options_.wait_cusum));
  prev_state_ = state_;
  masks_.reserve(options_.reserve_windows);
}

std::function<void(const WindowEstimate&)> ChangeMonitor::Hook() {
  return [this](const WindowEstimate& estimate) { Observe(estimate); };
}

double ChangeMonitor::ArrivalSignal(const WindowEstimate& estimate) const {
  if (estimate.window_local_arrival_rate) {
    return estimate.rates[0];
  }
  // Legacy absolute-anchored lambda decays over the stream; substitute the window's
  // empirical rate (same policy as WindowForecaster).
  const double span = estimate.t1 - estimate.t0;
  return span > 0.0 ? static_cast<double>(estimate.tasks) / span : estimate.rates[0];
}

void ChangeMonitor::Observe(const WindowEstimate& estimate) {
  ScopedSpan span(SpanStage::kDetectObserve);
  QNET_CHECK(estimate.rates.size() == static_cast<std::size_t>(num_queues_),
             "estimate rate vector does not match ChangeMonitor num_queues");
  if (estimate.merged_tail_tasks > 0 && !masks_.empty()) {
    // This estimate REPLACES the previous window: rewind to the pre-observation
    // snapshot and re-observe, so the alert sequence is a pure function of the final
    // estimate sequence. Same-shape copies — no allocation.
    state_ = prev_state_;
    sink_.TruncateTo(prev_alert_count_);
    masks_.pop_back();
  }
  prev_state_ = state_;
  prev_alert_count_ = sink_.Count();

  const std::size_t window = masks_.size();
  masks_.push_back(RunDetectors(estimate, window));
  DetectCounters::Get().windows_observed->Increment();
}

std::uint32_t ChangeMonitor::RunDetectors(const WindowEstimate& estimate,
                                          std::size_t window) {
  std::uint32_t mask = 0;
  Alert alert;
  alert.window = window;
  alert.t0 = estimate.t0;
  alert.t1 = estimate.t1;

  // Arrival rate: CUSUM, plus BOCPD when enabled.
  const double lambda = ArrivalSignal(estimate);
  {
    const CusumDetector::Result r = state_.rate_cusum.Observe(lambda);
    if (r.alert) {
      alert.kind = AlertKind::kRateShift;
      alert.detector = DetectorKind::kCusum;
      alert.queue = 0;
      alert.magnitude = r.magnitude;
      alert.statistic = r.statistic;
      sink_.Raise(alert);
      mask |= AlertBit(AlertKind::kRateShift);
    }
  }
  if (options_.enable_bocpd) {
    const BocpdDetector::Result r = state_.rate_bocpd.Observe(lambda);
    if (r.alert) {
      alert.kind = AlertKind::kRateShift;
      alert.detector = DetectorKind::kBocpd;
      alert.queue = 0;
      alert.magnitude = r.magnitude;
      alert.statistic = r.statistic;
      sink_.Raise(alert);
      mask |= AlertBit(AlertKind::kRateShift);
    }
  }

  // Per-queue service rates and (when present) mean waits.
  const bool has_waits =
      options_.monitor_waits &&
      estimate.mean_wait.size() == static_cast<std::size_t>(num_queues_);
  for (int q = 1; q < num_queues_; ++q) {
    const CusumDetector::Result r =
        state_.service_cusum[static_cast<std::size_t>(q)].Observe(estimate.rates[q]);
    if (r.alert) {
      alert.kind = AlertKind::kServiceDrift;
      alert.detector = DetectorKind::kCusum;
      alert.queue = q;
      alert.magnitude = r.magnitude;
      alert.statistic = r.statistic;
      sink_.Raise(alert);
      mask |= AlertBit(AlertKind::kServiceDrift);
    }
    if (has_waits) {
      const CusumDetector::Result w =
          state_.wait_cusum[static_cast<std::size_t>(q)].Observe(estimate.mean_wait[q]);
      if (w.alert) {
        alert.kind = AlertKind::kServiceDrift;
        alert.detector = DetectorKind::kCusum;
        alert.queue = q;
        alert.magnitude = w.magnitude;
        alert.statistic = w.statistic;
        sink_.Raise(alert);
        mask |= AlertBit(AlertKind::kServiceDrift);
      }
    }
  }

  // Bottleneck migration: utilization proxy rho_q = lambda / mu_q (exact for
  // single-visit tandem routing), argmax with margin + hold hysteresis.
  int argmax = -1;
  double rho_max = 0.0;
  for (int q = 1; q < num_queues_; ++q) {
    const double mu = estimate.rates[q];
    if (!(mu > 0.0)) {
      continue;
    }
    const double rho = lambda / mu;
    if (rho > rho_max) {
      rho_max = rho;
      argmax = q;
    }
  }
  if (argmax >= 0) {
    if (state_.bottleneck < 0) {
      state_.bottleneck = argmax;  // first usable window fixes the incumbent silently
    } else if (argmax != state_.bottleneck) {
      const double mu_inc = estimate.rates[state_.bottleneck];
      const double rho_inc = mu_inc > 0.0 ? lambda / mu_inc : 0.0;
      if (rho_max > options_.bottleneck_margin * rho_inc) {
        if (state_.candidate == argmax) {
          ++state_.candidate_streak;
        } else {
          state_.candidate = argmax;
          state_.candidate_streak = 1;
        }
        if (state_.candidate_streak >= options_.bottleneck_hold_windows) {
          alert.kind = AlertKind::kBottleneckMigration;
          alert.detector = DetectorKind::kBottleneckTracker;
          alert.queue = argmax;
          alert.magnitude = rho_inc > 0.0 ? rho_max / rho_inc : rho_max;
          alert.statistic = static_cast<double>(state_.candidate_streak);
          sink_.Raise(alert);
          mask |= AlertBit(AlertKind::kBottleneckMigration);
          state_.bottleneck = argmax;
          state_.candidate = -1;
          state_.candidate_streak = 0;
        }
      } else {
        state_.candidate = -1;
        state_.candidate_streak = 0;
      }
    } else {
      state_.candidate = -1;
      state_.candidate_streak = 0;
    }
  }

  // Degraded-run edge.
  if (options_.alert_on_degraded && estimate.degraded && !state_.was_degraded) {
    alert.kind = AlertKind::kDegradedRun;
    alert.detector = DetectorKind::kDegradeWatch;
    alert.queue = 0;
    alert.magnitude = 0.0;
    alert.statistic = 1.0;
    sink_.Raise(alert);
    mask |= AlertBit(AlertKind::kDegradedRun);
  }
  state_.was_degraded = estimate.degraded;

  return mask;
}

void ChangeMonitor::ApplyAlertFlags(std::vector<WindowEstimate>& estimates) const {
  QNET_CHECK(estimates.size() == masks_.size(),
             "ApplyAlertFlags: estimate sequence length (", estimates.size(),
             ") does not match observed windows (", masks_.size(), ")");
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    estimates[i].alerts = masks_[i];
  }
}

}  // namespace qnet
