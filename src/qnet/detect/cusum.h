// Two-sided CUSUM level-shift detector over a scalar per-window signal.
//
// The detector self-calibrates: the first `warmup_windows` observations feed a Welford
// accumulator that fixes the baseline mean mu0 and noise scale sigma0 (floored at
// `min_relative_sigma * |mu0|` so near-noiseless warm-ups — e.g. mean-field estimates
// on a stationary stream — don't make every later wiggle look like a shift). After
// arming, each observation is standardized, z = (x - mu0) / sigma0, clamped to
// ±`max_z`, and folded into the classic one-sided sums
//
//   S+ = max(0, S+ + z - drift)      S- = max(0, S- - z - drift)
//
// with an alert when either exceeds `threshold`. The drift parameter absorbs shifts
// smaller than ~drift·sigma0; threshold sets the run length to false alarm. After an
// alert the detector re-enters warm-up, so it re-baselines onto the post-change level
// and can detect the next shift (or the recovery).
//
// Everything is scalar state — copying a CusumDetector is trivial and allocation-free,
// which is what ChangeMonitor's merged-tail rewind relies on.

#ifndef QNET_DETECT_CUSUM_H_
#define QNET_DETECT_CUSUM_H_

#include <cstddef>

namespace qnet {

struct CusumOptions {
  // Observations used to fix the baseline before the detector arms. Alerts can never
  // fire during warm-up, which is what makes a quiet prefix provably alert-free.
  std::size_t warmup_windows = 8;
  // Standardized slack per window; shifts below ~drift sigma are absorbed.
  double drift = 0.5;
  // Alert when S+ or S- exceeds this (in sigma units).
  double threshold = 5.0;
  // Floor on sigma0 relative to |mu0|, guarding against a degenerate warm-up.
  double min_relative_sigma = 0.05;
  // Standardized observations are clamped to [-max_z, max_z] so a single wild window
  // cannot both arm and fire the sums past any bound in one step unbounded.
  double max_z = 16.0;
};

class CusumDetector {
 public:
  struct Result {
    bool alert = false;
    // Signed relative shift (x - mu0) / |mu0| at the alert (0 when not alerting).
    double magnitude = 0.0;
    // The winning CUSUM sum, signed: +S+ for an upward shift, -S- for downward.
    double statistic = 0.0;
  };

  explicit CusumDetector(const CusumOptions& options = CusumOptions());

  // Feed one per-window observation; returns the alert decision for this window.
  Result Observe(double x);

  // Back to cold warm-up (baseline forgotten).
  void Reset();

  // True once warm-up completed and the sums are live.
  bool Armed() const { return armed_; }
  double BaselineMean() const { return mu0_; }
  double BaselineSigma() const { return sigma0_; }

 private:
  void Arm();

  CusumOptions options_;
  // Welford warm-up accumulator.
  std::size_t warm_count_ = 0;
  double warm_mean_ = 0.0;
  double warm_m2_ = 0.0;
  // Armed baseline and sums.
  bool armed_ = false;
  double mu0_ = 0.0;
  double sigma0_ = 1.0;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
};

}  // namespace qnet

#endif  // QNET_DETECT_CUSUM_H_
