// Alert taxonomy for the online change-detection layer.
//
// An Alert is a typed, deterministic statement that a detector crossed its decision
// boundary at a specific window of the estimate stream. Alerts carry full provenance —
// the window index within the monitored sequence, the window's [t0, t1) span in sim
// time, the queue the signal belongs to, and the detector statistic that fired — so a
// consumer can trace every alert back to the exact WindowEstimate that caused it.
//
// Determinism contract: alerts are a pure function of the WindowEstimate sequence a
// ChangeMonitor observes. The pooled estimate sequence is bit-identical across sweep
// threads, pipelining, and lane counts at fixed K (the standing streaming invariant),
// so the alert sequence is too. Nothing in this layer feeds back into sampling.
//
// AlertKind doubles as a bitmask (1u << kind) so a window's alert set packs into the
// WindowEstimate::alerts field and survives the trace/window_csv round-trip.

#ifndef QNET_DETECT_ALERTS_H_
#define QNET_DETECT_ALERTS_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qnet {

enum class AlertKind : std::uint8_t {
  kRateShift = 0,         // arrival-rate level change (CUSUM or BOCPD on lambda)
  kServiceDrift,          // service-rate level change at one queue
  kBottleneckMigration,   // utilization argmax moved to a different queue and held
  kDegradedRun,           // estimator emitted a degraded (fallback-path) window
  kNumAlertKinds,
};

inline constexpr std::size_t kNumAlertKinds =
    static_cast<std::size_t>(AlertKind::kNumAlertKinds);

// Bit of AlertKind `kind` in a WindowEstimate::alerts mask.
inline constexpr std::uint32_t AlertBit(AlertKind kind) {
  return 1u << static_cast<std::uint32_t>(kind);
}

enum class DetectorKind : std::uint8_t {
  kCusum = 0,          // two-sided CUSUM over a scalar signal
  kBocpd,              // Bayesian online change-point detection (run-length collapse)
  kBottleneckTracker,  // hysteresis tracker over the utilization argmax
  kDegradeWatch,       // passthrough of the estimator's degraded flag
  kNumDetectorKinds,
};

// Stable short names ("rate_shift", "cusum", ...) for tables, CSV, and logs.
const char* AlertKindName(AlertKind kind);
const char* DetectorKindName(DetectorKind kind);

struct Alert {
  AlertKind kind = AlertKind::kRateShift;
  DetectorKind detector = DetectorKind::kCusum;
  // Index of the triggering window within the monitored estimate sequence (0-based,
  // counting emitted windows; a merged-tail re-emission keeps its window's index).
  std::size_t window = 0;
  double t0 = 0.0;  // triggering window's span in sim time
  double t1 = 0.0;
  // Queue the signal belongs to. Queue 0 is the entry queue; arrival-rate alerts use
  // queue 0, bottleneck migration reports the NEW argmax queue.
  int queue = 0;
  // Signed relative shift of the signal against the detector's baseline,
  // (x - baseline) / |baseline|. Bottleneck migration reports the utilization ratio
  // new_argmax / old_argmax instead.
  double magnitude = 0.0;
  // The detector statistic that crossed the boundary (CUSUM S, BOCPD collapse mass,
  // consecutive-window streak for the bottleneck tracker, 1 for degraded runs).
  double statistic = 0.0;
};

// Append-only alert log with per-kind tallies. Raise() also increments the global
// DetectCounters, so alerts surface through the MetricRegistry exporters without any
// extra plumbing. Capacity is reserved up front; growth beyond the reservation is
// amortized vector growth (setup-sized runs never hit it on the per-window path).
class AlertSink {
 public:
  explicit AlertSink(std::size_t reserve_alerts = 256);

  void Raise(const Alert& alert);

  const std::vector<Alert>& alerts() const { return alerts_; }
  std::size_t Count() const { return alerts_.size(); }
  std::size_t CountOfKind(AlertKind kind) const {
    return kind_counts_[static_cast<std::size_t>(kind)];
  }

  // Rewind to the first `count` alerts (merged-tail re-observation support).
  void TruncateTo(std::size_t count);

  void Clear();

 private:
  std::vector<Alert> alerts_;
  std::size_t kind_counts_[kNumAlertKinds] = {};
};

// Writes an alert log as CSV with a `# alerts=N` meta line and one row per alert:
//   window,kind,detector,queue,t0,t1,magnitude,statistic
// Kind and detector are written as their stable names. 17-digit precision so the
// doubles round-trip bit-exactly.
void WriteAlertsCsv(std::ostream& os, const std::vector<Alert>& alerts);
void WriteAlertsCsvFile(const std::string& path, const std::vector<Alert>& alerts);

}  // namespace qnet

#endif  // QNET_DETECT_ALERTS_H_
