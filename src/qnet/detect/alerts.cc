#include "qnet/detect/alerts.h"

#include <fstream>
#include <ostream>

#include "qnet/support/check.h"
#include "qnet/telemetry/metrics.h"

namespace qnet {

const char* AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kRateShift:
      return "rate_shift";
    case AlertKind::kServiceDrift:
      return "service_drift";
    case AlertKind::kBottleneckMigration:
      return "bottleneck_migration";
    case AlertKind::kDegradedRun:
      return "degraded_run";
    case AlertKind::kNumAlertKinds:
      break;
  }
  QNET_CHECK(false, "bad AlertKind");
  return "";
}

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kCusum:
      return "cusum";
    case DetectorKind::kBocpd:
      return "bocpd";
    case DetectorKind::kBottleneckTracker:
      return "bottleneck_tracker";
    case DetectorKind::kDegradeWatch:
      return "degrade_watch";
    case DetectorKind::kNumDetectorKinds:
      break;
  }
  QNET_CHECK(false, "bad DetectorKind");
  return "";
}

AlertSink::AlertSink(std::size_t reserve_alerts) { alerts_.reserve(reserve_alerts); }

void AlertSink::Raise(const Alert& alert) {
  alerts_.push_back(alert);
  ++kind_counts_[static_cast<std::size_t>(alert.kind)];
  const DetectCounters& c = DetectCounters::Get();
  c.alerts_total->Increment();
  switch (alert.kind) {
    case AlertKind::kRateShift:
      c.rate_shift_alerts->Increment();
      break;
    case AlertKind::kServiceDrift:
      c.service_drift_alerts->Increment();
      break;
    case AlertKind::kBottleneckMigration:
      c.bottleneck_migration_alerts->Increment();
      break;
    case AlertKind::kDegradedRun:
      c.degraded_run_alerts->Increment();
      break;
    case AlertKind::kNumAlertKinds:
      QNET_CHECK(false, "bad AlertKind");
  }
}

void AlertSink::TruncateTo(std::size_t count) {
  QNET_CHECK(count <= alerts_.size(), "AlertSink::TruncateTo beyond current size");
  while (alerts_.size() > count) {
    --kind_counts_[static_cast<std::size_t>(alerts_.back().kind)];
    alerts_.pop_back();
  }
}

void AlertSink::Clear() {
  alerts_.clear();
  for (std::size_t& c : kind_counts_) {
    c = 0;
  }
}

void WriteAlertsCsv(std::ostream& os, const std::vector<Alert>& alerts) {
  os << "# alerts=" << alerts.size() << '\n';
  os << "window,kind,detector,queue,t0,t1,magnitude,statistic\n";
  const std::streamsize caller_precision = os.precision(17);
  for (const Alert& alert : alerts) {
    os << alert.window << ',' << AlertKindName(alert.kind) << ','
       << DetectorKindName(alert.detector) << ',' << alert.queue << ',' << alert.t0
       << ',' << alert.t1 << ',' << alert.magnitude << ',' << alert.statistic << '\n';
  }
  os.precision(caller_precision);
}

void WriteAlertsCsvFile(const std::string& path, const std::vector<Alert>& alerts) {
  std::ofstream os(path);
  QNET_CHECK(os.good(), "cannot open ", path, " for writing");
  WriteAlertsCsv(os, alerts);
}

}  // namespace qnet
