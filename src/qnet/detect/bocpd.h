// Bayesian online change-point detection (BOCPD) over a scalar per-window signal.
//
// Adams & MacKay-style run-length filtering: the detector maintains a posterior over
// the current run length r (windows since the last change point) under a constant
// hazard h. Each run-length hypothesis carries a Normal-Gamma conjugate posterior over
// the segment's (mean, precision), so the one-step predictive is a Student-t and the
// update is closed-form. The run-length distribution is truncated at
// `max_run_length` hypotheses (overflow mass folds into the oldest slot), which makes
// every per-window update a fixed-size array sweep: no allocation, no data-dependent
// work, and copying the whole detector (for ChangeMonitor's merged-tail rewind) is a
// same-size vector copy that never reallocates.
//
// The alert rule is run-length collapse: after warm-up fixes the prior, an alert fires
// when the posterior mass on short runs, P(r <= alert_run_length), exceeds
// `alert_mass`. A change point drags most of the posterior mass to r ~ 0 within a
// couple of windows; on a stationary stream the mass on short runs decays toward the
// hazard. `cooldown_windows` suppresses the residual collapse mass right after an
// alert so one change point yields one alert. Unlike CUSUM the filter is not reset on
// alert — BOCPD re-adapts to the post-change level by construction.

#ifndef QNET_DETECT_BOCPD_H_
#define QNET_DETECT_BOCPD_H_

#include <cstddef>
#include <vector>

namespace qnet {

struct BocpdOptions {
  // Truncation length of the run-length posterior (array sizes; fixed at construction).
  std::size_t max_run_length = 64;
  // Constant per-window change-point hazard.
  double hazard = 0.01;
  // Observations used to fix the Normal-Gamma prior before alerts can fire.
  std::size_t warmup_windows = 8;
  // Alert when P(run length <= alert_run_length) exceeds alert_mass...
  std::size_t alert_run_length = 2;
  double alert_mass = 0.7;
  // ...but not within this many windows of the previous alert.
  std::size_t cooldown_windows = 4;
  // Floor on the prior segment sigma relative to |prior mean| (degenerate warm-ups).
  double min_relative_sigma = 0.05;
};

class BocpdDetector {
 public:
  struct Result {
    bool alert = false;
    // Signed relative shift of x against the longest-run posterior mean at the alert.
    double magnitude = 0.0;
    // P(r <= alert_run_length) at the alert (0 when not alerting).
    double statistic = 0.0;
  };

  explicit BocpdDetector(const BocpdOptions& options = BocpdOptions());

  // Feed one per-window observation; returns the alert decision for this window.
  Result Observe(double x);

  void Reset();

  bool Armed() const { return armed_; }
  // Posterior mass on run lengths <= alert_run_length after the last Observe.
  double CollapseMass() const { return collapse_mass_; }

 private:
  void Arm();

  BocpdOptions options_;
  // Warm-up accumulator (Welford).
  std::size_t warm_count_ = 0;
  double warm_mean_ = 0.0;
  double warm_m2_ = 0.0;
  bool armed_ = false;
  // Prior hyperparameters fixed at arm time.
  double mu0_ = 0.0;
  double kappa0_ = 1.0;
  double alpha0_ = 1.0;
  double beta0_ = 1.0;
  // Run-length state, slot r = windows since change. `live_` slots are populated.
  // next_* are the update scratch; both sides are sized max_run_length up front.
  std::vector<double> weight_, mu_, kappa_, alpha_, beta_;
  std::vector<double> next_weight_, next_mu_, next_kappa_, next_alpha_, next_beta_;
  std::size_t live_ = 0;
  std::size_t since_alert_ = 0;
  double collapse_mass_ = 0.0;
};

}  // namespace qnet

#endif  // QNET_DETECT_BOCPD_H_
