// Online change monitor: turns the per-window estimate stream into typed alerts.
//
// ChangeMonitor consumes the WindowEstimate sequence through the existing
// StreamingEstimatorOptions::on_window hook (Hook() is the adapter, mirroring
// scenario/forecast.h), so it rides the single-lane estimator and the sharded fleet
// unchanged — the fleet's pooled estimates arrive here in window order on the Run()
// caller's thread. Per window it runs:
//
//   * a two-sided CUSUM over the arrival rate           -> kRateShift
//   * (optionally) a BOCPD filter over the arrival rate -> kRateShift
//   * a CUSUM per service queue over its rate estimate  -> kServiceDrift
//   * a CUSUM per service queue over its mean wait      -> kServiceDrift
//   * a hysteresis tracker over the utilization argmax
//     (rho_q = lambda / mu_q, exact for single-visit tandems) -> kBottleneckMigration
//   * an edge trigger on the estimator's degraded flag  -> kDegradedRun
//
// One-way-tap invariant: the monitor is a pure function of the WindowEstimate
// sequence. The pooled sequence is bit-identical across sweep threads, pipelining,
// and lane counts at fixed K (the standing streaming contract), so the alert log and
// per-window masks are too — and nothing here feeds back into sampling or estimation.
//
// Merged-tail semantics: a merged-tail re-fit REPLACES the previous window's estimate
// (see StreamingEstimatorOptions::on_window). The monitor snapshots its full detector
// state before every observation; on a merged-tail arrival it restores the snapshot,
// truncates the alert log to the pre-observation watermark, and re-observes — so the
// final alert sequence depends only on the final estimate sequence. The snapshot is a
// same-shape copy of fixed-size detector state: allocation-free after construction.

#ifndef QNET_DETECT_CHANGE_MONITOR_H_
#define QNET_DETECT_CHANGE_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "qnet/detect/alerts.h"
#include "qnet/detect/bocpd.h"
#include "qnet/detect/cusum.h"
#include "qnet/stream/streaming_estimator.h"

namespace qnet {

struct ChangeMonitorOptions {
  // Detector tuning per signal family. The defaults arm after 8 quiet windows and are
  // calibrated to per-window estimate noise at ~100 tasks/window: sigma floors sized
  // so ordinary fit wobble (roughly 10% on service rates, worse on waits — an 8-window
  // warm-up can underestimate it) stays below 1 sigma, while the scripted campaign
  // shifts (1.6x and up) land many sigma out and trip within a window or two.
  CusumOptions rate_cusum{.min_relative_sigma = 0.08};
  CusumOptions service_cusum{.min_relative_sigma = 0.10};
  // Mean waits amplify utilization noise (W = 1/(mu - lambda) - 1/mu), so the wait
  // channel is a deliberately deaf corroborator: it only speaks when waits move by
  // multiples, which a real slowdown delivers.
  CusumOptions wait_cusum{.threshold = 8.0, .min_relative_sigma = 0.25};
  BocpdOptions rate_bocpd{.min_relative_sigma = 0.08};
  // Run the BOCPD filter alongside the arrival CUSUM (both map to kRateShift; the
  // alert log tells them apart via Alert::detector).
  bool enable_bocpd = true;
  // Monitor per-queue mean waits when the estimates carry them.
  bool monitor_waits = true;
  // Raise kDegradedRun when the degraded flag turns on (edge-triggered, so the
  // all-degraded kMeanFieldOnly mode yields one alert, not one per window). Turn off
  // when degradation is the expected steady state.
  bool alert_on_degraded = true;
  // Bottleneck migration: the new utilization argmax must exceed the incumbent's
  // utilization by this factor for `bottleneck_hold_windows` consecutive windows.
  double bottleneck_margin = 1.1;
  std::size_t bottleneck_hold_windows = 3;
  // Reservations for the per-window mask log and the alert log; growth beyond them is
  // amortized (the allocation-free-per-window gate runs within these bounds).
  std::size_t reserve_windows = 4096;
  std::size_t reserve_alerts = 256;
};

class ChangeMonitor {
 public:
  // `num_queues` must match WindowEstimate::rates (index 0 = lambda).
  ChangeMonitor(int num_queues, const ChangeMonitorOptions& options = ChangeMonitorOptions());

  // Feed one estimate (window order; merged-tail re-fits replace, see file comment).
  void Observe(const WindowEstimate& estimate);

  // Adapter for StreamingEstimatorOptions::on_window (captures `this`; the monitor
  // must outlive the estimator's Run call).
  std::function<void(const WindowEstimate&)> Hook();

  // The alert log, in raise order. Stable across merged-tail replacement.
  const std::vector<Alert>& Alerts() const { return sink_.alerts(); }
  const AlertSink& Sink() const { return sink_; }

  // Windows currently reflected in the monitor state (merged-tail replacement keeps
  // the count; it re-observes the same window index).
  std::size_t WindowsObserved() const { return masks_.size(); }

  // Per-window AlertKind bitmask, index = window emission order.
  const std::vector<std::uint32_t>& AlertMasks() const { return masks_; }

  // Copies the per-window masks into estimates[i].alerts. `estimates` must be the
  // sequence this monitor observed (same length); pairs with trace/window_csv so the
  // masks survive a round-trip.
  void ApplyAlertFlags(std::vector<WindowEstimate>& estimates) const;

  // Current bottleneck queue index (utilization argmax with hysteresis), or -1 before
  // the first window with usable rates.
  int CurrentBottleneck() const { return state_.bottleneck; }

 private:
  struct DetectorState {
    CusumDetector rate_cusum;
    BocpdDetector rate_bocpd;
    // Index by queue (slot 0 unused — queue 0 is the lambda slot).
    std::vector<CusumDetector> service_cusum;
    std::vector<CusumDetector> wait_cusum;
    int bottleneck = -1;
    int candidate = -1;
    std::size_t candidate_streak = 0;
    bool was_degraded = false;
  };

  double ArrivalSignal(const WindowEstimate& estimate) const;
  std::uint32_t RunDetectors(const WindowEstimate& estimate, std::size_t window);

  int num_queues_;
  ChangeMonitorOptions options_;
  DetectorState state_;
  // Snapshot of `state_` before the most recent Observe, plus the alert-log watermark
  // — the merged-tail rewind target.
  DetectorState prev_state_;
  std::size_t prev_alert_count_ = 0;
  AlertSink sink_;
  std::vector<std::uint32_t> masks_;
};

}  // namespace qnet

#endif  // QNET_DETECT_CHANGE_MONITOR_H_
