#include "qnet/webapp/movievote.h"

#include <sstream>

#include "qnet/dist/exponential.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"

namespace qnet {
namespace webapp {

MovieVoteTestbed MakeTestbed(const MovieVoteConfig& config) {
  QNET_CHECK(config.num_web_servers >= 2, "need at least two web servers");
  QNET_CHECK(config.starved_weight > 0.0 && config.starved_weight < 1.0, "bad starved weight");
  // The ramp's *average* arrival rate parameterizes the virtual arrival queue; the actual
  // trace is generated from the non-homogeneous process below.
  const double mean_rate = 0.5 * (config.rate0 + config.rate1);
  MovieVoteTestbed testbed{QueueingNetwork(std::make_unique<Exponential>(mean_rate)), -1, -1,
                           {}};

  testbed.network_queue =
      testbed.network.AddQueue("network", std::make_unique<Exponential>(config.network_rate));
  for (int i = 0; i < config.num_web_servers; ++i) {
    std::ostringstream name;
    name << "web" << i;
    testbed.web_queues.push_back(
        testbed.network.AddQueue(name.str(), std::make_unique<Exponential>(config.web_rate)));
  }
  testbed.db_queue =
      testbed.network.AddQueue("database", std::make_unique<Exponential>(config.db_rate));

  Fsm& fsm = testbed.network.MutableFsm();
  const int s_net_in = fsm.AddState("net_request");
  const int s_web = fsm.AddState("web");
  const int s_db = fsm.AddState("db");
  const int s_net_out = fsm.AddState("net_response");
  fsm.SetInitialState(s_net_in);
  fsm.SetDeterministicEmission(s_net_in, testbed.network_queue);
  // haproxy weights: server 0 starved, the rest balanced.
  std::vector<double> weights(static_cast<std::size_t>(config.num_web_servers),
                              (1.0 - config.starved_weight) /
                                  static_cast<double>(config.num_web_servers - 1));
  weights[0] = config.starved_weight;
  fsm.SetWeightedEmission(s_web, testbed.web_queues, weights);
  fsm.SetDeterministicEmission(s_db, testbed.db_queue);
  fsm.SetDeterministicEmission(s_net_out, testbed.network_queue);
  fsm.SetTransition(s_net_in, s_web, 1.0);
  fsm.SetTransition(s_web, s_db, 1.0);
  fsm.SetTransition(s_db, s_net_out, 1.0);
  fsm.SetTransition(s_net_out, Fsm::kFinalState, 1.0);
  testbed.network.Validate();
  return testbed;
}

EventLog GenerateTrace(const MovieVoteTestbed& testbed, const MovieVoteConfig& config,
                       Rng& rng) {
  const LinearRampArrivals workload(config.rate0, config.rate1, config.horizon);
  return SimulateWorkload(testbed.network, workload, rng);
}

}  // namespace webapp
}  // namespace qnet
