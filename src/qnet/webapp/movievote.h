// Simulated substitute for the paper's Section 5.2 testbed: a Ruby-on-Rails movie-voting
// application with 10 web-server processes, a MySQL database, and an haproxy load balancer,
// driven by a workload generator that increases load linearly over 30 minutes (5759
// requests, 23036 arrival events).
//
// The substitution (documented in DESIGN.md): the paper itself models the deployment as a
// queueing network — one queue per web-server instance, one for the database, one for
// network transmission "to and from the system" — so a discrete-event simulation of exactly
// that network exercises the identical inference code path. The load balancer's weight skew
// deliberately starves one web server (~19 requests), reproducing the unstable-estimate
// outlier the paper highlights in Figure 5.
//
// Each request's route is: network -> web_i -> database -> network (4 arrival events), so
// 5759 requests yield ~23036 arrival events, matching the paper's count.

#ifndef QNET_WEBAPP_MOVIEVOTE_H_
#define QNET_WEBAPP_MOVIEVOTE_H_

#include <vector>

#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/sim/workload.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace webapp {

struct MovieVoteConfig {
  int num_web_servers = 10;
  // 30-minute linear ramp; (rate0 + rate1)/2 * horizon ~= 5759 expected requests.
  double horizon = 1800.0;
  double rate0 = 1.0;
  double rate1 = 5.4;
  // Exponential service rates (1/mean-seconds): network transit, web rendering, db query.
  double network_rate = 12.5;  // mean 80 ms per direction
  double web_rate = 4.0;       // mean 250 ms (dynamic Rails page)
  double db_rate = 8.0;        // mean 125 ms
  // Load-balancer weight of the starved server (the remaining mass is split evenly);
  // 0.0033 * 5759 ~= 19 requests, the paper's outlier.
  double starved_weight = 0.0033;
};

struct MovieVoteTestbed {
  QueueingNetwork network;
  int network_queue = -1;
  int db_queue = -1;
  std::vector<int> web_queues;
};

// Builds the 12-queue network and its routing FSM.
MovieVoteTestbed MakeTestbed(const MovieVoteConfig& config = {});

// Generates one full trace of the testbed (the substitute for the paper's measured data).
EventLog GenerateTrace(const MovieVoteTestbed& testbed, const MovieVoteConfig& config,
                       Rng& rng);

}  // namespace webapp
}  // namespace qnet

#endif  // QNET_WEBAPP_MOVIEVOTE_H_
