// Dense two-phase primal simplex solver.
//
// Scope: exact enough for the event-initialization LPs (thousands of variables at most) and
// for unit tests. Dantzig pricing with an automatic switch to Bland's rule for guaranteed
// termination under degeneracy.

#ifndef QNET_LP_SIMPLEX_H_
#define QNET_LP_SIMPLEX_H_

#include <vector>

#include "qnet/lp/problem.h"

namespace qnet {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  // one per problem variable (original space)
};

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  double eps = 1e-9;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  LpSolution Solve(const LpProblem& problem) const;

 private:
  SimplexOptions options_;
};

}  // namespace qnet

#endif  // QNET_LP_SIMPLEX_H_
