#include "qnet/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qnet/support/check.h"

namespace qnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Standard-form working problem: minimize c'y s.t. Ay = b, y >= 0, b >= 0.
struct StandardForm {
  std::size_t num_structural = 0;  // columns that correspond to (shifted) decision variables
  std::size_t num_columns = 0;     // total working columns (structural + slack + artificial)
  std::vector<std::vector<double>> rows;  // each of size num_columns
  std::vector<double> rhs;
  std::vector<double> cost;
  // Mapping back: original variable i = offset_i + sum_j sign_j * y_{col_j}.
  struct BackMap {
    double offset = 0.0;
    int plus_col = -1;   // y added
    int minus_col = -1;  // y subtracted (free variables)
  };
  std::vector<BackMap> back;
  double objective_offset = 0.0;
  std::size_t first_artificial = 0;  // columns >= this are artificial
};

class Tableau {
 public:
  Tableau(StandardForm sf, const SimplexOptions& options)
      : sf_(std::move(sf)), options_(options) {}

  LpStatus Run() {
    const std::size_t m = sf_.rows.size();
    const std::size_t n = sf_.num_columns;
    basis_.assign(m, 0);
    // Initial basis: the artificial/slack identity columns recorded during construction.
    // We find them: the last m columns added form an identity (construction guarantees it).
    for (std::size_t r = 0; r < m; ++r) {
      basis_[r] = identity_col_[r];
    }

    // Phase 1: minimize the sum of artificial variables.
    if (HasArtificials()) {
      std::vector<double> phase1_cost(n, 0.0);
      for (std::size_t j = sf_.first_artificial; j < n; ++j) {
        phase1_cost[j] = 1.0;
      }
      BuildObjectiveRow(phase1_cost);
      const LpStatus status = Iterate(/*exclude_artificials=*/false);
      if (status != LpStatus::kOptimal) {
        return status;
      }
      if (objective_value_ > 1e-7) {
        return LpStatus::kInfeasible;
      }
      DriveOutArtificials();
    }

    // Phase 2: the real objective, artificial columns barred from entering.
    BuildObjectiveRow(sf_.cost);
    return Iterate(/*exclude_artificials=*/true);
  }

  double ObjectiveValue() const { return objective_value_ + sf_.objective_offset; }

  std::vector<double> ExtractValues(std::size_t num_original) const {
    const std::size_t n = sf_.num_columns;
    std::vector<double> y(n, 0.0);
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      y[basis_[r]] = rhs_[r];
    }
    std::vector<double> x(num_original, 0.0);
    for (std::size_t i = 0; i < num_original; ++i) {
      const auto& bm = sf_.back[i];
      double value = bm.offset;
      if (bm.plus_col >= 0) {
        value += y[static_cast<std::size_t>(bm.plus_col)];
      }
      if (bm.minus_col >= 0) {
        value -= y[static_cast<std::size_t>(bm.minus_col)];
      }
      x[i] = value;
    }
    return x;
  }

  void SetIdentityCols(std::vector<std::size_t> cols) { identity_col_ = std::move(cols); }

  void Materialize() {
    rows_ = sf_.rows;
    rhs_ = sf_.rhs;
  }

 private:
  bool HasArtificials() const { return sf_.first_artificial < sf_.num_columns; }

  void BuildObjectiveRow(const std::vector<double>& cost) {
    const std::size_t n = sf_.num_columns;
    reduced_ = cost;
    objective_value_ = 0.0;
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      const double cb = cost[basis_[r]];
      if (cb != 0.0) {
        for (std::size_t j = 0; j < n; ++j) {
          reduced_[j] -= cb * rows_[r][j];
        }
        objective_value_ += cb * rhs_[r];
      }
    }
  }

  LpStatus Iterate(bool exclude_artificials) {
    const std::size_t m = rows_.size();
    const std::size_t n = sf_.num_columns;
    const std::size_t limit_col = exclude_artificials ? sf_.first_artificial : n;
    const std::size_t bland_switch = 2 * (m + n) + 64;
    for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
      const bool bland = iter > bland_switch;
      // Entering column.
      std::size_t enter = n;
      double best = -options_.eps;
      for (std::size_t j = 0; j < limit_col; ++j) {
        if (reduced_[j] < best) {
          enter = j;
          if (bland) {
            break;
          }
          best = reduced_[j];
        }
      }
      if (enter == n) {
        return LpStatus::kOptimal;
      }
      // Ratio test.
      std::size_t leave = m;
      double best_ratio = kInf;
      for (std::size_t r = 0; r < m; ++r) {
        const double a = rows_[r][enter];
        if (a > options_.eps) {
          const double ratio = rhs_[r] / a;
          if (ratio < best_ratio - 1e-12 ||
              (ratio < best_ratio + 1e-12 && (leave == m || basis_[r] < basis_[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m) {
        return LpStatus::kUnbounded;
      }
      Pivot(leave, enter);
    }
    return LpStatus::kIterationLimit;
  }

  void Pivot(std::size_t row, std::size_t col) {
    const std::size_t n = sf_.num_columns;
    const double pivot = rows_[row][col];
    QNET_DCHECK(std::abs(pivot) > 1e-12, "degenerate pivot element");
    const double inv = 1.0 / pivot;
    for (std::size_t j = 0; j < n; ++j) {
      rows_[row][j] *= inv;
    }
    rhs_[row] *= inv;
    rows_[row][col] = 1.0;  // Kill accumulated round-off on the pivot element itself.
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r == row) {
        continue;
      }
      const double factor = rows_[r][col];
      if (factor != 0.0) {
        for (std::size_t j = 0; j < n; ++j) {
          rows_[r][j] -= factor * rows_[row][j];
        }
        rows_[r][col] = 0.0;
        rhs_[r] -= factor * rhs_[row];
      }
    }
    const double red_factor = reduced_[col];
    if (red_factor != 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        reduced_[j] -= red_factor * rows_[row][j];
      }
      reduced_[col] = 0.0;
      objective_value_ += red_factor * rhs_[row];
    }
    basis_[row] = col;
  }

  // After phase 1, swap any zero-valued basic artificial for a structural column when one is
  // available; rows where none exists are redundant and harmless (the artificial stays basic
  // at zero and is barred from re-entering).
  void DriveOutArtificials() {
    for (std::size_t r = 0; r < basis_.size(); ++r) {
      if (basis_[r] < sf_.first_artificial) {
        continue;
      }
      for (std::size_t j = 0; j < sf_.first_artificial; ++j) {
        if (std::abs(rows_[r][j]) > 1e-7) {
          Pivot(r, j);
          break;
        }
      }
    }
  }

  StandardForm sf_;
  SimplexOptions options_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<double> reduced_;
  std::vector<std::size_t> basis_;
  std::vector<std::size_t> identity_col_;
  double objective_value_ = 0.0;
};

}  // namespace

LpSolution SimplexSolver::Solve(const LpProblem& problem) const {
  const std::size_t num_vars = static_cast<std::size_t>(problem.NumVariables());

  // --- Step 1: shift/split variables so every working variable is >= 0. -----------------
  StandardForm sf;
  sf.back.resize(num_vars);
  std::size_t next_col = 0;
  std::vector<LpConstraint> extra_rows;  // finite upper bounds become rows
  std::vector<double> col_cost;
  // For building constraint rows we need, per original variable, its column(s) and sign.
  for (std::size_t i = 0; i < num_vars; ++i) {
    const double lo = problem.Lower(static_cast<int>(i));
    const double hi = problem.Upper(static_cast<int>(i));
    auto& bm = sf.back[i];
    if (lo == -kInf && hi == kInf) {
      bm.plus_col = static_cast<int>(next_col++);
      bm.minus_col = static_cast<int>(next_col++);
      col_cost.push_back(0.0);
      col_cost.push_back(0.0);
    } else if (lo != -kInf) {
      bm.offset = lo;
      bm.plus_col = static_cast<int>(next_col++);
      col_cost.push_back(0.0);
      if (hi != kInf) {
        extra_rows.push_back(LpConstraint{{{static_cast<int>(i), 1.0}},
                                          LpRelation::kLessEqual, hi});
      }
    } else {
      // lo == -inf, hi finite: x = hi - y.
      bm.offset = hi;
      bm.minus_col = static_cast<int>(next_col++);
      col_cost.push_back(0.0);
    }
  }
  const std::size_t num_structural = next_col;
  sf.num_structural = num_structural;

  // Objective in working space.
  for (std::size_t i = 0; i < num_vars; ++i) {
    const double c = problem.Objective(static_cast<int>(i));
    if (c == 0.0) {
      continue;
    }
    const auto& bm = sf.back[i];
    sf.objective_offset += c * bm.offset;
    if (bm.plus_col >= 0) {
      col_cost[static_cast<std::size_t>(bm.plus_col)] += c;
    }
    if (bm.minus_col >= 0) {
      col_cost[static_cast<std::size_t>(bm.minus_col)] -= c;
    }
  }

  // --- Step 2: assemble rows (original constraints + upper-bound rows). -----------------
  std::vector<const LpConstraint*> all_rows;
  for (int r = 0; r < problem.NumConstraints(); ++r) {
    all_rows.push_back(&problem.Constraint(r));
  }
  for (const auto& row : extra_rows) {
    all_rows.push_back(&row);
  }
  const std::size_t m = all_rows.size();

  // Column count: structural + one slack/surplus per inequality + artificials (bounded by m).
  std::vector<std::vector<double>> dense(m);
  std::vector<double> rhs(m, 0.0);
  std::vector<int> row_kind(m);  // 0: <=, 1: >=, 2: ==, after rhs normalization
  for (std::size_t r = 0; r < m; ++r) {
    dense[r].assign(num_structural, 0.0);
    const LpConstraint& c = *all_rows[r];
    double b = c.rhs;
    for (const auto& [var, coeff] : c.terms) {
      const auto& bm = sf.back[static_cast<std::size_t>(var)];
      b -= coeff * bm.offset;
      if (bm.plus_col >= 0) {
        dense[r][static_cast<std::size_t>(bm.plus_col)] += coeff;
      }
      if (bm.minus_col >= 0) {
        dense[r][static_cast<std::size_t>(bm.minus_col)] -= coeff;
      }
    }
    LpRelation rel = c.relation;
    if (b < 0.0) {
      for (double& v : dense[r]) {
        v = -v;
      }
      b = -b;
      if (rel == LpRelation::kLessEqual) {
        rel = LpRelation::kGreaterEqual;
      } else if (rel == LpRelation::kGreaterEqual) {
        rel = LpRelation::kLessEqual;
      }
    }
    rhs[r] = b;
    row_kind[r] = rel == LpRelation::kLessEqual ? 0 : (rel == LpRelation::kGreaterEqual ? 1 : 2);
  }

  // Slack columns.
  std::size_t col = num_structural;
  std::vector<int> slack_col(m, -1);
  for (std::size_t r = 0; r < m; ++r) {
    if (row_kind[r] == 0 || row_kind[r] == 1) {
      slack_col[r] = static_cast<int>(col++);
    }
  }
  // Artificial columns: for >= and == rows (the <= rows use their slack as the basis).
  sf.first_artificial = col;
  std::vector<int> artificial_col(m, -1);
  for (std::size_t r = 0; r < m; ++r) {
    if (row_kind[r] != 0) {
      artificial_col[r] = static_cast<int>(col++);
    }
  }
  const std::size_t n_total = col;

  std::vector<std::size_t> identity_cols(m);
  for (std::size_t r = 0; r < m; ++r) {
    dense[r].resize(n_total, 0.0);
    if (slack_col[r] >= 0) {
      dense[r][static_cast<std::size_t>(slack_col[r])] = row_kind[r] == 0 ? 1.0 : -1.0;
    }
    if (artificial_col[r] >= 0) {
      dense[r][static_cast<std::size_t>(artificial_col[r])] = 1.0;
      identity_cols[r] = static_cast<std::size_t>(artificial_col[r]);
    } else {
      identity_cols[r] = static_cast<std::size_t>(slack_col[r]);
    }
  }
  col_cost.resize(n_total, 0.0);

  sf.rows = std::move(dense);
  sf.rhs = std::move(rhs);
  sf.cost = std::move(col_cost);
  sf.num_columns = n_total;

  Tableau tableau(std::move(sf), options_);
  tableau.SetIdentityCols(std::move(identity_cols));
  tableau.Materialize();

  LpSolution solution;
  solution.status = tableau.Run();
  if (solution.status == LpStatus::kOptimal) {
    solution.objective = tableau.ObjectiveValue();
    solution.values = tableau.ExtractValues(num_vars);
  }
  return solution;
}

}  // namespace qnet
