#include "qnet/lp/problem.h"

#include <limits>

#include "qnet/support/check.h"

namespace qnet {

int LpProblem::AddVariable(std::string name, double lower, double upper) {
  QNET_CHECK(lower <= upper, "variable ", name, " has empty bound interval");
  names_.push_back(std::move(name));
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(0.0);
  return NumVariables() - 1;
}

void LpProblem::SetObjective(int var, double coeff) {
  QNET_CHECK(var >= 0 && var < NumVariables(), "bad variable id ", var);
  objective_[static_cast<std::size_t>(var)] = coeff;
}

void LpProblem::AddConstraint(std::vector<std::pair<int, double>> terms, LpRelation relation,
                              double rhs) {
  for (const auto& [var, coeff] : terms) {
    QNET_CHECK(var >= 0 && var < NumVariables(), "bad variable id ", var);
    (void)coeff;
  }
  constraints_.push_back(LpConstraint{std::move(terms), relation, rhs});
}

const std::string& LpProblem::VariableName(int var) const {
  QNET_CHECK(var >= 0 && var < NumVariables(), "bad variable id ", var);
  return names_[static_cast<std::size_t>(var)];
}

const LpConstraint& LpProblem::Constraint(int i) const {
  QNET_CHECK(i >= 0 && i < NumConstraints(), "bad constraint id ", i);
  return constraints_[static_cast<std::size_t>(i)];
}

}  // namespace qnet
