// Linear program description: minimize c'x subject to linear constraints and variable
// bounds. Used by the paper-faithful Gibbs initializer (Section 3: "minimize
// sum_e |s_e - mu_qe| subject to the deterministic constraints").

#ifndef QNET_LP_PROBLEM_H_
#define QNET_LP_PROBLEM_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace qnet {

enum class LpRelation { kLessEqual, kGreaterEqual, kEqual };

struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
  LpRelation relation = LpRelation::kLessEqual;
  double rhs = 0.0;
};

class LpProblem {
 public:
  // Adds a variable with bounds [lower, upper]; lower may be -inf and upper +inf.
  int AddVariable(std::string name, double lower = 0.0,
                  double upper = std::numeric_limits<double>::infinity());
  // Sets the objective coefficient of a variable (minimization).
  void SetObjective(int var, double coeff);
  void AddConstraint(std::vector<std::pair<int, double>> terms, LpRelation relation,
                     double rhs);

  int NumVariables() const { return static_cast<int>(names_.size()); }
  int NumConstraints() const { return static_cast<int>(constraints_.size()); }
  const std::string& VariableName(int var) const;
  double Lower(int var) const { return lower_[static_cast<std::size_t>(var)]; }
  double Upper(int var) const { return upper_[static_cast<std::size_t>(var)]; }
  double Objective(int var) const { return objective_[static_cast<std::size_t>(var)]; }
  const LpConstraint& Constraint(int i) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<LpConstraint> constraints_;
};

}  // namespace qnet

#endif  // QNET_LP_PROBLEM_H_
