#include "qnet/sim/sim_scratch.h"

#include <algorithm>
#include <functional>

#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {
namespace {

// The DES inner loop, shared by the virtual-dispatch and exponential fast paths. The
// service sampler is the only thing that differs; everything else — validation, heap
// discipline, frontier recursion, reducer accumulation orders — is common, so the two
// paths cannot diverge on the generative model.
template <typename ServiceSampler>
void RunDesCore(int num_queues, SimScratch& scratch, const ServiceSampler& sample_service,
                const FaultSchedule* faults) {
  ScopedSpan span(SpanStage::kDesRun);
  const std::size_t num_tasks = scratch.entry_times.size();
  SimCounters::Get().runs->Increment();
  SimCounters::Get().tasks->Add(num_tasks);
  QNET_CHECK(scratch.route_offsets.size() == num_tasks + 1 && scratch.route_offsets[0] == 0,
             "scratch route offsets not staged for ", num_tasks, " tasks");
  QNET_CHECK(scratch.route_offsets.back() == scratch.route_steps.size(),
             "scratch route offsets inconsistent with route steps");
  // Per-element validation is debug-only: the staging functions above are the only
  // producers of these buffers and construct them sorted/non-empty by construction, and
  // the O(n) loop is measurable against the ~16-cells/ms scenario budget.
  for (std::size_t k = 0; k < num_tasks; ++k) {
    QNET_DCHECK(scratch.entry_times[k] > 0.0, "entry times must be positive");
    QNET_DCHECK(k == 0 || scratch.entry_times[k] >= scratch.entry_times[k - 1],
                "entry times must be nondecreasing");
    QNET_DCHECK(scratch.route_offsets[k + 1] > scratch.route_offsets[k],
                "task ", k, " has an empty route");
  }

  scratch.step_begin.resize(scratch.route_steps.size());
  scratch.step_departure.resize(scratch.route_steps.size());
  scratch.queue_wait_sum.assign(static_cast<std::size_t>(num_queues), 0.0);
  scratch.queue_busy_sum.assign(static_cast<std::size_t>(num_queues), 0.0);
  scratch.frontier.assign(static_cast<std::size_t>(num_queues), 0.0);

  // Recycled min-heap holding only in-flight continuation events. Initial arrivals come
  // straight off entry_times: the list is sorted and ties break by ascending task, which
  // is exactly their (time, task, step=0) order, so merging the sorted list against the
  // heap top yields the same global-minimum pop sequence as a heap seeded with every
  // arrival — (time, task, step) is a strict total order, no two pending events ever
  // compare equal — while keeping the heap at O(tasks in service) instead of O(tasks).
  // Pop order (hence service-draw consumption) matches the legacy std::priority_queue
  // bit-for-bit.
  scratch.heap.clear();
  // Hard bound — each task has at most one pending event — so the in-flight high-water
  // mark (which varies with stochastic congestion) can never outgrow a warm arena.
  scratch.heap.reserve(num_tasks);
  std::size_t next_entry = 0;
  while (next_entry < num_tasks || !scratch.heap.empty()) {
    DesArrival next;
    if (next_entry < num_tasks &&
        (scratch.heap.empty() ||
         scratch.heap.front() > DesArrival{scratch.entry_times[next_entry],
                                           static_cast<int>(next_entry), 0})) {
      next = DesArrival{scratch.entry_times[next_entry], static_cast<int>(next_entry), 0};
      ++next_entry;
    } else {
      std::pop_heap(scratch.heap.begin(), scratch.heap.end(), std::greater<>{});
      next = scratch.heap.back();
      scratch.heap.pop_back();
    }
    const auto k = static_cast<std::size_t>(next.task);
    const std::size_t idx = scratch.route_offsets[k] + next.step;
    const auto q = static_cast<std::size_t>(scratch.route_steps[idx].queue);
    const double begin = std::max(next.time, scratch.frontier[q]);
    double service = sample_service(static_cast<int>(q));
    if (faults != nullptr) {
      service *= faults->ServiceFactor(static_cast<int>(q), begin);
    }
    const double departure = begin + service;
    scratch.frontier[q] = departure;
    scratch.step_begin[idx] = begin;
    scratch.step_departure[idx] = departure;
    // Pop order restricted to one queue is its arrival order, so this accumulates each
    // queue's waits in the same order as walking EventLog::QueueOrder(q).
    scratch.queue_wait_sum[q] += begin - next.time;
    if (next.step + 1 < scratch.route_offsets[k + 1] - scratch.route_offsets[k]) {
      scratch.heap.push_back(DesArrival{departure, next.task, next.step + 1});
      std::push_heap(scratch.heap.begin(), scratch.heap.end(), std::greater<>{});
    }
  }

  // Busy time in (task, step) order — PerQueueServiceSum's event-id order restricted to
  // real queues (initial events only touch queue 0).
  for (std::size_t k = 0; k < num_tasks; ++k) {
    for (std::size_t idx = scratch.route_offsets[k]; idx < scratch.route_offsets[k + 1]; ++idx) {
      const auto q = static_cast<std::size_t>(scratch.route_steps[idx].queue);
      scratch.queue_busy_sum[q] += scratch.step_departure[idx] - scratch.step_begin[idx];
    }
  }
}

}  // namespace

void SampleRoutesIntoScratch(const Fsm& fsm, SimScratch& scratch, Rng& rng) {
  scratch.route_steps.clear();
  scratch.route_offsets.clear();
  scratch.route_offsets.push_back(0);
  const std::size_t num_tasks = scratch.entry_times.size();
  for (std::size_t k = 0; k < num_tasks; ++k) {
    fsm.AppendSampledRoute(rng, scratch.route_steps);
    scratch.route_offsets.push_back(scratch.route_steps.size());
  }
}

void RunStagedDes(const QueueingNetwork& net, SimScratch& scratch, Rng& rng,
                  const SimOptions& options) {
  RunDesCore(
      net.NumQueues(), scratch,
      [&net, &rng](int queue) { return net.Service(queue).Sample(rng); }, options.faults);
}

void RunStagedDesExponential(std::span<const double> pooled_rates, SimScratch& scratch,
                             Rng& rng, const FaultSchedule* faults) {
  RunDesCore(
      static_cast<int>(pooled_rates.size()), scratch,
      [pooled_rates, &rng](int queue) {
        return rng.Exponential(pooled_rates[static_cast<std::size_t>(queue)]);
      },
      faults);
}

void SimulateIntoScratch(const QueueingNetwork& net, SimScratch& scratch, Rng& rng,
                         const SimOptions& options) {
  SampleRoutesIntoScratch(net.GetFsm(), scratch, rng);
  RunStagedDes(net, scratch, rng, options);
}

void SimulateWorkloadIntoScratch(const QueueingNetwork& net, const ArrivalProcess& workload,
                                 SimScratch& scratch, Rng& rng, const SimOptions& options) {
  workload.GenerateInto(scratch.entry_times, rng);
  SimulateIntoScratch(net, scratch, rng, options);
}

void ScratchToEventLog(const SimScratch& scratch, int num_queues, EventLog& log) {
  log.Reset(num_queues);
  const int num_tasks = scratch.NumTasks();
  for (int k = 0; k < num_tasks; ++k) {
    log.AddTask(scratch.entry_times[static_cast<std::size_t>(k)]);
    const std::span<const RouteStep> route = scratch.Route(k);
    const std::size_t base = scratch.route_offsets[static_cast<std::size_t>(k)];
    for (std::size_t j = 0; j < route.size(); ++j) {
      log.AddVisit(k, route[j].state, route[j].queue, scratch.StepArrival(k, j),
                   scratch.step_departure[base + j]);
    }
  }
  log.BuildQueueLinks();
  QNET_DCHECK(log.IsFeasible(1e-6), "staged simulator produced an infeasible log");
}

}  // namespace qnet
