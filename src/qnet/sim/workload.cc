#include "qnet/sim/workload.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qnet/support/check.h"

namespace qnet {

std::vector<double> ArrivalProcess::Generate(Rng& rng) const {
  std::vector<double> times;
  GenerateInto(times, rng);
  return times;
}

PoissonArrivals::PoissonArrivals(double rate, std::size_t num_tasks)
    : rate_(rate), num_tasks_(num_tasks) {
  QNET_CHECK(rate > 0.0, "Poisson rate must be positive");
}

void PoissonArrivals::GenerateInto(std::vector<double>& out, Rng& rng) const {
  out.clear();
  out.reserve(num_tasks_);
  double t = 0.0;
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    t += rng.Exponential(rate_);
    out.push_back(t);
  }
}

std::string PoissonArrivals::Describe() const {
  std::ostringstream os;
  os << "poisson(rate=" << rate_ << ",tasks=" << num_tasks_ << ")";
  return os.str();
}

std::unique_ptr<ArrivalProcess> PoissonArrivals::Clone() const {
  return std::make_unique<PoissonArrivals>(rate_, num_tasks_);
}

LinearRampArrivals::LinearRampArrivals(double rate0, double rate1, double horizon)
    : rate0_(rate0), rate1_(rate1), horizon_(horizon) {
  QNET_CHECK(rate0 >= 0.0 && rate1 >= 0.0, "ramp rates must be nonnegative");
  QNET_CHECK(rate0 + rate1 > 0.0, "ramp must have positive mass");
  QNET_CHECK(horizon > 0.0, "horizon must be positive");
}

void LinearRampArrivals::GenerateInto(std::vector<double>& out, Rng& rng) const {
  // Thinning with the envelope rate max(rate0, rate1).
  const double envelope = std::max(rate0_, rate1_);
  out.clear();
  out.reserve(static_cast<std::size_t>(ExpectedTasks() * 1.2) + 16);
  double t = 0.0;
  for (;;) {
    t += rng.Exponential(envelope);
    if (t >= horizon_) {
      break;
    }
    const double rate_t = rate0_ + (rate1_ - rate0_) * (t / horizon_);
    if (rng.Uniform() * envelope < rate_t) {
      out.push_back(t);
    }
  }
}

double LinearRampArrivals::ExpectedTasks() const {
  return 0.5 * (rate0_ + rate1_) * horizon_;
}

std::string LinearRampArrivals::Describe() const {
  std::ostringstream os;
  os << "ramp(rate0=" << rate0_ << ",rate1=" << rate1_ << ",horizon=" << horizon_ << ")";
  return os.str();
}

std::unique_ptr<ArrivalProcess> LinearRampArrivals::Clone() const {
  return std::make_unique<LinearRampArrivals>(rate0_, rate1_, horizon_);
}

PiecewiseConstantArrivals::PiecewiseConstantArrivals(std::vector<double> breaks,
                                                     std::vector<double> rates)
    : breaks_(std::move(breaks)), rates_(std::move(rates)) {
  QNET_CHECK(breaks_.size() == rates_.size() + 1, "breaks must have one more entry than rates");
  QNET_CHECK(!rates_.empty(), "need at least one segment");
  QNET_CHECK(breaks_.front() == 0.0, "first break must be 0");
  for (std::size_t i = 0; i + 1 < breaks_.size(); ++i) {
    QNET_CHECK(breaks_[i] < breaks_[i + 1], "breaks must increase");
  }
  for (double r : rates_) {
    QNET_CHECK(r >= 0.0, "negative rate");
  }
}

void PiecewiseConstantArrivals::GenerateInto(std::vector<double>& out, Rng& rng) const {
  out.clear();
  for (std::size_t seg = 0; seg < rates_.size(); ++seg) {
    const double rate = rates_[seg];
    if (rate <= 0.0) {
      continue;
    }
    double t = breaks_[seg];
    for (;;) {
      t += rng.Exponential(rate);
      if (t >= breaks_[seg + 1]) {
        break;
      }
      out.push_back(t);
    }
  }
}

std::string PiecewiseConstantArrivals::Describe() const {
  std::ostringstream os;
  os << "piecewise(segments=" << rates_.size() << ")";
  return os.str();
}

std::unique_ptr<ArrivalProcess> PiecewiseConstantArrivals::Clone() const {
  return std::make_unique<PiecewiseConstantArrivals>(breaks_, rates_);
}

TraceArrivals::TraceArrivals(std::vector<double> times) : times_(std::move(times)) {
  for (std::size_t i = 0; i < times_.size(); ++i) {
    QNET_CHECK(times_[i] > 0.0, "entry times must be positive");
    if (i > 0) {
      QNET_CHECK(times_[i] >= times_[i - 1], "entry times must be nondecreasing");
    }
  }
}

void TraceArrivals::GenerateInto(std::vector<double>& out, Rng& rng) const {
  (void)rng;
  out.assign(times_.begin(), times_.end());
}

std::string TraceArrivals::Describe() const {
  std::ostringstream os;
  os << "trace(tasks=" << times_.size() << ")";
  return os.str();
}

std::unique_ptr<ArrivalProcess> TraceArrivals::Clone() const {
  return std::make_unique<TraceArrivals>(times_);
}

}  // namespace qnet
