// Discrete-event simulator for open networks of single-server FIFO queues with FSM routing.
//
// Because routing is workload-independent (a task moves to its next queue the instant it
// departs — no blocking, no balking), the network can be simulated by processing arrivals in
// global time order while tracking each queue's last scheduled departure:
//     d_e = s_e + max(a_e, d_rho(e)).
// This is the exact generative process of the paper's eq. (1) and produces the ground-truth
// event logs for the Section 5 experiments.

#ifndef QNET_SIM_SIMULATOR_H_
#define QNET_SIM_SIMULATOR_H_

#include <algorithm>
#include <tuple>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/workload.h"
#include "qnet/support/rng.h"

namespace qnet {

struct SimOptions {
  // Optional service-time fault schedule.
  const FaultSchedule* faults = nullptr;
};

// One pending (task, step) arrival in the DES heap. Min-heap by (time, task, step):
// global arrival order with a deterministic tie-break. Shared by the batch simulator and
// the live streaming adapter (stream/live_stream.h) so both process events in the same
// order.
struct DesArrival {
  double time = 0.0;
  int task = -1;
  std::size_t step = 0;

  bool operator>(const DesArrival& other) const {
    return std::tie(time, task, step) > std::tie(other.time, other.task, other.step);
  }
};

// The DES physics, shared by the batch simulator and the live streaming adapter: one
// per-queue last-departure frontier advanced through d_e = s_e + max(a_e, d_rho(e)) with
// fault scaling. Keeping the single step here means the two drivers cannot diverge on
// the generative model (they deliberately differ in RNG draw *order*, so a behavioral
// divergence would be invisible to bit-equality tests).
class QueueFrontier {
 public:
  explicit QueueFrontier(int num_queues)
      : last_departure_(static_cast<std::size_t>(num_queues), 0.0) {}

  // Processes one arrival at `queue`: samples its service time (scaled by `faults` if
  // given), advances the queue's frontier, and returns the departure time.
  double ProcessArrival(const QueueingNetwork& net, int queue, double arrival, Rng& rng,
                        const FaultSchedule* faults) {
    const auto q = static_cast<std::size_t>(queue);
    const double begin = std::max(arrival, last_departure_[q]);
    double service = net.Service(queue).Sample(rng);
    if (faults != nullptr) {
      service *= faults->ServiceFactor(queue, begin);
    }
    const double departure = begin + service;
    last_departure_[q] = departure;
    return departure;
  }

 private:
  std::vector<double> last_departure_;
};

// Simulates the network for the given system entry times (strictly positive, nondecreasing).
// Routes are sampled from the network's FSM.
EventLog Simulate(const QueueingNetwork& net, const std::vector<double>& entry_times,
                  Rng& rng, const SimOptions& options = {});

// As Simulate, but with caller-fixed routes (routes[k] is task k's (state, queue) route).
// Used by tests and by workloads that need deterministic or skewed routing.
EventLog SimulateWithRoutes(const QueueingNetwork& net, const std::vector<double>& entry_times,
                            const std::vector<std::vector<RouteStep>>& routes, Rng& rng,
                            const SimOptions& options = {});

// Convenience: generate entry times from the arrival process, then simulate.
EventLog SimulateWorkload(const QueueingNetwork& net, const ArrivalProcess& workload,
                          Rng& rng, const SimOptions& options = {});

}  // namespace qnet

#endif  // QNET_SIM_SIMULATOR_H_
