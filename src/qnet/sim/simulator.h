// Discrete-event simulator for open networks of single-server FIFO queues with FSM routing.
//
// Because routing is workload-independent (a task moves to its next queue the instant it
// departs — no blocking, no balking), the network can be simulated by processing arrivals in
// global time order while tracking each queue's last scheduled departure:
//     d_e = s_e + max(a_e, d_rho(e)).
// This is the exact generative process of the paper's eq. (1) and produces the ground-truth
// event logs for the Section 5 experiments.

#ifndef QNET_SIM_SIMULATOR_H_
#define QNET_SIM_SIMULATOR_H_

#include <vector>

#include "qnet/model/event.h"
#include "qnet/model/network.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/workload.h"
#include "qnet/support/rng.h"

namespace qnet {

struct SimOptions {
  // Optional service-time fault schedule.
  const FaultSchedule* faults = nullptr;
};

// Simulates the network for the given system entry times (strictly positive, nondecreasing).
// Routes are sampled from the network's FSM.
EventLog Simulate(const QueueingNetwork& net, const std::vector<double>& entry_times,
                  Rng& rng, const SimOptions& options = {});

// As Simulate, but with caller-fixed routes (routes[k] is task k's (state, queue) route).
// Used by tests and by workloads that need deterministic or skewed routing.
EventLog SimulateWithRoutes(const QueueingNetwork& net, const std::vector<double>& entry_times,
                            const std::vector<std::vector<RouteStep>>& routes, Rng& rng,
                            const SimOptions& options = {});

// Convenience: generate entry times from the arrival process, then simulate.
EventLog SimulateWorkload(const QueueingNetwork& net, const ArrivalProcess& workload,
                          Rng& rng, const SimOptions& options = {});

}  // namespace qnet

#endif  // QNET_SIM_SIMULATOR_H_
