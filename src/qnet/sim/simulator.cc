#include "qnet/sim/simulator.h"

#include <queue>

#include "qnet/sim/sim_scratch.h"
#include "qnet/support/check.h"

namespace qnet {
namespace {

struct VisitTimes {
  double arrival = 0.0;
  double departure = 0.0;
};

}  // namespace

EventLog SimulateWithRoutes(const QueueingNetwork& net, const std::vector<double>& entry_times,
                            const std::vector<std::vector<RouteStep>>& routes, Rng& rng,
                            const SimOptions& options) {
  QNET_CHECK(entry_times.size() == routes.size(), "one route per task required");
  for (std::size_t k = 0; k < entry_times.size(); ++k) {
    QNET_CHECK(entry_times[k] > 0.0, "entry times must be positive");
    if (k > 0) {
      QNET_CHECK(entry_times[k] >= entry_times[k - 1], "entry times must be nondecreasing");
    }
    QNET_CHECK(!routes[k].empty(), "task ", k, " has an empty route");
  }

  const int num_tasks = static_cast<int>(entry_times.size());
  std::vector<std::vector<VisitTimes>> visit_times(entry_times.size());
  for (std::size_t k = 0; k < routes.size(); ++k) {
    visit_times[k].resize(routes[k].size());
  }

  std::priority_queue<DesArrival, std::vector<DesArrival>, std::greater<>> heap;
  for (int k = 0; k < num_tasks; ++k) {
    heap.push(DesArrival{entry_times[static_cast<std::size_t>(k)], k, 0});
  }

  QueueFrontier frontier(net.NumQueues());
  while (!heap.empty()) {
    const DesArrival next = heap.top();
    heap.pop();
    const auto k = static_cast<std::size_t>(next.task);
    const RouteStep& step = routes[k][next.step];
    const double departure =
        frontier.ProcessArrival(net, step.queue, next.time, rng, options.faults);
    visit_times[k][next.step] = VisitTimes{next.time, departure};
    if (next.step + 1 < routes[k].size()) {
      heap.push(DesArrival{departure, next.task, next.step + 1});
    }
  }

  EventLog log(net.NumQueues());
  for (int k = 0; k < num_tasks; ++k) {
    log.AddTask(entry_times[static_cast<std::size_t>(k)]);
    const auto ku = static_cast<std::size_t>(k);
    for (std::size_t step = 0; step < routes[ku].size(); ++step) {
      log.AddVisit(k, routes[ku][step].state, routes[ku][step].queue,
                   visit_times[ku][step].arrival, visit_times[ku][step].departure);
    }
  }
  log.BuildQueueLinks();
  QNET_DCHECK(log.IsFeasible(1e-6), "simulator produced an infeasible log");
  return log;
}

namespace {

// Shared per-thread arena for the allocating convenience entry points below: repeated
// same-shaped calls only pay the EventLog's own (fresh-object) allocations, not the route
// / visit-time / heap churn. Callers that want the full zero-allocation warm path use a
// SimScratch + EventLog they own (see sim_scratch.h).
SimScratch& ThreadLocalSimScratch() {
  thread_local SimScratch scratch;
  return scratch;
}

}  // namespace

EventLog Simulate(const QueueingNetwork& net, const std::vector<double>& entry_times,
                  Rng& rng, const SimOptions& options) {
  SimScratch& scratch = ThreadLocalSimScratch();
  scratch.entry_times.assign(entry_times.begin(), entry_times.end());
  SimulateIntoScratch(net, scratch, rng, options);
  EventLog log(net.NumQueues());
  ScratchToEventLog(scratch, net.NumQueues(), log);
  return log;
}

EventLog SimulateWorkload(const QueueingNetwork& net, const ArrivalProcess& workload,
                          Rng& rng, const SimOptions& options) {
  SimScratch& scratch = ThreadLocalSimScratch();
  workload.GenerateInto(scratch.entry_times, rng);
  SimulateIntoScratch(net, scratch, rng, options);
  EventLog log(net.NumQueues());
  ScratchToEventLog(scratch, net.NumQueues(), log);
  return log;
}

}  // namespace qnet
