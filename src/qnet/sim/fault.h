// Fault injection: time-windowed service slowdowns. A slowdown multiplies the sampled
// service time of a queue by `factor` while the service begins inside [t0, t1). This models
// the paper's motivating scenario of an intermittently failing storage or network resource.

#ifndef QNET_SIM_FAULT_H_
#define QNET_SIM_FAULT_H_

#include <vector>

namespace qnet {

class FaultSchedule {
 public:
  // Service times at `queue` beginning in [t0, t1) are multiplied by `factor` (> 0).
  void AddSlowdown(int queue, double t0, double t1, double factor);

  // Combined multiplier for a service beginning at `time` on `queue` (product of all
  // overlapping windows; 1.0 when none apply).
  double ServiceFactor(int queue, double time) const;

  bool Empty() const { return windows_.empty(); }

 private:
  struct Window {
    int queue;
    double t0;
    double t1;
    double factor;
  };
  std::vector<Window> windows_;
};

}  // namespace qnet

#endif  // QNET_SIM_FAULT_H_
