// Fault injection: time-windowed service slowdowns and arrival-rate modulation. A
// slowdown multiplies the sampled service time of a queue by `factor` while the service
// begins inside [t0, t1). This models the paper's motivating scenario of an
// intermittently failing storage or network resource. Arrival scale segments modulate
// the workload side the same way: the interarrival process's rate is multiplied by the
// product of all segments covering the draw point — flash crowds, diurnal load curves,
// and slow-start recoveries are all piecewise-constant rate scripts (see
// scenario/campaign.h for the declarative catalog that compiles into these).

#ifndef QNET_SIM_FAULT_H_
#define QNET_SIM_FAULT_H_

#include <vector>

namespace qnet {

class FaultSchedule {
 public:
  // Service times at `queue` beginning in [t0, t1) are multiplied by `factor` (> 0).
  void AddSlowdown(int queue, double t0, double t1, double factor);

  // The arrival rate for interarrival gaps drawn at a time in [t0, t1) is multiplied by
  // `factor` (> 0). Semantics (LiveSimStream): the gap after an arrival at time t is
  // drawn at the rate in effect AT t — a piecewise-constant modulated Poisson process
  // whose rate lags the script by at most one gap. A factor of exactly 1.0 multiplies
  // the rate by 1.0, so an all-1.0 schedule reproduces the unmodulated stream bit for
  // bit (pinned by test).
  void AddArrivalScale(double t0, double t1, double factor);

  // Combined multiplier for a service beginning at `time` on `queue` (product of all
  // overlapping windows; 1.0 when none apply).
  double ServiceFactor(int queue, double time) const;

  // Combined arrival-rate multiplier at `time` (product of all overlapping scale
  // segments; 1.0 when none apply).
  double ArrivalFactor(double time) const;

  bool Empty() const { return windows_.empty() && arrival_segments_.empty(); }
  bool HasArrivalSegments() const { return !arrival_segments_.empty(); }

 private:
  struct Window {
    int queue;
    double t0;
    double t1;
    double factor;
  };
  struct RateSegment {
    double t0;
    double t1;
    double factor;
  };
  std::vector<Window> windows_;
  std::vector<RateSegment> arrival_segments_;
};

}  // namespace qnet

#endif  // QNET_SIM_FAULT_H_
