#include "qnet/sim/fault.h"

#include "qnet/support/check.h"

namespace qnet {

void FaultSchedule::AddSlowdown(int queue, double t0, double t1, double factor) {
  QNET_CHECK(queue >= 1, "faults apply to real queues only");
  QNET_CHECK(t0 < t1, "fault window is empty");
  QNET_CHECK(factor > 0.0, "fault factor must be positive");
  windows_.push_back(Window{queue, t0, t1, factor});
}

void FaultSchedule::AddArrivalScale(double t0, double t1, double factor) {
  QNET_CHECK(t0 < t1, "arrival scale segment is empty");
  QNET_CHECK(factor > 0.0, "arrival scale factor must be positive");
  arrival_segments_.push_back(RateSegment{t0, t1, factor});
}

double FaultSchedule::ServiceFactor(int queue, double time) const {
  double factor = 1.0;
  for (const Window& w : windows_) {
    if (w.queue == queue && time >= w.t0 && time < w.t1) {
      factor *= w.factor;
    }
  }
  return factor;
}

double FaultSchedule::ArrivalFactor(double time) const {
  double factor = 1.0;
  for (const RateSegment& s : arrival_segments_) {
    if (time >= s.t0 && time < s.t1) {
      factor *= s.factor;
    }
  }
  return factor;
}

}  // namespace qnet
