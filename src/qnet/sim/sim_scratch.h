// Allocation-free DES core: a reusable simulation arena (SimScratch) plus staged
// run/convert entry points.
//
// The batch simulator (simulator.h) allocates per call: an entry-time vector, one route
// vector per task, a nested visit-times structure, the arrival heap, and the EventLog.
// SimScratch replaces all of that with flat SoA storage — one contiguous RouteStep buffer
// with per-task offsets (CSR layout), parallel begin/departure arrays, and a recycled
// heap vector — so repeated simulations of same-shaped workloads allocate nothing once
// the buffers are warm. The scenario engine leans on this for its (cell x draw) loop;
// tests/test_alloc_free.cc pins the zero-allocation contract.
//
// Bit-identity contract: for the same inputs and Rng state, the staged pipeline
//   GenerateInto -> SampleRoutesIntoScratch -> RunStagedDes -> ScratchToEventLog
// consumes the RNG draw-for-draw like SimulateWorkload/Simulate/SimulateWithRoutes and
// produces a bit-identical EventLog (same event times, same link structure). The DES pop
// order is the strict total order (time, task, step) — no ties are possible — so merging
// the sorted entry list against a recycled push_heap/pop_heap continuation heap pops in
// exactly the order of the legacy all-arrivals std::priority_queue.
// tests/test_simulator.cc pins this equivalence.

#ifndef QNET_SIM_SIM_SCRATCH_H_
#define QNET_SIM_SIM_SCRATCH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/model/fsm.h"
#include "qnet/model/network.h"
#include "qnet/sim/simulator.h"
#include "qnet/sim/workload.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {

// Reusable arena for one simulation. All buffers keep their capacity across runs; the
// staged entry points below clear and refill them. Plain aggregate on purpose: drivers
// (scenario engine, benches, tests) stage inputs and read outputs directly.
struct SimScratch {
  // --- Staged inputs ------------------------------------------------------------------
  // System entry times (strictly positive, nondecreasing), one per task.
  std::vector<double> entry_times;
  // All tasks' route steps concatenated (CSR layout with route_offsets).
  std::vector<RouteStep> route_steps;
  // route_offsets[k]..route_offsets[k+1] bound task k's steps; size NumTasks()+1, [0]==0.
  std::vector<std::size_t> route_offsets;

  // --- Outputs (parallel to route_steps; written by RunStagedDes*) ---------------------
  // Service begin time max(a_e, d_rho(e)) of each step.
  std::vector<double> step_begin;
  // Departure time of each step.
  std::vector<double> step_departure;
  // Per-queue sum of waits (begin - arrival), accumulated in per-queue arrival order —
  // the same float-addition order as summing EventLog::WaitTime over QueueOrder(q).
  std::vector<double> queue_wait_sum;
  // Per-queue sum of busy time (departure - begin), accumulated in per-queue (task, step)
  // order — the same float-addition order as EventLog::PerQueueServiceSum (which walks
  // events in id order) restricted to real queues.
  std::vector<double> queue_busy_sum;

  // --- Recycled internals --------------------------------------------------------------
  std::vector<DesArrival> heap;
  std::vector<double> frontier;

  // Drops staged inputs and outputs, keeping every buffer's capacity.
  void Clear() {
    entry_times.clear();
    route_steps.clear();
    route_offsets.clear();
    step_begin.clear();
    step_departure.clear();
    queue_wait_sum.clear();
    queue_busy_sum.clear();
    heap.clear();
  }

  int NumTasks() const { return static_cast<int>(entry_times.size()); }

  std::span<const RouteStep> Route(int task) const {
    const auto k = static_cast<std::size_t>(task);
    QNET_DCHECK(k + 1 < route_offsets.size(), "bad task id ", task);
    return {route_steps.data() + route_offsets[k], route_offsets[k + 1] - route_offsets[k]};
  }

  // Arrival time of step j of task k: the entry time for j == 0, else the previous
  // step's departure (stored bitwise-identically to the heap entry the DES popped).
  double StepArrival(int task, std::size_t j) const {
    const auto k = static_cast<std::size_t>(task);
    if (j == 0) {
      return entry_times[k];
    }
    return step_departure[route_offsets[k] + j - 1];
  }

  // System exit time of task k (departure of its last step).
  double ExitTime(int task) const {
    const auto k = static_cast<std::size_t>(task);
    QNET_DCHECK(route_offsets[k + 1] > route_offsets[k], "task ", task, " has no steps");
    return step_departure[route_offsets[k + 1] - 1];
  }
};

// Samples one route per staged entry time from the FSM into the scratch CSR buffers,
// consuming the RNG exactly like per-task Fsm::SampleRoute calls.
void SampleRoutesIntoScratch(const Fsm& fsm, SimScratch& scratch, Rng& rng);

// Runs the DES over staged entry times + routes, sampling service times from the
// network's distributions in heap-pop order (the batch simulator's draw order).
void RunStagedDes(const QueueingNetwork& net, SimScratch& scratch, Rng& rng,
                  const SimOptions& options = {});

// As RunStagedDes for the all-exponential case: queue q's service rate is
// pooled_rates[q] (index 0 unused — route steps never visit the arrival queue).
// Consumes the RNG exactly like Exponential(pooled_rates[q]).Sample(rng).
void RunStagedDesExponential(std::span<const double> pooled_rates, SimScratch& scratch,
                             Rng& rng, const FaultSchedule* faults = nullptr);

// Staged equivalent of Simulate(): entry times must already be staged; samples routes,
// then runs the DES. RNG-order-identical to Simulate for the same entry times.
void SimulateIntoScratch(const QueueingNetwork& net, SimScratch& scratch, Rng& rng,
                         const SimOptions& options = {});

// Staged equivalent of SimulateWorkload(): generates entry times into the scratch, then
// SimulateIntoScratch. RNG-order-identical to SimulateWorkload.
void SimulateWorkloadIntoScratch(const QueueingNetwork& net, const ArrivalProcess& workload,
                                 SimScratch& scratch, Rng& rng,
                                 const SimOptions& options = {});

// Materializes a completed scratch run as an EventLog (Reset + rebuild, so a warm log
// allocates nothing). Bit-identical to the log SimulateWithRoutes would have built.
void ScratchToEventLog(const SimScratch& scratch, int num_queues, EventLog& log);

}  // namespace qnet

#endif  // QNET_SIM_SIM_SCRATCH_H_
