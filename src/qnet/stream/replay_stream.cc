#include "qnet/stream/replay_stream.h"

#include "qnet/support/check.h"
#include "qnet/trace/csv.h"

namespace qnet {

LogReplayStream::LogReplayStream(const EventLog& log, const Observation& obs)
    : log_(&log), obs_(&obs) {}

bool LogReplayStream::Next(TaskRecord& out) {
  if (next_task_ >= log_->NumTasks()) {
    return false;
  }
  FillTaskRecord(*log_, *obs_, next_task_, out);
  ++next_task_;
  return true;
}

CsvReplayStream::CsvReplayStream(std::istream& log_is, int num_queues, std::istream* obs_is)
    : log_is_(&log_is), obs_is_(obs_is), num_queues_(num_queues) {
  Init();
}

CsvReplayStream::CsvReplayStream(const std::string& log_path, int num_queues)
    : owned_log_(std::make_unique<std::ifstream>(log_path)),
      log_is_(owned_log_.get()),
      obs_is_(nullptr),
      num_queues_(num_queues) {
  QNET_CHECK(owned_log_->good(), "cannot open ", log_path);
  Init();
}

CsvReplayStream::CsvReplayStream(const std::string& log_path, const std::string& obs_path,
                                 int num_queues)
    : owned_log_(std::make_unique<std::ifstream>(log_path)),
      owned_obs_(std::make_unique<std::ifstream>(obs_path)),
      log_is_(owned_log_.get()),
      obs_is_(owned_obs_.get()),
      num_queues_(num_queues) {
  QNET_CHECK(owned_log_->good(), "cannot open ", log_path);
  QNET_CHECK(owned_obs_->good(), "cannot open ", obs_path);
  Init();
}

void CsvReplayStream::Init() {
  num_queues_ = ReadEventLogHeader(*log_is_, num_queues_);
  if (obs_is_ != nullptr) {
    QNET_CHECK(static_cast<bool>(std::getline(*obs_is_, line_)), "empty observation stream");
    QNET_CHECK(line_.rfind("event,", 0) == 0, "missing observation header");
  }
}

bool CsvReplayStream::NextLogRow() {
  while (std::getline(*log_is_, line_)) {
    if (line_.empty()) {
      continue;
    }
    SplitCsvLine(line_, fields_);
    QNET_CHECK(fields_.size() == 6, "bad event-log row: ", line_);
    QNET_CHECK(fields_[5] == "0" || fields_[5] == "1", "bad initial flag in row: ", line_);
    return true;
  }
  return false;
}

std::pair<bool, bool> CsvReplayStream::NextObsFlags() {
  const long event = next_event_id_++;
  if (obs_is_ == nullptr) {
    return {true, true};
  }
  while (std::getline(*obs_is_, obs_line_)) {
    if (obs_line_.empty()) {
      continue;
    }
    SplitCsvLine(obs_line_, obs_fields_);
    QNET_CHECK(obs_fields_.size() == 3, "bad observation row: ", obs_line_);
    QNET_CHECK((obs_fields_[1] == "0" || obs_fields_[1] == "1") &&
                   (obs_fields_[2] == "0" || obs_fields_[2] == "1"),
               "bad observation flags in row: ", obs_line_);
    QNET_CHECK(ParseCsvLong(obs_fields_[0], obs_line_) == event,
               "observation rows out of lockstep with log at event ", event);
    return {obs_fields_[1] == "1", obs_fields_[2] == "1"};
  }
  QNET_CHECK(false, "observation stream ended before the log (event ", event, ")");
  return {true, true};  // unreachable
}

bool CsvReplayStream::Next(TaskRecord& out) {
  if (!have_buffered_row_ && !NextLogRow()) {
    return false;
  }
  have_buffered_row_ = false;
  QNET_CHECK(fields_[5] == "1", "expected an initial row, got: ", line_);
  QNET_CHECK(ParseCsvInt(fields_[0], line_) == next_task_,
             "tasks out of order at row: ", line_);
  out.Clear();
  out.entry_time = ParseCsvDouble(fields_[4], line_);
  NextObsFlags();  // keep the observation stream in lockstep (initial-event row)
  while (NextLogRow()) {
    if (fields_[5] == "1") {
      have_buffered_row_ = true;
      break;
    }
    TaskVisit visit;
    visit.state = ParseCsvInt(fields_[1], line_);
    visit.queue = ParseCsvInt(fields_[2], line_);
    visit.arrival = ParseCsvDouble(fields_[3], line_);
    visit.departure = ParseCsvDouble(fields_[4], line_);
    const auto [arrival_observed, departure_observed] = NextObsFlags();
    visit.arrival_observed = arrival_observed;
    visit.departure_observed = departure_observed;
    out.visits.push_back(visit);
  }
  QNET_CHECK(!out.visits.empty(), "task ", next_task_, " has no visits");
  ++next_task_;
  return true;
}

}  // namespace qnet
