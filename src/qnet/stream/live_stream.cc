#include "qnet/stream/live_stream.h"

#include <algorithm>

#include "qnet/support/check.h"

namespace qnet {

LiveSimStream::LiveSimStream(const QueueingNetwork& net, const LiveSimOptions& options,
                             std::uint64_t seed)
    : net_(&net),
      options_(options),
      num_queues_(net.NumQueues()),
      rng_(seed),
      obs_rng_(MixSeed(seed, 0x6f62732d726e67ULL)),  // independent observation stream
      frontier_(net.NumQueues()) {
  QNET_CHECK(options_.max_tasks > 0 || options_.horizon > 0.0,
             "LiveSimStream needs max_tasks or horizon to terminate");
  QNET_CHECK(options_.arrival_rate > 0.0, "arrival rate must be positive");
  QNET_CHECK(options_.observed_fraction >= 0.0 && options_.observed_fraction <= 1.0,
             "bad observed_fraction ", options_.observed_fraction);
  next_entry_time_ = rng_.Exponential(options_.arrival_rate);
  if (options_.horizon > 0.0 && next_entry_time_ > options_.horizon) {
    spawning_done_ = true;
  }
}

LiveSimStream::InFlightTask& LiveSimStream::TaskSlot(int task) {
  QNET_DCHECK(task >= next_emit_, "task already emitted");
  return inflight_[static_cast<std::size_t>(task - next_emit_)];
}

void LiveSimStream::SpawnTask() {
  const int task = next_spawn_++;
  InFlightTask slot;
  slot.record.entry_time = next_entry_time_;
  slot.route = net_->GetFsm().SampleRoute(rng_);
  const bool observed = obs_rng_.Bernoulli(options_.observed_fraction);
  slot.record.visits.reserve(slot.route.size());
  for (std::size_t i = 0; i < slot.route.size(); ++i) {
    TaskVisit visit;
    visit.state = slot.route[i].state;
    visit.queue = slot.route[i].queue;
    visit.arrival_observed = observed;
    visit.departure_observed =
        observed && (i + 1 < slot.route.size() || options_.observe_final_departure);
    slot.record.visits.push_back(visit);
  }
  inflight_.push_back(std::move(slot));
  heap_.push(DesArrival{next_entry_time_, task, 0});

  if (options_.max_tasks > 0 && static_cast<std::size_t>(next_spawn_) >= options_.max_tasks) {
    spawning_done_ = true;
    return;
  }
  next_entry_time_ += rng_.Exponential(options_.arrival_rate);
  if (options_.horizon > 0.0 && next_entry_time_ > options_.horizon) {
    spawning_done_ = true;
  }
}

bool LiveSimStream::Step() {
  // Keep the next unspawned entry ahead of the processing frontier: spawn while its entry
  // time is at or before the earliest pending arrival, so the heap pops events in exactly
  // the batch simulator's (time, task, step) order.
  while (!spawning_done_ && (heap_.empty() || next_entry_time_ <= heap_.top().time)) {
    SpawnTask();
  }
  if (heap_.empty()) {
    return false;
  }
  const DesArrival next = heap_.top();
  heap_.pop();
  InFlightTask& slot = TaskSlot(next.task);
  const RouteStep& step = slot.route[next.step];
  const double departure =
      frontier_.ProcessArrival(*net_, step.queue, next.time, rng_, options_.faults);
  TaskVisit& visit = slot.record.visits[next.step];
  visit.arrival = next.time;
  visit.departure = departure;
  ++slot.completed_steps;
  if (next.step + 1 < slot.route.size()) {
    heap_.push(DesArrival{departure, next.task, next.step + 1});
  } else {
    slot.done = true;
  }
  return true;
}

bool LiveSimStream::Next(TaskRecord& out) {
  while (inflight_.empty() || !inflight_.front().done) {
    if (!Step()) {
      QNET_CHECK(inflight_.empty(), "simulation drained with tasks in flight");
      return false;
    }
  }
  out = std::move(inflight_.front().record);
  inflight_.pop_front();
  ++next_emit_;
  return true;
}

}  // namespace qnet
