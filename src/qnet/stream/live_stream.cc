#include "qnet/stream/live_stream.h"

#include <algorithm>

#include "qnet/support/check.h"

namespace qnet {

LiveSimStream::LiveSimStream(const QueueingNetwork& net, const LiveSimOptions& options,
                             std::uint64_t seed)
    : net_(&net),
      options_(options),
      num_queues_(net.NumQueues()),
      rng_(seed),
      obs_rng_(MixSeed(seed, 0x6f62732d726e67ULL)),  // independent observation stream
      frontier_(net.NumQueues()) {
  QNET_CHECK(options_.max_tasks > 0 || options_.horizon > 0.0,
             "LiveSimStream needs max_tasks or horizon to terminate");
  QNET_CHECK(options_.arrival_rate > 0.0, "arrival rate must be positive");
  QNET_CHECK(options_.observed_fraction >= 0.0 && options_.observed_fraction <= 1.0,
             "bad observed_fraction ", options_.observed_fraction);
  next_entry_time_ = rng_.Exponential(InterarrivalRate(0.0));
  if (options_.horizon > 0.0 && next_entry_time_ > options_.horizon) {
    spawning_done_ = true;
  }
}

double LiveSimStream::InterarrivalRate(double at) const {
  if (options_.faults == nullptr || !options_.faults->HasArrivalSegments()) {
    return options_.arrival_rate;
  }
  return options_.arrival_rate * options_.faults->ArrivalFactor(at);
}

LiveSimStream::InFlightTask& LiveSimStream::TaskSlot(int task) {
  QNET_DCHECK(task >= next_emit_, "task already emitted");
  return inflight_[static_cast<std::size_t>(task - next_emit_)];
}

void LiveSimStream::SpawnTask() {
  const int task = next_spawn_++;
  inflight_.emplace_back();
  InFlightTask& slot = inflight_.back();
  slot.record.entry_time = next_entry_time_;
  // Same draw order as the historical SampleRoute call (route Categoricals on rng_, then
  // the observation coin on obs_rng_), but into the reused scratch buffer.
  route_scratch_.clear();
  const std::size_t route_len = net_->GetFsm().AppendSampledRoute(rng_, route_scratch_);
  const bool observed = obs_rng_.Bernoulli(options_.observed_fraction);
  if (!visit_pool_.empty()) {
    slot.record.visits = std::move(visit_pool_.back());
    visit_pool_.pop_back();
  }
  slot.record.visits.clear();
  slot.record.visits.reserve(route_len);
  for (std::size_t i = 0; i < route_len; ++i) {
    TaskVisit visit;
    visit.state = route_scratch_[i].state;
    visit.queue = route_scratch_[i].queue;
    visit.arrival_observed = observed;
    visit.departure_observed =
        observed && (i + 1 < route_len || options_.observe_final_departure);
    slot.record.visits.push_back(visit);
  }
  heap_.push(DesArrival{next_entry_time_, task, 0});

  if (options_.max_tasks > 0 && static_cast<std::size_t>(next_spawn_) >= options_.max_tasks) {
    spawning_done_ = true;
    return;
  }
  // The gap is drawn at the rate in effect at the arrival just spawned (see
  // FaultSchedule::AddArrivalScale for the lag-one-gap semantics).
  next_entry_time_ += rng_.Exponential(InterarrivalRate(next_entry_time_));
  if (options_.horizon > 0.0 && next_entry_time_ > options_.horizon) {
    spawning_done_ = true;
  }
}

bool LiveSimStream::Step() {
  // Keep the next unspawned entry ahead of the processing frontier: spawn while its entry
  // time is at or before the earliest pending arrival, so the heap pops events in exactly
  // the batch simulator's (time, task, step) order.
  while (!spawning_done_ && (heap_.empty() || next_entry_time_ <= heap_.top().time)) {
    SpawnTask();
  }
  if (heap_.empty()) {
    return false;
  }
  const DesArrival next = heap_.top();
  heap_.pop();
  InFlightTask& slot = TaskSlot(next.task);
  TaskVisit& visit = slot.record.visits[next.step];
  const double departure =
      frontier_.ProcessArrival(*net_, visit.queue, next.time, rng_, options_.faults);
  visit.arrival = next.time;
  visit.departure = departure;
  ++slot.completed_steps;
  if (next.step + 1 < slot.record.visits.size()) {
    heap_.push(DesArrival{departure, next.task, next.step + 1});
  } else {
    slot.done = true;
  }
  return true;
}

bool LiveSimStream::Next(TaskRecord& out) {
  while (inflight_.empty() || !inflight_.front().done) {
    if (!Step()) {
      QNET_CHECK(inflight_.empty(), "simulation drained with tasks in flight");
      return false;
    }
  }
  // Swap the caller's previous visit buffer into the pool instead of freeing it: a
  // steady-state ingest loop reusing one TaskRecord recycles capacity task-over-task.
  TaskRecord& front = inflight_.front().record;
  out.entry_time = front.entry_time;
  out.visits.swap(front.visits);
  constexpr std::size_t kVisitPoolCap = 256;
  if (visit_pool_.size() < kVisitPoolCap) {
    front.visits.clear();
    visit_pool_.push_back(std::move(front.visits));
  }
  inflight_.pop_front();
  ++next_emit_;
  return true;
}

}  // namespace qnet
