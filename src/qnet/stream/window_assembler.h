// Watermark-driven window assembly for streaming inference.
//
// The assembler consumes TaskRecords and partitions them into consecutive event-time
// windows of `window_duration` by entry time — the same per-window approximation as the
// batch online estimator (cross-window queueing interactions are cut at the boundary).
// Memory is bounded by the widest window ever open, never by the trace length: records
// are buffered only until their window closes, and each closed window's EventLog +
// Observation is built from the buffered records and handed off.
//
// Watermark semantics: the watermark is max(entry time seen) - allowed_lateness. A window
// [t0, t1) closes when the watermark reaches t1. With allowed_lateness == 0 and an
// entry-ordered stream this reproduces the batch windower exactly (a window closes the
// moment a record at or past its end arrives). allowed_lateness > 0 delays closing so
// that records up to that much behind the newest entry still land in their window.
//
// Late-record policy (documented contract): a record is *late* when its entry time falls
// before the currently open span's start — its window has already closed and been handed
// off. LateRecordPolicy::kDrop counts and discards it (stats().late_dropped);
// LateRecordPolicy::kMergeIntoCurrent folds it into the currently open window, trading a
// small boundary error for not losing the task. Records that are merely out of order
// within the open span are always handled exactly (windows are sorted on close).
//
// Small-window merging matches the batch estimator: a window with fewer than
// max(min_tasks_per_window, 2) records is not closed; its span extends by whole
// window_durations until enough records accumulate. At end of stream (FinishStream) a
// trailing remainder with too few records is NOT dropped: it is merged into the previous
// window's span and re-emitted as one final window (merged_tail_tasks > 0 marks the
// replacement), or emitted alone when at least 2 records exist and no previous window
// does. Only a 0/1-record remainder with no previous window is dropped (tail_dropped).

#ifndef QNET_STREAM_WINDOW_ASSEMBLER_H_
#define QNET_STREAM_WINDOW_ASSEMBLER_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/stream/task_record.h"

namespace qnet {

// Builds one window's EventLog + Observation incrementally from TaskRecords added in
// nondecreasing entry-time order. The observation flags are re-derived from the records
// exactly as ExtractTaskWindow derives them from a batch log: initial events are always
// arrival-observed, internal departure flags are synced to the successor's arrival flag,
// and observed_tasks collects the tasks whose every visit arrival is observed.
class WindowLogBuilder {
 public:
  explicit WindowLogBuilder(int num_queues);

  void Add(const TaskRecord& record);

  int NumTasks() const { return log_.NumTasks(); }

  // Finalizes queue links, validates the observation, returns the pair, and resets the
  // builder for the next window.
  std::pair<EventLog, Observation> Finish();

 private:
  int num_queues_;
  EventLog log_;
  Observation obs_;
};

enum class LateRecordPolicy {
  kDrop,
  kMergeIntoCurrent,
};

struct WindowAssemblerOptions {
  double window_duration = 60.0;
  // Windows with fewer records than max(this, 2) are merged into the next window.
  std::size_t min_tasks_per_window = 8;
  // How far behind the newest entry time the watermark trails (event-time seconds).
  double allowed_lateness = 0.0;
  LateRecordPolicy late_policy = LateRecordPolicy::kDrop;
  // Retain the last closed window's records so FinishStream can merge a too-small
  // trailing remainder into it. Costs one extra window of memory.
  bool merge_trailing_window = true;
};

struct ClosedWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t num_tasks = 0;
  // > 0: this window REPLACES the previously emitted one — it is the previous window
  // re-closed with `merged_tail_tasks` trailing records merged in (end of stream only).
  std::size_t merged_tail_tasks = 0;
  EventLog log;
  Observation obs;

  // The log is replaced on close; 2 is the smallest valid EventLog placeholder.
  ClosedWindow() : log(2) {}
};

struct WindowAssemblerStats {
  std::size_t tasks_ingested = 0;
  std::size_t late_dropped = 0;
  std::size_t tail_dropped = 0;
  std::size_t windows_closed = 0;
  // High-water mark of retained records (open-window buffer PLUS the previous window's
  // records kept for the trailing merge) — the bounded-memory witness: independent of
  // trace length, proportional to the widest window.
  std::size_t peak_buffered_tasks = 0;
};

class WindowAssembler {
 public:
  WindowAssembler(int num_queues, const WindowAssemblerOptions& options = {});

  // Ingests one record; may close zero or more windows (drain with PopClosed).
  void Push(const TaskRecord& record);

  // Signals end of stream: closes the final window under the trailing-merge policy
  // above. Push must not be called afterwards.
  void FinishStream();

  bool HasClosed() const { return !closed_.empty(); }
  ClosedWindow PopClosed();

  std::size_t BufferedTasks() const { return pending_.size(); }
  const WindowAssemblerStats& Stats() const { return stats_; }

 private:
  void TryCloseWindows();
  // Sorts `records` by entry time (stably: ties keep arrival order), builds the window,
  // and queues it.
  void CloseWindow(double t0, double t1, std::vector<TaskRecord> records,
                   std::size_t merged_tail_tasks);

  WindowAssemblerOptions options_;
  WindowLogBuilder builder_;

  double window_start_ = 0.0;
  double window_end_ = 0.0;
  double watermark_ = 0.0;  // max entry time seen
  bool finished_ = false;

  std::vector<TaskRecord> pending_;
  std::deque<ClosedWindow> closed_;

  // Last closed window's inputs, retained for the trailing merge.
  bool have_last_window_ = false;
  double last_window_t0_ = 0.0;
  std::vector<TaskRecord> last_window_records_;

  WindowAssemblerStats stats_;
};

}  // namespace qnet

#endif  // QNET_STREAM_WINDOW_ASSEMBLER_H_
