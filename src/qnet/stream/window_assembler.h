// Watermark-driven window assembly for streaming inference.
//
// The assembler consumes TaskRecords and partitions them into consecutive event-time
// windows of `window_duration` by entry time — the same per-window approximation as the
// batch online estimator (cross-window queueing interactions are cut at the boundary).
// Memory is bounded by the widest window ever open, never by the trace length: records
// are buffered only until their window closes, and each closed window's EventLog +
// Observation is built from the buffered records and handed off.
//
// Watermark semantics: the watermark is max(entry time seen) - allowed_lateness. A window
// [t0, t1) closes when the watermark reaches t1. With allowed_lateness == 0 and an
// entry-ordered stream this reproduces the batch windower exactly (a window closes the
// moment a record at or past its end arrives). allowed_lateness > 0 delays closing so
// that records up to that much behind the newest entry still land in their window.
//
// Late-record policy (documented contract): a record is *late* when its entry time falls
// before the currently open span's start — its window has already closed and been handed
// off. LateRecordPolicy::kDrop counts and discards it (stats().late_dropped);
// LateRecordPolicy::kMergeIntoCurrent folds it into the currently open window, trading a
// small boundary error for not losing the task. Records that are merely out of order
// within the open span are always handled exactly (windows are sorted on close).
//
// Small-window merging matches the batch estimator: a window with fewer than
// max(min_tasks_per_window, 2) records is not closed; its span extends by whole
// window_durations until enough records accumulate. At end of stream (FinishStream) a
// trailing remainder with too few records is NOT dropped: it is merged into the previous
// window's span and re-emitted as one final window (merged_tail_tasks > 0 marks the
// replacement), or emitted alone when at least 2 records exist and no previous window
// does. Only a 0/1-record remainder with no previous window is dropped (tail_dropped).

#ifndef QNET_STREAM_WINDOW_ASSEMBLER_H_
#define QNET_STREAM_WINDOW_ASSEMBLER_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/stream/task_record.h"

namespace qnet {

// Builds one window's EventLog + Observation incrementally from TaskRecords added in
// nondecreasing entry-time order. The observation flags are re-derived from the records
// exactly as ExtractTaskWindow derives them from a batch log: initial events are always
// arrival-observed, internal departure flags are synced to the successor's arrival flag,
// and observed_tasks collects the tasks whose every visit arrival is observed.
class WindowLogBuilder {
 public:
  explicit WindowLogBuilder(int num_queues);

  void Add(const TaskRecord& record);

  int NumTasks() const { return log_.NumTasks(); }

  // Finalizes queue links, validates the observation, returns the pair, and resets the
  // builder for the next window.
  std::pair<EventLog, Observation> Finish();

 private:
  int num_queues_;
  EventLog log_;
  Observation obs_;
};

enum class LateRecordPolicy {
  kDrop,
  kMergeIntoCurrent,
};

struct WindowAssemblerOptions {
  double window_duration = 60.0;
  // Windows with fewer records than max(this, 2) are merged into the next window.
  std::size_t min_tasks_per_window = 8;
  // How far behind the newest entry time the watermark trails (event-time seconds).
  double allowed_lateness = 0.0;
  LateRecordPolicy late_policy = LateRecordPolicy::kDrop;
  // Retain the last closed window's records so FinishStream can merge a too-small
  // trailing remainder into it. Costs one extra window of memory.
  bool merge_trailing_window = true;
};

// The decision core of WindowAssembler: consumes entry times only and produces exactly
// the close/extend/late/merge decisions the assembler makes — window spans, per-span
// record counts, emission indices, and the trailing-merge/tail-drop outcome — without
// buffering records or building logs. WindowAssembler delegates to this class, and the
// sharded streaming front-end (shard/) runs its own instance on the ingest thread, so a
// K-lane fleet's window boundaries are structurally guaranteed to be bit-identical to a
// single assembler's for ANY lane count: span decisions are a pure function of the
// global entry-time sequence and the options, never of the partition.
class WindowSpanTracker {
 public:
  // What Push decided about one record.
  enum class PushVerdict {
    kBuffered,      // belongs to the open span (or a later one)
    kLateDropped,   // late under LateRecordPolicy::kDrop: discard, do not route
    kLateMerged,    // late under kMergeIntoCurrent: folds into the open span
  };

  // One closed window, by membership rule rather than materialized records: the window
  // holds every record pushed so far (and not consumed by an earlier decision) with
  // entry_time < t1. For a merged-tail decision the previous decision's records are
  // prepended (the re-close replaces that window).
  struct SpanDecision {
    double t0 = 0.0;
    double t1 = 0.0;
    std::size_t count = 0;             // records in the span, globally
    std::size_t merged_tail_tasks = 0; // > 0: re-close of the previous window (replaces it)
    // Emission index of the window (seeds MixSeed(base, window_index) downstream); a
    // merged-tail re-close reuses the replaced window's index.
    std::size_t window_index = 0;
    // End-of-stream decisions consume EVERY remaining record, including one whose entry
    // time equals t1 == watermark (the `entry < t1` membership rule would exclude it).
    bool take_all = false;
  };

  explicit WindowSpanTracker(const WindowAssemblerOptions& options);

  // Ingests one entry time; may queue zero or more decisions (drain with PopClosed).
  PushVerdict Push(double entry_time);
  // End of stream: releases the lateness hold-back and resolves the trailing remainder
  // (close, merged-tail re-close, or tail drop). Push must not be called afterwards.
  void Finish();

  bool HasClosed() const { return !closed_.empty(); }
  SpanDecision PopClosed();

  // Raw max-entry-time watermark (no lateness subtracted).
  double Watermark() const { return watermark_; }
  std::size_t PendingCount() const { return pending_.size(); }

  // Decision counters. The tracker is the ONE increment site for the ingest-side
  // counts that WindowAssemblerStats, StreamingStats, and FleetStats share — each
  // increment also bumps the matching StreamCounters metric in the global registry,
  // so the stats structs and the exported metrics cannot drift (they are literally
  // the same count). Accessors are plain local reads: a tracker reports its OWN
  // stream even when several trackers run in one process.
  std::size_t TasksPushed() const { return tasks_pushed_; }
  std::size_t LateDropped() const { return late_dropped_; }
  std::size_t WindowsClosed() const { return windows_closed_; }
  // Records dropped at Finish (0/1-record remainder with nothing to merge into).
  std::size_t TailDropped() const { return tail_dropped_; }

 private:
  void TryCloseWindows();
  void QueueDecision(double t0, double t1, std::size_t count, std::size_t merged_tail,
                     bool take_all);

  WindowAssemblerOptions options_;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  double watermark_ = 0.0;  // max entry time seen
  bool finished_ = false;

  std::vector<double> pending_;  // entry times of not-yet-closed records, push order
  std::deque<SpanDecision> closed_;

  std::size_t next_window_index_ = 0;
  // Last normally closed window, retained as the trailing-merge target.
  bool have_last_window_ = false;
  double last_window_t0_ = 0.0;
  std::size_t last_window_count_ = 0;

  std::size_t tasks_pushed_ = 0;
  std::size_t late_dropped_ = 0;
  std::size_t windows_closed_ = 0;
  std::size_t tail_dropped_ = 0;
};

// Selects and removes from `pending` the records `decision` names — stable partition by
// entry < t1, or every remaining record for take_all — prepending and consuming
// `last_window` for a merged-tail re-close, and returns them sorted by entry time
// (stably: ties keep arrival order), ready for WindowLogBuilder. Shared by
// WindowAssembler and the sharded fleet's lane workers (shard/) so the two close paths
// cannot drift: a lane applies the identical membership rule to its sub-sequence.
std::vector<TaskRecord> TakeDecisionRecords(const WindowSpanTracker::SpanDecision& decision,
                                            std::vector<TaskRecord>& pending,
                                            std::vector<TaskRecord>& last_window);

struct ClosedWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t num_tasks = 0;
  // > 0: this window REPLACES the previously emitted one — it is the previous window
  // re-closed with `merged_tail_tasks` trailing records merged in (end of stream only).
  std::size_t merged_tail_tasks = 0;
  // Emission index from the span tracker (a merged-tail re-close reuses the replaced
  // window's index) — the per-window seed salt of the streaming estimators.
  std::size_t window_index = 0;
  EventLog log;
  Observation obs;

  // The log is replaced on close; 2 is the smallest valid EventLog placeholder.
  ClosedWindow() : log(2) {}
};

// Derived on demand from the assembler's own WindowSpanTracker counters (plus the
// assembler-local buffering high-water mark) — see the tracker's counter accessors for
// why these fields cannot drift from the registry metrics.
struct WindowAssemblerStats {
  std::size_t tasks_ingested = 0;
  std::size_t late_dropped = 0;
  std::size_t tail_dropped = 0;
  std::size_t windows_closed = 0;
  // High-water mark of retained records (open-window buffer PLUS the previous window's
  // records kept for the trailing merge) — the bounded-memory witness: independent of
  // trace length, proportional to the widest window.
  std::size_t peak_buffered_tasks = 0;
};

class WindowAssembler {
 public:
  WindowAssembler(int num_queues, const WindowAssemblerOptions& options = {});

  // Ingests one record; may close zero or more windows (drain with PopClosed).
  void Push(const TaskRecord& record);

  // Signals end of stream: closes the final window under the trailing-merge policy
  // above. Push must not be called afterwards.
  void FinishStream();

  bool HasClosed() const { return !closed_.empty(); }
  ClosedWindow PopClosed();

  std::size_t BufferedTasks() const { return pending_.size(); }
  WindowAssemblerStats Stats() const;

 private:
  // Materializes one tracker decision: selects the buffered records the decision's
  // membership rule names, sorts them by entry time (stably: ties keep arrival order),
  // builds the window, and queues it.
  void MaterializeDecision(const WindowSpanTracker::SpanDecision& decision);

  WindowAssemblerOptions options_;
  WindowSpanTracker tracker_;  // all close/extend/late/merge decisions live here
  WindowLogBuilder builder_;

  std::vector<TaskRecord> pending_;
  std::deque<ClosedWindow> closed_;

  // Last closed window's records, retained for the trailing merge.
  std::vector<TaskRecord> last_window_records_;

  // See WindowAssemblerStats::peak_buffered_tasks.
  std::size_t peak_buffered_tasks_ = 0;
};

}  // namespace qnet

#endif  // QNET_STREAM_WINDOW_ASSEMBLER_H_
