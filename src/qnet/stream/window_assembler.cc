#include "qnet/stream/window_assembler.h"

#include <algorithm>
#include <iterator>

#include "qnet/support/check.h"

namespace qnet {

WindowLogBuilder::WindowLogBuilder(int num_queues)
    : num_queues_(num_queues), log_(num_queues) {}

void WindowLogBuilder::Add(const TaskRecord& record) {
  QNET_CHECK(!record.visits.empty(), "task record has no visits");
  const int task = log_.AddTask(record.entry_time);
  // Initial event: arrival observed by convention (t = 0); its departure is the same
  // physical measurement as the first visit's arrival.
  obs_.arrival_observed.push_back(1);
  obs_.departure_observed.push_back(record.visits.front().arrival_observed ? 1 : 0);
  bool all_arrivals_observed = true;
  for (std::size_t i = 0; i < record.visits.size(); ++i) {
    const TaskVisit& visit = record.visits[i];
    log_.AddVisit(task, visit.state, visit.queue, visit.arrival, visit.departure);
    obs_.arrival_observed.push_back(visit.arrival_observed ? 1 : 0);
    // Internal departures sync to the successor's arrival flag (the consistency
    // invariant); only the final visit keeps its own departure flag.
    const bool departure_observed = i + 1 < record.visits.size()
                                        ? record.visits[i + 1].arrival_observed
                                        : visit.departure_observed;
    obs_.departure_observed.push_back(departure_observed ? 1 : 0);
    all_arrivals_observed = all_arrivals_observed && visit.arrival_observed;
  }
  if (all_arrivals_observed) {
    obs_.observed_tasks.push_back(task);
  }
}

std::pair<EventLog, Observation> WindowLogBuilder::Finish() {
  log_.BuildQueueLinks();
  EventLog log = std::move(log_);
  Observation obs = std::move(obs_);
  log_ = EventLog(num_queues_);
  obs_ = Observation{};
  obs.Validate(log);
  return {std::move(log), std::move(obs)};
}

WindowAssembler::WindowAssembler(int num_queues, const WindowAssemblerOptions& options)
    : options_(options), builder_(num_queues) {
  QNET_CHECK(options_.window_duration > 0.0, "window duration must be positive");
  QNET_CHECK(options_.allowed_lateness >= 0.0, "allowed lateness must be nonnegative");
  window_end_ = options_.window_duration;
}

void WindowAssembler::Push(const TaskRecord& record) {
  QNET_CHECK(!finished_, "Push after FinishStream");
  ++stats_.tasks_ingested;
  if (record.entry_time < window_start_) {
    // Late: this record's window has already closed and been handed off.
    if (options_.late_policy == LateRecordPolicy::kDrop) {
      ++stats_.late_dropped;
      return;
    }
    // kMergeIntoCurrent: falls through and joins the currently open window.
  }
  watermark_ = std::max(watermark_, record.entry_time);
  pending_.push_back(record);
  stats_.peak_buffered_tasks = std::max(
      stats_.peak_buffered_tasks, pending_.size() + last_window_records_.size());
  TryCloseWindows();
}

void WindowAssembler::TryCloseWindows() {
  const std::size_t min_needed = std::max<std::size_t>(options_.min_tasks_per_window, 2);
  // At end of stream the watermark hold-back is released: nothing later can arrive.
  const double watermark = finished_ ? watermark_ : watermark_ - options_.allowed_lateness;
  while (watermark >= window_end_) {
    const auto in_window_end =
        std::stable_partition(pending_.begin(), pending_.end(), [&](const TaskRecord& r) {
          return r.entry_time < window_end_;
        });
    const auto count = static_cast<std::size_t>(in_window_end - pending_.begin());
    if (count < min_needed) {
      // Too small: the window's span extends into the next duration (batch semantics).
      // Fast-forward over record-free durations without re-partitioning — nothing can
      // change until window_end passes another pending entry or the watermark. The
      // repeated addition (rather than one multiply) keeps window_end bit-identical to
      // the batch estimator's one-duration-at-a-time grid.
      double bound = watermark;
      for (const TaskRecord& record : pending_) {
        if (record.entry_time >= window_end_) {
          bound = std::min(bound, record.entry_time);
        }
      }
      do {
        window_end_ += options_.window_duration;
      } while (window_end_ <= bound);
      continue;
    }
    std::vector<TaskRecord> records(std::make_move_iterator(pending_.begin()),
                                    std::make_move_iterator(in_window_end));
    pending_.erase(pending_.begin(), in_window_end);
    CloseWindow(window_start_, window_end_, std::move(records), 0);
    window_start_ = window_end_;
    window_end_ += options_.window_duration;
  }
}

void WindowAssembler::FinishStream() {
  QNET_CHECK(!finished_, "FinishStream called twice");
  finished_ = true;
  TryCloseWindows();
  if (pending_.empty()) {
    return;
  }
  const std::size_t min_needed = std::max<std::size_t>(options_.min_tasks_per_window, 2);
  const double t1 = std::max(window_end_, watermark_);
  if (pending_.size() >= min_needed) {
    CloseWindow(window_start_, t1, std::move(pending_), 0);
  } else if (options_.merge_trailing_window && have_last_window_) {
    // Trailing remainder too small for its own estimate: merge it into the previous
    // window's span and re-emit that window (merged_tail_tasks marks the replacement).
    const std::size_t tail = pending_.size();
    std::vector<TaskRecord> merged = std::move(last_window_records_);
    merged.insert(merged.end(), std::make_move_iterator(pending_.begin()),
                  std::make_move_iterator(pending_.end()));
    have_last_window_ = false;
    CloseWindow(last_window_t0_, t1, std::move(merged), tail);
  } else if (pending_.size() >= 2) {
    // No previous window to merge into; a 2+-task remainder still gets an estimate.
    CloseWindow(window_start_, t1, std::move(pending_), 0);
  } else {
    stats_.tail_dropped += pending_.size();
  }
  pending_.clear();
}

void WindowAssembler::CloseWindow(double t0, double t1, std::vector<TaskRecord> records,
                                  std::size_t merged_tail_tasks) {
  // Stable: records with equal entry times keep their arrival order, so an entry-ordered
  // stream reproduces the batch task order exactly.
  std::stable_sort(records.begin(), records.end(),
                   [](const TaskRecord& a, const TaskRecord& b) {
                     return a.entry_time < b.entry_time;
                   });
  for (const TaskRecord& record : records) {
    builder_.Add(record);
  }
  ClosedWindow window;
  window.t0 = t0;
  window.t1 = t1;
  window.num_tasks = records.size();
  window.merged_tail_tasks = merged_tail_tasks;
  auto [log, obs] = builder_.Finish();
  window.log = std::move(log);
  window.obs = std::move(obs);
  closed_.push_back(std::move(window));
  if (merged_tail_tasks == 0) {
    // The merged re-close replaces the previous window; it is not a new closed window.
    ++stats_.windows_closed;
  }
  // Every normally closed window becomes the trailing-merge target — including ones
  // whose close was deferred until FinishStream released the lateness hold-back (only
  // the merged re-close itself must not overwrite the retained records).
  if (options_.merge_trailing_window && merged_tail_tasks == 0) {
    last_window_records_ = std::move(records);
    last_window_t0_ = t0;
    have_last_window_ = true;
  }
}

ClosedWindow WindowAssembler::PopClosed() {
  QNET_CHECK(!closed_.empty(), "no closed window to pop");
  ClosedWindow window = std::move(closed_.front());
  closed_.pop_front();
  return window;
}

}  // namespace qnet
