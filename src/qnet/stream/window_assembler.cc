#include "qnet/stream/window_assembler.h"

#include <algorithm>
#include <iterator>

#include "qnet/support/check.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

WindowLogBuilder::WindowLogBuilder(int num_queues)
    : num_queues_(num_queues), log_(num_queues) {}

void WindowLogBuilder::Add(const TaskRecord& record) {
  QNET_CHECK(!record.visits.empty(), "task record has no visits");
  const int task = log_.AddTask(record.entry_time);
  // Initial event: arrival observed by convention (t = 0); its departure is the same
  // physical measurement as the first visit's arrival.
  obs_.arrival_observed.push_back(1);
  obs_.departure_observed.push_back(record.visits.front().arrival_observed ? 1 : 0);
  bool all_arrivals_observed = true;
  for (std::size_t i = 0; i < record.visits.size(); ++i) {
    const TaskVisit& visit = record.visits[i];
    log_.AddVisit(task, visit.state, visit.queue, visit.arrival, visit.departure);
    obs_.arrival_observed.push_back(visit.arrival_observed ? 1 : 0);
    // Internal departures sync to the successor's arrival flag (the consistency
    // invariant); only the final visit keeps its own departure flag.
    const bool departure_observed = i + 1 < record.visits.size()
                                        ? record.visits[i + 1].arrival_observed
                                        : visit.departure_observed;
    obs_.departure_observed.push_back(departure_observed ? 1 : 0);
    all_arrivals_observed = all_arrivals_observed && visit.arrival_observed;
  }
  if (all_arrivals_observed) {
    obs_.observed_tasks.push_back(task);
  }
}

std::pair<EventLog, Observation> WindowLogBuilder::Finish() {
  log_.BuildQueueLinks();
  EventLog log = std::move(log_);
  Observation obs = std::move(obs_);
  log_ = EventLog(num_queues_);
  obs_ = Observation{};
  obs.Validate(log);
  return {std::move(log), std::move(obs)};
}

// --- WindowSpanTracker -------------------------------------------------------------------

WindowSpanTracker::WindowSpanTracker(const WindowAssemblerOptions& options)
    : options_(options) {
  QNET_CHECK(options_.window_duration > 0.0, "window duration must be positive");
  QNET_CHECK(options_.allowed_lateness >= 0.0, "allowed lateness must be nonnegative");
  window_end_ = options_.window_duration;
}

WindowSpanTracker::PushVerdict WindowSpanTracker::Push(double entry_time) {
  QNET_CHECK(!finished_, "Push after Finish");
  ++tasks_pushed_;
  StreamCounters::Get().tasks_ingested->Increment();
  PushVerdict verdict = PushVerdict::kBuffered;
  if (entry_time < window_start_) {
    // Late: this record's window has already closed and been handed off.
    if (options_.late_policy == LateRecordPolicy::kDrop) {
      ++late_dropped_;
      StreamCounters::Get().late_dropped->Increment();
      return PushVerdict::kLateDropped;
    }
    // kMergeIntoCurrent: joins the currently open window (entry < t1 holds trivially).
    verdict = PushVerdict::kLateMerged;
  }
  watermark_ = std::max(watermark_, entry_time);
  pending_.push_back(entry_time);
  TryCloseWindows();
  return verdict;
}

void WindowSpanTracker::TryCloseWindows() {
  const std::size_t min_needed = std::max<std::size_t>(options_.min_tasks_per_window, 2);
  // At end of stream the watermark hold-back is released: nothing later can arrive.
  const double watermark = finished_ ? watermark_ : watermark_ - options_.allowed_lateness;
  while (watermark >= window_end_) {
    const auto in_window_end =
        std::stable_partition(pending_.begin(), pending_.end(),
                              [&](double entry) { return entry < window_end_; });
    const auto count = static_cast<std::size_t>(in_window_end - pending_.begin());
    if (count < min_needed) {
      // Too small: the window's span extends into the next duration (batch semantics).
      // Fast-forward over record-free durations without re-partitioning — nothing can
      // change until window_end passes another pending entry or the watermark. The
      // repeated addition (rather than one multiply) keeps window_end bit-identical to
      // the batch estimator's one-duration-at-a-time grid.
      double bound = watermark;
      for (const double entry : pending_) {
        if (entry >= window_end_) {
          bound = std::min(bound, entry);
        }
      }
      do {
        window_end_ += options_.window_duration;
      } while (window_end_ <= bound);
      continue;
    }
    pending_.erase(pending_.begin(), in_window_end);
    QueueDecision(window_start_, window_end_, count, 0, /*take_all=*/false);
    window_start_ = window_end_;
    window_end_ += options_.window_duration;
  }
}

void WindowSpanTracker::Finish() {
  QNET_CHECK(!finished_, "Finish called twice");
  finished_ = true;
  TryCloseWindows();
  if (pending_.empty()) {
    return;
  }
  const std::size_t min_needed = std::max<std::size_t>(options_.min_tasks_per_window, 2);
  const double t1 = std::max(window_end_, watermark_);
  if (pending_.size() >= min_needed) {
    QueueDecision(window_start_, t1, pending_.size(), 0, /*take_all=*/true);
  } else if (options_.merge_trailing_window && have_last_window_) {
    // Trailing remainder too small for its own estimate: merge it into the previous
    // window's span and re-emit that window (merged_tail_tasks marks the replacement).
    const std::size_t tail = pending_.size();
    const std::size_t merged_count = last_window_count_ + tail;
    have_last_window_ = false;
    QueueDecision(last_window_t0_, t1, merged_count, tail, /*take_all=*/true);
  } else if (pending_.size() >= 2) {
    // No previous window to merge into; a 2+-task remainder still gets an estimate.
    QueueDecision(window_start_, t1, pending_.size(), 0, /*take_all=*/true);
  } else {
    tail_dropped_ += pending_.size();
    StreamCounters::Get().tail_dropped->Add(pending_.size());
  }
  pending_.clear();
}

void WindowSpanTracker::QueueDecision(double t0, double t1, std::size_t count,
                                      std::size_t merged_tail, bool take_all) {
  SpanDecision decision;
  decision.t0 = t0;
  decision.t1 = t1;
  decision.count = count;
  decision.merged_tail_tasks = merged_tail;
  decision.take_all = take_all;
  if (merged_tail > 0) {
    // The merged re-close replaces the previous window: same emission index.
    QNET_DCHECK(next_window_index_ > 0, "merged tail before any window");
    decision.window_index = next_window_index_ - 1;
  } else {
    decision.window_index = next_window_index_++;
    ++windows_closed_;
    StreamCounters::Get().windows_closed->Increment();
    // Every normally closed window becomes the trailing-merge target — including ones
    // whose close was deferred until Finish released the lateness hold-back.
    if (options_.merge_trailing_window) {
      last_window_t0_ = t0;
      last_window_count_ = count;
      have_last_window_ = true;
    }
  }
  closed_.push_back(decision);
}

WindowSpanTracker::SpanDecision WindowSpanTracker::PopClosed() {
  QNET_CHECK(!closed_.empty(), "no closed span decision to pop");
  const SpanDecision decision = closed_.front();
  closed_.pop_front();
  return decision;
}

// --- WindowAssembler ---------------------------------------------------------------------

WindowAssembler::WindowAssembler(int num_queues, const WindowAssemblerOptions& options)
    : options_(options), tracker_(options), builder_(num_queues) {}

void WindowAssembler::Push(const TaskRecord& record) {
  const WindowSpanTracker::PushVerdict verdict = tracker_.Push(record.entry_time);
  if (verdict == WindowSpanTracker::PushVerdict::kLateDropped) {
    return;
  }
  pending_.push_back(record);
  const std::size_t buffered = pending_.size() + last_window_records_.size();
  if (buffered > peak_buffered_tasks_) {
    peak_buffered_tasks_ = buffered;
    StreamCounters::Get().peak_buffered_tasks->SetMax(static_cast<double>(buffered));
  }
  while (tracker_.HasClosed()) {
    MaterializeDecision(tracker_.PopClosed());
  }
}

void WindowAssembler::FinishStream() {
  tracker_.Finish();
  while (tracker_.HasClosed()) {
    MaterializeDecision(tracker_.PopClosed());
  }
  // Whatever the decisions did not consume is the dropped tail (0 or 1 records with no
  // window to merge into); the tracker already counted it.
  QNET_DCHECK(pending_.size() == tracker_.TailDropped(), "tracker/assembler tail mismatch");
  pending_.clear();
}

WindowAssemblerStats WindowAssembler::Stats() const {
  WindowAssemblerStats stats;
  stats.tasks_ingested = tracker_.TasksPushed();
  stats.late_dropped = tracker_.LateDropped();
  stats.tail_dropped = tracker_.TailDropped();
  stats.windows_closed = tracker_.WindowsClosed();
  stats.peak_buffered_tasks = peak_buffered_tasks_;
  return stats;
}

std::vector<TaskRecord> TakeDecisionRecords(const WindowSpanTracker::SpanDecision& decision,
                                            std::vector<TaskRecord>& pending,
                                            std::vector<TaskRecord>& last_window) {
  // Select the records the decision's membership rule names. Stable: records with equal
  // entry times keep their arrival order, so an entry-ordered stream reproduces the
  // batch task order exactly.
  const auto in_window_end =
      decision.take_all
          ? pending.end()
          : std::stable_partition(pending.begin(), pending.end(),
                                  [&](const TaskRecord& record) {
                                    return record.entry_time < decision.t1;
                                  });
  std::vector<TaskRecord> records;
  if (decision.merged_tail_tasks > 0) {
    // The merged re-close replaces the previous window: its records come first.
    records = std::move(last_window);
    last_window.clear();
  }
  records.insert(records.end(), std::make_move_iterator(pending.begin()),
                 std::make_move_iterator(in_window_end));
  pending.erase(pending.begin(), in_window_end);
  std::stable_sort(records.begin(), records.end(),
                   [](const TaskRecord& a, const TaskRecord& b) {
                     return a.entry_time < b.entry_time;
                   });
  return records;
}

void WindowAssembler::MaterializeDecision(const WindowSpanTracker::SpanDecision& decision) {
  ScopedSpan span(SpanStage::kWindowAssemble);
  std::vector<TaskRecord> records =
      TakeDecisionRecords(decision, pending_, last_window_records_);
  QNET_DCHECK(records.size() == decision.count, "decision count ", decision.count,
              " != materialized records ", records.size());
  for (const TaskRecord& record : records) {
    builder_.Add(record);
  }
  ClosedWindow window;
  window.t0 = decision.t0;
  window.t1 = decision.t1;
  window.num_tasks = records.size();
  window.merged_tail_tasks = decision.merged_tail_tasks;
  window.window_index = decision.window_index;
  auto [log, obs] = builder_.Finish();
  window.log = std::move(log);
  window.obs = std::move(obs);
  closed_.push_back(std::move(window));
  // A merged re-close replaces the previous window; only a normal close becomes the
  // next trailing-merge target (the tracker already did the windows_closed counting).
  if (decision.merged_tail_tasks == 0 && options_.merge_trailing_window) {
    last_window_records_ = std::move(records);
  }
}

ClosedWindow WindowAssembler::PopClosed() {
  QNET_CHECK(!closed_.empty(), "no closed window to pop");
  ClosedWindow window = std::move(closed_.front());
  closed_.pop_front();
  return window;
}

}  // namespace qnet
