// Streaming windowed StEM: warm-started per-window estimation over a TraceStream.
//
// The estimator pulls TaskRecords from any TraceStream (replay, CSV, live simulator),
// feeds them through a watermark-driven WindowAssembler, and runs a short StEM fit on
// every closed window through the same MoveKernel/sweep-driver core as the batch
// estimators — windows cannot drift from batch sampler behavior. Each window is
// warm-started from the previous window's rate estimate, yielding the rate trajectory
// the paper's "what happened five minutes ago" diagnosis questions consume.
//
// Determinism contract (extends the PR-1/PR-2 contracts): window w's StEM run consumes
// an Rng seeded MixSeed(seed, w) — a pure function of the base seed and the window's
// emission index, never of ingestion timing. Combined with the assembler's
// order-preserving close and StEM's sharded-sweep contract, the estimate sequence is
// bit-identical for any pipeline setting and any sharded-sweep thread count; only
// wall-clock changes. The warm-start chain and seed discipline live in WindowFitChain,
// which the sharded streaming front-end (shard/sharded_streaming.h) shares per lane —
// a single-lane fleet therefore reproduces this estimator bit-exactly.
//
// Pipelining: with `pipeline` set, window N's StEM sweeps run on a PipelineSlot
// background thread while the caller's Run loop keeps ingesting window N+1 from the
// stream (warm starts serialize the StEM runs themselves, so one slot is the maximal
// useful depth). Stats() reports ingest throughput, sweep lag, and the assembler's
// late/dropped/peak-buffer counters.

#ifndef QNET_STREAM_STREAMING_ESTIMATOR_H_
#define QNET_STREAM_STREAMING_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "qnet/infer/meanfield.h"
#include "qnet/infer/stem.h"
#include "qnet/stream/task_record.h"
#include "qnet/stream/window_assembler.h"

namespace qnet {

// Sampler-free fast-path policy (see infer/meanfield.h for the estimator itself).
enum class FastPathMode {
  // StEM only — the historical behavior, preserved bit-exactly.
  kOff,
  // Seed each window's StEM from that window's own mean-field fit (instead of only the
  // previous window's rates); pair with StemOptions::convergence_tol for the early-stop
  // throughput win. Estimates remain StEM estimates.
  kWarmStart,
  // kWarmStart, plus: a window whose task count exceeds degrade_task_budget emits the
  // mean-field fit directly (degraded = true) instead of running StEM. The trigger is
  // the window's task count — a pure function of the stream, never of wall-clock lag —
  // so degraded runs keep the bit-equality determinism contract.
  kDegrade,
  // Every window emits its mean-field fit; no sampler runs at all (the all-variational
  // mode; also what degraded windows produce).
  kMeanFieldOnly,
};

struct WindowEstimate {
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t tasks = 0;
  // > 0: this estimate replaced a previously reported one — the trailing remainder of
  // the stream (this many tasks) was merged into the last window and it was re-fit.
  std::size_t merged_tail_tasks = 0;
  // True when rates[0] is the window-local arrival rate (anchored to t0; see
  // StreamingEstimatorOptions::window_local_arrival_rate). False: the historical
  // absolute-time lambda iterate, which decays over a long stream — consumers such as
  // WindowForecaster substitute an empirical rate in that case.
  bool window_local_arrival_rate = false;
  // True when this estimate is a mean-field fit rather than a StEM fit (degraded under
  // kDegrade's task budget, or every window under kMeanFieldOnly).
  bool degraded = false;
  // StEM iterations this window's fit actually ran (0 for degraded/mean-field-only
  // estimates); with convergence_tol set, the early-stop savings show up here.
  std::size_t fit_iterations = 0;
  // Bitmask of AlertKind values (detect/alerts.h) a ChangeMonitor raised at this window.
  // The estimators always emit 0 — detection is strictly downstream of estimation — and
  // ChangeMonitor::ApplyAlertFlags annotates a returned sequence after the fact, so the
  // flags persist through the trace/window_csv round-trip.
  std::uint32_t alerts = 0;
  std::vector<double> rates;      // index 0 = lambda
  std::vector<double> mean_wait;  // posterior mean per queue (may be empty)
};

struct StreamingEstimatorOptions {
  WindowAssemblerOptions window;
  StemOptions stem;
  // Overlap window N's StEM sweeps with window N+1's ingestion.
  bool pipeline = false;
  // Anchor each window's StEM lambda iterate to the window start (StemOptions::
  // arrival_time_origin = t0), so rates[0] estimates the window's own arrival rate
  // instead of the absolute-time-anchored iterate that decays as the stream ages.
  // Default off: the historical estimates are preserved bit-exactly.
  bool window_local_arrival_rate = false;
  // Invoked on the ingest thread as each window's estimate completes, in window order —
  // the continuous-forecasting hook (see scenario/forecast.h). A merged-tail re-fit
  // invokes it once more with merged_tail_tasks > 0; such an estimate REPLACES the
  // previous window's, and consumers should replace their derived state the same way.
  // Runs inside Run()'s pipeline join, so a slow hook adds to sweep lag, never changes
  // results (the estimate sequence stays bit-identical with or without a hook).
  std::function<void(const WindowEstimate&)> on_window;
  // Mean-field fast path (see FastPathMode). kOff preserves the StEM-only estimate
  // sequence bit-exactly.
  FastPathMode fast_path = FastPathMode::kOff;
  // kDegrade: windows with MORE tasks than this emit the mean-field fit directly.
  std::size_t degrade_task_budget = std::numeric_limits<std::size_t>::max();
  MeanFieldOptions mean_field;
};

struct StreamingStats {
  std::size_t tasks_ingested = 0;
  std::size_t windows_estimated = 0;
  std::size_t late_dropped = 0;
  std::size_t tail_dropped = 0;
  std::size_t peak_buffered_tasks = 0;
  double total_wall_seconds = 0.0;
  double tasks_per_second = 0.0;  // end-to-end sustained ingest rate
  // Longest a closed window waited before its StEM run started (pipeline backpressure).
  double max_sweep_lag_seconds = 0.0;
  // Windows that emitted a mean-field-only estimate (degraded = true).
  std::size_t degraded_windows = 0;
  // Sum of WindowEstimate::fit_iterations — with convergence_tol set, compare against
  // windows_estimated * StemOptions::iterations for the early-stop savings.
  std::size_t fit_iterations_total = 0;
};

// Warm-started per-window fit bookkeeping shared by StreamingEstimator and the sharded
// streaming fleet's lanes: which rates a window's fit starts from (the previous window's
// result; a merged-tail re-fit restarts from the SAME input its first fit consumed),
// which seed it consumes, and which lambda anchoring it applies.
//
// Seed discipline: window w's fit is seeded
//   MixSeed(base, w)                  — plain estimator / single-lane fleet, and
//   MixSeed(MixSeed(base, w), lane)   — lane `lane` of a multi-lane fleet (salted),
// a pure function of (base, window index, lane), never of timing or scheduling. The
// single-lane fleet elides the lane salt so K = 1 reproduces the plain estimator
// bit-exactly.
class WindowFitChain {
 public:
  struct Plan {
    std::vector<double> warm_start;    // rates the fit starts from (index 0 = lambda)
    std::uint64_t seed = 0;            // seeds the fit's Rng
    double arrival_time_origin = 0.0;  // StemOptions::arrival_time_origin for the fit
  };

  WindowFitChain(std::vector<double> init_rates, std::uint64_t seed,
                 bool window_local_arrival_rate, bool salted = false,
                 std::uint64_t lane = 0)
      : seed_(seed),
        window_local_(window_local_arrival_rate),
        salted_(salted),
        lane_(lane),
        rates_(init_rates),
        prev_input_rates_(std::move(init_rates)) {}

  // Plans the fit of the window with emission index `window_index` starting at t0 and
  // advances the warm-start bookkeeping; call Complete with the fitted rates before
  // planning the next window. A merged-tail re-fit passes the REPLACED window's index
  // (exactly what WindowSpanTracker emits) and restarts from that window's input.
  Plan PlanFit(std::size_t window_index, bool merged_tail, double t0);
  void Complete(const std::vector<double>& fitted_rates) { rates_ = fitted_rates; }

  bool WindowLocalArrivalRate() const { return window_local_; }

 private:
  std::uint64_t seed_;
  bool window_local_;
  bool salted_;
  std::uint64_t lane_;
  std::vector<double> rates_;             // most recent fit result (next warm start)
  std::vector<double> prev_input_rates_;  // warm input of the most recent planned fit
};

class StreamingEstimator {
 public:
  // `init_rates` warm-starts the first window (index 0 = lambda); `seed` drives the
  // MixSeed-per-window discipline above.
  StreamingEstimator(std::vector<double> init_rates, std::uint64_t seed,
                     const StreamingEstimatorOptions& options = {});

  // Drains `stream` to completion and returns the per-window estimate sequence (a
  // merged-tail re-fit replaces the last entry in place; see WindowEstimate).
  std::vector<WindowEstimate> Run(TraceStream& stream);

  // Valid after Run.
  const StreamingStats& Stats() const { return stats_; }

 private:
  std::vector<double> init_rates_;
  std::uint64_t seed_;
  StreamingEstimatorOptions options_;
  StreamingStats stats_;
};

}  // namespace qnet

#endif  // QNET_STREAM_STREAMING_ESTIMATOR_H_
