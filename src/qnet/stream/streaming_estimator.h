// Streaming windowed StEM: warm-started per-window estimation over a TraceStream.
//
// The estimator pulls TaskRecords from any TraceStream (replay, CSV, live simulator),
// feeds them through a watermark-driven WindowAssembler, and runs a short StEM fit on
// every closed window through the same MoveKernel/sweep-driver core as the batch
// estimators — windows cannot drift from batch sampler behavior. Each window is
// warm-started from the previous window's rate estimate, yielding the rate trajectory
// the paper's "what happened five minutes ago" diagnosis questions consume.
//
// Determinism contract (extends the PR-1/PR-2 contracts): window w's StEM run consumes
// an Rng seeded MixSeed(seed, w) — a pure function of the base seed and the window's
// emission index, never of ingestion timing. Combined with the assembler's
// order-preserving close and StEM's sharded-sweep contract, the estimate sequence is
// bit-identical for any pipeline setting and any sharded-sweep thread count; only
// wall-clock changes.
//
// Pipelining: with `pipeline` set, window N's StEM sweeps run on a PipelineSlot
// background thread while the caller's Run loop keeps ingesting window N+1 from the
// stream (warm starts serialize the StEM runs themselves, so one slot is the maximal
// useful depth). Stats() reports ingest throughput, sweep lag, and the assembler's
// late/dropped/peak-buffer counters.

#ifndef QNET_STREAM_STREAMING_ESTIMATOR_H_
#define QNET_STREAM_STREAMING_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "qnet/infer/stem.h"
#include "qnet/stream/task_record.h"
#include "qnet/stream/window_assembler.h"

namespace qnet {

struct WindowEstimate {
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t tasks = 0;
  // > 0: this estimate replaced a previously reported one — the trailing remainder of
  // the stream (this many tasks) was merged into the last window and it was re-fit.
  std::size_t merged_tail_tasks = 0;
  std::vector<double> rates;      // index 0 = lambda
  std::vector<double> mean_wait;  // posterior mean per queue (may be empty)
};

struct StreamingEstimatorOptions {
  WindowAssemblerOptions window;
  StemOptions stem;
  // Overlap window N's StEM sweeps with window N+1's ingestion.
  bool pipeline = false;
  // Invoked on the ingest thread as each window's estimate completes, in window order —
  // the continuous-forecasting hook (see scenario/forecast.h). A merged-tail re-fit
  // invokes it once more with merged_tail_tasks > 0; such an estimate REPLACES the
  // previous window's, and consumers should replace their derived state the same way.
  // Runs inside Run()'s pipeline join, so a slow hook adds to sweep lag, never changes
  // results (the estimate sequence stays bit-identical with or without a hook).
  std::function<void(const WindowEstimate&)> on_window;
};

struct StreamingStats {
  std::size_t tasks_ingested = 0;
  std::size_t windows_estimated = 0;
  std::size_t late_dropped = 0;
  std::size_t tail_dropped = 0;
  std::size_t peak_buffered_tasks = 0;
  double total_wall_seconds = 0.0;
  double tasks_per_second = 0.0;  // end-to-end sustained ingest rate
  // Longest a closed window waited before its StEM run started (pipeline backpressure).
  double max_sweep_lag_seconds = 0.0;
};

class StreamingEstimator {
 public:
  // `init_rates` warm-starts the first window (index 0 = lambda); `seed` drives the
  // MixSeed-per-window discipline above.
  StreamingEstimator(std::vector<double> init_rates, std::uint64_t seed,
                     const StreamingEstimatorOptions& options = {});

  // Drains `stream` to completion and returns the per-window estimate sequence (a
  // merged-tail re-fit replaces the last entry in place; see WindowEstimate).
  std::vector<WindowEstimate> Run(TraceStream& stream);

  // Valid after Run.
  const StreamingStats& Stats() const { return stats_; }

 private:
  std::vector<double> init_rates_;
  std::uint64_t seed_;
  StreamingEstimatorOptions options_;
  StreamingStats stats_;
};

}  // namespace qnet

#endif  // QNET_STREAM_STREAMING_ESTIMATOR_H_
