// Pull-based trace sources for streaming inference (the paper's Section 6 "online,
// distributed inference" direction, targeting the journal version's cluster-service
// workloads that never fit one EventLog in memory).
//
// A TaskRecord is one completed task: its system entry time plus the (state, queue,
// arrival, departure) chain of its queue visits, each visit carrying its observation
// flags. Records are the unit of streaming — a record is self-contained (the observation
// consistency invariant departure_observed[pi(e)] == arrival_observed[e] is within-task,
// so per-window Observations can be rebuilt from records alone; see WindowLogBuilder).
//
// A TraceStream yields records in nondecreasing entry-time order (the same order
// EventLog::AddTask requires). Sources with bounded reordering — e.g. a live collector
// whose tasks complete out of entry order — must do their own bounded buffering; the
// WindowAssembler additionally tolerates records up to `allowed_lateness` behind the
// watermark.

#ifndef QNET_STREAM_TASK_RECORD_H_
#define QNET_STREAM_TASK_RECORD_H_

#include <cstdint>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"

namespace qnet {

struct TaskVisit {
  std::int32_t state = -1;
  std::int32_t queue = -1;
  double arrival = 0.0;
  double departure = 0.0;
  // Observation flags for this visit's times. Within-task consistency (the departure of
  // visit i is the same physical measurement as the arrival of visit i+1) is restored by
  // WindowLogBuilder, so only arrival flags and the final visit's departure flag matter.
  bool arrival_observed = true;
  bool departure_observed = true;

  friend bool operator==(const TaskVisit&, const TaskVisit&) = default;
};

struct TaskRecord {
  double entry_time = 0.0;
  std::vector<TaskVisit> visits;

  void Clear() {
    entry_time = 0.0;
    visits.clear();
  }

  friend bool operator==(const TaskRecord&, const TaskRecord&) = default;
};

// Pull-based source of completed tasks in nondecreasing entry-time order.
class TraceStream {
 public:
  virtual ~TraceStream() = default;

  // Fills `out` with the next record and returns true; returns false at end of stream
  // (out is left unspecified). Implementations reuse out's capacity where their record
  // construction allows it: replay streams do (their ingest loop stops allocating once
  // the visit vector is warm), while the live simulator necessarily builds each record
  // in flight and moves it into out.
  virtual bool Next(TaskRecord& out) = 0;

  // Number of queues (including the virtual arrival queue 0) of the network the trace
  // was recorded from; per-window EventLogs are built with this.
  virtual int NumQueues() const = 0;
};

// Copies task `task` of `log` (+ its observation flags) into a TaskRecord. The inverse of
// WindowLogBuilder::Add up to event renumbering.
TaskRecord MakeTaskRecord(const EventLog& log, const Observation& obs, int task);
// Same, reusing `out`'s capacity.
void FillTaskRecord(const EventLog& log, const Observation& obs, int task, TaskRecord& out);

}  // namespace qnet

#endif  // QNET_STREAM_TASK_RECORD_H_
