// Live TraceStream backend: drives the discrete-event simulator *incrementally* (the
// `sim/` layer of the streaming engine).
//
// The batch simulator (sim/simulator.cc) needs every entry time up front. This adapter
// runs the same generative process — arrivals processed in global (time, task, step)
// order against per-queue last-departure frontiers, d_e = s_e + max(a_e, d_rho(e)) — but
// spawns tasks lazily from an interarrival process and emits each task's TaskRecord as
// soon as the task leaves the system, holding only the in-flight tasks in memory. That
// makes unbounded-horizon workloads streamable: memory is O(tasks in flight), not
// O(tasks simulated).
//
// Records are emitted in task (= entry) order: a task that finishes before an earlier
// task is buffered until the earlier one completes, so downstream consumers see the
// entry-ordered stream TraceStream promises.
//
// Determinism: everything is a function of the seed. Interarrivals, routes and service
// times interleave on one stream in simulation order (unlike the batch simulator, which
// samples all routes before any service time, so the two are not draw-for-draw
// identical); per-task observation coin flips use an independently forked stream.

#ifndef QNET_STREAM_LIVE_STREAM_H_
#define QNET_STREAM_LIVE_STREAM_H_

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "qnet/model/network.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/task_record.h"
#include "qnet/support/rng.h"

namespace qnet {

struct LiveSimOptions {
  // Stop spawning after this many tasks (0 = unbounded; then horizon must be set).
  std::size_t max_tasks = 0;
  // Stop spawning once the next entry time would exceed this (0 = unbounded).
  double horizon = 0.0;
  // Poisson interarrival rate for task entries.
  double arrival_rate = 1.0;
  // Optional fault schedule (must outlive the stream): service-time slowdowns apply to
  // service draws, arrival scale segments modulate the interarrival rate (see
  // FaultSchedule::AddArrivalScale for the exact semantics).
  const FaultSchedule* faults = nullptr;
  // Task-level observation thinning, mirroring TaskSamplingScheme: each task is fully
  // arrival-observed with probability observed_fraction; observed tasks additionally
  // report their system exit time when observe_final_departure is set.
  double observed_fraction = 1.0;
  bool observe_final_departure = true;
};

class LiveSimStream : public TraceStream {
 public:
  // `net` must outlive the stream.
  LiveSimStream(const QueueingNetwork& net, const LiveSimOptions& options, std::uint64_t seed);

  bool Next(TaskRecord& out) override;
  int NumQueues() const override { return num_queues_; }

  // Tasks currently in flight inside the simulated network (memory bound witness).
  std::size_t TasksInFlight() const { return inflight_.size(); }

 private:
  // The route lives only inside record.visits (state/queue per step) — duplicating it as
  // a RouteStep vector doubled the per-task allocation load on the ingest path.
  struct InFlightTask {
    TaskRecord record;
    std::size_t completed_steps = 0;
    bool done = false;
  };

  void SpawnTask();
  // Runs one simulator step (spawning tasks as the frontier requires); false when the
  // simulation is fully drained.
  bool Step();
  InFlightTask& TaskSlot(int task);
  // Arrival rate in effect for the interarrival gap drawn at time `at`: the base rate
  // times the fault schedule's ArrivalFactor(at). Without arrival segments this returns
  // the base rate untouched, and an all-1.0 schedule multiplies by exactly 1.0 — either
  // way the Exponential draw is bit-identical to the unmodulated stream.
  double InterarrivalRate(double at) const;

  const QueueingNetwork* net_;
  LiveSimOptions options_;
  int num_queues_;
  Rng rng_;
  Rng obs_rng_;

  // Shared DES machinery (sim/simulator.h): same heap order and frontier recursion as
  // the batch simulator.
  std::priority_queue<DesArrival, std::vector<DesArrival>, std::greater<>> heap_;
  QueueFrontier frontier_;

  // In-flight tasks, front() == task next_emit_ (tasks complete out of order but are
  // emitted in order).
  std::deque<InFlightTask> inflight_;
  // SpawnTask samples routes here (AppendSampledRoute, capacity reused) before mirroring
  // them into record.visits, and refills visit vectors from visit_pool_ — steady-state
  // ingest recycles buffers with the emitting consumer instead of allocating per task.
  std::vector<RouteStep> route_scratch_;
  std::vector<std::vector<TaskVisit>> visit_pool_;
  int next_emit_ = 0;
  int next_spawn_ = 0;
  bool spawning_done_ = false;
  double next_entry_time_ = 0.0;
};

}  // namespace qnet

#endif  // QNET_STREAM_LIVE_STREAM_H_
