#include "qnet/stream/task_record.h"

#include "qnet/support/check.h"

namespace qnet {

void FillTaskRecord(const EventLog& log, const Observation& obs, int task, TaskRecord& out) {
  QNET_CHECK(task >= 0 && task < log.NumTasks(), "task id out of range: ", task);
  out.Clear();
  out.entry_time = log.TaskEntryTime(task);
  const auto& chain = log.TaskEvents(task);
  out.visits.reserve(chain.size() - 1);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Event& ev = log.At(chain[i]);
    TaskVisit visit;
    visit.state = ev.state;
    visit.queue = ev.queue;
    visit.arrival = ev.arrival;
    visit.departure = ev.departure;
    visit.arrival_observed = obs.ArrivalObserved(chain[i]);
    visit.departure_observed = obs.DepartureObserved(chain[i]);
    out.visits.push_back(visit);
  }
}

TaskRecord MakeTaskRecord(const EventLog& log, const Observation& obs, int task) {
  TaskRecord record;
  FillTaskRecord(log, obs, task, record);
  return record;
}

}  // namespace qnet
