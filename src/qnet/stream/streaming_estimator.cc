#include "qnet/stream/streaming_estimator.h"

#include <algorithm>
#include <utility>

#include "qnet/infer/thread_pool.h"
#include "qnet/support/check.h"
#include "qnet/support/stopwatch.h"

namespace qnet {

StreamingEstimator::StreamingEstimator(std::vector<double> init_rates, std::uint64_t seed,
                                       const StreamingEstimatorOptions& options)
    : init_rates_(std::move(init_rates)), seed_(seed), options_(options) {}

std::vector<WindowEstimate> StreamingEstimator::Run(TraceStream& stream) {
  stats_ = StreamingStats{};
  Stopwatch total;
  WindowAssembler assembler(stream.NumQueues(), options_.window);
  const StemEstimator estimator(options_.stem);

  std::vector<WindowEstimate> estimates;
  std::vector<double> rates = init_rates_;
  // Warm-start input of the most recently launched window — a merged-tail re-fit of that
  // window must start from the same rates its first fit did.
  std::vector<double> prev_input_rates = init_rates_;
  std::size_t window_index = 0;

  PipelineSlot slot;
  bool inflight_active = false;
  WindowEstimate inflight_meta;
  StemResult inflight_result;

  // Joins the in-flight window's StEM run (no-op without pipelining — the result is
  // already there), folds its result into the estimate sequence, and advances the
  // warm-start chain.
  const auto complete_inflight = [&] {
    if (!inflight_active) {
      return;
    }
    slot.Wait();
    inflight_active = false;
    WindowEstimate estimate = std::move(inflight_meta);
    estimate.rates = inflight_result.rates;
    estimate.mean_wait = inflight_result.mean_wait;
    rates = inflight_result.rates;
    if (estimate.merged_tail_tasks > 0) {
      // The merged-tail re-fit replaces the last estimate — same window, not a new one.
      QNET_CHECK(!estimates.empty(), "merged-tail window with no previous estimate");
      estimates.back() = std::move(estimate);
    } else {
      estimates.push_back(std::move(estimate));
      ++stats_.windows_estimated;
    }
    if (options_.on_window) {
      options_.on_window(estimates.back());
    }
  };

  const auto process = [&](ClosedWindow&& window) {
    // Warm starts serialize StEM runs: the previous window must finish first. The time
    // spent blocked here is the sweep lag — how far estimation trails ingestion.
    Stopwatch waited;
    complete_inflight();
    stats_.max_sweep_lag_seconds =
        std::max(stats_.max_sweep_lag_seconds, waited.ElapsedSeconds());

    const bool merged = window.merged_tail_tasks > 0;
    std::vector<double> warm_start;
    std::uint64_t window_seed = 0;
    if (merged) {
      QNET_DCHECK(window_index > 0, "merged tail before any window");
      warm_start = prev_input_rates;
      window_seed = MixSeed(seed_, window_index - 1);
    } else {
      warm_start = rates;
      prev_input_rates = rates;
      window_seed = MixSeed(seed_, window_index);
      ++window_index;
    }
    inflight_meta = WindowEstimate{};
    inflight_meta.t0 = window.t0;
    inflight_meta.t1 = window.t1;
    inflight_meta.tasks = window.num_tasks;
    inflight_meta.merged_tail_tasks = window.merged_tail_tasks;
    inflight_active = true;
    auto work = [&estimator, &result = inflight_result, log = std::move(window.log),
                 obs = std::move(window.obs), warm = std::move(warm_start),
                 window_seed]() mutable {
      Rng rng(window_seed);
      result = estimator.Run(log, obs, std::move(warm), rng);
    };
    if (options_.pipeline) {
      slot.Submit(std::move(work));
    } else {
      work();
    }
  };

  TaskRecord record;
  while (stream.Next(record)) {
    assembler.Push(record);
    while (assembler.HasClosed()) {
      process(assembler.PopClosed());
    }
  }
  assembler.FinishStream();
  while (assembler.HasClosed()) {
    process(assembler.PopClosed());
  }
  complete_inflight();

  const WindowAssemblerStats& astats = assembler.Stats();
  stats_.tasks_ingested = astats.tasks_ingested;
  stats_.late_dropped = astats.late_dropped;
  stats_.tail_dropped = astats.tail_dropped;
  stats_.peak_buffered_tasks = astats.peak_buffered_tasks;
  stats_.total_wall_seconds = total.ElapsedSeconds();
  stats_.tasks_per_second = stats_.total_wall_seconds > 0.0
                                ? static_cast<double>(stats_.tasks_ingested) /
                                      stats_.total_wall_seconds
                                : 0.0;
  return estimates;
}

}  // namespace qnet
