#include "qnet/stream/streaming_estimator.h"

#include <algorithm>
#include <utility>

#include "qnet/infer/thread_pool.h"
#include "qnet/support/check.h"
#include "qnet/support/stopwatch.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {

WindowFitChain::Plan WindowFitChain::PlanFit(std::size_t window_index, bool merged_tail,
                                             double t0) {
  Plan plan;
  const std::uint64_t window_seed = MixSeed(seed_, window_index);
  plan.seed = salted_ ? MixSeed(window_seed, lane_) : window_seed;
  if (merged_tail) {
    // The re-fit replaces the previous window's estimate, so it must start from the same
    // rates that window's first fit did.
    plan.warm_start = prev_input_rates_;
  } else {
    plan.warm_start = rates_;
    prev_input_rates_ = rates_;
  }
  plan.arrival_time_origin = window_local_ ? t0 : 0.0;
  return plan;
}

StreamingEstimator::StreamingEstimator(std::vector<double> init_rates, std::uint64_t seed,
                                       const StreamingEstimatorOptions& options)
    : init_rates_(std::move(init_rates)), seed_(seed), options_(options) {}

std::vector<WindowEstimate> StreamingEstimator::Run(TraceStream& stream) {
  stats_ = StreamingStats{};
  Stopwatch total;
  WindowAssembler assembler(stream.NumQueues(), options_.window);

  std::vector<WindowEstimate> estimates;
  WindowFitChain chain(init_rates_, seed_, options_.window_local_arrival_rate);

  PipelineSlot slot;
  bool inflight_active = false;
  WindowEstimate inflight_meta;
  StemResult inflight_result;
  MeanFieldEstimator mean_field(options_.mean_field);
  MeanFieldFit mf_fit;

  // One scheduler for the whole run, rebuilt per window (warm starts serialize the fits,
  // so the in-flight window owns it exclusively): rescheduling reuses the coloring/bucket
  // buffers and — under sharded sweeps — the worker pool, instead of constructing a
  // scheduler per window. Only wired up when a fit would build one anyway; a plain
  // sequential (non-batched, non-sharded) configuration keeps its historical stream
  // layout untouched.
  const bool cache_scheduler = options_.stem.gibbs.batched || options_.stem.sharded_sweeps;
  ShardedSweepOptions cache_options;
  if (options_.stem.sharded_sweeps) {
    cache_options = options_.stem.sharded;
  } else {
    cache_options.shards = 1;
    cache_options.threads = 1;
  }
  ShardedSweepScheduler scheduler_cache(cache_options);

  // Folds a finished estimate into the sequence, advances the warm-start chain, and
  // fires the forecasting hook — shared by the StEM completion path and the degraded
  // (mean-field-only) path, which never enters the pipeline.
  const auto emit = [&](WindowEstimate&& estimate) {
    ScopedSpan span(SpanStage::kEmit);
    const StreamCounters& counters = StreamCounters::Get();
    chain.Complete(estimate.rates);
    stats_.fit_iterations_total += estimate.fit_iterations;
    counters.fit_iterations->Add(static_cast<std::uint64_t>(estimate.fit_iterations));
    if (estimate.degraded) {
      ++stats_.degraded_windows;
      counters.degraded_windows->Increment();
    }
    if (estimate.merged_tail_tasks > 0) {
      // The merged-tail re-fit replaces the last estimate — same window, not a new one.
      QNET_CHECK(!estimates.empty(), "merged-tail window with no previous estimate");
      estimates.back() = std::move(estimate);
    } else {
      estimates.push_back(std::move(estimate));
      ++stats_.windows_estimated;
      counters.windows_estimated->Increment();
    }
    if (options_.on_window) {
      options_.on_window(estimates.back());
    }
  };

  // Joins the in-flight window's StEM run (no-op without pipelining — the result is
  // already there) and folds its result in.
  const auto complete_inflight = [&] {
    if (!inflight_active) {
      return;
    }
    slot.Wait();
    inflight_active = false;
    WindowEstimate estimate = std::move(inflight_meta);
    estimate.rates = inflight_result.rates;
    estimate.mean_wait = inflight_result.mean_wait;
    estimate.fit_iterations = inflight_result.iterations_run;
    emit(std::move(estimate));
  };

  const auto process = [&](ClosedWindow&& window) {
    // Warm starts serialize StEM runs: the previous window must finish first. The time
    // spent blocked here is the sweep lag — how far estimation trails ingestion.
    {
      ScopedSpan span(SpanStage::kQueueWait);
      Stopwatch waited;
      complete_inflight();
      stats_.max_sweep_lag_seconds =
          std::max(stats_.max_sweep_lag_seconds, waited.ElapsedSeconds());
    }

    WindowFitChain::Plan plan =
        chain.PlanFit(window.window_index, window.merged_tail_tasks > 0, window.t0);
    const bool fast = options_.fast_path != FastPathMode::kOff;
    const bool mean_field_only =
        options_.fast_path == FastPathMode::kMeanFieldOnly ||
        (options_.fast_path == FastPathMode::kDegrade &&
         window.num_tasks > options_.degrade_task_budget);
    if (fast) {
      // The mean-field fit is O(events) and deterministic — cheap enough to run on the
      // ingest thread, and required before the log moves into the pipeline closure.
      // Queues without events this window keep the chain's previous rates.
      mean_field.Fit(window.log, window.obs, plan.arrival_time_origin, mf_fit);
      for (std::size_t q = 0; q < plan.warm_start.size(); ++q) {
        if (mf_fit.fitted[q] != 0) {
          plan.warm_start[q] = mf_fit.rates[q];
        }
      }
    }
    WindowEstimate meta;
    meta.t0 = window.t0;
    meta.t1 = window.t1;
    meta.tasks = window.num_tasks;
    meta.merged_tail_tasks = window.merged_tail_tasks;
    meta.window_local_arrival_rate = options_.window_local_arrival_rate;
    meta.degraded = mean_field_only;
    if (mean_field_only) {
      // Sampler-free estimate: the mean-field rates (with chain fallback already
      // substituted into the plan's warm start) are the estimate itself.
      meta.rates = std::move(plan.warm_start);
      meta.mean_wait = mf_fit.mean_wait;
      emit(std::move(meta));
      return;
    }
    inflight_meta = std::move(meta);
    inflight_active = true;
    auto work = [stem = options_.stem, &result = inflight_result, log = std::move(window.log),
                 obs = std::move(window.obs), plan = std::move(plan),
                 scheduler = cache_scheduler ? &scheduler_cache : nullptr]() mutable {
      StemOptions window_stem = stem;
      window_stem.arrival_time_origin = plan.arrival_time_origin;
      window_stem.scheduler_cache = scheduler;
      const StemEstimator estimator(window_stem);
      Rng rng(plan.seed);
      result = estimator.Run(log, obs, std::move(plan.warm_start), rng);
    };
    if (options_.pipeline) {
      slot.Submit(std::move(work));
    } else {
      work();
    }
  };

  TaskRecord record;
  while (stream.Next(record)) {
    assembler.Push(record);
    while (assembler.HasClosed()) {
      process(assembler.PopClosed());
    }
  }
  assembler.FinishStream();
  while (assembler.HasClosed()) {
    process(assembler.PopClosed());
  }
  complete_inflight();

  const WindowAssemblerStats astats = assembler.Stats();
  stats_.tasks_ingested = astats.tasks_ingested;
  stats_.late_dropped = astats.late_dropped;
  stats_.tail_dropped = astats.tail_dropped;
  stats_.peak_buffered_tasks = astats.peak_buffered_tasks;
  stats_.total_wall_seconds = total.ElapsedSeconds();
  stats_.tasks_per_second = stats_.total_wall_seconds > 0.0
                                ? static_cast<double>(stats_.tasks_ingested) /
                                      stats_.total_wall_seconds
                                : 0.0;
  return estimates;
}

}  // namespace qnet
