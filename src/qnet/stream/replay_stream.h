// Replay TraceStream backends over recorded logs (the `trace/` layer of the streaming
// engine).
//
// LogReplayStream wraps an in-memory EventLog + Observation and yields its tasks in task
// (= entry-time) order — the adapter RunOnlineStem uses to run batch logs through the
// streaming engine.
//
// CsvReplayStream reads a WriteEventLog CSV *incrementally*, one task at a time, so a
// multi-gigabyte trace streams through the window assembler in bounded memory. The
// network size comes from the `# queues=N` header WriteEventLog emits; headerless legacy
// files pass num_queues explicitly. An optional observation CSV (WriteObservation
// format) is consumed in lockstep — its rows are in event-id order, which is exactly the
// log's row order — marking which times are observed; without it the replay is fully
// observed.

#ifndef QNET_STREAM_REPLAY_STREAM_H_
#define QNET_STREAM_REPLAY_STREAM_H_

#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <string>

#include "qnet/model/event.h"
#include "qnet/obs/observation.h"
#include "qnet/stream/task_record.h"

namespace qnet {

class LogReplayStream : public TraceStream {
 public:
  // Both referents must outlive the stream.
  LogReplayStream(const EventLog& log, const Observation& obs);

  bool Next(TaskRecord& out) override;
  int NumQueues() const override { return log_->NumQueues(); }

 private:
  const EventLog* log_;
  const Observation* obs_;
  int next_task_ = 0;
};

class CsvReplayStream : public TraceStream {
 public:
  // Reads from caller-owned streams (must outlive this object). num_queues == -1
  // requires the `# queues=N` header; a nonnegative value overrides/permits headerless
  // files (and is checked against the header when both are present).
  explicit CsvReplayStream(std::istream& log_is, int num_queues = -1,
                           std::istream* obs_is = nullptr);
  // File variants: the streams are opened and owned here.
  explicit CsvReplayStream(const std::string& log_path, int num_queues = -1);
  CsvReplayStream(const std::string& log_path, const std::string& obs_path, int num_queues = -1);

  bool Next(TaskRecord& out) override;
  int NumQueues() const override { return num_queues_; }

 private:
  void Init();
  // Reads the next non-empty log row into fields_; false at EOF.
  bool NextLogRow();
  // Consumes the observation row for the current event id (if an obs stream is attached)
  // and returns its (arrival_observed, departure_observed) flags.
  std::pair<bool, bool> NextObsFlags();

  std::unique_ptr<std::ifstream> owned_log_;
  std::unique_ptr<std::ifstream> owned_obs_;
  std::istream* log_is_;
  std::istream* obs_is_;
  int num_queues_;

  std::string line_;
  std::vector<std::string> fields_;  // current log row, split
  std::string obs_line_;
  std::vector<std::string> obs_fields_;
  bool have_buffered_row_ = false;   // fields_ holds the next task's initial row
  long next_event_id_ = 0;
  int next_task_ = 0;
};

}  // namespace qnet

#endif  // QNET_STREAM_REPLAY_STREAM_H_
