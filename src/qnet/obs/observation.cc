#include "qnet/obs/observation.h"

#include <algorithm>

#include "qnet/support/check.h"

namespace qnet {
namespace {

Observation MakeEmpty(const EventLog& log) {
  Observation obs;
  obs.arrival_observed.assign(log.NumEvents(), 0);
  obs.departure_observed.assign(log.NumEvents(), 0);
  // Initial events arrive at t = 0 by convention: always known.
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    if (log.At(e).initial) {
      obs.arrival_observed[static_cast<std::size_t>(e)] = 1;
    }
  }
  return obs;
}

// Restores the invariant departure_observed[pi(e)] == arrival_observed[e].
void SyncDepartures(const EventLog& log, Observation& obs) {
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (!ev.initial) {
      obs.departure_observed[static_cast<std::size_t>(ev.pi)] =
          obs.arrival_observed[static_cast<std::size_t>(e)];
    }
  }
}

}  // namespace

std::size_t Observation::NumObservedArrivals() const {
  std::size_t count = 0;
  for (char c : arrival_observed) {
    count += c != 0 ? 1 : 0;
  }
  return count;
}

std::size_t Observation::NumLatentArrivals(const EventLog& log) const {
  std::size_t count = 0;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    if (!log.At(e).initial && !ArrivalObserved(e)) {
      ++count;
    }
  }
  return count;
}

void Observation::Validate(const EventLog& log) const {
  QNET_CHECK(arrival_observed.size() == log.NumEvents(), "arrival mask size mismatch");
  QNET_CHECK(departure_observed.size() == log.NumEvents(), "departure mask size mismatch");
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (ev.initial) {
      QNET_CHECK(ArrivalObserved(e), "initial event arrival must be observed");
    } else {
      QNET_CHECK(ArrivalObserved(e) == DepartureObserved(ev.pi),
                 "arrival/departure observation out of sync at event ", e);
    }
  }
}

Observation Observation::FullyObserved(const EventLog& log) {
  Observation obs;
  obs.arrival_observed.assign(log.NumEvents(), 1);
  obs.departure_observed.assign(log.NumEvents(), 1);
  obs.observed_tasks.resize(static_cast<std::size_t>(log.NumTasks()));
  for (int k = 0; k < log.NumTasks(); ++k) {
    obs.observed_tasks[static_cast<std::size_t>(k)] = k;
  }
  return obs;
}

Observation TaskSamplingScheme::Apply(const EventLog& log, Rng& rng) const {
  QNET_CHECK(fraction >= 0.0 && fraction <= 1.0, "bad fraction ", fraction);
  const auto num_tasks = static_cast<std::size_t>(log.NumTasks());
  const auto sample_size =
      static_cast<std::size_t>(fraction * static_cast<double>(num_tasks) + 0.5);
  const std::vector<std::size_t> picked =
      rng.SampleWithoutReplacement(num_tasks, std::min(sample_size, num_tasks));
  std::vector<int> tasks;
  tasks.reserve(picked.size());
  for (std::size_t k : picked) {
    tasks.push_back(static_cast<int>(k));
  }
  return ApplyToTasks(log, tasks);
}

Observation TaskSamplingScheme::ApplyToTasks(const EventLog& log,
                                             const std::vector<int>& tasks) const {
  Observation obs = MakeEmpty(log);
  obs.observed_tasks = tasks;
  std::sort(obs.observed_tasks.begin(), obs.observed_tasks.end());
  for (int task : obs.observed_tasks) {
    const auto& chain = log.TaskEvents(task);
    for (std::size_t i = 1; i < chain.size(); ++i) {  // skip the initial event (always known)
      obs.arrival_observed[static_cast<std::size_t>(chain[i])] = 1;
    }
    if (observe_final_departure) {
      obs.departure_observed[static_cast<std::size_t>(chain.back())] = 1;
    }
  }
  SyncDepartures(log, obs);
  // SyncDepartures clears final-departure flags of unobserved-next events only for events
  // with successors; re-apply the explicit final flags.
  if (observe_final_departure) {
    for (int task : obs.observed_tasks) {
      obs.departure_observed[static_cast<std::size_t>(log.TaskEvents(task).back())] = 1;
    }
  }
  obs.Validate(log);
  return obs;
}

Observation EventSamplingScheme::Apply(const EventLog& log, Rng& rng) const {
  QNET_CHECK(fraction >= 0.0 && fraction <= 1.0, "bad fraction ", fraction);
  Observation obs = MakeEmpty(log);
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    if (!log.At(e).initial && rng.Bernoulli(fraction)) {
      obs.arrival_observed[static_cast<std::size_t>(e)] = 1;
    }
  }
  SyncDepartures(log, obs);
  obs.Validate(log);
  return obs;
}

}  // namespace qnet
