// Observation model (paper Sections 3 and 5).
//
// The inference algorithms assume the *structure* of the event set is known — task routes
// (FSM paths) and the per-queue arrival order, the latter measurable with the paper's
// per-queue event counter trick — while only a subset of the actual times is observed.
//
// An Observation holds, per event, whether its arrival time and its departure time are
// measured. Consistency invariant: an arrival measurement of event e is the same physical
// measurement as the departure of pi(e), so arrival_observed[e] == departure_observed[pi(e)]
// for all non-initial e; initial events have arrival_observed == true (t = 0 by convention).

#ifndef QNET_OBS_OBSERVATION_H_
#define QNET_OBS_OBSERVATION_H_

#include <cstddef>
#include <vector>

#include "qnet/model/event.h"
#include "qnet/support/rng.h"

namespace qnet {

struct Observation {
  std::vector<char> arrival_observed;    // indexed by EventId
  std::vector<char> departure_observed;  // indexed by EventId
  std::vector<int> observed_tasks;       // tasks picked by task-level sampling (sorted)

  bool ArrivalObserved(EventId e) const {
    return arrival_observed[static_cast<std::size_t>(e)] != 0;
  }
  bool DepartureObserved(EventId e) const {
    return departure_observed[static_cast<std::size_t>(e)] != 0;
  }

  std::size_t NumObservedArrivals() const;
  std::size_t NumLatentArrivals(const EventLog& log) const;

  // CHECK-fails unless the consistency invariants hold for `log`.
  void Validate(const EventLog& log) const;

  // Fully-observed baseline (everything measured).
  static Observation FullyObserved(const EventLog& log);
};

// Task-level sampling (Section 5.1): observe *all arrivals* of a uniform random sample of
// tasks, plus (by default) their system exit times. The exit times matter: a task's final
// departure is nobody's arrival, so without observing exits the service rate of every
// route-final queue is unidentifiable — the paper's introduction accordingly says it
// measures "a small set of actual arrival and departure times". Set
// observe_final_departure = false for the strict arrival-only ablation
// (bench/ablation_moves quantifies the damage).
struct TaskSamplingScheme {
  double fraction = 0.1;
  bool observe_final_departure = true;

  Observation Apply(const EventLog& log, Rng& rng) const;
  // Deterministic variant with caller-chosen tasks (used by tests).
  Observation ApplyToTasks(const EventLog& log, const std::vector<int>& tasks) const;
};

// Event-level sampling: every non-initial event's arrival is observed independently with
// probability `fraction` (an alternative instrumentation mode; not used by the paper's
// experiments but supported by the sampler).
struct EventSamplingScheme {
  double fraction = 0.1;

  Observation Apply(const EventLog& log, Rng& rng) const;
};

}  // namespace qnet

#endif  // QNET_OBS_OBSERVATION_H_
