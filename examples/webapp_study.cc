// Web-application study — the paper's Section 5.2 scenario on the simulated movie-voting
// testbed: 1 network queue (request + response), 10 web servers behind a skewed load
// balancer, 1 database, driven by a 30-minute linear load ramp (~5759 requests).
//
// Estimates per-queue mean service and waiting times from a fraction of observed request
// traces and compares them to the simulation ground truth, flagging the starved web server
// whose estimate the paper calls out as unstable.
//
// Usage: webapp_study [--fraction 0.1] [--seed 42] [--csv out.csv]

#include <fstream>
#include <iostream>

#include "qnet/infer/stem.h"
#include "qnet/obs/observation.h"
#include "qnet/support/flags.h"
#include "qnet/trace/csv.h"
#include "qnet/trace/table.h"
#include "qnet/webapp/movievote.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const double fraction = flags.GetDouble("fraction", 0.1);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  const qnet::webapp::MovieVoteConfig config;
  const qnet::webapp::MovieVoteTestbed testbed = qnet::webapp::MakeTestbed(config);
  const qnet::EventLog trace = qnet::webapp::GenerateTrace(testbed, config, rng);
  const qnet::QueueingNetwork& net = testbed.network;
  std::cout << "Generated " << trace.NumTasks() << " requests / "
            << trace.NumEvents() - static_cast<std::size_t>(trace.NumTasks())
            << " arrival events over a " << config.horizon << " s linear ramp\n";

  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  const qnet::Observation obs = scheme.Apply(trace, rng);
  std::cout << "Observing " << obs.observed_tasks.size() << " request traces ("
            << 100.0 * fraction << "%)\n\n";

  qnet::StemOptions options;
  options.iterations = 120;
  options.burn_in = 40;
  options.wait_sweeps = 40;
  const qnet::StemResult result = qnet::StemEstimator(options).Run(trace, obs, {}, rng);

  const auto realized_service = trace.PerQueueMeanService();
  const auto realized_wait = trace.PerQueueMeanWait();
  const auto counts = trace.PerQueueCount();

  qnet::TablePrinter table(
      {"queue", "requests", "true svc", "est svc", "true wait", "est wait", "note"});
  std::vector<std::vector<double>> csv_rows;
  for (int q = 1; q < net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    std::string note;
    if (counts[qi] < 50) {
      note = "starved server: estimate unstable (paper Fig. 5 outlier)";
    }
    table.AddRow({net.QueueName(q), std::to_string(counts[qi]),
                  qnet::FormatDouble(realized_service[qi]),
                  qnet::FormatDouble(result.mean_service[qi]),
                  qnet::FormatDouble(realized_wait[qi]),
                  qnet::FormatDouble(result.mean_wait[qi]), note});
    csv_rows.push_back({static_cast<double>(q), static_cast<double>(counts[qi]),
                        realized_service[qi], result.mean_service[qi], realized_wait[qi],
                        result.mean_wait[qi]});
  }
  table.Print(std::cout);
  std::cout << "\nEstimated arrival rate: " << result.rates[0]
            << " /s (ramp average " << 0.5 * (config.rate0 + config.rate1) << " /s)\n";

  if (flags.Has("csv")) {
    const std::string path = flags.GetString("csv", "webapp_study.csv");
    qnet::WriteSeriesFile(path,
                          {"queue", "requests", "true_svc", "est_svc", "true_wait",
                           "est_wait"},
                          csv_rows);
    std::cout << "Wrote " << path << "\n";
  }
  return 0;
}
