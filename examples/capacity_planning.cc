// Capacity planning — the classical "what if?" question the paper contrasts with its
// "what happened?" questions, answered with the estimated model through the scenario
// engine:
//
//   1. Estimate per-queue service rates from a sparse (10%) trace with StEM.
//   2. Build a what-if grid: load multipliers x server counts at the bottleneck tier.
//   3. Evaluate every cell posterior-predictively (StEM iterates as parameter draws,
//      DES runs per draw) with analytic M/M/1 / Erlang-C cross-checks, and report
//      latency bands, utilizations, and the capacity ceiling per queue.
//
// Usage: capacity_planning [--fraction 0.1] [--seed 5] [--tasks 2000] [--report out.csv]

#include <iostream>

#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/model/traffic.h"
#include "qnet/obs/observation.h"
#include "qnet/scenario/parameter_posterior.h"
#include "qnet/scenario/scenario_engine.h"
#include "qnet/scenario/scenario_spec.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/trace/scenario_report.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const double fraction = flags.GetDouble("fraction", 0.1);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 2000));
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 5)));

  // The production system we pretend not to know: a 3-queue tandem pipeline.
  const double true_lambda = 1.5;
  const qnet::QueueingNetwork truth_net =
      qnet::MakeTandemNetwork(true_lambda, {6.0, 4.0, 9.0});
  const qnet::EventLog trace =
      qnet::SimulateWorkload(truth_net, qnet::PoissonArrivals(true_lambda, 1200), rng);

  // Sparse observation + StEM estimation.
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  const qnet::Observation obs = scheme.Apply(trace, rng);
  qnet::StemOptions options;
  options.iterations = 150;
  options.burn_in = 50;
  options.wait_sweeps = 0;
  const qnet::StemResult estimate =
      qnet::StemEstimator(options).Run(trace, obs, {}, rng);

  std::cout << "Estimated service rates from a " << 100.0 * fraction << "% trace:\n";
  qnet::TablePrinter rates_table({"queue", "true mu", "estimated mu"});
  const auto true_rates = truth_net.ExponentialRates();
  for (int q = 1; q < truth_net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    rates_table.AddRow({truth_net.QueueName(q), qnet::FormatDouble(true_rates[qi], 2),
                        qnet::FormatDouble(estimate.rates[qi], 2)});
  }
  rates_table.Print(std::cout);

  // The StEM iterates double as posterior parameter draws, so every prediction below
  // carries the estimation uncertainty of the sparse trace.
  const qnet::ParameterPosterior posterior =
      qnet::ParameterPosterior::FromStem(estimate, options.burn_in);

  // What-if grid: load multiplier x server count at the slowest estimated tier.
  int slow_queue = 1;
  for (int q = 2; q < truth_net.NumQueues(); ++q) {
    if (estimate.rates[static_cast<std::size_t>(q)] <
        estimate.rates[static_cast<std::size_t>(slow_queue)]) {
      slow_queue = q;
    }
  }
  qnet::ScenarioAxis load;
  load.kind = qnet::AxisKind::kArrivalScale;
  load.name = "load";
  load.values = {1.0, 1.5, 2.0, 2.5};
  qnet::ScenarioAxis servers;
  servers.kind = qnet::AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = slow_queue;
  servers.values = {1.0, 2.0};
  const qnet::ScenarioGrid grid({load, servers});

  qnet::ScenarioEngineOptions engine_options;
  engine_options.max_draws = 8;
  engine_options.tasks_per_draw = tasks;
  engine_options.threads = 2;
  qnet::ScenarioEngine engine(engine_options);
  const qnet::ScenarioReport report =
      engine.Evaluate(truth_net, posterior, grid,
                      static_cast<std::uint64_t>(flags.GetInt("seed", 5)));

  std::cout << "\nWhat-if grid (posterior-predictive, " << report.draws
            << " draws/cell; servers axis upgrades \"" << truth_net.QueueName(slow_queue)
            << "\"):\n";
  qnet::TablePrinter whatif({"load", "servers", "mean latency [90% band]", "p95 latency",
                             "analytic", "bottleneck"});
  for (const qnet::CellResult& cell : report.cells) {
    whatif.AddRow(
        {qnet::FormatDouble(cell.axis_values[0], 1),
         qnet::FormatDouble(cell.axis_values[1], 0),
         qnet::FormatDouble(cell.mean_response.mean, 3) + "  [" +
             qnet::FormatDouble(cell.mean_response.lo, 3) + ", " +
             qnet::FormatDouble(cell.mean_response.hi, 3) + "]",
         qnet::FormatDouble(cell.tail_response.mean, 3),
         cell.analytic_stable ? qnet::FormatDouble(cell.analytic_mean_response, 3)
                              : "SATURATED",
         truth_net.QueueName(cell.bottleneck_queue)});
  }
  whatif.Print(std::cout);

  // Capacity ceiling per queue, read off the baseline cell: utilization scales linearly
  // in lambda, so the ceiling is lambda / rho_q — with lambda the ESTIMATED arrival
  // rate, since the baseline utilizations were simulated at the posterior draws (a real
  // deployment has no true lambda to mix in).
  const qnet::CellResult& baseline = report.cells.front();
  const double est_lambda = estimate.rates[0];
  std::cout << "\nCapacity ceilings (arrival rate at which each queue saturates):\n";
  qnet::TablePrinter ceiling({"queue", "utilization now", "estimated ceiling", "true ceiling"});
  const qnet::TrafficAnalysis traffic = qnet::AnalyzeTraffic(truth_net);
  for (int q = 1; q < truth_net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    ceiling.AddRow({truth_net.QueueName(q),
                    qnet::FormatDouble(baseline.utilization[qi].mean, 2),
                    qnet::FormatDouble(est_lambda / baseline.utilization[qi].mean, 2),
                    qnet::FormatDouble(true_rates[qi] / traffic.queue_visits[qi], 2)});
  }
  ceiling.Print(std::cout);
  std::cout << "\nPredicted bottleneck: \"" << truth_net.QueueName(baseline.bottleneck_queue)
            << "\" — first in the utilization ranking; plan upgrades there first.\n";

  const std::string report_path = flags.GetString("report", "");
  if (!report_path.empty()) {
    qnet::WriteScenarioReportFile(report_path, report);
    std::cout << "\nWrote the full grid report to " << report_path << "\n";
  }
  return 0;
}
