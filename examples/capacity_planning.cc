// Capacity planning — the classical "what if?" question the paper contrasts with its
// "what happened?" questions, answered here with the same estimated model:
//
//   1. Estimate per-queue service rates from a sparse (10%) trace with StEM.
//   2. Extrapolate: what happens to end-to-end latency if load doubles? Triples?
//      Answered two ways — analytically (M/M/1 steady state per queue) and by re-simulating
//      the *estimated* network under the hypothetical load.
//   3. Report the load at which each queue saturates (the capacity ceiling).
//
// Usage: capacity_planning [--fraction 0.1] [--seed 5]

#include <iostream>
#include <memory>

#include "qnet/dist/exponential.h"
#include "qnet/infer/mm1.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/model/traffic.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/support/math.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const double fraction = flags.GetDouble("fraction", 0.1);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 5)));

  // The production system we pretend not to know: a 3-queue tandem pipeline.
  const double true_lambda = 1.5;
  const qnet::QueueingNetwork truth_net =
      qnet::MakeTandemNetwork(true_lambda, {6.0, 4.0, 9.0});
  const qnet::EventLog trace =
      qnet::SimulateWorkload(truth_net, qnet::PoissonArrivals(true_lambda, 1200), rng);

  // Sparse observation + StEM estimation.
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  const qnet::Observation obs = scheme.Apply(trace, rng);
  qnet::StemOptions options;
  options.iterations = 150;
  options.burn_in = 50;
  options.wait_sweeps = 0;
  const qnet::StemResult estimate =
      qnet::StemEstimator(options).Run(trace, obs, {}, rng);

  std::cout << "Estimated service rates from a " << 100.0 * fraction << "% trace:\n";
  qnet::TablePrinter rates_table({"queue", "true mu", "estimated mu"});
  const auto true_rates = truth_net.ExponentialRates();
  for (int q = 1; q < truth_net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    rates_table.AddRow({truth_net.QueueName(q), qnet::FormatDouble(true_rates[qi], 2),
                        qnet::FormatDouble(estimate.rates[qi], 2)});
  }
  rates_table.Print(std::cout);

  // What-if sweep: scale the arrival rate, predict mean end-to-end response time.
  std::cout << "\nWhat-if: mean end-to-end response time under scaled load\n";
  qnet::TablePrinter whatif(
      {"load multiplier", "lambda", "analytic (M/M/1 sum)", "simulated (est. model)",
       "actual (true model)"});
  for (double mult : {1.0, 1.5, 2.0, 2.5}) {
    const double lambda = true_lambda * mult;
    // Analytic prediction: sum of per-queue M/M/1 response times at the estimated rates.
    double analytic = 0.0;
    bool saturated = false;
    for (int q = 1; q < truth_net.NumQueues(); ++q) {
      const qnet::Mm1Metrics metrics =
          qnet::AnalyzeMm1(lambda, estimate.rates[static_cast<std::size_t>(q)]);
      if (!metrics.stable) {
        saturated = true;
        break;
      }
      analytic += metrics.mean_response;
    }
    // Simulation predictions under the estimated and under the true model.
    const auto simulate_response = [&](const std::vector<double>& rates) {
      qnet::QueueingNetwork net = qnet::MakeTandemNetwork(
          lambda, {rates[1], rates[2], rates[3]});
      qnet::Rng sim_rng(999);
      const qnet::EventLog log =
          qnet::SimulateWorkload(net, qnet::PoissonArrivals(lambda, 4000), sim_rng);
      qnet::RunningStat response;
      for (int k = log.NumTasks() / 5; k < log.NumTasks(); ++k) {
        response.Add(log.TaskExitTime(k) - log.TaskEntryTime(k));
      }
      return response.Mean();
    };
    whatif.AddRow({qnet::FormatDouble(mult, 1), qnet::FormatDouble(lambda, 2),
                   saturated ? "SATURATED" : qnet::FormatDouble(analytic, 3),
                   qnet::FormatDouble(simulate_response(estimate.rates), 3),
                   qnet::FormatDouble(simulate_response(true_rates), 3)});
  }
  whatif.Print(std::cout);

  // Capacity ceiling per queue: lambda at which utilization hits 1, from the traffic
  // equations on the *estimated* model.
  std::cout << "\nCapacity ceilings (arrival rate at which each queue saturates):\n";
  qnet::QueueingNetwork estimated_net = qnet::MakeTandemNetwork(
      estimate.rates[0], {estimate.rates[1], estimate.rates[2], estimate.rates[3]});
  const qnet::TrafficAnalysis traffic = qnet::AnalyzeTraffic(estimated_net);
  qnet::TablePrinter ceiling(
      {"queue", "visits/task", "estimated ceiling", "true ceiling", "utilization now"});
  for (int q = 1; q < truth_net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    ceiling.AddRow({truth_net.QueueName(q), qnet::FormatDouble(traffic.queue_visits[qi], 2),
                    qnet::FormatDouble(estimate.rates[qi] / traffic.queue_visits[qi], 2),
                    qnet::FormatDouble(true_rates[qi], 2),
                    qnet::FormatDouble(traffic.utilization[qi], 2)});
  }
  ceiling.Print(std::cout);
  std::cout << "\nPredicted bottleneck: \""
            << truth_net.QueueName(traffic.bottleneck_queue)
            << "\" — the smallest ceiling; plan upgrades there first.\n";
  return 0;
}
