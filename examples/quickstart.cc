// Quickstart: the paper's workflow in ~60 lines.
//
//   1. Define a queueing network (here: a two-stage tandem of M/M/1 queues).
//   2. Simulate it to get a ground-truth trace (in production this is your measured trace).
//   3. Observe only a fraction of tasks (arrivals + exit times).
//   4. Run StEM with the Gibbs sampler to estimate per-queue service and waiting times.
//
// Usage: quickstart [--tasks 500] [--fraction 0.2] [--seed 1]

#include <cstdio>
#include <iostream>

#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 500));
  const double fraction = flags.GetDouble("fraction", 0.2);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 1)));

  // A tandem line: arrivals at rate 2/s feed a 5/s stage then a 4/s stage.
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(2.0, {5.0, 4.0});

  // Ground truth (substitute your own measured EventLog here).
  const qnet::EventLog truth =
      qnet::SimulateWorkload(net, qnet::PoissonArrivals(2.0, tasks), rng);

  // Keep traces for only `fraction` of the tasks.
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  const qnet::Observation obs = scheme.Apply(truth, rng);
  std::cout << "Observed " << obs.observed_tasks.size() << " of " << truth.NumTasks()
            << " tasks (" << obs.NumLatentArrivals(truth) << " latent arrival times)\n\n";

  // Estimate all rates by stochastic EM; then waiting times at the frozen estimate.
  qnet::StemOptions options;
  options.iterations = 150;
  options.burn_in = 50;
  options.wait_sweeps = 50;
  const qnet::StemResult result = qnet::StemEstimator(options).Run(truth, obs, {}, rng);

  const auto realized_service = truth.PerQueueMeanService();
  const auto realized_wait = truth.PerQueueMeanWait();
  qnet::TablePrinter table(
      {"queue", "true mean svc", "est mean svc", "true mean wait", "est mean wait"});
  for (int q = 1; q < net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    table.AddRow({net.QueueName(q), qnet::FormatDouble(realized_service[qi]),
                  qnet::FormatDouble(result.mean_service[qi]),
                  qnet::FormatDouble(realized_wait[qi]),
                  qnet::FormatDouble(result.mean_wait[qi])});
  }
  table.Print(std::cout);
  std::cout << "\nEstimated arrival rate lambda = " << result.rates[0] << " (true 2.0)\n";
  return 0;
}
