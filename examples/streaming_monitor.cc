// Streaming monitor: live per-window service-rate tracking over an endless-style trace.
//
// A live incremental simulation of a tandem network suffers a mid-stream slowdown at its
// second stage. Instead of collecting the full trace and running batch inference, the
// stream flows task-by-task through the watermark-driven WindowAssembler into the
// pipelined StreamingEstimator, which fits warm-started StEM per window while the next
// window is still being ingested — the "what is happening right now?" monitoring loop the
// paper's Section 6 sketches. Memory stays bounded by one window regardless of how long
// the stream runs.
//
// A WindowForecaster rides the estimator's on_window hook: after every window's fit it
// re-evaluates a small what-if grid at that window's rates, so the monitor also answers
// "where would latency land if load spiked right now?" continuously — watch the 2x-load
// forecast blow up after the fault while the 1x forecast stays moderate.
//
// Usage: streaming_monitor [--tasks 3000] [--rate 4] [--window 30] [--fraction 0.4]
//                          [--seed 1] [--no-pipeline]

#include <cstdio>
#include <iostream>

#include "qnet/model/builders.h"
#include "qnet/scenario/forecast.h"
#include "qnet/scenario/scenario_engine.h"
#include "qnet/scenario/scenario_spec.h"
#include "qnet/sim/fault.h"
#include "qnet/stream/live_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/support/flags.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 3000));
  const double rate = flags.GetDouble("rate", 4.0);
  const double window = flags.GetDouble("window", 30.0);
  const double fraction = flags.GetDouble("fraction", 0.4);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  // Tandem line; stage 2 degrades 3x starting halfway through the stream (20/s -> 6.7/s,
  // still above the arrival rate so the queue stays stable and the estimate stays crisp).
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(rate, {10.0, 20.0});
  const double fault_at = static_cast<double>(tasks) / rate / 2.0;
  qnet::FaultSchedule faults;
  faults.AddSlowdown(2, fault_at, 1.0e12, 3.0);

  qnet::LiveSimOptions sim_options;
  sim_options.max_tasks = tasks;
  sim_options.arrival_rate = rate;
  sim_options.faults = &faults;
  sim_options.observed_fraction = fraction;
  qnet::LiveSimStream stream(net, sim_options, seed);

  qnet::StreamingEstimatorOptions options;
  options.window.window_duration = window;
  options.stem.iterations = 60;
  options.stem.burn_in = 20;
  options.stem.wait_sweeps = 20;
  options.pipeline = !flags.GetBool("no-pipeline", false);

  // Continuous capacity forecast: after each window's fit, evaluate "now" and "2x load"
  // scenarios at that window's rates (point draws — per-window estimates carry no bands).
  qnet::ScenarioAxis load;
  load.kind = qnet::AxisKind::kArrivalScale;
  load.name = "load";
  load.values = {1.0, 2.0};
  qnet::ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 400;
  qnet::WindowForecaster forecaster(net, qnet::ScenarioGrid({load}), forecast_options, seed);

  std::vector<double> init(static_cast<std::size_t>(net.NumQueues()), 1.0);
  init[0] = rate;
  qnet::StreamingEstimatorOptions hooked = options;
  hooked.on_window = forecaster.Hook();
  qnet::StreamingEstimator estimator(init, seed, hooked);
  const auto estimates = estimator.Run(stream);

  std::cout << "Streamed " << estimator.Stats().tasks_ingested << " tasks in "
            << qnet::FormatDouble(estimator.Stats().total_wall_seconds) << " s ("
            << qnet::FormatDouble(estimator.Stats().tasks_per_second / 1e3)
            << "k tasks/s end-to-end, max sweep lag "
            << qnet::FormatDouble(estimator.Stats().max_sweep_lag_seconds * 1e3)
            << " ms)\n";
  std::cout << "Fault injected at t = " << qnet::FormatDouble(fault_at)
            << " s: stage-2 service slows 3x (true mean 0.05 -> 0.15 s)\n\n";

  qnet::TablePrinter table({"window", "tasks", "est svc q1", "est svc q2", "est wait q2",
                            "fcast latency 1x", "fcast latency 2x"});
  const auto& forecasts = forecaster.Reports();
  for (std::size_t w = 0; w < estimates.size(); ++w) {
    const auto& est = estimates[w];
    const std::string span = qnet::FormatDouble(est.t0) + " - " + qnet::FormatDouble(est.t1) +
                             (est.merged_tail_tasks > 0 ? " (tail merged)" : "");
    const auto& cells = forecasts[w].cells;
    table.AddRow({span, std::to_string(est.tasks), qnet::FormatDouble(1.0 / est.rates[1]),
                  qnet::FormatDouble(1.0 / est.rates[2]),
                  est.mean_wait.empty() ? "-" : qnet::FormatDouble(est.mean_wait[2]),
                  qnet::FormatDouble(cells[0].mean_response.mean),
                  qnet::FormatDouble(cells[1].mean_response.mean)});
  }
  table.Print(std::cout);
  std::cout << "\nThe stage-2 service estimate should jump ~3x in the windows after the "
               "fault, and the 2x-load latency forecast should blow up with it.\n";
  return 0;
}
