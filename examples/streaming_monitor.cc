// Streaming monitor: live per-window service-rate tracking over an endless-style trace,
// optionally sharded across a multi-lane inference fleet.
//
// A live incremental simulation of a tandem network suffers a mid-stream slowdown at its
// second stage. Instead of collecting the full trace and running batch inference, the
// stream flows task-by-task through the sharded streaming front-end: a router
// hash-partitions tasks across --lanes K assembler/estimator lanes, each lane fits
// warm-started StEM per window on its sub-stream, and the lane merger pools the fits
// into one estimate per window — the "what is happening right now?" monitoring loop the
// paper's Section 6 sketches, scaled horizontally. With --lanes 1 the fleet reproduces
// the plain pipelined StreamingEstimator bit-exactly. Memory stays bounded by one window
// per lane regardless of how long the stream runs.
//
// A WindowForecaster rides the merger's on_window hook: after every pooled window it
// re-evaluates a small what-if grid at that window's rates (window-local lambda
// anchoring keeps the arrival rate honest deep into the stream), so the monitor also
// answers "where would latency land if load spiked right now?" continuously — watch the
// 2x-load forecast blow up after the fault while the 1x forecast stays moderate.
//
// With --lanes K > 1 the monitor additionally re-runs the identical stream single-lane
// and reports the largest service-time deviation between the pooled K-lane estimates and
// the single-lane reference: window spans are bit-identical by construction (the span
// tracker is global), and the fits agree statistically (each lane sees a hash-thinned
// sub-stream; see docs/architecture.md for the decomposition's bias regime).
//
// The mean-field fast path is selectable with --fast-path:
//   off      sampler path only (the default; bit-identical to pre-fast-path behavior);
//   warm     each window's StEM starts from the window's own mean-field fit and stops
//            early once its post-burn-in rate average stabilizes — same estimates,
//            fewer sweeps (watch the "iters" column and the savings line);
//   degrade  windows whose GLOBAL task count exceeds --degrade-budget skip the sampler
//            and emit the mean-field fit flagged degraded (overload shedding that keeps
//            estimates flowing instead of falling behind);
//   only     every window is mean-field only — the all-variational mode (sampler-free,
//            deterministic regardless of seed).
//
// The lane merger's cross-lane bias correction (on by default; --bias-correction 0 to
// see the raw pooling) re-inverts each pooled service rate from the thinning-invariant
// mean response, collapsing the single-lane cross-check deviation that used to
// concentrate in highly utilized windows.
//
// A ChangeMonitor (src/qnet/detect/) taps the same pooled on_window hook: per window it
// runs the full detector bank (arrival CUSUM + BOCPD, per-queue service and wait CUSUMs,
// the bottleneck-migration tracker, the degraded-run edge) and the run ends with a live
// alert feed table. --alerts-out FILE archives the alert log as CSV.
//
// --campaign NAME swaps the ad-hoc fault script for a named scenario campaign
// (src/qnet/scenario/campaign.h: stationary, flash-crowd, diurnal-ramp, partial-failure,
// slow-start-recovery, bottleneck-migration). Campaigns carry ground-truth change
// labels, so the run ends with a scorecard: detection latency per labelled event and
// the false-alarm count on the quiet prefix — the same numbers bench/perf_detect.cc
// gates in CI.
//
// Telemetry surfaces (the unified registry/timeline layer, src/qnet/telemetry/):
//   --metrics-out FILE   write the end-of-run metrics snapshot — Prometheus text
//                        exposition, or stable-ordered JSON when FILE ends in .json
//   --trace-out FILE     write a Chrome trace-event JSON of every captured span;
//                        loads directly in Perfetto / chrome://tracing
//   --trace-level N      span detail (1 pipeline stages, 2 + lane queue & sweep
//                        internals, 3 + per-tile; default 1)
// and the end-of-run stage-latency table (p50/p95/max per pipeline stage) is read
// straight from the registry's stage histograms.
//
// Usage: streaming_monitor [--tasks 3000] [--rate 4] [--window 30] [--fraction 0.4]
//                          [--seed 1] [--lanes 2] [--report windows.csv]
//                          [--fast-path off|warm|degrade|only] [--degrade-budget N]
//                          [--bias-correction 1] [--metrics-out m.prom|m.json]
//                          [--trace-out trace.json] [--trace-level 1]
//                          [--campaign flash-crowd] [--alerts-out alerts.csv]

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "qnet/detect/change_monitor.h"
#include "qnet/model/builders.h"
#include "qnet/scenario/campaign.h"
#include "qnet/scenario/forecast.h"
#include "qnet/scenario/scenario_engine.h"
#include "qnet/scenario/scenario_spec.h"
#include "qnet/shard/sharded_streaming.h"
#include "qnet/sim/fault.h"
#include "qnet/stream/live_stream.h"
#include "qnet/support/flags.h"
#include "qnet/telemetry/export.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"
#include "qnet/trace/table.h"
#include "qnet/trace/window_csv.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 3000));
  const double window = flags.GetDouble("window", 30.0);
  const double fraction = flags.GetDouble("fraction", 0.4);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const auto lanes = static_cast<std::size_t>(flags.GetInt("lanes", 2));
  const std::string fast_path = flags.GetString("fast-path", "off");
  qnet::Timeline::SetLevel(flags.GetInt("trace-level", 1));

  // --campaign swaps the ad-hoc fault script below for a named ground-truth scenario
  // (the campaign owns the topology, horizon, and FaultSchedule).
  const bool campaign_mode = flags.Has("campaign");
  const qnet::Campaign campaign =
      campaign_mode ? qnet::MakeCampaign(flags.GetString("campaign", "flash-crowd"))
                    : qnet::Campaign{};
  const double rate =
      campaign_mode ? campaign.arrival_rate : flags.GetDouble("rate", 4.0);
  // Default budget: the expected per-window task count, so Poisson fluctuation pushes
  // roughly the busier half of the windows over it under --fast-path degrade.
  const auto degrade_budget = static_cast<std::size_t>(
      flags.GetInt("degrade-budget", static_cast<int>(rate * window)));

  // Tandem line; stage 2 degrades 3x starting halfway through the stream (20/s -> 6.7/s,
  // still above the arrival rate so the queue stays stable and the estimate stays crisp).
  const qnet::QueueingNetwork net =
      campaign_mode ? campaign.MakeNetwork() : qnet::MakeTandemNetwork(rate, {10.0, 20.0});
  const double fault_at = static_cast<double>(tasks) / rate / 2.0;
  qnet::FaultSchedule faults;
  faults.AddSlowdown(2, fault_at, 1.0e12, 3.0);

  qnet::LiveSimOptions sim_options;
  if (campaign_mode) {
    sim_options = campaign.SimOptions();
  } else {
    sim_options.max_tasks = tasks;
    sim_options.arrival_rate = rate;
    sim_options.faults = &faults;
  }
  sim_options.observed_fraction = fraction;

  qnet::ShardedStreamingOptions options;
  options.lanes = lanes;
  options.stream.window.window_duration = window;
  options.stream.stem.iterations = 60;
  options.stream.stem.burn_in = 20;
  options.stream.stem.wait_sweeps = 20;
  // Anchor each window's lambda to its own span so the forecast load stays honest no
  // matter how far the stream runs from t = 0.
  options.stream.window_local_arrival_rate = true;
  // Correct pooled service rates for the queueing a lane's thinned sub-stream cannot
  // see (a no-op at K = 1, where pooling is verbatim).
  options.cross_lane_bias_correction = flags.GetInt("bias-correction", 1) != 0;

  if (fast_path == "warm") {
    options.stream.fast_path = qnet::FastPathMode::kWarmStart;
    options.stream.stem.convergence_tol = 0.05;
  } else if (fast_path == "degrade") {
    options.stream.fast_path = qnet::FastPathMode::kDegrade;
    options.stream.degrade_task_budget = degrade_budget;
  } else if (fast_path == "only") {
    options.stream.fast_path = qnet::FastPathMode::kMeanFieldOnly;
  } else if (fast_path != "off") {
    std::cerr << "unknown --fast-path mode '" << fast_path
              << "' (expected off|warm|degrade|only)\n";
    return 1;
  }

  // Continuous capacity forecast: after each pooled window, evaluate "now" and "2x load"
  // scenarios at that window's rates (point draws — per-window estimates carry no bands).
  qnet::ScenarioAxis load;
  load.kind = qnet::AxisKind::kArrivalScale;
  load.name = "load";
  load.values = {1.0, 2.0};
  qnet::ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 400;
  qnet::WindowForecaster forecaster(net, qnet::ScenarioGrid({load}), forecast_options, seed);

  // The change monitor taps the same pooled window hook as the forecaster: both are
  // pure consumers of the estimate sequence, chained on the merge thread in order.
  qnet::ChangeMonitor monitor(net.NumQueues());
  const auto forecast_hook = forecaster.Hook();
  const auto monitor_hook = monitor.Hook();
  options.stream.on_window = [&monitor_hook,
                              &forecast_hook](const qnet::WindowEstimate& e) {
    monitor_hook(e);
    forecast_hook(e);
  };

  std::vector<double> init(static_cast<std::size_t>(net.NumQueues()), 1.0);
  init[0] = rate;
  qnet::LiveSimStream stream(net, sim_options, seed);
  qnet::ShardedStreamingEstimator fleet(init, seed, options);
  auto estimates = fleet.Run(stream);
  monitor.ApplyAlertFlags(estimates);
  const qnet::FleetStats& stats = fleet.Stats();

  std::cout << "Streamed " << stats.tasks_ingested << " tasks across " << stats.lanes
            << " lane(s) in " << qnet::FormatDouble(stats.total_wall_seconds) << " s ("
            << qnet::FormatDouble(stats.tasks_per_second / 1e3)
            << "k tasks/s end-to-end, max merge lag "
            << qnet::FormatDouble(stats.max_merge_lag_seconds * 1e3)
            << " ms, router blocked "
            << qnet::FormatDouble(stats.router_blocked_seconds * 1e3) << " ms)\n";
  if (campaign_mode) {
    std::cout << "Campaign '" << campaign.name << "': " << campaign.description
              << " (quiet prefix ends t = " << qnet::FormatDouble(campaign.quiet_until)
              << " s, horizon " << qnet::FormatDouble(campaign.horizon) << " s)\n\n";
  } else {
    std::cout << "Fault injected at t = " << qnet::FormatDouble(fault_at)
              << " s: stage-2 service slows 3x (true mean 0.05 -> 0.15 s)\n\n";
  }

  // Where the time went, per pipeline stage, straight from the telemetry registry's
  // stage histograms (the ad-hoc per-lane counters block this replaces lives on in the
  // registry snapshot — see --metrics-out).
  std::cout << "Stage latencies (from the telemetry histogram registry):\n"
            << qnet::StageSummaryTable(qnet::MetricRegistry::Global().Snapshot())
            << '\n';

  qnet::TablePrinter table({"window", "tasks", "fit", "iters", "est svc q1", "est svc q2",
                            "est wait q2", "fcast latency 1x", "fcast latency 2x"});
  const auto& forecasts = forecaster.Reports();
  std::size_t degraded_windows = 0;
  for (std::size_t w = 0; w < estimates.size(); ++w) {
    const auto& est = estimates[w];
    const std::string span = qnet::FormatDouble(est.t0) + " - " + qnet::FormatDouble(est.t1) +
                             (est.merged_tail_tasks > 0 ? " (tail merged)" : "");
    const auto& cells = forecasts[w].cells;
    degraded_windows += est.degraded ? 1 : 0;
    table.AddRow({span, std::to_string(est.tasks),
                  est.degraded ? "mean-field" : "stem",
                  std::to_string(est.fit_iterations),
                  qnet::FormatDouble(1.0 / est.rates[1]),
                  qnet::FormatDouble(1.0 / est.rates[2]),
                  est.mean_wait.empty() ? "-" : qnet::FormatDouble(est.mean_wait[2]),
                  qnet::FormatDouble(cells[0].mean_response.mean),
                  qnet::FormatDouble(cells[1].mean_response.mean)});
  }
  table.Print(std::cout);
  if (!campaign_mode) {
    std::cout << "\nThe stage-2 service estimate should jump ~3x in the windows after "
                 "the fault, and the 2x-load latency forecast should blow up with it.\n";
  }

  // Live alert feed: everything the detector bank raised, in raise order, with full
  // provenance back to the triggering window.
  const std::vector<qnet::Alert>& alerts = monitor.Alerts();
  std::cout << "\nAlert feed (" << alerts.size() << " alert(s)):\n";
  if (alerts.empty()) {
    std::cout << "  (none -- the detectors stayed quiet)\n";
  } else {
    qnet::TablePrinter alert_table(
        {"window", "kind", "detector", "queue", "closes t", "magnitude", "statistic"});
    for (const qnet::Alert& a : alerts) {
      alert_table.AddRow({std::to_string(a.window), qnet::AlertKindName(a.kind),
                          qnet::DetectorKindName(a.detector), std::to_string(a.queue),
                          qnet::FormatDouble(a.t1),
                          qnet::FormatDouble(a.magnitude * 100.0) + "%",
                          qnet::FormatDouble(a.statistic)});
    }
    alert_table.Print(std::cout);
  }

  if (campaign_mode) {
    // Score the alert log against the campaign's ground-truth labels — the same
    // numbers bench/perf_detect.cc gates in CI.
    const qnet::CampaignResult scored =
        qnet::ScoreCampaign(campaign, estimates, alerts);
    std::cout << "\nCampaign scorecard:\n";
    for (const qnet::CampaignEventOutcome& outcome : scored.outcomes) {
      std::cout << "  [" << qnet::AlertKindName(outcome.event.kind) << "] "
                << outcome.event.label << " at t = "
                << qnet::FormatDouble(outcome.event.time) << " s (window "
                << outcome.event_window << "): ";
      if (outcome.detected) {
        std::cout << "detected at window " << outcome.detection_window << " (latency "
                  << outcome.latency_windows << " window(s))\n";
      } else {
        std::cout << "MISSED\n";
      }
    }
    std::cout << "  false alarms on the quiet prefix: " << scored.false_alarms << "\n";
  }

  if (fast_path != "off") {
    // Per-window fit_iterations sums lane fits, so the budget is lanes x iterations per
    // non-degraded window (a merged-tail re-fit adds its re-run on top; savings are
    // reported against the windows actually emitted).
    const std::size_t budget =
        estimates.size() * stats.lanes * options.stream.stem.iterations;
    const std::size_t ran = stats.fit_iterations_total;
    std::cout << "\nFast path '" << fast_path << "': " << stats.degraded_windows << " of "
              << estimates.size() << " pooled windows degraded to mean-field-only ("
              << forecaster.DegradedForecasts() << " forecasts consumed them); StEM ran "
              << ran << " of " << budget << " budgeted iterations";
    if (budget > 0) {
      std::cout << " (" << qnet::FormatDouble(
                       100.0 * (1.0 - static_cast<double>(ran) /
                                          static_cast<double>(budget)))
                << "% saved)";
    }
    std::cout << "\n(degraded_windows counts pooled emissions; " << degraded_windows
              << " of the final estimates carry the flag)\n";
  }

  if (lanes > 1) {
    // Same seed -> the live simulator emits the identical record stream; the span
    // tracker therefore closes the identical windows, and only the per-lane fits differ.
    qnet::LiveSimStream reference_stream(net, sim_options, seed);
    qnet::ShardedStreamingOptions reference_options = options;
    reference_options.lanes = 1;
    reference_options.stream.on_window = nullptr;
    qnet::ShardedStreamingEstimator reference(init, seed, reference_options);
    const auto single = reference.Run(reference_stream);
    double worst = 0.0;
    if (single.size() == estimates.size()) {
      for (std::size_t w = 0; w < estimates.size(); ++w) {
        for (std::size_t q = 1; q < estimates[w].rates.size(); ++q) {
          const double pooled_service = 1.0 / estimates[w].rates[q];
          const double single_service = 1.0 / single[w].rates[q];
          worst = std::max(worst,
                           std::abs(pooled_service - single_service) / single_service);
        }
      }
      std::cout << "\nCross-check vs a single-lane run of the identical stream: window "
                   "spans identical; largest service-time deviation of the pooled "
                << lanes << "-lane estimates: " << qnet::FormatDouble(worst * 100.0)
                << "%\n";
      if (options.cross_lane_bias_correction) {
        std::cout << "(cross-lane bias correction is ON — rerun with --bias-correction "
                     "0 to see the raw decomposition\nbias it removes, which "
                     "concentrates in highly utilized windows)\n";
      } else {
        std::cout << "(deviation concentrates in highly utilized windows, where a "
                     "lane's sub-stream attributes cross-lane\nqueueing delay to "
                     "service — the decomposition bias that --bias-correction 1 "
                     "removes; the fault jump\nitself is detected identically at every "
                     "lane count)\n";
      }
    }
  }

  if (flags.Has("report")) {
    const std::string path = flags.GetString("report", "windows.csv");
    qnet::WriteWindowEstimatesFile(path, estimates, net.NumQueues());
    std::cout << "\nWrote per-window estimates to " << path << "\n";
  }

  if (flags.Has("alerts-out")) {
    const std::string path = flags.GetString("alerts-out", "alerts.csv");
    qnet::WriteAlertsCsvFile(path, alerts);
    std::cout << "Wrote alert log to " << path << "\n";
  }

  if (flags.Has("metrics-out")) {
    const std::string path = flags.GetString("metrics-out", "metrics.prom");
    const qnet::MetricsSnapshot snapshot = qnet::MetricRegistry::Global().Snapshot();
    const bool json = path.size() >= 5 && path.substr(path.size() - 5) == ".json";
    if (qnet::WriteFileOrWarn(path,
                              json ? qnet::ToJson(snapshot)
                                   : qnet::ToPrometheusText(snapshot))) {
      std::cout << "\nWrote " << (json ? "JSON" : "Prometheus") << " metrics snapshot to "
                << path << "\n";
    }
  }
  if (flags.Has("trace-out")) {
    const std::string path = flags.GetString("trace-out", "trace.json");
    if (qnet::WriteFileOrWarn(path,
                              qnet::ToChromeTrace(qnet::Timeline::CollectSpans()))) {
      std::cout << "Wrote Chrome trace (open in Perfetto / chrome://tracing) to " << path
                << "\n";
    }
  }
  return 0;
}
