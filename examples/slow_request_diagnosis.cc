// Slow-request diagnosis — the paper's second motivating question (Section 1):
//
//   "During the execution of the 1% of requests that perform poorly, which system
//    components receive the most load?"
//
// A storage queue fails intermittently (brief 25x slowdowns covering ~5% of the run). On
// *average* the application tier is the bottleneck, so mean-based monitoring points at the
// wrong component. Attributing the time of the slowest requests — posterior-averaged over
// Gibbs samples when only a sparse trace is available — pins the tail latency on storage.
//
// Usage: slow_request_diagnosis [--fraction 0.25] [--percentile 0.95] [--seed 11]

#include <iostream>

#include "qnet/infer/initializer.h"
#include "qnet/infer/slow_requests.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const double fraction = flags.GetDouble("fraction", 0.25);
  const double percentile = flags.GetDouble("percentile", 0.95);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 11)));

  // app (steady, moderately loaded) -> storage (fast but intermittently failing).
  const qnet::QueueingNetwork net = qnet::MakeTandemNetwork(1.0, {2.5, 20.0});
  qnet::FaultSchedule faults;
  for (int w = 0; w < 20; ++w) {
    const double t0 = 100.0 * w + 50.0;
    faults.AddSlowdown(2, t0, t0 + 5.0, 25.0);
  }
  qnet::SimOptions sim_options;
  sim_options.faults = &faults;
  const qnet::EventLog truth =
      qnet::Simulate(net, qnet::PoissonArrivals(1.0, 2000).Generate(rng), rng, sim_options);
  std::cout << "Simulated " << truth.NumTasks() << " requests; storage (queue2) fails for"
            << " 5 s every 100 s (25x slowdown)\n";

  // Estimate rates from a sparse trace, then attribute slow-request time a posteriori.
  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  const qnet::Observation obs = scheme.Apply(truth, rng);
  std::cout << "Tracing " << obs.observed_tasks.size() << " requests ("
            << 100.0 * fraction << "%)\n\n";
  qnet::StemOptions stem_options;
  stem_options.iterations = 150;
  stem_options.burn_in = 60;
  stem_options.wait_sweeps = 0;
  const qnet::StemResult stem =
      qnet::StemEstimator(stem_options).Run(truth, obs, {}, rng);

  qnet::GibbsSampler sampler(
      qnet::InitializeFeasible(truth, obs, stem.rates, rng), obs, stem.rates);
  const qnet::SlowRequestReport posterior =
      qnet::AnalyzeSlowRequestsPosterior(sampler, rng, 60, percentile);
  const qnet::SlowRequestReport oracle = qnet::AnalyzeSlowRequests(truth, percentile);

  std::cout << "Where does a request's time go? (mean seconds per request)\n";
  qnet::TablePrinter table({"queue", "all: wait", "all: svc", "slow: wait (est)",
                            "slow: wait (oracle)", "slow: svc (est)"});
  for (int q = 1; q < net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    table.AddRow({net.QueueName(q), qnet::FormatDouble(posterior.all_wait[qi], 3),
                  qnet::FormatDouble(posterior.all_service[qi], 3),
                  qnet::FormatDouble(posterior.slow_wait[qi], 3),
                  qnet::FormatDouble(oracle.slow_wait[qi], 3),
                  qnet::FormatDouble(posterior.slow_service[qi], 3)});
  }
  table.Print(std::cout);
  std::cout << "\nAverage bottleneck (largest all-request wait): queue"
            << " \"" << net.QueueName(1) << "\" — the steady app tier."
            << "\nSlow-request culprit (largest slow-vs-all wait ratio): \""
            << net.QueueName(posterior.MostDisproportionateQueue())
            << "\" — the intermittently failing storage.\n"
            << "Threshold for 'slow': response >= "
            << qnet::FormatDouble(posterior.threshold, 2) << " s (slowest "
            << 100.0 * (1.0 - percentile) << "%)\n";
  return 0;
}
