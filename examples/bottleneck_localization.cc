// Bottleneck localization — the paper's motivating diagnosis scenarios (Section 1):
//
//   "Five minutes ago, a brief spike in workload occurred. Which parts of the system were
//    the bottleneck during that spike?"  and
//   "Is a component slow because of intrinsic degradation, or just because of load?"
//
// We simulate a three-tier service that suffers BOTH problems at once — a workload spike
// AND an intrinsically degraded database — then, from a 15% trace sample, use the
// waiting/service decomposition to tell them apart:
//   * load problems inflate *waiting* times but leave service times unchanged;
//   * intrinsic degradation inflates *service* times.
//
// Usage: bottleneck_localization [--fraction 0.15] [--seed 7]

#include <algorithm>
#include <iostream>

#include "qnet/dist/exponential.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/flags.h"
#include "qnet/trace/table.h"

int main(int argc, char** argv) {
  const qnet::Flags flags(argc, argv);
  const double fraction = flags.GetDouble("fraction", 0.15);
  qnet::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 7)));

  // Web tier (2 servers @ 8/s), app tier (2 servers @ 6/s), database (1 server @ 12/s).
  qnet::QueueingNetwork net = [] {
    qnet::ThreeTierConfig config;
    config.tier_sizes = {2, 2, 1};
    config.arrival_rate = 3.0;
    config.service_rate = 8.0;
    return qnet::MakeThreeTierNetwork(config);
  }();
  // Give the tiers distinct speeds.
  net.SetService(3, std::make_unique<qnet::Exponential>(6.0));
  net.SetService(4, std::make_unique<qnet::Exponential>(6.0));
  net.SetService(5, std::make_unique<qnet::Exponential>(12.0));
  const int db_queue = 5;

  // Workload: calm -> spike (x5) -> calm.
  const qnet::PiecewiseConstantArrivals workload({0.0, 120.0, 180.0, 300.0},
                                                 {3.0, 15.0, 3.0});
  // Fault: the database intrinsically degrades 3x for the whole run (failing disk).
  qnet::FaultSchedule faults;
  faults.AddSlowdown(db_queue, 0.0, 1e9, 3.0);
  qnet::SimOptions sim_options;
  sim_options.faults = &faults;

  const qnet::EventLog truth = qnet::Simulate(net, workload.Generate(rng), rng, sim_options);
  std::cout << "Simulated " << truth.NumTasks() << " requests over 300 s"
            << " (spike at t in [120, 180))\n";

  qnet::TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  const qnet::Observation obs = scheme.Apply(truth, rng);
  std::cout << "Tracing " << obs.observed_tasks.size() << " tasks ("
            << 100.0 * fraction << "% of requests)\n\n";

  qnet::StemOptions options;
  options.iterations = 150;
  options.burn_in = 50;
  options.wait_sweeps = 50;
  const qnet::StemResult result = qnet::StemEstimator(options).Run(truth, obs, {}, rng);

  // Nominal (healthy) service means for the diagnosis verdicts.
  const std::vector<double> nominal = {0.0,       1.0 / 8.0, 1.0 / 8.0,
                                       1.0 / 6.0, 1.0 / 6.0, 1.0 / 12.0};

  qnet::TablePrinter table({"queue", "est svc", "nominal svc", "est wait", "verdict"});
  double worst_wait = 0.0;
  for (int q = 1; q < net.NumQueues(); ++q) {
    worst_wait = std::max(worst_wait, result.mean_wait[static_cast<std::size_t>(q)]);
  }
  for (int q = 1; q < net.NumQueues(); ++q) {
    const auto qi = static_cast<std::size_t>(q);
    const bool degraded = result.mean_service[qi] > 1.8 * nominal[qi];
    const bool loaded = result.mean_wait[qi] > 0.5 * worst_wait &&
                        result.mean_wait[qi] > 2.0 * result.mean_service[qi];
    std::string verdict = "healthy";
    if (degraded && loaded) {
      verdict = "DEGRADED + overloaded";
    } else if (degraded) {
      verdict = "DEGRADED (intrinsic)";
    } else if (loaded) {
      verdict = "overloaded (load-bound)";
    }
    table.AddRow({net.QueueName(q), qnet::FormatDouble(result.mean_service[qi]),
                  qnet::FormatDouble(nominal[qi]), qnet::FormatDouble(result.mean_wait[qi]),
                  verdict});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: the database shows an inflated *service* estimate (~3x nominal)"
            << "\n          while spike congestion shows up as *waiting* time.\n";
  return 0;
}
